#!/usr/bin/env bash
# Tier-1 verification plus lints, as run before every merge.
#
#   ./ci.sh          # build + tests + clippy
#   ./ci.sh --bench  # also run the parallel_scale throughput bench
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings \
    -D clippy::large_stack_arrays -D clippy::needless_collect

# Deterministic chaos smoke: seeded telemetry faults against both rigs,
# invariant-checked every simulated second; exits non-zero on violation.
cargo run --release -q -p capmaestro-bench --bin chaos -- \
    --seconds 300 --seed 7 --seeds 1 --out BENCH_chaos_smoke.json

# Round-pipeline smoke: 60 incremental control rounds vs a from-scratch
# twin plane — bit-identical caps and zero steady-state heap allocations,
# or the bench exits non-zero.
cargo run --release -q -p capmaestro-bench --bin alloc -- \
    --smoke --out BENCH_alloc_smoke.json

# Fleet-stepping smoke: the sharded, event-driven slab pipeline (1 Hz
# sample + fused step-and-sense + control rounds) on a 128-server rig in
# both stepping modes; exits non-zero on degenerate throughput.
cargo run --release -q -p capmaestro-bench --bin fleet -- --smoke

# Observability smoke: 20 instrumented rounds on the Fig. 2 rig, then
# validate the Prometheus page against the exposition grammar, round-trip
# the JSON snapshot, and require all six round phases to have been
# observed; exits non-zero on any failure.
cargo run --release -q --example observability -- --check

# Serving-mode smoke: boot capmaestrod on an ephemeral port (flat-out
# stepping, quit-on-stdin for a clean shutdown), curl all four endpoints,
# run the daemon's own --probe (which validates the Prometheus payload,
# round-trips the report JSON, and POSTs a budget), then shut down via
# stdin. Everything is wall-clock bounded so a wedged daemon fails CI
# instead of hanging it.
cargo build --release -q -p capmaestro-serve --bin capmaestrod
DAEMON_LOG=$(mktemp); DAEMON_FIFO=$(mktemp -u)
mkfifo "$DAEMON_FIFO"
timeout 120s ./target/release/capmaestrod \
    --addr 127.0.0.1:0 --accel 0 --quit-on-stdin --wall-limit-s 90 \
    <"$DAEMON_FIFO" >"$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!
exec 9>"$DAEMON_FIFO"   # open the write end so the daemon's stdin stays live
for _ in $(seq 1 100); do
    grep -q "listening on" "$DAEMON_LOG" && break
    sleep 0.1
done
DAEMON_ADDR=$(sed -n 's|.*http://||p' "$DAEMON_LOG" | head -1)
[[ -n "$DAEMON_ADDR" ]] || { echo "ci: capmaestrod never announced its port" >&2; cat "$DAEMON_LOG" >&2; exit 1; }
curl -fsS --max-time 10 "http://$DAEMON_ADDR/metrics"  > /dev/null
curl -fsS --max-time 10 "http://$DAEMON_ADDR/healthz"  > /dev/null
curl -fsS --max-time 10 "http://$DAEMON_ADDR/report"   > /dev/null
curl -fsS --max-time 10 -X POST --data '[1240]' "http://$DAEMON_ADDR/budget" > /dev/null
timeout 60s ./target/release/capmaestrod --probe "$DAEMON_ADDR"
echo quit >&9
exec 9>&-
wait "$DAEMON_PID"
rm -f "$DAEMON_FIFO" "$DAEMON_LOG"
echo "ci: serving-mode smoke ok"

if [[ "${1:-}" == "--bench" ]]; then
    cargo run --release -p capmaestro-bench --bin parallel_scale
fi

echo "ci: ok"
