#!/usr/bin/env bash
# Tier-1 verification plus lints, as run before every merge.
#
#   ./ci.sh          # build + tests + clippy
#   ./ci.sh --bench  # also run the parallel_scale throughput bench
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings

# Deterministic chaos smoke: seeded telemetry faults against both rigs,
# invariant-checked every simulated second; exits non-zero on violation.
cargo run --release -q -p capmaestro-bench --bin chaos -- \
    --seconds 300 --seed 7 --seeds 1 --out BENCH_chaos_smoke.json

# Round-pipeline smoke: 60 incremental control rounds vs a from-scratch
# twin plane — bit-identical caps and zero steady-state heap allocations,
# or the bench exits non-zero.
cargo run --release -q -p capmaestro-bench --bin alloc -- \
    --smoke --out BENCH_alloc_smoke.json

# Observability smoke: 20 instrumented rounds on the Fig. 2 rig, then
# validate the Prometheus page against the exposition grammar, round-trip
# the JSON snapshot, and require all six round phases to have been
# observed; exits non-zero on any failure.
cargo run --release -q --example observability -- --check

if [[ "${1:-}" == "--bench" ]]; then
    cargo run --release -p capmaestro-bench --bin parallel_scale
fi

echo "ci: ok"
