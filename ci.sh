#!/usr/bin/env bash
# Tier-1 verification plus lints, as run before every merge.
#
#   ./ci.sh          # build + tests + clippy
#   ./ci.sh --bench  # also run the parallel_scale throughput bench
set -euo pipefail
cd "$(dirname "$0")"

cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings \
    -D clippy::large_stack_arrays -D clippy::needless_collect

# Trace-export lane: the exporter's unit tests plus the property layer
# (round-trip, ring eviction, parser totality) run as part of tier 1.
cargo test -q -p capmaestro-core trace

# Deterministic chaos smoke: seeded telemetry faults against both rigs,
# invariant-checked every simulated second; exits non-zero on violation.
cargo run --release -q -p capmaestro-bench --bin chaos -- \
    --seconds 300 --seed 7 --seeds 1 --out BENCH_chaos_smoke.json

# Round-pipeline smoke: 60 incremental control rounds vs a from-scratch
# twin plane — bit-identical caps and zero steady-state heap allocations,
# or the bench exits non-zero.
cargo run --release -q -p capmaestro-bench --bin alloc -- \
    --smoke --out BENCH_alloc_smoke.json

# Policy-arena smoke: every budget-split allocator (waterfall,
# waterfilling, fair_share) races the same seeded diurnal / flash-crowd /
# feed-failure scenarios; exits non-zero if any scored metric leaves its
# sane range.
cargo run --release -q -p capmaestro-bench --bin policies -- \
    --smoke --out BENCH_policies_smoke.json

# Fleet-stepping smoke: the sharded, event-driven slab pipeline (1 Hz
# sample + fused step-and-sense + control rounds) on a 128-server rig in
# both stepping modes; exits non-zero on degenerate throughput.
cargo run --release -q -p capmaestro-bench --bin fleet -- --smoke

# Observability smoke: 20 instrumented rounds on the Fig. 2 rig, then
# validate the Prometheus page against the exposition grammar, round-trip
# the JSON snapshot, and require all six round phases to have been
# observed; exits non-zero on any failure.
cargo run --release -q --example observability -- --check

# Serving-mode smoke: boot capmaestrod on an ephemeral port (flat-out
# stepping, quit-on-stdin for a clean shutdown), curl all four endpoints,
# run the daemon's own --probe (which validates the Prometheus payload,
# round-trips the report JSON, and POSTs a budget), then shut down via
# stdin. Everything is wall-clock bounded so a wedged daemon fails CI
# instead of hanging it.
cargo build --release -q -p capmaestro-serve --bin capmaestrod
DAEMON_LOG=$(mktemp); DAEMON_FIFO=$(mktemp -u); DAEMON_OPLOG=$(mktemp -u)
DAEMON_TRACE=$(mktemp -u)
mkfifo "$DAEMON_FIFO"
timeout 120s ./target/release/capmaestrod \
    --addr 127.0.0.1:0 --accel 0 --quit-on-stdin --wall-limit-s 90 \
    --oplog "$DAEMON_OPLOG" --trace "$DAEMON_TRACE" \
    <"$DAEMON_FIFO" >"$DAEMON_LOG" 2>&1 &
DAEMON_PID=$!
exec 9>"$DAEMON_FIFO"   # open the write end so the daemon's stdin stays live
for _ in $(seq 1 100); do
    grep -q "listening on" "$DAEMON_LOG" && break
    sleep 0.1
done
DAEMON_ADDR=$(sed -n 's|.*http://||p' "$DAEMON_LOG" | head -1)
[[ -n "$DAEMON_ADDR" ]] || { echo "ci: capmaestrod never announced its port" >&2; cat "$DAEMON_LOG" >&2; exit 1; }
curl -fsS --max-time 10 "http://$DAEMON_ADDR/metrics"  > /dev/null
curl -fsS --max-time 10 "http://$DAEMON_ADDR/healthz"  > /dev/null
curl -fsS --max-time 10 "http://$DAEMON_ADDR/report"   > /dev/null
curl -fsS --max-time 10 -X POST --data '[1240]' "http://$DAEMON_ADDR/budget" > /dev/null
timeout 60s ./target/release/capmaestrod --probe "$DAEMON_ADDR"

# Versioned-API smoke: declare a tree budget through /v1 with an
# idempotency key, see the event in the log, wait for the reconciler to
# converge the live plane at a round boundary, then retry the identical
# request and require an idempotent replay (exactly one event appended).
ci_put_budget() {
    curl -fsS --max-time 10 -X PUT -H "Idempotency-Key: ci-roll-1" \
        --data '{"watts": 1200}' "http://$DAEMON_ADDR/v1/trees/0/budget"
}
FIRST_PUT=$(ci_put_budget)
grep -q '"replayed":false' <<<"$FIRST_PUT" \
    || { echo "ci: first /v1 PUT was not a fresh append: $FIRST_PUT" >&2; exit 1; }
EVENTS=$(curl -fsS --max-time 10 "http://$DAEMON_ADDR/v1/events")
grep -q '"type":"set_tree_budget"' <<<"$EVENTS" \
    || { echo "ci: /v1/events does not show the staged budget: $EVENTS" >&2; exit 1; }
HEAD_BEFORE=$(sed -n 's|^{"head":\([0-9]*\).*|\1|p' <<<"$EVENTS")
APPLIED=""
for _ in $(seq 1 120); do
    APPLIED=$(curl -fsS --max-time 5 "http://$DAEMON_ADDR/v1/report" \
        | sed -n 's|.*tree_root_watts{tree=[^}]*}", "value": \([0-9.]*\)}.*|\1|p')
    [[ "$APPLIED" == "1200" ]] && break
    sleep 0.25
done
[[ "$APPLIED" == "1200" ]] \
    || { echo "ci: reconciler never applied the declared 1200 W budget (saw '$APPLIED')" >&2; exit 1; }
RETRY_PUT=$(ci_put_budget)
grep -q '"replayed":true' <<<"$RETRY_PUT" \
    || { echo "ci: /v1 PUT retry was not replayed: $RETRY_PUT" >&2; exit 1; }
HEAD_AFTER=$(curl -fsS --max-time 10 "http://$DAEMON_ADDR/v1/events" \
    | sed -n 's|^{"head":\([0-9]*\).*|\1|p')
[[ "$HEAD_BEFORE" == "$HEAD_AFTER" ]] \
    || { echo "ci: idempotent retry appended an event ($HEAD_BEFORE -> $HEAD_AFTER)" >&2; exit 1; }
echo "ci: versioned-api smoke ok"

# Trace smoke: pull the live Perfetto document off /v1/trace and run it
# through the strict validator (trace_check --check fails unless the
# document parses, shows slices for all six round phases, and carries at
# least four counter tracks).
TRACE_DOWNLOAD=$(mktemp)
curl -fsS --max-time 10 "http://$DAEMON_ADDR/v1/trace" > "$TRACE_DOWNLOAD"
curl -fsS --max-time 10 "http://$DAEMON_ADDR/v1/trace?last_s=30" > /dev/null
cargo run --release -q --example trace_check -- --check "$TRACE_DOWNLOAD"
echo "ci: trace smoke ok"

echo quit >&9
exec 9>&-
wait "$DAEMON_PID"
[[ -s "$DAEMON_OPLOG" ]] \
    || { echo "ci: --oplog never persisted any events" >&2; exit 1; }
[[ -s "$DAEMON_TRACE" ]] \
    || { echo "ci: --trace never persisted a trace document" >&2; exit 1; }
cargo run --release -q --example trace_check -- --check "$DAEMON_TRACE"
rm -f "$DAEMON_FIFO" "$DAEMON_LOG" "$DAEMON_OPLOG" "$DAEMON_TRACE" "$TRACE_DOWNLOAD"
echo "ci: serving-mode smoke ok"

# Partition-soak smoke: a room controller in-process against 4 real
# capmaestro-agent processes, with a seeded kill/SIGSTOP schedule; the
# bench exits non-zero if any invariant (budget conservation, agent
# world audits, recovery from fail-safe within the quiet tail) breaks.
cargo build --release -q -p capmaestro-serve --bin capmaestro-agent
cargo run --release -q -p capmaestro-bench --bin partition -- \
    --smoke --out BENCH_partition_smoke.json

# Distributed control-plane smoke: capmaestrod as room controller plus
# two rack-agent processes over real sockets. Kill one agent and the
# fail-safe gauge must rise; restart it and the gauge must clear. Every
# step is wall-clock bounded so a wedged fleet fails CI instead of
# hanging it.
ROOM_LOG=$(mktemp); ROOM_FIFO=$(mktemp -u)
mkfifo "$ROOM_FIFO"
timeout 180s ./target/release/capmaestrod \
    --agents 2 --rig racks:2:2 --addr 127.0.0.1:0 --agent-addr 127.0.0.1:0 \
    --accel 0 --quit-on-stdin --wall-limit-s 150 \
    <"$ROOM_FIFO" >"$ROOM_LOG" 2>&1 &
ROOM_PID=$!
exec 8>"$ROOM_FIFO"
for _ in $(seq 1 100); do
    grep -q "listening on" "$ROOM_LOG" && break
    sleep 0.1
done
AGENT_ADDR=$(sed -n 's|^capmaestrod: agents connect to ||p' "$ROOM_LOG" | head -1)
ROOM_HTTP=$(sed -n 's|.*listening on http://||p' "$ROOM_LOG" | head -1)
[[ -n "$AGENT_ADDR" && -n "$ROOM_HTTP" ]] || { echo "ci: room controller never announced its ports" >&2; cat "$ROOM_LOG" >&2; exit 1; }
spawn_ci_agent() {
    ./target/release/capmaestro-agent --connect "$AGENT_ADDR" --worker "$1" \
        --workers-total 2 --rig racks:2:2 --max-connect-attempts 60 >/dev/null 2>&1 &
}
await_failsafe_gauge() { # $1: awk condition on the gauge value, $2: description
    for _ in $(seq 1 120); do
        v=$(curl -fsS --max-time 5 "http://$ROOM_HTTP/metrics" \
            | awk '$1 == "capmaestro_worker_failsafe_cuts" {print $2}')
        if [[ -n "$v" ]] && awk -v v="$v" "BEGIN{exit !(v $1)}"; then return 0; fi
        sleep 0.25
    done
    echo "ci: /metrics never showed failsafe_cuts $1 ($2)" >&2
    return 1
}
spawn_ci_agent 0; AGENT0_PID=$!
spawn_ci_agent 1; AGENT1_PID=$!
await_failsafe_gauge "== 0" "healthy fleet after connect"
kill -9 "$AGENT0_PID"; wait "$AGENT0_PID" 2>/dev/null || true
await_failsafe_gauge "> 0" "fail-safe cut after agent kill"
spawn_ci_agent 0; AGENT0_PID=$!
await_failsafe_gauge "== 0" "recovery after agent restart"
echo quit >&8
exec 8>&-
wait "$ROOM_PID"
wait "$AGENT0_PID" 2>/dev/null || true
wait "$AGENT1_PID" 2>/dev/null || true
rm -f "$ROOM_FIFO" "$ROOM_LOG"
echo "ci: distributed control-plane smoke ok"

if [[ "${1:-}" == "--bench" ]]; then
    cargo run --release -p capmaestro-bench --bin parallel_scale
fi

echo "ci: ok"
