//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate reimplements the surface the workspace
//! uses: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! range/tuple/`prop::collection::vec` strategies, and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, by design:
//!
//! - no shrinking — a failing case prints its inputs verbatim;
//! - `*.proptest-regressions` files are not replayed (promote shrunk cases
//!   to named unit tests instead, as this repo does);
//! - case generation is deterministic per test name, so failures reproduce
//!   across runs without a persistence file.

pub mod strategy {
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// A generator of test inputs. Upstream's trait, minus shrinking.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::ops::Range;

    /// A length specification for [`vec`]: an exact size or a half-open
    /// range, mirroring upstream's `SizeRange` conversions.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty vec length range");
            SizeRange {
                min: range.start,
                max: range.end,
            }
        }
    }

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors of values from `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration. Only `cases` is honored.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; the workspace's properties exercise
            // whole allocation trees per case, so keep runs snappy.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic SplitMix64 generator used for input generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test's fully qualified name so each
        /// property sees a distinct but reproducible stream.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The glob-importable prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Namespace mirror so `prop::collection::vec` works from the prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, reporting the generated inputs on
/// failure (via the surrounding [`proptest!`] harness).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = {
                    $(let $arg = ::std::clone::Clone::clone(&$arg);)+
                    ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || $body))
                };
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest stand-in: case {}/{} of {} failed with inputs:",
                        case + 1,
                        config.cases,
                        stringify!($name)
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            cfg = ::core::default::Default::default();
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..9, f in -1.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vecs_obey_length_and_element_ranges(
            v in prop::collection::vec((0.0f64..1.0, 0u8..4), 1..30),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 30);
            for (f, p) in v {
                prop_assert!((0.0..1.0).contains(&f));
                prop_assert!(p < 4);
            }
        }
    }

    #[test]
    fn deterministic_streams_per_name() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut a = TestRng::deterministic("x::y");
        let mut b = TestRng::deterministic("x::y");
        let strat = 0.0f64..10.0;
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a).to_bits(), strat.generate(&mut b).to_bits());
        }
    }
}
