//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Only [`channel`] is provided, backed by `std::sync::mpsc`. The workspace
//! uses multi-producer/single-consumer topologies exclusively (cloned
//! senders fanning into one receiver per consumer), which mpsc covers;
//! crossbeam's multi-consumer `select!` machinery is intentionally absent.

pub mod channel {
    use std::sync::mpsc;
    use std::time::Duration;

    pub use std::sync::mpsc::{RecvError, RecvTimeoutError, SendError, TryRecvError};

    /// The sending half of an unbounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; errs if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value)
        }
    }

    /// The receiving half of an unbounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Blocks up to `timeout` for a message.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.0.recv_timeout(timeout)
        }

        /// Returns a pending message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(41).unwrap();
        tx.clone().send(42).unwrap();
        assert_eq!(rx.recv().unwrap(), 41);
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn recv_timeout_expires() {
        let (tx, rx) = unbounded::<u8>();
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Timeout);
        drop(tx);
        let err = rx.recv_timeout(Duration::from_millis(10)).unwrap_err();
        assert_eq!(err, RecvTimeoutError::Disconnected);
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
