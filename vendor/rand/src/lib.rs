//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no network access and no
//! registry cache, so the real `rand` cannot be fetched. This crate vendors
//! the small API surface the workspace actually uses — [`Rng`], [`RngExt`],
//! [`SeedableRng`], and [`rngs::StdRng`] — backed by xoshiro256++ seeded
//! through SplitMix64. The generator is deterministic per seed and passes
//! the workspace's statistical sanity tests; its stream intentionally makes
//! no compatibility promise with upstream `rand`.

use core::ops::{Range, RangeInclusive};

/// A source of random 64-bit words. The core trait, mirroring `RngCore`.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`Rng`] without parameters.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges that support uniform sampling of a single value.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                start + (rng.next_u64() % (span + 1)) as $ty
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample_from(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Draws one value of a standard-samplable type.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Draws one value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Pre-packaged generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..10).filter(|_| a.random::<u64>() == b.random::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let a = rng.random_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.random_range(8u64..=9);
            assert!((8..=9).contains(&b));
            let c = rng.random_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&c));
        }
    }
}
