//! Minimal offline stand-in for the `criterion` crate.
//!
//! Provides just enough of criterion's API for the workspace's
//! `harness = false` benches to compile and produce useful wall-clock
//! numbers: [`Criterion`], [`BenchmarkId`], benchmark groups, and the
//! [`criterion_group!`]/[`criterion_main!`] macros. No statistics, plots,
//! or baselines — each bench runs a fixed number of timed samples and
//! reports the per-iteration mean and minimum.

use std::fmt::Display;
use std::time::Instant;

/// Identifies one parameterized benchmark, e.g. `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Passed to bench closures; [`Bencher::iter`] times the workload.
pub struct Bencher {
    samples: usize,
    /// (mean, min) seconds per iteration, filled by `iter`.
    result: Option<(f64, f64)>,
}

impl Bencher {
    /// Runs `routine` once to warm up, then `samples` timed iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        std::hint::black_box(routine());
        let mut total = 0.0f64;
        let mut min = f64::INFINITY;
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            let dt = start.elapsed().as_secs_f64();
            total += dt;
            min = min.min(dt);
        }
        self.result = Some((total / self.samples as f64, min));
    }
}

fn run_one(id: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((mean, min)) => println!(
            "{id:<40} mean {:>12}  min {:>12}  ({samples} samples)",
            format_duration(mean),
            format_duration(min),
        ),
        None => println!("{id:<40} (no measurement: Bencher::iter never called)"),
    }
}

fn format_duration(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.1} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'c> {
    name: String,
    samples: usize,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed iterations each bench runs.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(1);
        self
    }

    /// Runs one unparameterized bench in this group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, f);
        self
    }

    /// Runs one parameterized bench in this group.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.samples,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (formatting no-op here; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The bench context handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {
    default_samples: usize,
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples();
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    /// Runs one stand-alone bench.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let samples = self.samples();
        run_one(id, samples, f);
        self
    }

    fn samples(&self) -> usize {
        if self.default_samples == 0 {
            20
        } else {
            self.default_samples
        }
    }
}

/// Declares a bench suite: a function running each bench fn in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each suite.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // One warm-up plus three samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn id_formats_with_parameter() {
        let id = BenchmarkId::new("alloc", 512);
        assert_eq!(id.id, "alloc/512");
    }
}
