//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives with parking_lot's panic-free API:
//! `read()`/`write()`/`lock()` return guards directly, recovering the inner
//! value if a previous holder panicked (parking_lot has no poisoning).

use std::sync::{self, RwLockReadGuard, RwLockWriteGuard};

pub use std::sync::MutexGuard;

/// A reader-writer lock whose guards are acquired without a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock whose guard is acquired without a `Result`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poison_recovered() {
        use std::sync::Arc;
        let lock = Arc::new(RwLock::new(7));
        let inner = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = inner.write();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*lock.read(), 7);
    }
}
