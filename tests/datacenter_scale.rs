//! Data-center-scale closed-loop tests: 18-rack (1/9th) Table 4 subset with
//! authentic device ratings, 216 dual-corded servers, six control trees,
//! live breaker thermal models, and a feed failure mid-run.
//!
//! This is the scenario the paper's whole design defends: one side of the
//! redundant infrastructure dies at full load, the surviving side's
//! breakers see up to doubled load, and capping must win the ≥30 s UL 489
//! race on every one of them while high-priority servers keep running.

use capmaestro::core::policy::PolicyKind;
use capmaestro::sim::engine::{Engine, EngineConfig, Event, Trace};
use capmaestro::sim::scenarios::{datacenter_rig, DataCenterRigConfig};
use capmaestro::topology::{FeedId, Priority};
use capmaestro::units::Watts;

fn high_priority_ids(engine: &Engine) -> Vec<capmaestro::topology::ServerId> {
    engine
        .topology()
        .servers()
        .filter(|(_, info)| info.priority() == Priority::HIGH)
        .map(|(id, _)| id)
        .collect()
}

#[test]
fn normal_operation_is_uncapped_at_typical_load() {
    let config = DataCenterRigConfig::small();
    let rig = datacenter_rig(&config);
    let n = rig.farm.len();
    assert_eq!(n, 18 * 12);
    let mut engine = Engine::new(rig);
    let trace = engine.run(60);
    assert!(trace.trips.is_empty());
    // At 30 % fleet utilization nothing should be throttled.
    let mut throttled = 0;
    for series in trace.throttle.values() {
        if series[59] > 0.01 {
            throttled += 1;
        }
    }
    assert!(
        throttled <= n / 50,
        "{throttled}/{n} servers throttled under typical load"
    );
}

#[test]
fn feed_failure_at_full_load_is_survived_at_scale() {
    let mut config = DataCenterRigConfig::small();
    config.utilization = 1.0; // worst case: everyone at full tilt
    config.jitter_std = 0.0;
    // 30/rack: past the 24/rack no-capping limit, so the emergency needs
    // real throttling (per phase: 180 × 490 W = 88 kW vs 74 kW budget).
    config.params.servers_per_rack = 30;
    let rig = datacenter_rig(&config);
    let mut engine = Engine::new(rig);
    // Warm up, then kill feed B. The shared per-phase contractual budget
    // moves to the survivor automatically.
    engine.schedule(40, Event::FailFeed(FeedId::B));
    let trace = engine.run(400);

    // The headline safety property: not one breaker tripped, anywhere,
    // even though the X side absorbed the whole load.
    assert!(
        trace.trips.is_empty(),
        "breakers tripped during scale failover: {:?}",
        trace.trips
    );

    // High-priority servers ride through: average high-priority throttle
    // at the end is tiny while low-priority servers carry the capping.
    let high = high_priority_ids(&engine);
    let mut high_throttle = 0.0;
    for id in &high {
        high_throttle += trace.throttle[id].last().unwrap();
    }
    high_throttle /= high.len() as f64;
    assert!(
        high_throttle < 0.05,
        "high-priority servers throttled {high_throttle:.3} on average"
    );

    let total: f64 = trace
        .server_power
        .values()
        .map(|s| *s.last().unwrap())
        .sum();
    // Per-phase contractual budget × 3 phases bounds the total.
    let budget = 3.0 * (700_000.0 / 9.0) * 0.95;
    assert!(
        total <= budget * 1.02,
        "total power {total:.0} exceeds the contractual {budget:.0}"
    );
}

#[test]
fn spo_reclaims_power_at_scale() {
    // With randomized split imbalance and both feeds alive, SPO should
    // find real stranded watts across the fleet.
    let mut config = DataCenterRigConfig::small();
    config.utilization = 0.85;
    config.spo = true;
    let rig = datacenter_rig(&config);
    let mut engine = Engine::new(rig);
    let trace = engine.run(60);
    let reclaimed: f64 = trace.stranded.iter().map(|(_, w)| *w).sum();
    assert!(
        reclaimed > 0.0,
        "SPO found nothing to reclaim across an imbalanced fleet"
    );
}

#[test]
fn demand_surge_under_capping_respects_every_level() {
    // Start typical, surge the whole fleet to 100 % at t=30 while both
    // feeds are up — the hierarchy (CDUs, RPPs, transformers, contract)
    // must hold everywhere.
    let mut config = DataCenterRigConfig::small();
    config.params.servers_per_rack = 30;
    let rig = datacenter_rig(&config);
    let ids: Vec<_> = rig.topology.servers().map(|(id, _)| id).collect();
    let mut engine = Engine::new(rig);
    for id in ids {
        engine.schedule(30, Event::SetDemand(id, Watts::new(490.0)));
    }
    let trace = engine.run(300);
    assert!(trace.trips.is_empty(), "trips: {:?}", trace.trips);
    // Spot-check a CDU series against its derated limit (aggregate over
    // 3 phases: 3 × 5.52 kW).
    let cdu = trace
        .node_series_on(FeedId::A, "X-CDU0.0.0")
        .expect("CDU recorded");
    let steady = Trace::tail_mean(cdu, 30);
    assert!(
        steady <= 3.0 * 5520.0 * 1.02,
        "CDU steady load {steady:.0} exceeds its derated limit"
    );
}

/// The counterfactual behind the whole paper: with capping disabled, the
/// same feed failure trips breakers and servers go dark; with CapMaestro
/// running, nothing trips (checked by `feed_failure_at_full_load_is_
/// survived_at_scale` above).
#[test]
fn without_capping_the_same_failure_trips_breakers() {
    let mut config = DataCenterRigConfig::small();
    config.utilization = 1.0;
    config.jitter_std = 0.0;
    // Maximum density: after failover each CDU phase carries 15 × 490 W =
    // 7.35 kW against a 6.9 kW rating (~107 %) — a slow thermal overload
    // that capping would remove but an uncapped center cannot.
    config.params.servers_per_rack = 45;
    let rig = datacenter_rig(&config);
    let mut engine = Engine::with_config(
        rig,
        EngineConfig {
            control_enabled: false,
            ..EngineConfig::default()
        },
    );
    engine.schedule(40, Event::FailFeed(FeedId::B));
    let trace = engine.run(900);
    assert!(
        !trace.trips.is_empty(),
        "uncapped failover should have tripped breakers"
    );
    // Tripped breakers interrupt downstream delivery: servers went dark.
    assert!(
        !trace.lost_servers.is_empty(),
        "tripped breakers should have blacked out servers"
    );
    // And the outage cascades past the first trip: the trips happen only
    // after the UL 489 tolerance window, not instantly.
    let first_trip = trace.trips[0].0;
    assert!(
        first_trip >= 40,
        "no breaker may trip before the failure at t=40 (got {first_trip})"
    );

    // The contrast: the identical scenario WITH CapMaestro running caps
    // the CDU overload away and nothing trips.
    let rig = datacenter_rig(&config);
    let mut engine = Engine::new(rig);
    engine.schedule(40, Event::FailFeed(FeedId::B));
    let trace = engine.run(900);
    assert!(
        trace.trips.is_empty(),
        "capping should prevent every trip: {:?}",
        trace.trips
    );
    assert!(trace.lost_servers.is_empty());
}

/// The priority promise quantified at scale: under the same emergency,
/// high-priority servers outperform low-priority ones by a wide margin.
#[test]
fn priority_gap_under_emergency() {
    let mut config = DataCenterRigConfig::small();
    config.utilization = 1.0;
    config.jitter_std = 0.0;
    config.params.servers_per_rack = 30;
    config.policy = PolicyKind::GlobalPriority;
    let rig = datacenter_rig(&config);
    let mut engine = Engine::new(rig);
    engine.schedule(40, Event::FailFeed(FeedId::B));
    engine.run(300);

    let mut high = (0.0, 0usize);
    let mut low = (0.0, 0usize);
    for (id, info) in engine.topology().servers() {
        let perf = engine
            .server(id)
            .expect("server exists")
            .performance_fraction()
            .as_f64();
        if info.priority() == Priority::HIGH {
            high = (high.0 + perf, high.1 + 1);
        } else {
            low = (low.0 + perf, low.1 + 1);
        }
    }
    let high_avg = high.0 / high.1 as f64;
    let low_avg = low.0 / low.1 as f64;
    assert!(
        high_avg > 0.98,
        "high-priority average performance {high_avg:.3}"
    );
    assert!(
        low_avg < high_avg - 0.05,
        "low priority should carry the capping: low {low_avg:.3} vs high {high_avg:.3}"
    );
}
