//! API-guideline conformance checks (Rust API Guidelines):
//! C-SEND-SYNC (types are Send/Sync where possible), C-GOOD-ERR (error
//! types implement `Error + Send + Sync + 'static`), C-DEBUG (public types
//! implement Debug with non-empty output).

use std::error::Error;

fn assert_send_sync<T: Send + Sync>() {}
fn assert_error<T: Error + Send + Sync + 'static>() {}

#[test]
fn core_types_are_send_and_sync() {
    assert_send_sync::<capmaestro::units::Watts>();
    assert_send_sync::<capmaestro::units::Ratio>();
    assert_send_sync::<capmaestro::units::Energy>();
    assert_send_sync::<capmaestro::topology::Topology>();
    assert_send_sync::<capmaestro::topology::ControlTreeSpec>();
    assert_send_sync::<capmaestro::topology::CircuitBreaker>();
    assert_send_sync::<capmaestro::server::Server>();
    assert_send_sync::<capmaestro::server::PartitionSet>();
    assert_send_sync::<capmaestro::core::ControlTree>();
    assert_send_sync::<capmaestro::core::PriorityMetrics>();
    assert_send_sync::<capmaestro::core::CappingController>();
    assert_send_sync::<capmaestro::core::Allocation>();
    assert_send_sync::<capmaestro::core::ControlPlane>();
    assert_send_sync::<capmaestro::core::Farm>();
    assert_send_sync::<capmaestro::sim::Engine>();
    assert_send_sync::<capmaestro::sim::Trace>();
    assert_send_sync::<capmaestro::sim::CapacityPlanner>();
    assert_send_sync::<capmaestro::sim::JobSchedule>();
    assert_send_sync::<capmaestro::workload::DiscreteDistribution>();
    assert_send_sync::<capmaestro::workload::DiurnalPattern>();
}

#[test]
fn observability_types_are_send_and_sync() {
    use capmaestro::core::obs;
    assert_send_sync::<obs::MetricsRegistry>();
    assert_send_sync::<obs::MetricsSnapshot>();
    assert_send_sync::<obs::NullRecorder>();
    assert_send_sync::<std::sync::Arc<dyn obs::Recorder>>();
    assert_send_sync::<obs::RoundPhase>();
    assert_send_sync::<capmaestro::core::RoundReport>();
    assert_send_sync::<capmaestro::core::PlaneConfig>();
    assert_send_sync::<capmaestro::core::workers::DeploymentConfig>();
}

#[test]
fn serve_types_are_send_and_sync() {
    use capmaestro::serve;
    assert_send_sync::<serve::HttpServer>();
    assert_send_sync::<serve::HttpConfig>();
    assert_send_sync::<serve::ShutdownHandle>();
    assert_send_sync::<serve::Router>();
    assert_send_sync::<serve::ServeState>();
    assert_send_sync::<serve::Request>();
    assert_send_sync::<serve::Response>();
    assert_send_sync::<serve::HttpLimits>();
    assert_send_sync::<serve::HealthSnapshot>();
    assert_send_sync::<std::sync::Arc<dyn serve::Handler>>();
    assert_send_sync::<serve::daemon::DaemonConfig>();
    assert_send_sync::<serve::client::HttpResponse>();
    assert_send_sync::<serve::ApiError>();
    assert_send_sync::<serve::OpRejection>();
}

#[test]
fn oplog_types_are_send_and_sync() {
    use capmaestro::core::oplog;
    assert_send_sync::<oplog::OpLog>();
    assert_send_sync::<oplog::Envelope>();
    assert_send_sync::<oplog::Op>();
    assert_send_sync::<oplog::DesiredState>();
    assert_send_sync::<oplog::AppendOutcome>();
    assert_send_sync::<oplog::RecoveryReport>();
    assert_send_sync::<oplog::ReconcilePlan>();
}

#[test]
fn error_types_are_well_behaved() {
    assert_error::<capmaestro::topology::TopologyError>();
    assert_error::<capmaestro::units::InvalidFractionError>();
    assert_error::<capmaestro::core::obs::ParseError>();
    assert_error::<capmaestro::serve::HttpError>();
    assert_error::<capmaestro::serve::BudgetError>();
    assert_error::<capmaestro::serve::ApiError>();
    assert_error::<capmaestro::serve::OpRejection>();
    assert_error::<capmaestro::core::oplog::OplogError>();
}

#[test]
fn debug_representations_are_never_empty() {
    use capmaestro::units::{Ratio, Watts};
    assert!(!format!("{:?}", Watts::ZERO).is_empty());
    assert!(!format!("{:?}", Ratio::ONE).is_empty());
    assert!(!format!("{:?}", capmaestro::topology::Priority::HIGH).is_empty());
    assert!(!format!("{:?}", capmaestro::core::PriorityMetrics::empty()).is_empty());
    let topo = capmaestro::topology::presets::figure2_feed();
    assert!(!format!("{topo:?}").is_empty());
    let registry = capmaestro::core::obs::MetricsRegistry::new();
    assert!(!format!("{registry:?}").is_empty());
    assert!(!format!("{:?}", registry.snapshot()).is_empty());
    assert!(!format!("{:?}", capmaestro::core::obs::NullRecorder).is_empty());
    assert!(!format!("{:?}", capmaestro::core::obs::RoundPhase::Sense).is_empty());
    assert!(!format!("{:?}", capmaestro::core::PlaneConfig::default()).is_empty());
}

#[test]
fn round_report_debug_is_never_empty_via_public_api() {
    use capmaestro::core::{ControlPlane, ControlTree, Farm, PlaneConfig};
    use capmaestro::server::{Server, ServerConfig};
    use capmaestro::units::{Seconds, Watts};

    let topo = capmaestro::topology::presets::figure2_feed();
    let trees: Vec<ControlTree> = topo
        .control_tree_specs()
        .into_iter()
        .map(ControlTree::new)
        .collect();
    let mut farm = Farm::new();
    for (id, _) in topo.servers() {
        let mut server = Server::new(ServerConfig::paper_default().single_corded());
        server.set_offered_demand(Watts::new(420.0));
        server.settle();
        farm.insert(id, server);
    }
    let mut plane = ControlPlane::new(trees, vec![Watts::new(1240.0)], PlaneConfig::default());
    for _ in 0..8 {
        plane.record_sample(&farm);
        farm.step_all(Seconds::new(1.0));
    }
    let report = plane.round(&mut farm);
    assert!(!format!("{report:?}").is_empty());
}

#[test]
fn display_messages_are_lowercase_without_trailing_punctuation() {
    // C-GOOD-ERR: "lowercase without trailing punctuation".
    let err = capmaestro::units::Ratio::try_new_fraction(2.0).unwrap_err();
    let msg = err.to_string();
    assert!(msg.chars().next().unwrap().is_lowercase());
    assert!(!msg.ends_with('.'));

    let err = capmaestro::core::obs::prometheus::validate("not a metrics page")
        .expect_err("garbage must not validate");
    let msg = err.to_string();
    assert!(msg.chars().next().unwrap().is_lowercase());
    assert!(!msg.ends_with('.'));

    let err = capmaestro::core::obs::json::parse("{").expect_err("truncated json must not parse");
    let msg = err.to_string();
    assert!(msg.chars().next().unwrap().is_lowercase());
    assert!(!msg.ends_with('.'));

    let err = capmaestro::serve::HttpError::bad_request("malformed request line");
    let msg = err.to_string();
    assert!(msg.chars().next().unwrap().is_lowercase());
    assert!(!msg.ends_with('.'));

    let err = capmaestro::serve::BudgetError::NotFinite;
    let msg = err.to_string();
    assert!(msg.chars().next().unwrap().is_lowercase());
    assert!(!msg.ends_with('.'));

    let err = capmaestro::serve::OpRejection::UnknownTree { tree: 9, trees: 1 };
    let msg = err.to_string();
    assert!(msg.chars().next().unwrap().is_lowercase());
    assert!(!msg.ends_with('.'));

    let err = capmaestro::core::oplog::OplogError::KeyTooLong { len: 500 };
    let msg = err.to_string();
    assert!(msg.chars().next().unwrap().is_lowercase());
    assert!(!msg.ends_with('.'));
}
