//! Cross-crate integration tests: the paper's headline results, end to end.

use capmaestro::core::policy::{GlobalPriority, LocalPriority, PolicyKind};
use capmaestro::core::tree::{ControlTree, SupplyInput};
use capmaestro::sim::capacity::{CapacityConfig, CapacityPlanner, Condition};
use capmaestro::sim::engine::{Engine, Trace};
use capmaestro::sim::scenarios::{priority_rig, stranded_rig, RigConfig};
use capmaestro::topology::presets::{figure2_feed, DataCenterParams, RIG_SERVER_NAMES};
use capmaestro::topology::SupplyIndex;
use capmaestro::units::{Ratio, Watts};
use capmaestro::workload::WebServerModel;

const PAPER_INPUT: SupplyInput = SupplyInput {
    demand: Watts::new(430.0),
    cap_min: Watts::new(270.0),
    cap_max: Watts::new(490.0),
    share: Ratio::ONE,
};

/// Table 1, reproduced exactly.
#[test]
fn table1_budgets_match_paper_exactly() {
    let topo = figure2_feed();
    let spec = topo.control_tree_specs().remove(0);
    let tree = ControlTree::with_uniform(spec, PAPER_INPUT);

    let global = tree.allocate(Watts::new(1240.0), &GlobalPriority::new());
    let local = tree.allocate(Watts::new(1240.0), &LocalPriority::new());
    let expectations = [
        ("SA", 430.0, 350.0),
        ("SB", 270.0, 270.0),
        ("SC", 270.0, 310.0),
        ("SD", 270.0, 310.0),
    ];
    for (name, expect_global, expect_local) in expectations {
        let id = topo.server_by_name(name).unwrap();
        let g = global.supply_budget(id, SupplyIndex::FIRST).unwrap();
        let l = local.supply_budget(id, SupplyIndex::FIRST).unwrap();
        assert!(
            g.approx_eq(Watts::new(expect_global), Watts::new(0.5)),
            "{name}: global {g} != {expect_global}"
        );
        assert!(
            l.approx_eq(Watts::new(expect_local), Watts::new(0.5)),
            "{name}: local {l} != {expect_local}"
        );
    }
}

/// §6.2: the closed-loop rig converges to Table 2-like budgets and the
/// Fig. 6a throughput ordering.
#[test]
fn priority_rig_reproduces_fig6a_ordering() {
    let apache = WebServerModel::new(1000.0, 5.0);
    let mut sa_throughput = Vec::new();
    for policy in PolicyKind::ALL {
        let rig = priority_rig(RigConfig::table2().with_policy(policy));
        let sa = rig.server("SA");
        let mut engine = Engine::new(rig);
        engine.run(150);
        let perf = engine.server(sa).unwrap().performance_fraction();
        sa_throughput.push(apache.at_performance(perf).normalized_throughput.as_f64());
    }
    let (none, local, global) = (sa_throughput[0], sa_throughput[1], sa_throughput[2]);
    // Paper: 0.82 < 0.87 < 1.00.
    assert!(none < local && local < global, "{none} / {local} / {global}");
    assert!(global > 0.99, "global priority must not throttle SA: {global}");
    assert!((none - 0.82).abs() < 0.05, "no-priority SA ended at {none}");
    assert!((local - 0.87).abs() < 0.05, "local-priority SA ended at {local}");
}

/// §6.3: SPO recovers roughly the paper's ~67 W for SB.
#[test]
fn stranded_power_rig_reproduces_fig7() {
    let mut sb_power = Vec::new();
    for spo in [false, true] {
        let rig = stranded_rig(RigConfig::table3().with_spo(spo));
        let sb = rig.server("SB");
        let mut engine = Engine::new(rig);
        let trace = engine.run(150);
        sb_power.push(Trace::tail_mean(&trace.server_power[&sb], 20));
    }
    let gain = sb_power[1] - sb_power[0];
    assert!(
        (40.0..100.0).contains(&gain),
        "SPO should recover ~67 W for SB, got {gain:.1} (from {:.1} to {:.1})",
        sb_power[0],
        sb_power[1]
    );
}

/// §6.4 shape at reduced scale: global > local > none in the worst case,
/// and the global worst-case bound matches the analytic prediction
/// N/3 × (0.3·490 + 0.7·270) ≤ contractual per phase.
#[test]
fn capacity_ordering_and_analytic_bound() {
    let config = CapacityConfig {
        dc: DataCenterParams {
            racks: 18,
            transformers_per_feed: 2,
            rpps_per_transformer: 3,
            cdus_per_rpp: 3,
            ..DataCenterParams::default()
        },
        contractual_per_phase: Watts::from_kilowatts(700.0 / 9.0),
        worst_trials: 8,
        typical_reps_per_bin: 1,
        ..CapacityConfig::default()
    };
    let planner = CapacityPlanner::new(config);
    let none = planner.max_deployable(PolicyKind::NoPriority, Condition::WorstCase);
    let local = planner.max_deployable(PolicyKind::LocalPriority, Condition::WorstCase);
    let global = planner.max_deployable(PolicyKind::GlobalPriority, Condition::WorstCase);
    assert!(none < local && local <= global, "{none} / {local} / {global}");

    // Analytic ceiling for global: per-phase mixed minimum power must fit
    // into the contractual phase budget (with a transformer-limit slack).
    let per_phase_budget: f64 = 700_000.0 / 9.0 * 0.95;
    let mixed_min = 0.3 * 490.0 + 0.7 * 270.0;
    let analytic_n = (per_phase_budget / mixed_min * 3.0).floor() as usize;
    assert!(
        global <= analytic_n,
        "global {global} exceeds the analytic ceiling {analytic_n}"
    );
    assert!(
        global >= analytic_n * 8 / 10,
        "global {global} far below the analytic ceiling {analytic_n}"
    );
}

/// The whole §6.2 pipeline respects every breaker at every second.
#[test]
fn no_limit_violated_at_any_second() {
    let rig = priority_rig(RigConfig::table2());
    let mut engine = Engine::new(rig);
    let trace = engine.run(200);
    let top = trace.node_series("Top CB").unwrap();
    let left = trace.node_series("Left CB").unwrap();
    let right = trace.node_series("Right CB").unwrap();
    // Transient tolerance: the node manager settles within 6 s, breakers
    // tolerate 160 % for ≥30 s; steady state must respect the limits.
    for t in 30..top.len() {
        assert!(top[t] <= 1400.0 * 1.02, "top CB exceeded at t={t}: {}", top[t]);
        assert!(left[t] <= 750.0 * 1.02, "left CB exceeded at t={t}: {}", left[t]);
        assert!(right[t] <= 750.0 * 1.02, "right CB exceeded at t={t}: {}", right[t]);
    }
    assert!(trace.trips.is_empty());
}

/// All four rig servers keep at least Pcap_min worth of power under every
/// policy — the "guaranteed minimum performance" promise.
#[test]
fn minimum_power_guaranteed_under_all_policies() {
    for policy in PolicyKind::ALL {
        let rig = priority_rig(RigConfig::table2().with_policy(policy));
        let ids: Vec<_> = RIG_SERVER_NAMES.iter().map(|n| rig.server(n)).collect();
        let mut engine = Engine::new(rig);
        let trace = engine.run(150);
        for id in ids {
            let steady = Trace::tail_mean(&trace.server_power[&id], 20);
            assert!(
                steady >= 265.0,
                "{policy}: server {id} below Pcap_min at {steady:.1} W"
            );
        }
    }
}
