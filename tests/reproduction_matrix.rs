//! The flagship reproduction test: Fig. 9's headline numbers at full
//! Table 4 scale, asserted exactly.
//!
//! These are the values the whole paper argues toward. The typical-case
//! number (6318 for every policy) and the worst-case No Priority (3888)
//! and Global Priority (5832) anchors reproduce exactly; our Local
//! Priority variant lands one rack-step above the paper's (5022 vs 4860),
//! which the assertions bound rather than pin (see EXPERIMENTS.md).

use capmaestro::core::policy::PolicyKind;
use capmaestro::sim::capacity::{CapacityConfig, CapacityPlanner, Condition};

fn planner() -> CapacityPlanner {
    CapacityPlanner::new(CapacityConfig {
        worst_trials: 10,
        typical_reps_per_bin: 1,
        ..CapacityConfig::default()
    })
}

#[test]
fn fig9_worst_case_no_priority_is_3888() {
    let n = planner().max_deployable(PolicyKind::NoPriority, Condition::WorstCase);
    assert_eq!(n, 3888, "paper: 3888");
}

#[test]
fn fig9_worst_case_global_priority_is_5832() {
    let n = planner().max_deployable(PolicyKind::GlobalPriority, Condition::WorstCase);
    assert_eq!(n, 5832, "paper: 5832 (+50% over no capping)");
}

#[test]
fn fig9_worst_case_local_priority_between_anchors() {
    let n = planner().max_deployable(PolicyKind::LocalPriority, Condition::WorstCase);
    assert!(
        (4860..=5184).contains(&n),
        "paper: 4860; ours lands at {n} (one rack step of tolerance)"
    );
}

#[test]
fn fig9_typical_case_is_6318_for_all_policies() {
    let planner = planner();
    for policy in PolicyKind::ALL {
        let n = planner.max_deployable(policy, Condition::Typical);
        assert_eq!(n, 6318, "paper: 6318 for {policy}");
    }
}

#[test]
fn fig10_global_high_priority_stays_uncapped_through_5832() {
    let planner = planner();
    let stats = planner.evaluate(36, PolicyKind::GlobalPriority, Condition::WorstCase);
    assert!(
        stats.cap_ratio_high < 1e-6,
        "high-priority cap ratio at 5832 servers should be zero, got {}",
        stats.cap_ratio_high
    );
    // And all-server cap ratios are identical across policies at this
    // density (total shed power is policy-independent).
    let none = planner.evaluate(36, PolicyKind::NoPriority, Condition::WorstCase);
    assert!((stats.cap_ratio_all - none.cap_ratio_all).abs() < 0.01);
}
