//! Failure-injection integration tests: the redundancy story of §2.1/§6.3.
//!
//! The safety contract: when a feed dies, the surviving feed's breakers see
//! (up to) doubled load; UL 489 gives the control plane a ≥30 s window at
//! 160 % overload, and capping must bring the load back under the limits
//! before any breaker trips.

use capmaestro::core::policy::PolicyKind;
use capmaestro::sim::engine::{Engine, Event, Trace};
use capmaestro::sim::scenarios::{stranded_rig, RigConfig};
use capmaestro::topology::{FeedId, SupplyIndex};
use capmaestro::units::Watts;

fn failover_engine(policy: PolicyKind) -> (Engine, Vec<capmaestro::topology::ServerId>) {
    let rig = stranded_rig(RigConfig::table3().with_policy(policy));
    let ids = ["SA", "SB", "SC", "SD"]
        .iter()
        .map(|n| rig.server(n))
        .collect();
    let mut engine = Engine::new(rig);
    engine.schedule(60, Event::FailFeed(FeedId::B));
    engine.schedule(60, Event::SetRootBudgets(vec![Watts::new(1400.0)]));
    (engine, ids)
}

#[test]
fn feed_failure_is_survived_without_trips() {
    let (mut engine, _) = failover_engine(PolicyKind::GlobalPriority);
    let trace = engine.run(300);
    assert!(
        trace.trips.is_empty(),
        "breakers tripped during failover: {:?}",
        trace.trips
    );
}

#[test]
fn failed_feed_carries_no_load() {
    let (mut engine, ids) = failover_engine(PolicyKind::GlobalPriority);
    let trace = engine.run(300);
    // Every Y-side (feed B) supply of the dual-corded servers reads zero.
    for &id in &ids[2..] {
        let y = &trace.supply_power[&(id, SupplyIndex::SECOND)];
        assert!(y[299] < 0.5, "Y-side supply of {id} still loaded: {}", y[299]);
    }
    // The Y top breaker, if recorded, carries nothing after the failure.
    if let Some(y_top) = trace.node_series_on(FeedId::B, "Y Top CB") {
        assert!(y_top[299] < 1.0, "Y feed still loaded: {}", y_top[299]);
    }
}

#[test]
fn high_priority_server_rides_through_failure() {
    let (mut engine, ids) = failover_engine(PolicyKind::GlobalPriority);
    let trace = engine.run(300);
    let sa = ids[0];
    // SA (X-side, high priority) keeps its full demand (~414 W) before
    // and after the Y-feed failure.
    let before = Trace::tail_mean(&trace.server_power[&sa][..60], 10);
    let after = Trace::tail_mean(&trace.server_power[&sa], 20);
    assert!((before - 414.0).abs() < 8.0, "SA before failure: {before:.1}");
    assert!((after - 414.0).abs() < 8.0, "SA after failure: {after:.1}");
    let perf = engine.server(sa).unwrap().performance_fraction();
    assert!(
        perf.as_f64() > 0.98,
        "high-priority performance dropped to {perf} after failover"
    );
}

#[test]
fn surviving_feed_respects_contractual_budget() {
    let (mut engine, _) = failover_engine(PolicyKind::GlobalPriority);
    let trace = engine.run(300);
    let x_top = trace
        .node_series_on(FeedId::A, "X Top CB")
        .expect("X top CB recorded");
    // Steady state after failover: within the 1400 W contractual budget.
    let steady = Trace::tail_mean(x_top, 30);
    assert!(steady <= 1400.0 * 1.01, "X feed at {steady:.0} W exceeds budget");
    // And the 30 s UL 489 window is respected: by t = 60 + 30 the load is
    // back under the limit.
    for (t, &load) in x_top.iter().enumerate().skip(95) {
        assert!(
            load <= 1400.0 * 1.05,
            "X feed above limit at t={t}: {load:.0} W"
        );
    }
}

#[test]
fn dual_corded_servers_keep_running_through_failure() {
    let (mut engine, ids) = failover_engine(PolicyKind::GlobalPriority);
    let trace = engine.run(300);
    for &id in &ids[2..] {
        let power = &trace.server_power[&id];
        for (t, &p) in power.iter().enumerate() {
            assert!(
                p >= 150.0,
                "server {id} lost power at t={t}: {p:.0} W"
            );
        }
    }
}

#[test]
fn demand_spike_after_failover_stays_capped() {
    let (mut engine, ids) = failover_engine(PolicyKind::GlobalPriority);
    // After the failover settles, every server spikes to maximum demand.
    for &id in &ids {
        engine.schedule(150, Event::SetDemand(id, Watts::new(490.0)));
    }
    let trace = engine.run(400);
    assert!(trace.trips.is_empty(), "trips: {:?}", trace.trips);
    let x_top = trace.node_series_on(FeedId::A, "X Top CB").unwrap();
    let steady = Trace::tail_mean(x_top, 30);
    assert!(
        steady <= 1400.0 * 1.01,
        "X feed at {steady:.0} W exceeds the contractual budget after the spike"
    );
}
