//! # CapMaestro
//!
//! A production-quality Rust reproduction of **"A Scalable Priority-Aware
//! Approach to Managing Data Center Server Power"** (HPCA 2019): a power
//! management architecture for highly-available (N+N redundant) public-cloud
//! data centers that
//!
//! 1. enforces an independent AC power budget on **each power supply** of a
//!    multi-feed server through a single server-level DC cap,
//! 2. allocates budgets across the whole power-distribution hierarchy in a
//!    **globally priority-aware** fashion, and
//! 3. reclaims **stranded power** left by the unequal load split between a
//!    server's supplies.
//!
//! This facade crate re-exports the whole suite; see the sub-crates for
//! focused documentation:
//!
//! - [`units`] — typed electrical/temporal quantities,
//! - [`topology`] — the power-distribution infrastructure substrate,
//! - [`server`] — server power model, PSUs, node manager,
//! - [`workload`] — utilization distributions and web-serving workload model,
//! - [`core`] — the paper's contribution: controllers, policies, SPO,
//!   control plane,
//! - [`sim`] — the time-stepped data-center simulator and the Monte-Carlo
//!   capacity planner,
//! - [`serve`] — the long-running serving mode: the in-tree HTTP
//!   observability endpoint (`/metrics`, `/healthz`, `/report`,
//!   `POST /budget`) and the `capmaestrod` daemon.
//!
//! # Quick start
//!
//! ```
//! use capmaestro::core::policy::GlobalPriority;
//! use capmaestro::core::tree::{ControlTree, SupplyInput};
//! use capmaestro::topology::presets::figure2_feed;
//! use capmaestro::topology::SupplyIndex;
//! use capmaestro::units::{Ratio, Watts};
//!
//! // The Fig. 2 example: four 430 W servers under a 1240 W budget,
//! // one high priority.
//! let topo = figure2_feed();
//! let spec = topo.control_tree_specs().remove(0);
//! let tree = ControlTree::with_uniform(
//!     spec,
//!     SupplyInput {
//!         demand: Watts::new(430.0),
//!         cap_min: Watts::new(270.0),
//!         cap_max: Watts::new(490.0),
//!         share: Ratio::ONE,
//!     },
//! );
//! let alloc = tree.allocate(Watts::new(1240.0), &GlobalPriority::new());
//! // The high-priority server receives its full 430 W demand.
//! let sa = topo.server_by_name("SA").unwrap();
//! assert_eq!(alloc.supply_budget(sa, SupplyIndex::FIRST), Some(Watts::new(430.0)));
//! ```

pub use capmaestro_core as core;
pub use capmaestro_serve as serve;
pub use capmaestro_server as server;
pub use capmaestro_sim as sim;
pub use capmaestro_topology as topology;
pub use capmaestro_units as units;
pub use capmaestro_workload as workload;
