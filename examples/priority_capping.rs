//! Priority-aware capping, end to end, on the distributed control plane.
//!
//! Simulates the paper's §6.2 rig — four web servers behind real breaker
//! limits during a power emergency — twice: once through the synchronous
//! control-plane service, once through the threaded rack-/room-worker
//! deployment, and shows they reach the same steady state.
//!
//! ```text
//! cargo run --example priority_capping
//! ```

use capmaestro::core::plane::Farm;
use capmaestro::core::policy::PolicyKind;
use capmaestro::core::tree::ControlTree;
use capmaestro::core::workers::{shared_farm, DeploymentConfig, WorkerDeployment};
use capmaestro::server::{Server, ServerConfig};
use capmaestro::sim::engine::{Engine, Trace};
use capmaestro::sim::scenarios::{priority_rig, RigConfig};
use capmaestro::topology::presets::RIG_SERVER_NAMES;
use capmaestro::units::Watts;

fn main() {
    // --- Synchronous plane via the simulation engine ---------------------
    let rig = priority_rig(RigConfig::table2());
    let topo = rig.topology.clone();
    let ids: Vec<_> = RIG_SERVER_NAMES.iter().map(|n| rig.server(n)).collect();
    let mut engine = Engine::new(rig);
    let trace = engine.run(150);

    println!("synchronous control plane (global priority, 1240 W budget):");
    for (name, id) in RIG_SERVER_NAMES.iter().zip(&ids) {
        let power = Trace::tail_mean(&trace.server_power[id], 20);
        let perf = engine.server(*id).expect("server").performance_fraction();
        println!("  {name}: {power:.0} W, performance {perf}");
    }

    // --- Distributed rack/room workers -----------------------------------
    let trees: Vec<ControlTree> = topo
        .control_tree_specs()
        .into_iter()
        .map(ControlTree::new)
        .collect();
    let mut farm = Farm::new();
    for (id, _) in topo.servers() {
        let mut server = Server::new(ServerConfig::paper_default().single_corded());
        server.set_offered_demand(Watts::new(420.0));
        server.settle();
        farm.insert(id, server);
    }
    let shared = shared_farm(farm);
    let mut deployment = WorkerDeployment::spawn(
        trees,
        vec![Watts::new(1240.0)],
        PolicyKind::GlobalPriority,
        shared.clone(),
        2, // two rack-worker threads
        DeploymentConfig::default(),
    );
    deployment.run_rounds(15, 8);
    deployment.shutdown();

    println!("\ndistributed rack/room workers (2 threads):");
    let farm = shared.read();
    let mut total = Watts::ZERO;
    for (name, id) in RIG_SERVER_NAMES.iter().zip(&ids) {
        let snap = farm.get(*id).expect("server").sense();
        total += snap.total_ac;
        println!(
            "  {name}: {:.0}, performance {}",
            snap.total_ac,
            farm.get(*id).expect("server").performance_fraction()
        );
    }
    println!("  total: {total:.0} (budget 1240 W)");
}
