//! The trace export end to end: a `TraceRecorder` attached to the
//! Fig. 2 rig produces a Perfetto JSON timeline, validated by the strict
//! in-tree parser — or, with `--check FILE`, validate a trace somebody
//! else produced (the mode ci.sh pipes a live `/v1/trace` download
//! through).
//!
//! ```text
//! cargo run --release --example trace_check              # self-generate + validate
//! cargo run --release --example trace_check -- --check FILE
//! cargo run --release --example trace_check -- --out trace.json
//! ```
//!
//! A trace passes only if it parses under the strict validator (known
//! event kinds, balanced B/E nesting per track, monotonic timestamps,
//! finite counter values), contains slices for all six round phases,
//! and carries at least four distinct counter tracks. Exits nonzero
//! otherwise. `--out` writes the generated trace for loading into
//! `chrome://tracing` or <https://ui.perfetto.dev>.

use std::process::ExitCode;
use std::sync::Arc;

use capmaestro::core::obs::trace::{self, TraceRecorder};
use capmaestro::core::obs::RoundPhase;
use capmaestro::sim::engine::Engine;
use capmaestro::sim::scenarios::{priority_rig, RigConfig};

/// Simulated seconds for the self-generated trace: 20 control rounds at
/// the paper's 8 s period.
const SECONDS: u64 = 160;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag_value = |flag: &str| {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
    };

    let text = if let Some(path) = flag_value("--check") {
        match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("FAIL: read {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        let rig = priority_rig(RigConfig::table2().with_spo(true));
        let recorder = Arc::new(TraceRecorder::new());
        let mut engine = Engine::new(rig);
        engine.plane_mut().set_recorder(recorder.clone());
        engine.run(SECONDS);
        let text = recorder.render(None);
        if let Some(path) = flag_value("--out") {
            if let Err(e) = std::fs::write(path, &text) {
                eprintln!("FAIL: write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("trace written to {path} — load it in chrome://tracing or ui.perfetto.dev");
        }
        text
    };

    let parsed = match trace::parse(&text) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("FAIL: trace does not validate: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "trace: valid ({} events, {} metadata records, {} dropped)",
        parsed.events.len(),
        parsed.meta.len(),
        parsed.dropped
    );

    let mut failures = 0u32;
    for phase in RoundPhase::ALL {
        let count = parsed.slice_count(phase.label());
        if count > 0 {
            println!("phase {}: {count} slices", phase.label());
        } else {
            eprintln!("FAIL: phase {} has no slices", phase.label());
            failures += 1;
        }
    }

    let tracks = parsed.counter_tracks();
    if tracks.len() >= 4 {
        println!("counter tracks: {}", tracks.len());
        for (pid, name) in &tracks {
            println!("  pid {pid}: {name}");
        }
    } else {
        eprintln!(
            "FAIL: expected >= 4 counter tracks, found {}: {tracks:?}",
            tracks.len()
        );
        failures += 1;
    }

    if failures > 0 {
        eprintln!("trace_check: {failures} check(s) failed");
        return ExitCode::FAILURE;
    }
    println!("trace_check: all checks passed");
    ExitCode::SUCCESS
}
