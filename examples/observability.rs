//! The observability layer end to end: a live `MetricsRegistry` attached
//! to the Fig. 2 rig, exported as Prometheus text exposition and as JSON.
//!
//! Runs the paper's Table 2 priority rig (four web servers, 1240 W
//! budget, SPO on) for 160 simulated seconds with a registry recording
//! every control-plane phase, then renders both exporters and validates
//! them: the Prometheus page must parse under the exposition grammar, the
//! JSON must round-trip exactly, and all six round phases (sense,
//! estimate, gather, allocate, spo, enforce) must have been observed.
//!
//! ```text
//! cargo run --release --example observability [-- --check]
//! ```
//!
//! `--check` suppresses the exporter dumps and prints only the verdict —
//! the mode ci.sh gates on. Exits nonzero if any validation fails.

use std::process::ExitCode;
use std::sync::Arc;

use capmaestro::core::obs::{json, prometheus, MetricsRegistry, RoundPhase};
use capmaestro::sim::engine::Engine;
use capmaestro::sim::scenarios::{priority_rig, RigConfig};

/// Simulated seconds to run: 20 control rounds at the paper's 8 s period.
const SECONDS: u64 = 160;

fn main() -> ExitCode {
    let check_only = std::env::args().any(|a| a == "--check");

    let rig = priority_rig(RigConfig::table2().with_spo(true));
    let registry = Arc::new(MetricsRegistry::new());
    let mut engine = Engine::new(rig);
    engine.plane_mut().set_recorder(registry.clone());
    engine.run(SECONDS);

    let snapshot = registry.snapshot();
    let page = prometheus::render(&snapshot);
    let json_text = json::snapshot(&snapshot);

    if !check_only {
        println!("# --- Prometheus text exposition ---------------------------------");
        print!("{page}");
        println!();
        println!("# --- JSON snapshot ----------------------------------------------");
        println!("{json_text}");
    }

    let mut failures = 0u32;

    match prometheus::validate(&page) {
        Ok(samples) => println!("prometheus: valid ({samples} sample lines)"),
        Err(e) => {
            eprintln!("FAIL: prometheus page does not validate: {e}");
            failures += 1;
        }
    }

    match json::parse(&json_text) {
        Ok(parsed) if parsed == snapshot => println!("json: round-trips exactly"),
        Ok(_) => {
            eprintln!("FAIL: json parsed but does not equal the snapshot");
            failures += 1;
        }
        Err(e) => {
            eprintln!("FAIL: json snapshot does not parse: {e}");
            failures += 1;
        }
    }

    for phase in RoundPhase::ALL {
        let count = snapshot
            .histograms
            .iter()
            .find(|h| h.name == phase.metric_name())
            .map(|h| h.count)
            .unwrap_or(0);
        if count > 0 {
            println!("phase {}: {count} observations", phase.label());
        } else {
            eprintln!("FAIL: phase {} was never observed", phase.label());
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("observability example: {failures} check(s) failed");
        return ExitCode::FAILURE;
    }
    println!("observability example: all checks passed");
    ExitCode::SUCCESS
}
