//! Capacity planning: how many servers does priority-aware capping buy?
//!
//! Runs a reduced version of the paper's §6.4 study on the Table 4
//! production data center: for each capping policy, find the largest
//! deployment that keeps the average cap ratio under 1 % — across all
//! servers in normal operation, and across high-priority servers when an
//! entire power feed fails at 100 % load.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```
//! (Use `--release`; the planner allocates thousands of budgets per trial.)

use capmaestro::core::policy::PolicyKind;
use capmaestro::sim::capacity::{CapacityConfig, CapacityPlanner, Condition};

fn main() {
    let config = CapacityConfig {
        worst_trials: 10,
        typical_reps_per_bin: 1,
        ..CapacityConfig::default()
    };
    println!(
        "data center: {} racks, contractual budget {:.0} kW/phase x 95%, 30% high priority\n",
        config.dc.racks,
        config.contractual_per_phase.as_kilowatts()
    );
    let planner = CapacityPlanner::new(config);

    println!("{:<18} {:>14} {:>14}", "policy", "typical case", "worst case");
    for policy in PolicyKind::ALL {
        let typical = planner.max_deployable(policy, Condition::Typical);
        let worst = planner.max_deployable(policy, Condition::WorstCase);
        println!("{:<18} {typical:>14} {worst:>14}", policy.to_string());
    }
    println!();
    println!("paper: typical 6318 for all; worst 3888 / 4860 / 5832.");
    println!("the global policy rides through a feed failure with 50% more");
    println!("servers than a center provisioned without power capping.");
}
