//! Stranded power on redundant feeds, and how CapMaestro reclaims it.
//!
//! Reproduces the paper's §6.3 story: dual-corded servers never split
//! their load exactly the way two independent feeds budget it, so part of
//! one feed's budget is *stranded* — allocated, never drawn. The stranded
//! power optimization (SPO) detects the mismatch and re-budgets the power
//! to a server that actually needs it.
//!
//! ```text
//! cargo run --example stranded_power
//! ```

use capmaestro::core::policy::GlobalPriority;
use capmaestro::core::spo::optimize_stranded_power;
use capmaestro::sim::scenarios::{stranded_rig, RigConfig, STRANDED_RIG_X_SHARES};
use capmaestro::topology::presets::RIG_SERVER_NAMES;
use capmaestro::units::Watts;

fn main() {
    // Build the Fig. 7a rig: X and Y feeds with 700 W budgets each.
    // SA runs on X only, SB on Y only, SC/SD on both with uneven splits.
    let rig = stranded_rig(RigConfig::table3());
    println!("intrinsic X-side load shares: {STRANDED_RIG_X_SHARES:?}\n");

    // Pull the plane's trees apart and run the SPO pipeline directly so
    // both passes are visible.
    let trees = rig.plane.trees().to_vec();
    let mut trees = trees;
    for tree in &mut trees {
        // Seed leaf inputs from the servers' true state (the plane would
        // normally estimate these online).
        let farm = &rig.farm;
        tree.set_inputs_with(|server, supply| {
            let srv = farm.get(server).expect("rig server");
            let model = srv.config().model();
            let shares = srv.bank().effective_shares();
            capmaestro::core::tree::SupplyInput {
                demand: srv.offered_demand(),
                cap_min: model.cap_min(),
                cap_max: model.cap_max(),
                share: shares[supply.index()],
            }
        });
    }
    let budgets = vec![Watts::new(700.0), Watts::new(700.0)];
    let outcome = optimize_stranded_power(&trees, &budgets, &GlobalPriority::new());

    println!("stranded power found in the first pass:");
    for ((server, supply), watts) in &outcome.stranded {
        let name = rig.topology.server(*server).expect("registered").name();
        println!("  {name} {supply}: {watts:.0}");
    }
    println!("  total: {:.0}\n", outcome.total_stranded());

    println!("per-supply budgets before -> after SPO:");
    for name in RIG_SERVER_NAMES {
        let id = rig.topology.server_by_name(name).expect("preset server");
        for (_, _, o) in rig.topology.supply_attachments(id) {
            let before = outcome
                .initial_supply_budget(id, o.supply)
                .unwrap_or(Watts::ZERO);
            let after = outcome
                .final_supply_budget(id, o.supply)
                .unwrap_or(Watts::ZERO);
            println!("  {name} {}: {before:.0} -> {after:.0}", o.supply);
        }
    }
    println!("\nthe freed Y-side watts flow to SB, the throttled Y-only server.");
}
