//! Wiring audit: finding cabling mistakes without tracing cables.
//!
//! One of the paper's open challenges (§7): validating that the physical
//! power topology matches what the management plane believes. This example
//! miswires one cord of the §6.3 rig and lets the active perturbation
//! probe find it — each server is briefly throttled while every metered
//! breaker is watched for a response.
//!
//! ```text
//! cargo run --example wiring_audit
//! ```

use capmaestro::sim::audit::audit_wiring;
use capmaestro::sim::scenarios::{stranded_rig, RigConfig};
use capmaestro::topology::builder::TopologyBuilder;
use capmaestro::topology::{DeviceKind, FeedId, Phase, PowerDevice, Priority, SupplyIndex};
use capmaestro::units::Watts;

fn main() {
    let rig = stranded_rig(RigConfig::table3());
    let declared = rig.topology.clone();
    let mut farm = rig.farm;

    // First: audit the correctly-cabled data center.
    let clean = audit_wiring(&declared, &declared, &mut farm);
    println!(
        "correct cabling: {} servers verified, {} mismatches",
        clean.verified.len(),
        clean.mismatches.len()
    );

    // Now build what the electricians *actually* did: SC's Y-side cord
    // ended up on the left branch breaker instead of the right one.
    let mut b = TopologyBuilder::new();
    let mut lefts = Vec::new();
    let mut rights = Vec::new();
    for feed in [FeedId::A, FeedId::B] {
        let label = if feed == FeedId::A { "X" } else { "Y" };
        let root = b.add_feed(
            feed,
            PowerDevice::new(format!("{label} Top CB"), DeviceKind::Virtual)
                .with_extra_limit(Watts::new(1400.0)),
        );
        lefts.push(
            b.add_node(
                feed,
                root,
                PowerDevice::new(format!("{label} Left CB"), DeviceKind::Virtual)
                    .with_extra_limit(Watts::new(750.0)),
            )
            .expect("root exists"),
        );
        rights.push(
            b.add_node(
                feed,
                root,
                PowerDevice::new(format!("{label} Right CB"), DeviceKind::Virtual)
                    .with_extra_limit(Watts::new(750.0)),
            )
            .expect("root exists"),
        );
    }
    let sa = b.add_server("SA", Priority::HIGH);
    let sb = b.add_server("SB", Priority::LOW);
    let sc = b.add_server("SC", Priority::LOW);
    let sd = b.add_server("SD", Priority::LOW);
    b.attach(sa, SupplyIndex::FIRST, FeedId::A, lefts[0], Phase::L1)
        .expect("valid");
    b.attach(sb, SupplyIndex::FIRST, FeedId::B, lefts[1], Phase::L1)
        .expect("valid");
    b.attach(sc, SupplyIndex::FIRST, FeedId::A, rights[0], Phase::L1)
        .expect("valid");
    // The mistake:
    b.attach(sc, SupplyIndex::SECOND, FeedId::B, lefts[1], Phase::L1)
        .expect("valid");
    b.attach(sd, SupplyIndex::FIRST, FeedId::A, rights[0], Phase::L1)
        .expect("valid");
    b.attach(sd, SupplyIndex::SECOND, FeedId::B, rights[1], Phase::L1)
        .expect("valid");
    let actual = b.build().expect("valid topology");

    let report = audit_wiring(&declared, &actual, &mut farm);
    println!("\nmiswired cabling:");
    for m in &report.mismatches {
        let name = declared.server(m.server).expect("registered").name();
        println!("  {name}:");
        for missing in &m.missing {
            println!("    declared ancestor {missing} did NOT respond to the probe");
        }
        for unexpected in &m.unexpected {
            println!("    undeclared meter {unexpected} responded — the cord is there");
        }
    }
    println!(
        "\n{} of 4 servers verified; the probe found the miswired cord without tracing a single cable.",
        report.verified.len()
    );
}
