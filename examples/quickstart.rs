//! Quickstart: cap a small feed with global priorities.
//!
//! Builds the paper's Fig. 2 power feed — a 1400 W breaker over two 750 W
//! branch breakers and four servers, one of them high priority — and asks
//! CapMaestro for budgets under a 1240 W contractual limit.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use capmaestro::core::policy::{CappingPolicy, GlobalPriority, LocalPriority};
use capmaestro::core::tree::{ControlTree, SupplyInput};
use capmaestro::topology::presets::{figure2_feed, RIG_SERVER_NAMES};
use capmaestro::topology::SupplyIndex;
use capmaestro::units::{Ratio, Watts};

fn main() {
    // 1. Describe the physical feed (a preset here; see TopologyBuilder
    //    for building your own).
    let topo = figure2_feed();

    // 2. Mirror it with a control tree and tell each capping controller
    //    what its server wants and can do.
    let spec = topo.control_tree_specs().remove(0);
    let tree = ControlTree::with_uniform(
        spec,
        SupplyInput {
            demand: Watts::new(430.0),  // every server wants 430 W
            cap_min: Watts::new(270.0), // lowest enforceable cap
            cap_max: Watts::new(490.0), // highest useful budget
            share: Ratio::ONE,          // single-corded servers
        },
    );

    // 3. Allocate a 1240 W budget under two policies and compare.
    for policy in [
        &GlobalPriority::new() as &dyn CappingPolicy,
        &LocalPriority::new(),
    ] {
        let alloc = tree.allocate(Watts::new(1240.0), policy);
        println!("{}:", policy.name());
        for name in RIG_SERVER_NAMES {
            let id = topo.server_by_name(name).expect("preset server");
            let budget = alloc
                .supply_budget(id, SupplyIndex::FIRST)
                .expect("allocated");
            let priority = topo.server(id).expect("registered").priority();
            println!("  {name} ({priority}): {budget:.0}");
        }
        println!();
    }
    println!("global priority lets the high-priority server SA take its full demand");
    println!("by borrowing from low-priority servers on the *other* branch breaker.");

    // 4. The designer-facing tooling: lint the topology and export it.
    let warnings = capmaestro::topology::lint(&topo);
    println!("\ntopology lint ({} findings):", warnings.len());
    for w in &warnings {
        println!("  - {w}");
    }
    let dot = capmaestro::topology::dot::to_dot(&topo);
    println!(
        "\nGraphviz export: {} lines (pipe through `dot -Tsvg` to render)",
        dot.lines().count()
    );
}
