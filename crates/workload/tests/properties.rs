//! Property-based tests for distributions, samplers, and schedules.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use capmaestro_units::Seconds;
use capmaestro_workload::distribution::beta_histogram;
use capmaestro_workload::{DiscreteDistribution, NormalSampler, Schedule, WebServerModel};
use capmaestro_units::Ratio;

proptest! {
    /// Quantiles are monotone in the level.
    #[test]
    fn quantile_monotone(
        bins in prop::collection::vec((0.0f64..1.0, 0.01f64..10.0), 1..20),
        q1 in 0.0f64..1.0,
        dq in 0.0f64..1.0,
    ) {
        let d = DiscreteDistribution::new(bins).unwrap();
        let q2 = (q1 + dq).min(1.0);
        prop_assert!(d.quantile(q2) >= d.quantile(q1));
    }

    /// Samples always come from the support.
    #[test]
    fn samples_in_support(
        bins in prop::collection::vec((0.0f64..1.0, 0.01f64..10.0), 1..10),
        seed in 0u64..1000,
    ) {
        let d = DiscreteDistribution::new(bins.clone()).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..50 {
            let v = d.sample(&mut rng);
            prop_assert!(d.values().contains(&v));
        }
    }

    /// Probabilities normalize regardless of input weights.
    #[test]
    fn probabilities_normalize(
        bins in prop::collection::vec((0.0f64..1.0, 0.01f64..100.0), 1..30),
    ) {
        let d = DiscreteDistribution::new(bins).unwrap();
        let total: f64 = d.probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!((d.expect(|_| 1.0) - 1.0).abs() < 1e-9);
    }

    /// Beta histograms have means near α/(α+β) for reasonable shapes.
    #[test]
    fn beta_mean_matches(alpha in 2.0f64..10.0, beta in 2.0f64..30.0) {
        let d = beta_histogram(alpha, beta, 200);
        let analytic = alpha / (alpha + beta);
        prop_assert!(
            (d.mean() - analytic).abs() < 0.02,
            "mean {} vs analytic {analytic}",
            d.mean()
        );
    }

    /// Clamped normal samples always respect the bounds.
    #[test]
    fn clamped_normal_in_bounds(
        mean in -1.0f64..2.0,
        std in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let sampler = NormalSampler::new(mean, std);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..20 {
            let x = sampler.sample_clamped(&mut rng, 0.0, 1.0);
            prop_assert!((0.0..=1.0).contains(&x));
        }
    }

    /// A schedule's value is always one of its configured values, and the
    /// final value wins for large t.
    #[test]
    fn schedule_values_from_configuration(
        initial in 0.0f64..100.0,
        steps in prop::collection::vec(0.0f64..100.0, 0..5),
    ) {
        let mut schedule = Schedule::new(initial);
        let mut values = vec![initial];
        for (i, v) in steps.iter().enumerate() {
            schedule = schedule.then_at(Seconds::new((i as f64 + 1.0) * 10.0), *v);
            values.push(*v);
        }
        for t in [0.0, 5.0, 15.0, 25.0, 35.0, 45.0, 1e6] {
            let v = schedule.value_at(Seconds::new(t));
            prop_assert!(values.contains(&v));
        }
        prop_assert_eq!(schedule.value_at(Seconds::new(1e9)), schedule.final_value());
    }

    /// Web-server throughput scales linearly with performance and latency
    /// inversely; their product is constant.
    #[test]
    fn webserver_throughput_latency_product(perf in 0.05f64..1.0) {
        let m = WebServerModel::new(1000.0, 5.0);
        let p = m.at_performance(Ratio::new(perf));
        let product = p.throughput_qps * p.latency_ms;
        prop_assert!((product - 1000.0 * 5.0).abs() < 1e-6);
    }
}
