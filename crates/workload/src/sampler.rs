//! Seeded Gaussian sampling without external distribution crates.

use rand::{Rng, RngExt};

/// A Box–Muller normal sampler with fixed mean and standard deviation.
///
/// The §6.4 methodology varies "the CPU utilization of each server randomly
/// around the average value using a normal distribution"; this sampler
/// provides that jitter from any seeded [`rand::Rng`].
///
/// # Examples
///
/// ```
/// use capmaestro_workload::NormalSampler;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let sampler = NormalSampler::new(0.3, 0.1);
/// let mut rng = StdRng::seed_from_u64(7);
/// let x = sampler.sample(&mut rng);
/// assert!(x.is_finite());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NormalSampler {
    mean: f64,
    std_dev: f64,
}

impl NormalSampler {
    /// Creates a sampler.
    ///
    /// # Panics
    ///
    /// Panics if `std_dev` is negative or either parameter is not finite.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(mean.is_finite(), "mean must be finite");
        assert!(
            std_dev.is_finite() && std_dev >= 0.0,
            "standard deviation must be finite and non-negative"
        );
        NormalSampler { mean, std_dev }
    }

    /// The mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draws one normal variate via the Box–Muller transform.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.std_dev == 0.0 {
            return self.mean;
        }
        // Box–Muller: u1 ∈ (0, 1] avoids ln(0).
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
        self.mean + self.std_dev * z
    }

    /// Draws one variate clamped into `[lo, hi]` — utilization jitter must
    /// stay a valid fraction.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn sample_clamped<R: Rng + ?Sized>(&self, rng: &mut R, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "invalid clamp range [{lo}, {hi}]");
        self.sample(rng).clamp(lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sample_statistics() {
        let sampler = NormalSampler::new(0.3, 0.1);
        let mut rng = StdRng::seed_from_u64(99);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| sampler.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 0.3).abs() < 0.005, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.005, "std {}", var.sqrt());
    }

    #[test]
    fn zero_std_returns_mean() {
        let sampler = NormalSampler::new(0.42, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(sampler.sample(&mut rng), 0.42);
    }

    #[test]
    fn clamped_sampling_respects_bounds() {
        let sampler = NormalSampler::new(0.0, 5.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = sampler.sample_clamped(&mut rng, 0.0, 1.0);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn deterministic_with_seed() {
        let sampler = NormalSampler::new(0.5, 0.2);
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..10).map(|_| sampler.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..10).map(|_| sampler.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "standard deviation")]
    fn negative_std_rejected() {
        let _ = NormalSampler::new(0.0, -1.0);
    }

    #[test]
    fn accessors() {
        let s = NormalSampler::new(0.25, 0.1);
        assert_eq!(s.mean(), 0.25);
        assert_eq!(s.std_dev(), 0.1);
    }
}
