//! Diurnal (day/night) fleet-utilization patterns.
//!
//! The Fig. 8 distribution describes *how often* the fleet sits at each
//! average utilization; a [`DiurnalPattern`] describes *when*: the classic
//! interactive-service day curve — a sinusoid peaking in the afternoon —
//! plus seeded noise. Long-horizon simulations (`dcsim`, the scheduler
//! study) use it to drive demand through realistic peaks where capping
//! engages and troughs where it idles.

use core::f64::consts::PI;

use capmaestro_units::Ratio;
use rand::Rng;

use crate::sampler::NormalSampler;

/// A sinusoidal day curve with noise:
/// `u(t) = base + amplitude · sin(2π (t − peak_offset + period/4) / period)`
/// clamped to `[0, 1]`, with optional Gaussian noise per sample.
///
/// # Examples
///
/// ```
/// use capmaestro_workload::DiurnalPattern;
///
/// // A service peaking at 15:00 with base 40 % ± 25 %.
/// let day = DiurnalPattern::new(0.4, 0.25, 86_400.0, 15.0 * 3600.0);
/// let peak = day.utilization_at(15.0 * 3600.0);
/// let trough = day.utilization_at(3.0 * 3600.0);
/// assert!(peak.as_f64() > 0.6);
/// assert!(trough.as_f64() < 0.2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiurnalPattern {
    base: f64,
    amplitude: f64,
    period_s: f64,
    peak_at_s: f64,
    noise_std: f64,
}

impl DiurnalPattern {
    /// Creates a noiseless pattern.
    ///
    /// # Panics
    ///
    /// Panics unless `base ∈ [0, 1]`, `amplitude ≥ 0`, and
    /// `period_s > 0`.
    pub fn new(base: f64, amplitude: f64, period_s: f64, peak_at_s: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&base),
            "base utilization must be a fraction, got {base}"
        );
        assert!(amplitude >= 0.0, "amplitude must be non-negative");
        assert!(period_s > 0.0, "period must be positive");
        DiurnalPattern {
            base,
            amplitude,
            period_s,
            peak_at_s,
            noise_std: 0.0,
        }
    }

    /// A typical interactive-service day: base 35 %, ±25 % swing, 24 h
    /// period peaking at 15:00.
    pub fn typical_day() -> Self {
        DiurnalPattern::new(0.35, 0.25, 86_400.0, 15.0 * 3600.0)
    }

    /// Adds Gaussian noise (σ, in utilization units) to sampled values
    /// (builder-style).
    ///
    /// # Panics
    ///
    /// Panics if `std` is negative.
    #[must_use]
    pub fn with_noise(mut self, std: f64) -> Self {
        assert!(std >= 0.0, "noise must be non-negative");
        self.noise_std = std;
        self
    }

    /// The noiseless fleet-average utilization at time `t` (seconds).
    pub fn utilization_at(&self, t_s: f64) -> Ratio {
        let phase = 2.0 * PI * (t_s - self.peak_at_s) / self.period_s;
        let u = self.base + self.amplitude * phase.cos();
        Ratio::new_clamped(u)
    }

    /// A noisy sample at time `t`.
    pub fn sample_at<R: Rng + ?Sized>(&self, t_s: f64, rng: &mut R) -> Ratio {
        let clean = self.utilization_at(t_s).as_f64();
        if self.noise_std == 0.0 {
            return Ratio::new(clean);
        }
        let sampler = NormalSampler::new(clean, self.noise_std);
        Ratio::new(sampler.sample_clamped(rng, 0.0, 1.0))
    }

    /// The highest utilization the pattern reaches.
    pub fn peak(&self) -> Ratio {
        Ratio::new_clamped(self.base + self.amplitude)
    }

    /// The lowest utilization the pattern reaches.
    pub fn trough(&self) -> Ratio {
        Ratio::new_clamped(self.base - self.amplitude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn peak_lands_at_the_configured_hour() {
        let day = DiurnalPattern::typical_day();
        let peak = day.utilization_at(15.0 * 3600.0);
        assert!((peak.as_f64() - 0.6).abs() < 1e-9);
        // Half a period later the pattern bottoms out.
        let trough = day.utilization_at(3.0 * 3600.0);
        assert!((trough.as_f64() - 0.1).abs() < 1e-9);
        assert_eq!(day.peak(), Ratio::new(0.6));
        assert!((day.trough().as_f64() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn periodicity() {
        let day = DiurnalPattern::typical_day();
        for hour in 0..24 {
            let t = hour as f64 * 3600.0;
            let a = day.utilization_at(t);
            let b = day.utilization_at(t + 86_400.0);
            assert!((a.as_f64() - b.as_f64()).abs() < 1e-9);
        }
    }

    #[test]
    fn clamped_to_fractions() {
        let extreme = DiurnalPattern::new(0.8, 0.5, 86_400.0, 0.0);
        for hour in 0..24 {
            let u = extreme.utilization_at(hour as f64 * 3600.0).as_f64();
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn noisy_samples_track_the_curve() {
        let day = DiurnalPattern::typical_day().with_noise(0.03);
        let mut rng = StdRng::seed_from_u64(5);
        let t = 15.0 * 3600.0;
        let mean: f64 =
            (0..2000).map(|_| day.sample_at(t, &mut rng).as_f64()).sum::<f64>() / 2000.0;
        assert!((mean - 0.6).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zero_noise_is_exact() {
        let day = DiurnalPattern::typical_day();
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            day.sample_at(1234.0, &mut rng),
            day.utilization_at(1234.0)
        );
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        let _ = DiurnalPattern::new(0.5, 0.1, 0.0, 0.0);
    }
}
