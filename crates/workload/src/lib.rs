//! Workload substrate for CapMaestro.
//!
//! Three ingredients the paper's evaluation needs:
//!
//! - [`DiscreteDistribution`] and [`google_like_profile`] — the
//!   fleet-average CPU-utilization distribution standing in for the Google
//!   load profile of Fig. 8 (the published figure is a histogram without raw
//!   data; ours matches its qualitative shape and is calibrated so the
//!   typical-case capacity of Fig. 9 lands at the paper's value),
//! - [`NormalSampler`] — seeded Gaussian jitter for per-server utilization
//!   around the fleet average (§6.4 methodology),
//! - [`WebServerModel`] — an Apache-HTTP-Server-like performance model
//!   mapping achieved performance fraction to throughput and latency for
//!   the testbed experiments (Figs. 6a and 7b),
//! - [`Schedule`] — piecewise-constant time schedules for driving budgets
//!   and demands in controller experiments (Fig. 5).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod distribution;
pub mod diurnal;
pub mod sampler;
pub mod trace;
pub mod webserver;

pub use distribution::{google_like_profile, DiscreteDistribution};
pub use diurnal::DiurnalPattern;
pub use sampler::NormalSampler;
pub use trace::Schedule;
pub use webserver::WebServerModel;
