//! Piecewise-constant time schedules for driving experiments.

use capmaestro_units::Seconds;

/// A piecewise-constant schedule: a value that changes at specified times.
///
/// Used to script the controller experiments — e.g. Fig. 5 lowers PS2's
/// budget at t = 30 s and PS1's at t = 110 s.
///
/// # Examples
///
/// ```
/// use capmaestro_workload::Schedule;
/// use capmaestro_units::{Seconds, Watts};
///
/// let budget = Schedule::new(Watts::new(280.0))
///     .then_at(Seconds::new(30.0), Watts::new(200.0));
/// assert_eq!(budget.value_at(Seconds::new(10.0)), Watts::new(280.0));
/// assert_eq!(budget.value_at(Seconds::new(30.0)), Watts::new(200.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule<T> {
    initial: T,
    steps: Vec<(Seconds, T)>,
}

impl<T: Clone> Schedule<T> {
    /// A schedule holding `initial` from t = 0.
    pub fn new(initial: T) -> Self {
        Schedule {
            initial,
            steps: Vec::new(),
        }
    }

    /// Appends a step: from time `at` (inclusive) the schedule yields
    /// `value`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not strictly after the previous step's time.
    #[must_use]
    pub fn then_at(mut self, at: Seconds, value: T) -> Self {
        if let Some((prev, _)) = self.steps.last() {
            assert!(
                at > *prev,
                "schedule steps must be strictly increasing in time"
            );
        }
        self.steps.push((at, value));
        self
    }

    /// The value in effect at time `t`.
    pub fn value_at(&self, t: Seconds) -> T {
        let mut current = &self.initial;
        for (at, value) in &self.steps {
            if t >= *at {
                current = value;
            } else {
                break;
            }
        }
        current.clone()
    }

    /// The times at which the schedule changes.
    pub fn change_points(&self) -> impl Iterator<Item = Seconds> + '_ {
        self.steps.iter().map(|(t, _)| *t)
    }

    /// The final value the schedule settles on.
    pub fn final_value(&self) -> T {
        self.steps
            .last()
            .map(|(_, v)| v.clone())
            .unwrap_or_else(|| self.initial.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capmaestro_units::Watts;

    #[test]
    fn constant_schedule() {
        let s = Schedule::new(5u32);
        assert_eq!(s.value_at(Seconds::ZERO), 5);
        assert_eq!(s.value_at(Seconds::new(1e6)), 5);
        assert_eq!(s.final_value(), 5);
        assert_eq!(s.change_points().count(), 0);
    }

    #[test]
    fn fig5_style_budget_schedule() {
        let budget = Schedule::new(Watts::new(280.0))
            .then_at(Seconds::new(30.0), Watts::new(200.0))
            .then_at(Seconds::new(110.0), Watts::new(150.0));
        assert_eq!(budget.value_at(Seconds::new(0.0)), Watts::new(280.0));
        assert_eq!(budget.value_at(Seconds::new(29.9)), Watts::new(280.0));
        assert_eq!(budget.value_at(Seconds::new(30.0)), Watts::new(200.0));
        assert_eq!(budget.value_at(Seconds::new(109.0)), Watts::new(200.0));
        assert_eq!(budget.value_at(Seconds::new(200.0)), Watts::new(150.0));
        assert_eq!(budget.final_value(), Watts::new(150.0));
        let points: Vec<f64> = budget.change_points().map(|s| s.as_f64()).collect();
        assert_eq!(points, vec![30.0, 110.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_steps_panic() {
        let _ = Schedule::new(0u8)
            .then_at(Seconds::new(10.0), 1)
            .then_at(Seconds::new(5.0), 2);
    }
}
