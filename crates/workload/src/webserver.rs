//! An Apache-HTTP-Server-like performance model.
//!
//! The paper's testbed runs the Apache HTTP Server loaded by `ab` and
//! reports *normalized* throughput (queries/s relative to uncapped) and
//! relative latency changes. Under saturation — which `ab` ensures — served
//! throughput scales with the CPU performance the power cap leaves
//! available, and per-query latency scales inversely with it. That simple
//! model reproduces the paper's numbers: an 18 % throughput loss pairs with
//! a ~21 % latency increase (Fig. 6a's No-Priority row), exactly
//! `1/0.82 − 1`.

use core::fmt;

use capmaestro_units::Ratio;

/// Performance model of a saturated web-serving workload.
///
/// # Examples
///
/// ```
/// use capmaestro_workload::WebServerModel;
/// use capmaestro_units::Ratio;
///
/// let apache = WebServerModel::new(1000.0, 5.0);
/// let capped = apache.at_performance(Ratio::new(0.82));
/// assert!((capped.throughput_qps - 820.0).abs() < 1e-9);
/// assert!((capped.latency_ms - 5.0 / 0.82).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebServerModel {
    peak_qps: f64,
    base_latency_ms: f64,
}

/// Observed workload performance at a given capping level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadPerformance {
    /// Served queries per second.
    pub throughput_qps: f64,
    /// Mean per-query latency in milliseconds.
    pub latency_ms: f64,
    /// Throughput normalized to the uncapped peak.
    pub normalized_throughput: Ratio,
}

impl WebServerModel {
    /// Creates a model from the uncapped peak throughput and base latency.
    ///
    /// # Panics
    ///
    /// Panics unless both parameters are positive and finite.
    pub fn new(peak_qps: f64, base_latency_ms: f64) -> Self {
        assert!(
            peak_qps.is_finite() && peak_qps > 0.0,
            "peak throughput must be positive"
        );
        assert!(
            base_latency_ms.is_finite() && base_latency_ms > 0.0,
            "base latency must be positive"
        );
        WebServerModel {
            peak_qps,
            base_latency_ms,
        }
    }

    /// Uncapped peak throughput (queries per second).
    pub fn peak_qps(&self) -> f64 {
        self.peak_qps
    }

    /// Uncapped mean latency (milliseconds).
    pub fn base_latency_ms(&self) -> f64 {
        self.base_latency_ms
    }

    /// Performance at a given fraction of uncapped CPU performance (the
    /// server's `performance_fraction`, i.e. 1 − throttle).
    ///
    /// A fully-throttled server (`perf = 0`) serves nothing; latency is
    /// reported as infinite.
    pub fn at_performance(&self, perf: Ratio) -> WorkloadPerformance {
        let p = perf.clamp_fraction().as_f64();
        let throughput = self.peak_qps * p;
        let latency = if p > 0.0 {
            self.base_latency_ms / p
        } else {
            f64::INFINITY
        };
        WorkloadPerformance {
            throughput_qps: throughput,
            latency_ms: latency,
            normalized_throughput: Ratio::new(p),
        }
    }

    /// Relative latency increase versus uncapped, as a fraction
    /// (e.g. `0.21` for +21 %). Infinite when fully throttled.
    pub fn latency_increase(&self, perf: Ratio) -> f64 {
        let p = perf.clamp_fraction().as_f64();
        if p > 0.0 {
            1.0 / p - 1.0
        } else {
            f64::INFINITY
        }
    }
}

impl fmt::Display for WebServerModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "web server [{:.0} qps peak, {:.1} ms base latency]",
            self.peak_qps, self.base_latency_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncapped_performance() {
        let m = WebServerModel::new(800.0, 4.0);
        let p = m.at_performance(Ratio::ONE);
        assert_eq!(p.throughput_qps, 800.0);
        assert_eq!(p.latency_ms, 4.0);
        assert_eq!(p.normalized_throughput, Ratio::ONE);
        assert_eq!(m.latency_increase(Ratio::ONE), 0.0);
    }

    #[test]
    fn fig6a_no_priority_numbers() {
        // 18 % lower throughput should pair with ~21 % higher latency,
        // the exact combination Fig. 6a/§6.2 reports for SA.
        let m = WebServerModel::new(1000.0, 5.0);
        let p = m.at_performance(Ratio::new(0.82));
        assert!((p.normalized_throughput.as_f64() - 0.82).abs() < 1e-12);
        let inc = m.latency_increase(Ratio::new(0.82));
        assert!((inc - 0.2195).abs() < 0.001, "latency increase {inc}");
    }

    #[test]
    fn fig6a_local_priority_numbers() {
        // 13 % lower throughput ⇒ ~15 % higher latency.
        let m = WebServerModel::new(1000.0, 5.0);
        let inc = m.latency_increase(Ratio::new(0.87));
        assert!((inc - 0.1494).abs() < 0.001, "latency increase {inc}");
    }

    #[test]
    fn zero_performance_serves_nothing() {
        let m = WebServerModel::new(1000.0, 5.0);
        let p = m.at_performance(Ratio::ZERO);
        assert_eq!(p.throughput_qps, 0.0);
        assert!(p.latency_ms.is_infinite());
        assert!(m.latency_increase(Ratio::ZERO).is_infinite());
    }

    #[test]
    fn performance_clamped() {
        let m = WebServerModel::new(1000.0, 5.0);
        let p = m.at_performance(Ratio::new(1.4));
        assert_eq!(p.throughput_qps, 1000.0);
    }

    #[test]
    #[should_panic(expected = "peak throughput")]
    fn invalid_peak_rejected() {
        let _ = WebServerModel::new(0.0, 5.0);
    }

    #[test]
    fn display() {
        let m = WebServerModel::new(1000.0, 5.0);
        assert_eq!(m.to_string(), "web server [1000 qps peak, 5.0 ms base latency]");
    }
}
