//! Discrete utilization distributions, including the Fig. 8 substitute.

use core::fmt;

use rand::{Rng, RngExt};

/// A discrete probability distribution over utilization values in `[0, 1]`.
///
/// Used to model the distribution of *fleet-average* CPU utilization over
/// time (paper Fig. 8): each Monte-Carlo trial of the capacity planner
/// draws one value from it and jitters individual servers around it.
///
/// # Examples
///
/// ```
/// use capmaestro_workload::DiscreteDistribution;
///
/// let d = DiscreteDistribution::new(vec![(0.2, 1.0), (0.4, 3.0)]).unwrap();
/// assert!((d.mean() - 0.35).abs() < 1e-12);
/// assert!((d.prob_above(0.3) - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteDistribution {
    values: Vec<f64>,
    probs: Vec<f64>,
    cumulative: Vec<f64>,
}

/// Error returned when a distribution specification is invalid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidDistributionError;

impl fmt::Display for InvalidDistributionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "distribution needs at least one bin, finite non-negative weights with a positive sum, and values within [0, 1]"
        )
    }
}

impl std::error::Error for InvalidDistributionError {}

impl DiscreteDistribution {
    /// Creates a distribution from `(value, weight)` bins. Weights are
    /// normalized; bins are sorted by value.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDistributionError`] if no bin exists, any weight is
    /// negative or non-finite, the weights sum to zero, or any value falls
    /// outside `[0, 1]`.
    pub fn new(bins: Vec<(f64, f64)>) -> Result<Self, InvalidDistributionError> {
        if bins.is_empty() {
            return Err(InvalidDistributionError);
        }
        let mut bins = bins;
        bins.sort_by(|a, b| a.0.total_cmp(&b.0));
        let total: f64 = bins.iter().map(|(_, w)| *w).sum();
        if !total.is_finite() || total <= 0.0 {
            return Err(InvalidDistributionError);
        }
        for &(v, w) in &bins {
            if !(0.0..=1.0).contains(&v) || !w.is_finite() || w < 0.0 {
                return Err(InvalidDistributionError);
            }
        }
        let values: Vec<f64> = bins.iter().map(|(v, _)| *v).collect();
        let probs: Vec<f64> = bins.iter().map(|(_, w)| w / total).collect();
        let mut cumulative = Vec::with_capacity(probs.len());
        let mut acc = 0.0;
        for p in &probs {
            acc += p;
            cumulative.push(acc);
        }
        // Guard against floating-point shortfall in the last bin.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Ok(DiscreteDistribution {
            values,
            probs,
            cumulative,
        })
    }

    /// The bin values, ascending.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The normalized bin probabilities, aligned with
    /// [`DiscreteDistribution::values`].
    pub fn probabilities(&self) -> &[f64] {
        &self.probs
    }

    /// The expected value.
    pub fn mean(&self) -> f64 {
        self.values
            .iter()
            .zip(&self.probs)
            .map(|(v, p)| v * p)
            .sum()
    }

    /// The standard deviation.
    pub fn std_dev(&self) -> f64 {
        let m = self.mean();
        let var: f64 = self
            .values
            .iter()
            .zip(&self.probs)
            .map(|(v, p)| (v - m) * (v - m) * p)
            .sum();
        var.sqrt()
    }

    /// Probability mass strictly above `x`.
    pub fn prob_above(&self, x: f64) -> f64 {
        self.values
            .iter()
            .zip(&self.probs)
            .filter(|(v, _)| **v > x)
            .map(|(_, p)| p)
            .sum()
    }

    /// The `q`-quantile (smallest value with CDF ≥ q).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile level must be in [0, 1]");
        let idx = self
            .cumulative
            .iter()
            .position(|&c| c >= q)
            .unwrap_or(self.cumulative.len() - 1);
        self.values[idx]
    }

    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        self.quantile(u)
    }

    /// The expectation of an arbitrary function under the distribution —
    /// handy for computing expected cap ratios analytically instead of by
    /// sampling.
    pub fn expect(&self, mut f: impl FnMut(f64) -> f64) -> f64 {
        self.values
            .iter()
            .zip(&self.probs)
            .map(|(v, p)| f(*v) * p)
            .sum()
    }
}

/// Unnormalized Beta(α, β) density, used to shape synthetic histograms.
fn beta_pdf(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 || x >= 1.0 {
        return 0.0;
    }
    x.powf(a - 1.0) * (1.0 - x).powf(b - 1.0)
}

/// A Beta(α, β)-shaped histogram over `[0, 1]` with `bins` equal-width bins
/// (bin centers at `(i + 0.5)/bins`).
///
/// # Panics
///
/// Panics if `bins == 0` or the shape parameters are not positive.
pub fn beta_histogram(alpha: f64, beta: f64, bins: usize) -> DiscreteDistribution {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(
        alpha > 0.0 && beta > 0.0,
        "beta shape parameters must be positive"
    );
    let step = 1.0 / bins as f64;
    let data: Vec<(f64, f64)> = (0..bins)
        .map(|i| {
            let center = (i as f64 + 0.5) * step;
            (center, beta_pdf(alpha, beta, center))
        })
        .collect();
    DiscreteDistribution::new(data).expect("beta histogram bins are valid")
}

/// The Fig. 8 substitute: a synthetic distribution of fleet-average CPU
/// utilization with the qualitative shape of the Google profile the paper
/// uses (unimodal, mode ≈ 25–30 %, thin tail above 50 %).
///
/// The shape is a Beta(6, 19) histogram (mean 0.24, σ ≈ 0.084) over 40
/// bins. This calibration makes the Fig. 9 typical-case criterion (<1 %
/// average cap ratio) admit exactly the paper's 39-servers-per-rack
/// deployment (6318 servers) and reject 40; see `EXPERIMENTS.md` for the
/// calibration notes.
pub fn google_like_profile() -> DiscreteDistribution {
    beta_histogram(6.0, 19.0, 40)
}

#[cfg(test)]
mod tests {
    use super::*;
    use capmaestro_units::Ratio;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn validates_bins() {
        assert!(DiscreteDistribution::new(vec![]).is_err());
        assert!(DiscreteDistribution::new(vec![(0.5, -1.0)]).is_err());
        assert!(DiscreteDistribution::new(vec![(1.5, 1.0)]).is_err());
        assert!(DiscreteDistribution::new(vec![(0.5, 0.0)]).is_err());
        assert!(DiscreteDistribution::new(vec![(0.5, f64::NAN)]).is_err());
        assert!(DiscreteDistribution::new(vec![(0.5, 1.0)]).is_ok());
    }

    #[test]
    fn normalizes_and_sorts() {
        let d = DiscreteDistribution::new(vec![(0.8, 2.0), (0.2, 2.0)]).unwrap();
        assert_eq!(d.values(), &[0.2, 0.8]);
        assert_eq!(d.probabilities(), &[0.5, 0.5]);
        assert!((d.mean() - 0.5).abs() < 1e-12);
        assert!((d.std_dev() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn quantiles() {
        let d =
            DiscreteDistribution::new(vec![(0.1, 1.0), (0.2, 1.0), (0.3, 2.0)]).unwrap();
        assert_eq!(d.quantile(0.0), 0.1);
        assert_eq!(d.quantile(0.25), 0.1);
        assert_eq!(d.quantile(0.5), 0.2);
        assert_eq!(d.quantile(0.51), 0.3);
        assert_eq!(d.quantile(1.0), 0.3);
    }

    #[test]
    #[should_panic(expected = "quantile level")]
    fn quantile_out_of_range_panics() {
        let d = DiscreteDistribution::new(vec![(0.5, 1.0)]).unwrap();
        let _ = d.quantile(1.5);
    }

    #[test]
    fn sampling_matches_mean() {
        let d = google_like_profile();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| d.sample(&mut rng)).sum();
        let sample_mean = total / n as f64;
        assert!(
            (sample_mean - d.mean()).abs() < 0.01,
            "sample mean {sample_mean} vs analytic {}",
            d.mean()
        );
    }

    #[test]
    fn google_profile_shape() {
        let d = google_like_profile();
        // Mean around 24 %, per Barroso et al.'s "servers mostly run at
        // 10–50 % utilization".
        assert!((d.mean() - 0.24).abs() < 0.02, "mean {}", d.mean());
        // Thin tail: little mass above 50 %, almost none above 70 %.
        assert!(d.prob_above(0.5) < 0.02);
        assert!(d.prob_above(0.7) < 1e-4);
        // But a real tail above 35 % exists (it drives the capping events).
        assert!(d.prob_above(0.35) > 0.03);
    }

    #[test]
    fn expectation_helper() {
        let d = DiscreteDistribution::new(vec![(0.2, 1.0), (0.4, 1.0)]).unwrap();
        let second_moment = d.expect(|v| v * v);
        assert!((second_moment - (0.04 + 0.16) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_conversion_of_samples() {
        let d = google_like_profile();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            // All samples are valid utilization fractions.
            assert!(Ratio::try_new_fraction(v).is_ok());
        }
    }
}
