//! Property-based tests for quantity arithmetic.

use proptest::prelude::*;

use capmaestro_units::{line_current, three_phase_power, Ratio, Watts, PHASE_VOLTAGE_V};

fn finite_watts() -> impl Strategy<Value = f64> {
    -1e9f64..1e9
}

proptest! {
    #[test]
    fn addition_commutes(a in finite_watts(), b in finite_watts()) {
        prop_assert_eq!(Watts::new(a) + Watts::new(b), Watts::new(b) + Watts::new(a));
    }

    #[test]
    fn add_then_subtract_roundtrips(a in finite_watts(), b in finite_watts()) {
        let result = (Watts::new(a) + Watts::new(b)) - Watts::new(b);
        prop_assert!(result.approx_eq(Watts::new(a), Watts::new(1e-3f64.max(a.abs() * 1e-12))));
    }

    #[test]
    fn saturating_sub_never_negative(a in finite_watts(), b in finite_watts()) {
        prop_assert!(Watts::new(a).saturating_sub(Watts::new(b)) >= Watts::ZERO);
    }

    #[test]
    fn clamp_respects_bounds(v in finite_watts(), lo in -1e6f64..1e6, width in 0.0f64..1e6) {
        let hi = lo + width;
        let clamped = Watts::new(v).clamp(Watts::new(lo), Watts::new(hi));
        prop_assert!(clamped >= Watts::new(lo));
        prop_assert!(clamped <= Watts::new(hi));
        if v >= lo && v <= hi {
            prop_assert_eq!(clamped, Watts::new(v));
        }
    }

    #[test]
    fn min_max_are_selections(a in finite_watts(), b in finite_watts()) {
        let (wa, wb) = (Watts::new(a), Watts::new(b));
        let min = wa.min(wb);
        let max = wa.max(wb);
        prop_assert!(min == wa || min == wb);
        prop_assert!(max == wa || max == wb);
        prop_assert!(min <= max);
    }

    #[test]
    fn kilowatt_roundtrip(kw in -1e6f64..1e6) {
        let w = Watts::from_kilowatts(kw);
        prop_assert!((w.as_kilowatts() - kw).abs() < 1e-9 * kw.abs().max(1.0));
    }

    #[test]
    fn ratio_complement_involutes(r in 0.0f64..1.0) {
        let ratio = Ratio::new(r);
        let back = ratio.complement().complement();
        prop_assert!((back.as_f64() - r).abs() < 1e-12);
    }

    #[test]
    fn ratio_fraction_validation_matches_range(r in -2.0f64..3.0) {
        let ok = Ratio::try_new_fraction(r).is_ok();
        prop_assert_eq!(ok, (0.0..=1.0).contains(&r));
    }

    #[test]
    fn clamped_ratio_is_fraction(r in -10.0f64..10.0) {
        let c = Ratio::new_clamped(r);
        prop_assert!(c >= Ratio::ZERO && c <= Ratio::ONE);
    }

    #[test]
    fn scaling_watts_by_fraction_shrinks(w in 0.0f64..1e6, r in 0.0f64..1.0) {
        let scaled = Watts::new(w) * Ratio::new(r);
        prop_assert!(scaled >= Watts::ZERO);
        prop_assert!(scaled <= Watts::new(w));
    }

    #[test]
    fn three_phase_roundtrip(w in 1.0f64..1e6) {
        let i = line_current(Watts::new(w), PHASE_VOLTAGE_V);
        let back = three_phase_power(i, PHASE_VOLTAGE_V);
        prop_assert!(back.approx_eq(Watts::new(w), Watts::new(1e-6 * w)));
    }

    #[test]
    fn sum_matches_fold(values in prop::collection::vec(0.0f64..1e5, 0..20)) {
        let sum: Watts = values.iter().map(|&v| Watts::new(v)).sum();
        let fold = values.iter().fold(0.0, |acc, v| acc + v);
        prop_assert!((sum.as_f64() - fold).abs() < 1e-6);
    }
}
