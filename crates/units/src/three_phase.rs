//! Three-phase power conversions.
//!
//! Data-center breakers are rated in amperes per phase while the power
//! managers in this suite budget in watts, so topology construction needs to
//! convert between the two. The paper's infrastructure (§2.1) distributes
//! three-phase 400 V line-to-line power, i.e. 230 V line-to-neutral, and a
//! "30 A three-phase breaker loaded to 24 A per phase" is the worked example
//! for the 80 % derating rule.

use crate::{Amperes, Volts, Watts};

/// The line-to-neutral (phase) voltage used throughout the paper's
/// infrastructure: 230 V.
pub const PHASE_VOLTAGE_V: Volts = Volts::new(230.0);

/// Converts a per-phase current rating into the equivalent per-phase power
/// at the given phase voltage (unity power factor).
///
/// ```
/// use capmaestro_units::{line_current, three_phase_power, PHASE_VOLTAGE_V, Amperes};
///
/// // A 30 A phase at 230 V carries 6.9 kW — the CDU rating in Table 4.
/// let p = three_phase_power(Amperes::new(30.0), PHASE_VOLTAGE_V);
/// assert!((p.as_kilowatts() - 6.9).abs() < 1e-9);
/// ```
pub fn three_phase_power(phase_current: Amperes, phase_voltage: Volts) -> Watts {
    Watts::new(phase_current.as_f64() * phase_voltage.as_f64())
}

/// Converts a per-phase power into the line current drawn at the given phase
/// voltage (unity power factor). Inverse of [`three_phase_power`].
pub fn line_current(phase_power: Watts, phase_voltage: Volts) -> Amperes {
    Amperes::new(phase_power.as_f64() / phase_voltage.as_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdu_rating_matches_table4() {
        // Table 4: CDUs rated at 6.9 kW each (per phase), i.e. a 30 A breaker.
        let p = three_phase_power(Amperes::new(30.0), PHASE_VOLTAGE_V);
        assert!((p.as_kilowatts() - 6.9).abs() < 1e-9);
    }

    #[test]
    fn roundtrip_power_current() {
        let i = Amperes::new(24.0);
        let p = three_phase_power(i, PHASE_VOLTAGE_V);
        let back = line_current(p, PHASE_VOLTAGE_V);
        assert!((back.as_f64() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn phase_voltage_constant() {
        assert_eq!(PHASE_VOLTAGE_V.as_f64(), 230.0);
    }
}
