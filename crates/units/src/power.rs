//! The [`Watts`] power quantity.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::quantities::Ratio;

/// Electrical power in watts.
///
/// `Watts` is the workhorse quantity of the suite: breaker ratings, power
/// budgets, demands, and measurements are all expressed in watts. The type
/// supports addition/subtraction with itself, scaling by [`Ratio`] or `f64`,
/// and division by another `Watts` (yielding a dimensionless `f64`).
///
/// Values may be negative in intermediate arithmetic (e.g. a controller
/// error term); use [`Watts::clamp_non_negative`] where a physical power is
/// required.
///
/// # Examples
///
/// ```
/// use capmaestro_units::Watts;
///
/// let demand = Watts::new(430.0);
/// let budget = Watts::new(350.0);
/// let shortfall = demand - budget;
/// assert_eq!(shortfall, Watts::new(80.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Watts(f64);

impl Watts {
    /// Zero watts.
    pub const ZERO: Watts = Watts(0.0);

    /// Creates a power value from watts.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `w` is NaN. Power arithmetic is expected
    /// to stay finite; a NaN here indicates a logic error upstream.
    #[inline]
    pub const fn new(w: f64) -> Self {
        debug_assert!(!w.is_nan(), "Watts::new called with NaN");
        Watts(w)
    }

    /// Creates a power value from kilowatts.
    ///
    /// ```
    /// use capmaestro_units::Watts;
    /// assert_eq!(Watts::from_kilowatts(6.9), Watts::new(6_900.0));
    /// ```
    #[inline]
    pub fn from_kilowatts(kw: f64) -> Self {
        Watts::new(kw * 1_000.0)
    }

    /// Returns the value in watts.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Returns the value in kilowatts.
    #[inline]
    pub fn as_kilowatts(self) -> f64 {
        self.0 / 1_000.0
    }

    /// Returns the smaller of two powers.
    #[inline]
    pub fn min(self, other: Watts) -> Watts {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// Returns the larger of two powers.
    #[inline]
    pub fn max(self, other: Watts) -> Watts {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// Clamps the power into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn clamp(self, lo: Watts, hi: Watts) -> Watts {
        assert!(
            lo.0 <= hi.0,
            "Watts::clamp called with lo {lo} > hi {hi}"
        );
        Watts(self.0.clamp(lo.0, hi.0))
    }

    /// Clamps negative values to zero, leaving non-negative values intact.
    ///
    /// ```
    /// use capmaestro_units::Watts;
    /// assert_eq!((Watts::new(10.0) - Watts::new(25.0)).clamp_non_negative(),
    ///            Watts::ZERO);
    /// ```
    #[inline]
    pub fn clamp_non_negative(self) -> Watts {
        if self.0 < 0.0 {
            Watts::ZERO
        } else {
            self
        }
    }

    /// Subtracts, saturating at zero instead of going negative.
    ///
    /// Budget arithmetic frequently needs "whatever is left, but not less
    /// than nothing"; this avoids sprinkling `clamp_non_negative` everywhere.
    #[inline]
    pub fn saturating_sub(self, other: Watts) -> Watts {
        (self - other).clamp_non_negative()
    }

    /// Returns `true` if this power is within `tolerance` of `other`.
    ///
    /// Useful in control-loop settling checks ("within 5 % of the budget").
    #[inline]
    pub fn approx_eq(self, other: Watts, tolerance: Watts) -> bool {
        (self.0 - other.0).abs() <= tolerance.0.abs()
    }

    /// Returns `true` if the value is finite (not infinite, not NaN).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Total ordering following IEEE 754 `totalOrder`, for sorting slices of
    /// measurements.
    #[inline]
    pub fn total_cmp(&self, other: &Watts) -> core::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Watts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(precision) = f.precision() {
            write!(f, "{:.*} W", precision, self.0)
        } else {
            write!(f, "{:.1} W", self.0)
        }
    }
}

impl Add for Watts {
    type Output = Watts;
    #[inline]
    fn add(self, rhs: Watts) -> Watts {
        Watts(self.0 + rhs.0)
    }
}

impl AddAssign for Watts {
    #[inline]
    fn add_assign(&mut self, rhs: Watts) {
        self.0 += rhs.0;
    }
}

impl Sub for Watts {
    type Output = Watts;
    #[inline]
    fn sub(self, rhs: Watts) -> Watts {
        Watts(self.0 - rhs.0)
    }
}

impl SubAssign for Watts {
    #[inline]
    fn sub_assign(&mut self, rhs: Watts) {
        self.0 -= rhs.0;
    }
}

impl Neg for Watts {
    type Output = Watts;
    #[inline]
    fn neg(self) -> Watts {
        Watts(-self.0)
    }
}

impl Mul<f64> for Watts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: f64) -> Watts {
        Watts(self.0 * rhs)
    }
}

impl Mul<Watts> for f64 {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Watts) -> Watts {
        Watts(self * rhs.0)
    }
}

impl Mul<Ratio> for Watts {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Ratio) -> Watts {
        Watts(self.0 * rhs.as_f64())
    }
}

impl Mul<Watts> for Ratio {
    type Output = Watts;
    #[inline]
    fn mul(self, rhs: Watts) -> Watts {
        Watts(self.as_f64() * rhs.0)
    }
}

impl Div<f64> for Watts {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: f64) -> Watts {
        Watts(self.0 / rhs)
    }
}

impl Div<Ratio> for Watts {
    type Output = Watts;
    #[inline]
    fn div(self, rhs: Ratio) -> Watts {
        Watts(self.0 / rhs.as_f64())
    }
}

impl Div<Watts> for Watts {
    /// Dividing power by power yields a dimensionless fraction.
    type Output = f64;
    #[inline]
    fn div(self, rhs: Watts) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Watts {
    fn sum<I: Iterator<Item = Watts>>(iter: I) -> Watts {
        iter.fold(Watts::ZERO, Add::add)
    }
}

impl<'a> Sum<&'a Watts> for Watts {
    fn sum<I: Iterator<Item = &'a Watts>>(iter: I) -> Watts {
        iter.copied().sum()
    }
}

impl From<Watts> for f64 {
    #[inline]
    fn from(w: Watts) -> f64 {
        w.as_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let w = Watts::new(490.0);
        assert_eq!(w.as_f64(), 490.0);
        assert_eq!(w.as_kilowatts(), 0.49);
        assert_eq!(Watts::from_kilowatts(0.49), w);
    }

    #[test]
    fn arithmetic() {
        let a = Watts::new(300.0);
        let b = Watts::new(200.0);
        assert_eq!(a + b, Watts::new(500.0));
        assert_eq!(a - b, Watts::new(100.0));
        assert_eq!(a * 2.0, Watts::new(600.0));
        assert_eq!(2.0 * a, Watts::new(600.0));
        assert_eq!(a / 2.0, Watts::new(150.0));
        assert_eq!(a / b, 1.5);
        assert_eq!(-a, Watts::new(-300.0));
    }

    #[test]
    fn assign_ops() {
        let mut w = Watts::new(100.0);
        w += Watts::new(50.0);
        assert_eq!(w, Watts::new(150.0));
        w -= Watts::new(25.0);
        assert_eq!(w, Watts::new(125.0));
    }

    #[test]
    fn ratio_scaling() {
        let rating = Watts::new(750.0);
        assert_eq!(rating * Ratio::new(0.8), Watts::new(600.0));
        assert_eq!(Watts::new(600.0) / Ratio::new(0.8), Watts::new(750.0));
    }

    #[test]
    fn min_max_clamp() {
        let a = Watts::new(300.0);
        let b = Watts::new(200.0);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
        assert_eq!(
            Watts::new(900.0).clamp(Watts::new(270.0), Watts::new(490.0)),
            Watts::new(490.0)
        );
        assert_eq!(
            Watts::new(100.0).clamp(Watts::new(270.0), Watts::new(490.0)),
            Watts::new(270.0)
        );
    }

    #[test]
    #[should_panic(expected = "clamp")]
    fn clamp_inverted_bounds_panics() {
        let _ = Watts::new(1.0).clamp(Watts::new(2.0), Watts::new(1.0));
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        assert_eq!(
            Watts::new(100.0).saturating_sub(Watts::new(130.0)),
            Watts::ZERO
        );
        assert_eq!(
            Watts::new(130.0).saturating_sub(Watts::new(100.0)),
            Watts::new(30.0)
        );
    }

    #[test]
    fn approx_eq_tolerance() {
        let budget = Watts::new(200.0);
        assert!(Watts::new(195.0).approx_eq(budget, Watts::new(10.0)));
        assert!(!Watts::new(185.0).approx_eq(budget, Watts::new(10.0)));
    }

    #[test]
    fn sum_over_iterator() {
        let loads = [Watts::new(100.0), Watts::new(250.5), Watts::new(49.5)];
        let total: Watts = loads.iter().sum();
        assert_eq!(total, Watts::new(400.0));
        let total2: Watts = loads.into_iter().sum();
        assert_eq!(total2, Watts::new(400.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Watts::new(419.25)), "419.2 W");
        assert_eq!(format!("{:.0}", Watts::new(419.25)), "419 W");
    }

    #[test]
    fn total_cmp_sorts_mixed_values() {
        let mut v = [Watts::new(3.0), Watts::new(-1.0), Watts::new(2.0)];
        v.sort_by(Watts::total_cmp);
        assert_eq!(v, [Watts::new(-1.0), Watts::new(2.0), Watts::new(3.0)]);
    }
}
