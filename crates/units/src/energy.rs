//! The [`Energy`] quantity: power integrated over time.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Sub};

use crate::power::Watts;
use crate::quantities::Seconds;

/// Electrical energy in joules (watt-seconds).
///
/// Produced by integrating [`Watts`] over [`Seconds`]; consumed by energy
/// accounting (the §7 discussion's provider/user energy-saving story needs
/// per-server metering, which the simulation engine provides in this
/// unit).
///
/// # Examples
///
/// ```
/// use capmaestro_units::{Energy, Seconds, Watts};
///
/// let e = Watts::new(400.0) * Seconds::new(3600.0);
/// assert_eq!(e, Energy::from_watt_hours(400.0));
/// assert_eq!(e.as_kilowatt_hours(), 0.4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy value from joules.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `j` is NaN.
    #[inline]
    pub const fn new(j: f64) -> Self {
        debug_assert!(!j.is_nan(), "Energy::new called with NaN");
        Energy(j)
    }

    /// Creates an energy value from watt-hours.
    #[inline]
    pub fn from_watt_hours(wh: f64) -> Self {
        Energy::new(wh * 3600.0)
    }

    /// Creates an energy value from kilowatt-hours.
    #[inline]
    pub fn from_kilowatt_hours(kwh: f64) -> Self {
        Energy::new(kwh * 3.6e6)
    }

    /// The value in joules.
    #[inline]
    pub fn as_joules(self) -> f64 {
        self.0
    }

    /// The value in watt-hours.
    #[inline]
    pub fn as_watt_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// The value in kilowatt-hours.
    #[inline]
    pub fn as_kilowatt_hours(self) -> f64 {
        self.0 / 3.6e6
    }

    /// Mean power over a duration.
    ///
    /// # Panics
    ///
    /// Panics if `over` is zero.
    pub fn mean_power(self, over: Seconds) -> Watts {
        assert!(
            over.as_f64() > 0.0,
            "mean power over a zero duration is undefined"
        );
        Watts::new(self.0 / over.as_f64())
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let wh = self.as_watt_hours();
        if wh.abs() >= 1000.0 {
            write!(f, "{:.2} kWh", wh / 1000.0)
        } else {
            write!(f, "{wh:.1} Wh")
        }
    }
}

impl core::ops::Mul<Seconds> for Watts {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Seconds) -> Energy {
        Energy::new(self.as_f64() * rhs.as_f64())
    }
}

impl Add for Energy {
    type Output = Energy;
    #[inline]
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}

impl AddAssign for Energy {
    #[inline]
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}

impl Sub for Energy {
    type Output = Energy;
    #[inline]
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}

impl Div<Energy> for Energy {
    /// Dividing energy by energy yields a dimensionless fraction.
    type Output = f64;
    #[inline]
    fn div(self, rhs: Energy) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let e = Energy::from_watt_hours(1.0);
        assert_eq!(e.as_joules(), 3600.0);
        assert_eq!(e.as_watt_hours(), 1.0);
        assert_eq!(Energy::from_kilowatt_hours(1.0).as_watt_hours(), 1000.0);
    }

    #[test]
    fn power_times_time() {
        let e = Watts::new(250.0) * Seconds::new(60.0);
        assert_eq!(e.as_joules(), 15_000.0);
    }

    #[test]
    fn mean_power_roundtrip() {
        let e = Watts::new(420.0) * Seconds::new(3600.0);
        let p = e.mean_power(Seconds::new(3600.0));
        assert!(p.approx_eq(Watts::new(420.0), Watts::new(1e-9)));
    }

    #[test]
    #[should_panic(expected = "zero duration")]
    fn mean_power_zero_duration_panics() {
        let _ = Energy::new(1.0).mean_power(Seconds::ZERO);
    }

    #[test]
    fn arithmetic_and_sum() {
        let mut e = Energy::new(100.0);
        e += Energy::new(50.0);
        assert_eq!(e, Energy::new(150.0));
        assert_eq!(e - Energy::new(50.0), Energy::new(100.0));
        assert_eq!(Energy::new(50.0) / Energy::new(100.0), 0.5);
        let total: Energy = [Energy::new(1.0), Energy::new(2.0)].into_iter().sum();
        assert_eq!(total, Energy::new(3.0));
    }

    #[test]
    fn display_units() {
        assert_eq!(Energy::from_watt_hours(420.0).to_string(), "420.0 Wh");
        assert_eq!(Energy::from_watt_hours(19_100.0).to_string(), "19.10 kWh");
    }
}
