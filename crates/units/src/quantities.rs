//! Secondary quantities: [`Ratio`], [`Seconds`], [`Amperes`], [`Volts`].

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// A dimensionless ratio or fraction (efficiency, derating factor, load
/// split share, throttle level, CPU utilization).
///
/// Most call sites want a value in `[0, 1]`; use [`Ratio::new_clamped`] or
/// [`Ratio::try_new_fraction`] to enforce that. Plain [`Ratio::new`] permits
/// any finite value (e.g. a 1.6 overload ratio on a breaker).
///
/// # Examples
///
/// ```
/// use capmaestro_units::Ratio;
///
/// let efficiency = Ratio::try_new_fraction(0.94).unwrap();
/// let overload = Ratio::new(1.6); // 160 % of rating — fine for Ratio::new
/// assert!(overload.as_f64() > efficiency.as_f64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Ratio(f64);

/// Error returned when a fraction is outside `[0, 1]` or not finite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidFractionError {
    kind: FractionErrorKind,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FractionErrorKind {
    NotFinite,
    OutOfRange,
}

impl fmt::Display for InvalidFractionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            FractionErrorKind::NotFinite => write!(f, "fraction must be finite"),
            FractionErrorKind::OutOfRange => {
                write!(f, "fraction must be within [0, 1]")
            }
        }
    }
}

impl std::error::Error for InvalidFractionError {}

impl Ratio {
    /// The ratio 0.
    pub const ZERO: Ratio = Ratio(0.0);
    /// The ratio 1.
    pub const ONE: Ratio = Ratio(1.0);

    /// Creates a ratio from any finite value.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `r` is NaN.
    #[inline]
    pub const fn new(r: f64) -> Self {
        debug_assert!(!r.is_nan(), "Ratio::new called with NaN");
        Ratio(r)
    }

    /// Creates a ratio clamped into `[0, 1]`.
    #[inline]
    pub fn new_clamped(r: f64) -> Self {
        Ratio(r.clamp(0.0, 1.0))
    }

    /// Creates a ratio, requiring it to be a valid fraction in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFractionError`] if `r` is not finite or outside
    /// `[0, 1]`.
    pub fn try_new_fraction(r: f64) -> Result<Self, InvalidFractionError> {
        if !r.is_finite() {
            return Err(InvalidFractionError {
                kind: FractionErrorKind::NotFinite,
            });
        }
        if !(0.0..=1.0).contains(&r) {
            return Err(InvalidFractionError {
                kind: FractionErrorKind::OutOfRange,
            });
        }
        Ok(Ratio(r))
    }

    /// Creates a ratio from a percentage (e.g. `80.0` → `0.8`).
    #[inline]
    pub fn from_percent(pct: f64) -> Self {
        Ratio::new(pct / 100.0)
    }

    /// Returns the raw value.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Returns the value as a percentage.
    #[inline]
    pub fn as_percent(self) -> f64 {
        self.0 * 100.0
    }

    /// Returns the complement `1 − self`.
    ///
    /// ```
    /// use capmaestro_units::Ratio;
    /// assert_eq!(Ratio::new(0.65).complement(), Ratio::new(0.35));
    /// ```
    #[inline]
    pub fn complement(self) -> Ratio {
        Ratio(1.0 - self.0)
    }

    /// Clamps into `[0, 1]`.
    #[inline]
    pub fn clamp_fraction(self) -> Ratio {
        Ratio(self.0.clamp(0.0, 1.0))
    }

    /// Returns the smaller of two ratios.
    #[inline]
    pub fn min(self, other: Ratio) -> Ratio {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// Returns the larger of two ratios.
    #[inline]
    pub fn max(self, other: Ratio) -> Ratio {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for Ratio {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1}%", self.0 * 100.0)
    }
}

impl Mul for Ratio {
    type Output = Ratio;
    #[inline]
    fn mul(self, rhs: Ratio) -> Ratio {
        Ratio(self.0 * rhs.0)
    }
}

impl Mul<f64> for Ratio {
    type Output = f64;
    #[inline]
    fn mul(self, rhs: f64) -> f64 {
        self.0 * rhs
    }
}

impl Add for Ratio {
    type Output = Ratio;
    #[inline]
    fn add(self, rhs: Ratio) -> Ratio {
        Ratio(self.0 + rhs.0)
    }
}

impl Sub for Ratio {
    type Output = Ratio;
    #[inline]
    fn sub(self, rhs: Ratio) -> Ratio {
        Ratio(self.0 - rhs.0)
    }
}

/// A duration in seconds, as used by control periods and trip curves.
///
/// The suite simulates time at whole-second granularity, but `Seconds`
/// stores `f64` so trip-curve math (e.g. "trips after 42.5 s at 160 %
/// load") stays exact.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Seconds(f64);

impl Seconds {
    /// Zero seconds.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `s` is NaN or negative.
    #[inline]
    pub const fn new(s: f64) -> Self {
        debug_assert!(!s.is_nan(), "Seconds::new called with NaN");
        debug_assert!(s >= 0.0, "Seconds::new called with negative duration");
        Seconds(s)
    }

    /// Returns the value in seconds.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }

    /// Returns the smaller of two durations.
    #[inline]
    pub fn min(self, other: Seconds) -> Seconds {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, other: Seconds) -> Seconds {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} s", self.0)
    }
}

impl Add for Seconds {
    type Output = Seconds;
    #[inline]
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    #[inline]
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    #[inline]
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 - rhs.0)
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    #[inline]
    fn mul(self, rhs: f64) -> Seconds {
        Seconds(self.0 * rhs)
    }
}

impl Div<Seconds> for Seconds {
    type Output = f64;
    #[inline]
    fn div(self, rhs: Seconds) -> f64 {
        self.0 / rhs.0
    }
}

/// Electrical current in amperes (breaker nameplates are current ratings).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Amperes(f64);

impl Amperes {
    /// Creates a current value.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `a` is NaN.
    #[inline]
    pub const fn new(a: f64) -> Self {
        debug_assert!(!a.is_nan(), "Amperes::new called with NaN");
        Amperes(a)
    }

    /// Returns the value in amperes.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Amperes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} A", self.0)
    }
}

/// Electrical potential in volts (distribution voltages: 12.5 kV, 480 V,
/// 400 V line-to-line, 230 V line-to-neutral).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Volts(f64);

impl Volts {
    /// Creates a voltage value.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `v` is NaN.
    #[inline]
    pub const fn new(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "Volts::new called with NaN");
        Volts(v)
    }

    /// Returns the value in volts.
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Volts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} V", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_fraction_validation() {
        assert!(Ratio::try_new_fraction(0.0).is_ok());
        assert!(Ratio::try_new_fraction(1.0).is_ok());
        assert!(Ratio::try_new_fraction(-0.01).is_err());
        assert!(Ratio::try_new_fraction(1.01).is_err());
        assert!(Ratio::try_new_fraction(f64::NAN).is_err());
        assert!(Ratio::try_new_fraction(f64::INFINITY).is_err());
    }

    #[test]
    fn ratio_error_messages() {
        let err = Ratio::try_new_fraction(2.0).unwrap_err();
        assert_eq!(err.to_string(), "fraction must be within [0, 1]");
        let err = Ratio::try_new_fraction(f64::NAN).unwrap_err();
        assert_eq!(err.to_string(), "fraction must be finite");
    }

    #[test]
    fn ratio_percent_roundtrip() {
        let r = Ratio::from_percent(80.0);
        assert_eq!(r.as_f64(), 0.8);
        assert_eq!(r.as_percent(), 80.0);
    }

    #[test]
    fn ratio_complement_and_clamp() {
        assert_eq!(Ratio::new(0.65).complement(), Ratio::new(0.35));
        assert_eq!(Ratio::new(1.7).clamp_fraction(), Ratio::ONE);
        assert_eq!(Ratio::new(-0.2).clamp_fraction(), Ratio::ZERO);
        assert_eq!(Ratio::new_clamped(3.0), Ratio::ONE);
    }

    #[test]
    fn ratio_arithmetic() {
        assert_eq!(Ratio::new(0.5) * Ratio::new(0.5), Ratio::new(0.25));
        assert_eq!(Ratio::new(0.5) * 100.0, 50.0);
        assert_eq!(Ratio::new(0.3) + Ratio::new(0.2), Ratio::new(0.5));
        assert!((Ratio::new(0.3) - Ratio::new(0.2)).as_f64() - 0.1 < 1e-12);
        assert_eq!(Ratio::new(0.4).min(Ratio::new(0.6)), Ratio::new(0.4));
        assert_eq!(Ratio::new(0.4).max(Ratio::new(0.6)), Ratio::new(0.6));
    }

    #[test]
    fn seconds_arithmetic() {
        let period = Seconds::new(8.0);
        assert_eq!(period + Seconds::new(8.0), Seconds::new(16.0));
        assert_eq!(period * 2.0, Seconds::new(16.0));
        assert_eq!(Seconds::new(16.0) / period, 2.0);
        let mut t = Seconds::ZERO;
        t += period;
        assert_eq!(t, period);
        assert_eq!(Seconds::new(3.0).min(Seconds::new(5.0)), Seconds::new(3.0));
        assert_eq!(Seconds::new(3.0).max(Seconds::new(5.0)), Seconds::new(5.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Ratio::new(0.825)), "82.5%");
        assert_eq!(format!("{}", Seconds::new(30.0)), "30.0 s");
        assert_eq!(format!("{}", Amperes::new(24.0)), "24.0 A");
        assert_eq!(format!("{}", Volts::new(230.0)), "230.0 V");
    }
}
