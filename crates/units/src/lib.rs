//! Typed electrical and temporal quantities for the CapMaestro suite.
//!
//! Power-management code juggles many `f64`s with different meanings: AC
//! watts, DC watts, amperes, ratios, seconds. Mixing them up is exactly the
//! kind of bug that trips a breaker in production, so this crate wraps each
//! quantity in a newtype ([`Watts`], [`Amperes`], [`Volts`], [`Ratio`],
//! [`Seconds`]) with checked construction and explicit conversions.
//!
//! All quantities are thin wrappers around `f64`, are `Copy`, and implement
//! the arithmetic operators that make physical sense (adding watts to watts,
//! scaling watts by a ratio) while omitting the ones that do not (there is no
//! `Watts * Watts`).
//!
//! # Examples
//!
//! ```
//! use capmaestro_units::{Watts, Ratio};
//!
//! let rating = Watts::new(6_900.0);
//! let derated = rating * Ratio::new(0.8);
//! assert_eq!(derated, Watts::new(5_520.0));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod energy;
mod power;
mod quantities;
mod three_phase;

pub use energy::Energy;
pub use power::Watts;
pub use quantities::{Amperes, InvalidFractionError, Ratio, Seconds, Volts};
pub use three_phase::{line_current, three_phase_power, PHASE_VOLTAGE_V};
