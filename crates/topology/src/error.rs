//! Error types for topology construction and validation.

use core::fmt;

use crate::device::{FeedId, SupplyIndex};
use crate::graph::NodeId;
use crate::topo::ServerId;

/// Errors raised while building or validating a [`crate::Topology`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TopologyError {
    /// A referenced node does not exist in the feed's graph.
    UnknownNode {
        /// The feed searched.
        feed: FeedId,
        /// The missing node.
        node: NodeId,
    },
    /// A referenced feed does not exist.
    UnknownFeed {
        /// The missing feed.
        feed: FeedId,
    },
    /// A referenced server does not exist.
    UnknownServer {
        /// The missing server.
        server: ServerId,
    },
    /// An outlet was attached beneath a node that already has an outlet.
    OutletNotLeaf {
        /// The node in question.
        node: NodeId,
    },
    /// A server supply was attached twice.
    DuplicateSupply {
        /// The server.
        server: ServerId,
        /// The supply index attached twice.
        supply: SupplyIndex,
    },
    /// A server has no supply attachment at all.
    UnpoweredServer {
        /// The server without any supply.
        server: ServerId,
    },
    /// The graph has no limit anywhere on a root-to-leaf path, so budgets
    /// would be unbounded.
    UnboundedPath {
        /// The feed with the unbounded path.
        feed: FeedId,
        /// The leaf node terminating the unbounded path.
        leaf: NodeId,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode { feed, node } => {
                write!(f, "node {node:?} does not exist in {feed}")
            }
            TopologyError::UnknownFeed { feed } => {
                write!(f, "{feed} does not exist in the topology")
            }
            TopologyError::UnknownServer { server } => {
                write!(f, "server {server:?} does not exist in the topology")
            }
            TopologyError::OutletNotLeaf { node } => {
                write!(f, "node {node:?} carries an outlet and cannot have children")
            }
            TopologyError::DuplicateSupply { server, supply } => {
                write!(f, "supply {supply} of server {server:?} is attached more than once")
            }
            TopologyError::UnpoweredServer { server } => {
                write!(f, "server {server:?} has no power supply attachment")
            }
            TopologyError::UnboundedPath { feed, leaf } => {
                write!(
                    f,
                    "no power limit exists on the path from the root of {feed} to leaf {leaf:?}"
                )
            }
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TopologyError::UnknownFeed { feed: FeedId::B };
        assert_eq!(e.to_string(), "feed B does not exist in the topology");
        let e = TopologyError::UnpoweredServer {
            server: ServerId(7),
        };
        assert!(e.to_string().contains("no power supply"));
        let e = TopologyError::DuplicateSupply {
            server: ServerId(1),
            supply: SupplyIndex::SECOND,
        };
        assert!(e.to_string().contains("PS2"));
    }
}
