//! Graphviz (DOT) export of a power topology.
//!
//! The paper's §7 notes "there are no common tools for expressing the
//! physical power topology"; a renderable export is the least a power
//! manager can offer its operators. [`to_dot`] emits one cluster per feed,
//! labelling every device with its effective limit and every outlet with
//! the server name, supply, and phase.

use std::fmt::Write as _;

use crate::device::DeviceKind;
use crate::topo::Topology;

/// Renders the topology as a Graphviz digraph (`dot -Tsvg` ready).
///
/// # Examples
///
/// ```
/// use capmaestro_topology::presets::figure2_feed;
/// use capmaestro_topology::dot::to_dot;
///
/// let dot = to_dot(&figure2_feed());
/// assert!(dot.starts_with("digraph power_topology"));
/// assert!(dot.contains("Top CB"));
/// assert!(dot.contains("SA"));
/// ```
pub fn to_dot(topo: &Topology) -> String {
    let mut out = String::new();
    out.push_str("digraph power_topology {\n");
    out.push_str("  rankdir=TB;\n  node [shape=box, fontsize=10];\n");
    for graph in topo.feeds() {
        let feed = graph.feed();
        let _ = writeln!(out, "  subgraph cluster_feed{} {{", feed.index());
        let _ = writeln!(out, "    label=\"{feed}\";");
        for node in graph.iter() {
            let device = graph.device(node);
            let id = format!("f{}n{}", feed.index(), node.index());
            let label = match graph.outlet(node) {
                Some(outlet) => {
                    let server = topo
                        .server(outlet.server)
                        .map(|s| s.name().to_string())
                        .unwrap_or_else(|| outlet.server.to_string());
                    format!(
                        "{server} {} ({}, {})",
                        outlet.supply,
                        outlet.phase,
                        topo.server(outlet.server)
                            .map(|s| s.priority().to_string())
                            .unwrap_or_default()
                    )
                }
                None => match device.effective_limit() {
                    Some(limit) => format!("{}\\n{:.0}", device.name(), limit),
                    None => device.name().to_string(),
                },
            };
            let shape = match device.kind() {
                DeviceKind::Outlet => ", shape=ellipse",
                DeviceKind::Transformer => ", shape=house",
                _ => "",
            };
            let _ = writeln!(out, "    {id} [label=\"{label}\"{shape}];");
        }
        for node in graph.iter() {
            for &child in graph.children(node) {
                let _ = writeln!(
                    out,
                    "    f{0}n{1} -> f{0}n{2};",
                    feed.index(),
                    node.index(),
                    child.index()
                );
            }
        }
        out.push_str("  }\n");
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{figure2_feed, figure7a_rig};

    #[test]
    fn fig2_export_structure() {
        let dot = to_dot(&figure2_feed());
        assert!(dot.starts_with("digraph power_topology {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("subgraph cluster_feed0"));
        // 1 root + 2 CBs + 4 outlets = 7 nodes; 6 edges.
        assert_eq!(dot.matches("->").count(), 6);
        for name in ["Top CB", "Left CB", "Right CB", "SA", "SB", "SC", "SD"] {
            assert!(dot.contains(name), "missing {name}");
        }
        // Limits rendered.
        assert!(dot.contains("1400 W"));
        assert!(dot.contains("750 W"));
    }

    #[test]
    fn dual_feed_export_has_two_clusters() {
        let dot = to_dot(&figure7a_rig());
        assert!(dot.contains("cluster_feed0"));
        assert!(dot.contains("cluster_feed1"));
        // SC appears in both feeds (dual-corded).
        assert!(dot.matches("SC PS").count() >= 2);
        // Outlets carry phases and priorities.
        assert!(dot.contains("L1"));
        assert!(dot.contains("P1"));
    }
}
