//! Topology linting: oversubscription and balance diagnostics.
//!
//! [`Topology::validate`] rejects structurally broken topologies; this
//! module reports *suspicious but legal* designs — the judgement calls a
//! data-center designer reviews before energizing anything:
//!
//! - **oversubscription** at each distribution point (children's limits or
//!   worst-case server draw exceeding the parent's limit) — expected under
//!   power capping, but the factor should be deliberate;
//! - **phase imbalance** among a feed's outlets;
//! - **unmetered internal nodes** (no limit anywhere on a device that has
//!   children), which the control tree cannot protect;
//! - **single-corded servers** in an otherwise redundant center, which a
//!   feed failure will black out.

use core::fmt;

use capmaestro_units::Watts;

use crate::device::FeedId;
use crate::graph::NodeId;
use crate::topo::{ServerId, Topology};

/// One finding from [`lint`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LintWarning {
    /// A node's children can jointly demand more than its own limit.
    Oversubscribed {
        /// The feed.
        feed: FeedId,
        /// The constrained node.
        node: NodeId,
        /// Device name.
        name: String,
        /// The node's effective limit.
        limit: Watts,
        /// Sum of the children's effective limits (or their subtree sums
        /// where unlimited).
        downstream: Watts,
    },
    /// A feed's outlets are unevenly spread across phases.
    PhaseImbalance {
        /// The feed.
        feed: FeedId,
        /// Outlets per phase (L1, L2, L3).
        counts: [usize; 3],
    },
    /// An internal device carries no limit and has no limited ancestor —
    /// nothing protects it.
    Unprotected {
        /// The feed.
        feed: FeedId,
        /// The unprotected node.
        node: NodeId,
        /// Device name.
        name: String,
    },
    /// A server has exactly one supply while others in the topology have
    /// more — it will go dark if its feed fails.
    SingleCorded {
        /// The server.
        server: ServerId,
        /// Its display name.
        name: String,
    },
}

impl fmt::Display for LintWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintWarning::Oversubscribed {
                feed,
                name,
                limit,
                downstream,
                ..
            } => write!(
                f,
                "{feed}: {name} limited to {limit:.0} but downstream can draw {downstream:.0} ({:.1}x oversubscribed)",
                *downstream / *limit
            ),
            LintWarning::PhaseImbalance { feed, counts } => write!(
                f,
                "{feed}: phases loaded unevenly (L1 {} / L2 {} / L3 {} outlets)",
                counts[0], counts[1], counts[2]
            ),
            LintWarning::Unprotected { feed, name, .. } => {
                write!(f, "{feed}: {name} has no limit and no limited ancestor")
            }
            LintWarning::SingleCorded { name, .. } => write!(
                f,
                "server {name} is single-corded in a redundant topology"
            ),
        }
    }
}

/// Lints a topology, returning all findings (empty = nothing suspicious).
///
/// # Examples
///
/// ```
/// use capmaestro_topology::lint::lint;
/// use capmaestro_topology::presets::figure2_feed;
///
/// let warnings = lint(&figure2_feed());
/// // The Fig. 2 feed is deliberately oversubscribed (750 + 750 > 1400):
/// // that is what power capping is for, and the lint points it out.
/// assert!(warnings.iter().any(|w| w.to_string().contains("oversubscribed")));
/// ```
pub fn lint(topo: &Topology) -> Vec<LintWarning> {
    let mut warnings = Vec::new();

    for graph in topo.feeds() {
        // Downstream capability per node: sum of children's capabilities,
        // where a node's own capability is min(own limit, children sum)
        // and an outlet counts as unlimited (the server model bounds it —
        // topology alone cannot know Pcap_max).
        let n = graph.len();
        let mut capability: Vec<Option<Watts>> = vec![None; n];
        for node in graph.iter().collect::<Vec<_>>().into_iter().rev() {
            let children = graph.children(node);
            let child_sum: Option<Watts> = if children.is_empty() {
                None // outlet or bare leaf: unknown from topology alone
            } else {
                children
                    .iter()
                    .map(|c| capability[c.index()])
                    .try_fold(Watts::ZERO, |acc, c| c.map(|c| acc + c))
            };
            let own = graph.device(node).effective_limit();
            if let (Some(limit), Some(downstream)) = (own, child_sum) {
                if downstream > limit {
                    warnings.push(LintWarning::Oversubscribed {
                        feed: graph.feed(),
                        node,
                        name: graph.device(node).name().to_string(),
                        limit,
                        downstream,
                    });
                }
            }
            capability[node.index()] = match (own, child_sum) {
                (Some(limit), Some(down)) => Some(limit.min(down)),
                (Some(limit), None) => Some(limit),
                (None, down) => down,
            };
        }

        // Unprotected internal nodes: no limit on the node or any ancestor.
        for node in graph.iter() {
            if graph.children(node).is_empty() {
                continue;
            }
            let protected = graph
                .path_to_root(node)
                .iter()
                .any(|&a| graph.device(a).effective_limit().is_some());
            if !protected {
                warnings.push(LintWarning::Unprotected {
                    feed: graph.feed(),
                    node,
                    name: graph.device(node).name().to_string(),
                });
            }
        }

        // Phase balance across the feed's outlets.
        let mut counts = [0usize; 3];
        for (_, outlet) in graph.outlets() {
            counts[outlet.phase.index()] += 1;
        }
        let max = counts.iter().copied().max().unwrap_or(0);
        let min = counts.iter().copied().min().unwrap_or(0);
        if max > 0 && max - min > max / 10 + 1 {
            warnings.push(LintWarning::PhaseImbalance {
                feed: graph.feed(),
                counts,
            });
        }
    }

    // Single-corded servers in a redundant center.
    let max_cords = topo
        .servers()
        .map(|(id, _)| topo.supply_count(id))
        .max()
        .unwrap_or(0);
    if max_cords > 1 {
        for (id, info) in topo.servers() {
            if topo.supply_count(id) == 1 {
                warnings.push(LintWarning::SingleCorded {
                    server: id,
                    name: info.name().to_string(),
                });
            }
        }
    }

    warnings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{figure2_feed, figure7a_rig, table4_datacenter, DataCenterParams};
    use crate::Priority;

    #[test]
    fn figure2_is_clean_except_oversubscription_check() {
        let warnings = lint(&figure2_feed());
        // Left + Right CBs (750 + 750) exceed the top's 1400: flagged.
        assert!(warnings.iter().any(|w| matches!(
            w,
            LintWarning::Oversubscribed { name, .. } if name == "Top CB"
        )));
        // All servers single-corded (uniformly): no single-corded warning.
        assert!(!warnings
            .iter()
            .any(|w| matches!(w, LintWarning::SingleCorded { .. })));
    }

    #[test]
    fn figure7a_flags_the_single_corded_servers() {
        let warnings = lint(&figure7a_rig());
        let singles = warnings
            .iter()
            .filter(|w| matches!(w, LintWarning::SingleCorded { .. }))
            .count();
        // SA and SB have one cord each; SC/SD have two.
        assert_eq!(singles, 2);
    }

    #[test]
    fn table4_oversubscription_factors() {
        let params = DataCenterParams {
            servers_per_rack: 36,
            ..DataCenterParams::default()
        };
        let (topo, _) = table4_datacenter(&params, |_| Priority::LOW);
        let warnings = lint(&topo);
        // RPPs are oversubscribed by their CDUs (9 × 5.52 kW > 41.6 kW)
        // and transformers by their RPPs — by design, since capping
        // protects them. The lint must surface both.
        assert!(warnings.iter().any(|w| matches!(
            w,
            LintWarning::Oversubscribed { name, .. } if name.contains("RPP")
        )));
        assert!(warnings.iter().any(|w| matches!(
            w,
            LintWarning::Oversubscribed { name, .. } if name.contains("TXF")
        )));
        // Round-robin placement balances phases: no imbalance warning.
        assert!(!warnings
            .iter()
            .any(|w| matches!(w, LintWarning::PhaseImbalance { .. })));
    }

    #[test]
    fn phase_imbalance_detected() {
        use crate::builder::TopologyBuilder;
        use crate::{DeviceKind, Phase, PowerDevice, SupplyIndex};
        let mut b = TopologyBuilder::new();
        let root = b.add_feed(
            FeedId::A,
            PowerDevice::new("root", DeviceKind::Virtual)
                .with_extra_limit(Watts::new(10_000.0)),
        );
        // 9 servers all on phase L1.
        for i in 0..9 {
            let s = b.add_server(format!("s{i}"), Priority::LOW);
            b.attach(s, SupplyIndex::FIRST, FeedId::A, root, Phase::L1)
                .unwrap();
        }
        let topo = b.build().unwrap();
        let warnings = lint(&topo);
        assert!(warnings.iter().any(|w| matches!(
            w,
            LintWarning::PhaseImbalance { counts, .. } if counts[0] == 9
        )));
    }

    #[test]
    fn unprotected_node_detected() {
        use crate::builder::TopologyBuilder;
        use crate::{DeviceKind, Phase, PowerDevice, SupplyIndex};
        let mut b = TopologyBuilder::new();
        let root = b.add_feed(FeedId::A, PowerDevice::new("root", DeviceKind::UtilityFeed));
        let mid = b
            .add_node(FeedId::A, root, PowerDevice::new("bare", DeviceKind::Rpp))
            .unwrap();
        let limited = b
            .add_node(
                FeedId::A,
                mid,
                PowerDevice::new("cdu", DeviceKind::Cdu)
                    .with_extra_limit(Watts::new(5_000.0)),
            )
            .unwrap();
        let s = b.add_server("s", Priority::LOW);
        b.attach(s, SupplyIndex::FIRST, FeedId::A, limited, Phase::L1)
            .unwrap();
        let topo = b.build().unwrap();
        let warnings = lint(&topo);
        // Both `root` and `bare` have children but no limit above them.
        let unprotected = warnings
            .iter()
            .filter(|w| matches!(w, LintWarning::Unprotected { .. }))
            .count();
        assert_eq!(unprotected, 2);
    }

    #[test]
    fn warnings_display_cleanly() {
        for w in lint(&figure7a_rig()) {
            let s = w.to_string();
            assert!(!s.is_empty());
        }
    }
}
