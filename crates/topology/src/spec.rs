//! Control-tree specifications: the bridge from physical topology to the
//! controller hierarchy.
//!
//! A [`ControlTreeSpec`] is a flattened, pruned view of one feed's power
//! graph restricted to one phase. The `capmaestro-core` crate instantiates
//! one shifting controller per internal spec node and one capping-controller
//! binding per leaf (paper §4.1).

use core::fmt;

use capmaestro_units::Watts;

use crate::device::{FeedId, Phase, SupplyIndex};
use crate::topo::{Priority, ServerId};

/// The server power supply governed by a leaf of the control tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpecLeaf {
    /// The server.
    pub server: ServerId,
    /// Which of its supplies hangs on this feed/phase.
    pub supply: SupplyIndex,
    /// The server's priority level.
    pub priority: Priority,
}

/// One node of a control-tree specification.
#[derive(Debug, Clone, PartialEq)]
pub struct SpecNode {
    /// Display name (copied from the power device).
    pub name: String,
    /// The shifting controller's power limit (`P_limit`), if constrained.
    pub limit: Option<Watts>,
    /// Parent index within the spec, `None` for the root.
    pub parent: Option<usize>,
    /// Child indices within the spec.
    pub children: Vec<usize>,
    /// Set when this node is a leaf governing a server power supply.
    pub leaf: Option<SpecLeaf>,
}

impl SpecNode {
    /// Whether this node is a leaf (governs a supply).
    pub fn is_leaf(&self) -> bool {
        self.leaf.is_some()
    }
}

/// A flattened control tree for one (feed, phase) pair.
///
/// Nodes are stored in topological order (parents before children); index 0
/// is the root. Construction happens via
/// [`crate::Topology::control_tree_specs`] or manually with
/// [`ControlTreeSpec::push_node`] for synthetic tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlTreeSpec {
    feed: FeedId,
    phase: Phase,
    nodes: Vec<SpecNode>,
}

impl ControlTreeSpec {
    /// Creates an empty spec for a feed/phase.
    pub fn new(feed: FeedId, phase: Phase) -> Self {
        ControlTreeSpec {
            feed,
            phase,
            nodes: Vec::new(),
        }
    }

    /// The feed this tree protects.
    pub fn feed(&self) -> FeedId {
        self.feed
    }

    /// The phase this tree protects.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Appends a node, returning its index. The first node pushed becomes
    /// the root.
    ///
    /// # Panics
    ///
    /// Panics if the node references a parent at or after its own index
    /// (specs must be built in topological order), or if a non-root node
    /// has no parent.
    pub fn push_node(&mut self, node: SpecNode) -> usize {
        let idx = self.nodes.len();
        match node.parent {
            Some(p) => assert!(
                p < idx,
                "spec nodes must be pushed in topological order (parent {p} >= index {idx})"
            ),
            None => assert!(
                idx == 0,
                "only the root (index 0) may lack a parent; node {idx} has none"
            ),
        }
        self.nodes.push(node);
        idx
    }

    /// The number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the spec has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root index (always 0 for non-empty specs).
    pub fn root(&self) -> usize {
        0
    }

    /// Borrow a node by index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn node(&self, idx: usize) -> &SpecNode {
        &self.nodes[idx]
    }

    /// Mutably borrow a node by index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn node_mut(&mut self, idx: usize) -> &mut SpecNode {
        &mut self.nodes[idx]
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[SpecNode] {
        &self.nodes
    }

    /// Iterates `(index, leaf)` over all leaves.
    pub fn leaves(&self) -> impl Iterator<Item = (usize, &SpecLeaf)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| n.leaf.as_ref().map(|l| (i, l)))
    }

    /// The distinct priority levels present, sorted descending (the order
    /// the budgeting phase visits them).
    pub fn priority_levels_desc(&self) -> Vec<Priority> {
        let mut levels: Vec<Priority> = self.leaves().map(|(_, l)| l.priority).collect();
        levels.sort_unstable_by(|a, b| b.cmp(a));
        levels.dedup();
        levels
    }
}

impl fmt::Display for ControlTreeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "control tree {} {} ({} nodes, {} leaves)",
            self.feed,
            self.phase,
            self.len(),
            self.leaves().count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(server: u32, priority: u8) -> Option<SpecLeaf> {
        Some(SpecLeaf {
            server: ServerId(server),
            supply: SupplyIndex::FIRST,
            priority: Priority(priority),
        })
    }

    fn sample_spec() -> ControlTreeSpec {
        let mut spec = ControlTreeSpec::new(FeedId::A, Phase::L1);
        let root = spec.push_node(SpecNode {
            name: "root".into(),
            limit: Some(Watts::new(1400.0)),
            parent: None,
            children: vec![],
            leaf: None,
        });
        let l = spec.push_node(SpecNode {
            name: "left".into(),
            limit: Some(Watts::new(750.0)),
            parent: Some(root),
            children: vec![],
            leaf: None,
        });
        spec.node_mut(root).children.push(l);
        for (i, pri) in [(0u32, 1u8), (1, 0)] {
            let n = spec.push_node(SpecNode {
                name: format!("s{i}"),
                limit: None,
                parent: Some(l),
                children: vec![],
                leaf: leaf(i, pri),
            });
            spec.node_mut(l).children.push(n);
        }
        spec
    }

    #[test]
    fn construction_and_queries() {
        let spec = sample_spec();
        assert_eq!(spec.len(), 4);
        assert_eq!(spec.root(), 0);
        assert_eq!(spec.leaves().count(), 2);
        assert!(!spec.node(0).is_leaf());
        assert!(spec.node(2).is_leaf());
        assert_eq!(spec.node(2).parent, Some(1));
        assert_eq!(spec.node(1).children, vec![2, 3]);
    }

    #[test]
    fn priority_levels_sorted_descending() {
        let spec = sample_spec();
        assert_eq!(
            spec.priority_levels_desc(),
            vec![Priority(1), Priority(0)]
        );
    }

    #[test]
    #[should_panic(expected = "topological order")]
    fn forward_parent_reference_panics() {
        let mut spec = ControlTreeSpec::new(FeedId::A, Phase::L1);
        spec.push_node(SpecNode {
            name: "root".into(),
            limit: None,
            parent: None,
            children: vec![],
            leaf: None,
        });
        spec.push_node(SpecNode {
            name: "bad".into(),
            limit: None,
            parent: Some(5),
            children: vec![],
            leaf: None,
        });
    }

    #[test]
    #[should_panic(expected = "only the root")]
    fn second_parentless_node_panics() {
        let mut spec = ControlTreeSpec::new(FeedId::A, Phase::L1);
        spec.push_node(SpecNode {
            name: "root".into(),
            limit: None,
            parent: None,
            children: vec![],
            leaf: None,
        });
        spec.push_node(SpecNode {
            name: "second root".into(),
            limit: None,
            parent: None,
            children: vec![],
            leaf: None,
        });
    }

    #[test]
    fn display() {
        let spec = sample_spec();
        assert_eq!(
            spec.to_string(),
            "control tree feed A L1 (4 nodes, 2 leaves)"
        );
    }
}
