//! The per-feed power-distribution tree.
//!
//! Each redundant feed of the data center is an independent tree of
//! [`PowerDevice`]s rooted at the utility entry point, stored here as an
//! index-based arena ([`PowerGraph`]). Leaves carry [`OutletInfo`] recording
//! which server power supply plugs in, and on which phase.

use core::fmt;

use crate::device::{DeviceKind, FeedId, Phase, PowerDevice, SupplyIndex};
use crate::error::TopologyError;
use crate::topo::ServerId;

/// Identifies a node within one feed's [`PowerGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

/// Records the server power supply plugged into an outlet node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutletInfo {
    /// The server drawing power here.
    pub server: ServerId,
    /// Which of the server's supplies is plugged in.
    pub supply: SupplyIndex,
    /// The phase this outlet taps.
    pub phase: Phase,
}

#[derive(Debug, Clone)]
struct NodeSlot {
    device: PowerDevice,
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    outlet: Option<OutletInfo>,
}

/// One feed's power-distribution tree.
///
/// Nodes are added top-down with [`PowerGraph::add_root`] /
/// [`PowerGraph::add_child`]; outlets are attached to leaf nodes with
/// [`PowerGraph::attach_outlet`]. The graph is append-only — removal is not
/// needed for modelling (equipment failure is simulated by the engine, not
/// by mutating the topology).
///
/// # Examples
///
/// ```
/// use capmaestro_topology::{DeviceKind, PowerDevice, PowerGraph, FeedId};
///
/// let mut g = PowerGraph::new(FeedId::A);
/// let root = g.add_root(PowerDevice::new("utility", DeviceKind::UtilityFeed));
/// let ups = g.add_child(root, PowerDevice::new("UPS-1", DeviceKind::Ups)).unwrap();
/// assert_eq!(g.parent(ups), Some(root));
/// assert_eq!(g.children(root), &[ups]);
/// ```
#[derive(Debug, Clone)]
pub struct PowerGraph {
    feed: FeedId,
    slots: Vec<NodeSlot>,
    root: Option<NodeId>,
}

impl PowerGraph {
    /// Creates an empty graph for the given feed.
    pub fn new(feed: FeedId) -> Self {
        PowerGraph {
            feed,
            slots: Vec::new(),
            root: None,
        }
    }

    /// The feed this graph describes.
    pub fn feed(&self) -> FeedId {
        self.feed
    }

    /// The root node, if the graph is non-empty.
    pub fn root(&self) -> Option<NodeId> {
        self.root
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Adds (or replaces) the root device and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if a root already exists — each feed has exactly one entry
    /// point.
    pub fn add_root(&mut self, device: PowerDevice) -> NodeId {
        assert!(
            self.root.is_none(),
            "feed {} already has a root node",
            self.feed
        );
        let id = NodeId(self.slots.len() as u32);
        self.slots.push(NodeSlot {
            device,
            parent: None,
            children: Vec::new(),
            outlet: None,
        });
        self.root = Some(id);
        id
    }

    /// Adds a device beneath `parent` and returns the new node's id.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] if `parent` does not exist and
    /// [`TopologyError::OutletNotLeaf`] if `parent` already carries an
    /// outlet.
    pub fn add_child(
        &mut self,
        parent: NodeId,
        device: PowerDevice,
    ) -> Result<NodeId, TopologyError> {
        let pslot = self
            .slots
            .get(parent.index())
            .ok_or(TopologyError::UnknownNode {
                feed: self.feed,
                node: parent,
            })?;
        if pslot.outlet.is_some() {
            return Err(TopologyError::OutletNotLeaf { node: parent });
        }
        let id = NodeId(self.slots.len() as u32);
        self.slots.push(NodeSlot {
            device,
            parent: Some(parent),
            children: Vec::new(),
            outlet: None,
        });
        self.slots[parent.index()].children.push(id);
        Ok(id)
    }

    /// Attaches a server power supply to an *existing leaf* node, or creates
    /// an implicit [`DeviceKind::Outlet`] child under an internal node.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownNode`] if `under` does not exist, or
    /// [`TopologyError::OutletNotLeaf`] if `under` already has an outlet.
    pub fn attach_outlet(
        &mut self,
        under: NodeId,
        outlet: OutletInfo,
    ) -> Result<NodeId, TopologyError> {
        let slot = self
            .slots
            .get(under.index())
            .ok_or(TopologyError::UnknownNode {
                feed: self.feed,
                node: under,
            })?;
        if slot.outlet.is_some() {
            return Err(TopologyError::OutletNotLeaf { node: under });
        }
        let name = format!(
            "{}/{}:{}",
            self.slots[under.index()].device.name(),
            outlet.server.index(),
            outlet.supply
        );
        let node = self.add_child(under, PowerDevice::new(name, DeviceKind::Outlet))?;
        self.slots[node.index()].outlet = Some(outlet);
        Ok(node)
    }

    /// The device at a node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range (node ids are only minted by this
    /// graph, so this indicates misuse across graphs).
    pub fn device(&self, node: NodeId) -> &PowerDevice {
        &self.slots[node.index()].device
    }

    /// The parent of `node`, or `None` for the root.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        self.slots[node.index()].parent
    }

    /// The children of `node`.
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.slots[node.index()].children
    }

    /// The outlet at `node`, if it is an outlet leaf.
    pub fn outlet(&self, node: NodeId) -> Option<&OutletInfo> {
        self.slots[node.index()].outlet.as_ref()
    }

    /// Iterates over all node ids in insertion (top-down) order.
    ///
    /// Because children are always inserted after their parents, iterating
    /// in this order is a valid topological order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.slots.len() as u32).map(NodeId)
    }

    /// Iterates over all outlet leaves.
    pub fn outlets(&self) -> impl Iterator<Item = (NodeId, &OutletInfo)> + '_ {
        self.iter()
            .filter_map(|id| self.outlet(id).map(|o| (id, o)))
    }

    /// Walks from `node` up to the root, yielding `node` first.
    pub fn path_to_root(&self, node: NodeId) -> Vec<NodeId> {
        let mut path = vec![node];
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Validates that every root-to-leaf path passes at least one limited
    /// device, so budgets derived from the graph are bounded.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnboundedPath`] naming the offending leaf.
    pub fn validate_bounded(&self) -> Result<(), TopologyError> {
        for (leaf, _) in self.outlets() {
            let bounded = self
                .path_to_root(leaf)
                .iter()
                .any(|&n| self.device(n).effective_limit().is_some());
            if !bounded {
                return Err(TopologyError::UnboundedPath {
                    feed: self.feed,
                    leaf,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::CircuitBreaker;
    use capmaestro_units::Watts;

    fn leaf_outlet(server: u32) -> OutletInfo {
        OutletInfo {
            server: ServerId(server),
            supply: SupplyIndex::FIRST,
            phase: Phase::L1,
        }
    }

    #[test]
    fn build_small_tree() {
        let mut g = PowerGraph::new(FeedId::A);
        let root = g.add_root(
            PowerDevice::new("top", DeviceKind::Virtual)
                .with_extra_limit(Watts::new(1400.0)),
        );
        let left = g
            .add_child(
                root,
                PowerDevice::new("left", DeviceKind::Cdu)
                    .with_breaker(CircuitBreaker::with_default_derating(Watts::new(750.0))),
            )
            .unwrap();
        let outlet = g.attach_outlet(left, leaf_outlet(0)).unwrap();

        assert_eq!(g.len(), 3);
        assert_eq!(g.root(), Some(root));
        assert_eq!(g.parent(left), Some(root));
        assert_eq!(g.parent(outlet), Some(left));
        assert_eq!(g.children(root), &[left]);
        assert_eq!(g.outlet(outlet).unwrap().server, ServerId(0));
        assert_eq!(g.path_to_root(outlet), vec![outlet, left, root]);
        assert!(g.validate_bounded().is_ok());
    }

    #[test]
    fn outlets_iterator_finds_all_leaves() {
        let mut g = PowerGraph::new(FeedId::A);
        let root = g.add_root(PowerDevice::new("top", DeviceKind::Virtual).with_extra_limit(Watts::new(100.0)));
        for i in 0..5 {
            g.attach_outlet(root, leaf_outlet(i)).unwrap();
        }
        assert_eq!(g.outlets().count(), 5);
        let servers: Vec<u32> = g.outlets().map(|(_, o)| o.server.0).collect();
        assert_eq!(servers, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "already has a root")]
    fn double_root_panics() {
        let mut g = PowerGraph::new(FeedId::A);
        g.add_root(PowerDevice::new("a", DeviceKind::Virtual));
        g.add_root(PowerDevice::new("b", DeviceKind::Virtual));
    }

    #[test]
    fn add_child_under_unknown_parent_errors() {
        let mut g = PowerGraph::new(FeedId::B);
        g.add_root(PowerDevice::new("a", DeviceKind::Virtual));
        let err = g
            .add_child(NodeId(42), PowerDevice::new("x", DeviceKind::Cdu))
            .unwrap_err();
        assert_eq!(
            err,
            TopologyError::UnknownNode {
                feed: FeedId::B,
                node: NodeId(42)
            }
        );
    }

    #[test]
    fn outlet_is_terminal() {
        let mut g = PowerGraph::new(FeedId::A);
        let root = g.add_root(PowerDevice::new("a", DeviceKind::Virtual).with_extra_limit(Watts::new(100.0)));
        let outlet = g.attach_outlet(root, leaf_outlet(0)).unwrap();
        let err = g
            .add_child(outlet, PowerDevice::new("x", DeviceKind::Cdu))
            .unwrap_err();
        assert_eq!(err, TopologyError::OutletNotLeaf { node: outlet });
        let err2 = g.attach_outlet(outlet, leaf_outlet(1)).unwrap_err();
        assert_eq!(err2, TopologyError::OutletNotLeaf { node: outlet });
    }

    #[test]
    fn unbounded_path_detected() {
        let mut g = PowerGraph::new(FeedId::A);
        let root = g.add_root(PowerDevice::new("a", DeviceKind::Virtual));
        let leaf = g.attach_outlet(root, leaf_outlet(0)).unwrap();
        assert_eq!(
            g.validate_bounded().unwrap_err(),
            TopologyError::UnboundedPath {
                feed: FeedId::A,
                leaf
            }
        );
    }

    #[test]
    fn iteration_order_is_topological() {
        let mut g = PowerGraph::new(FeedId::A);
        let root = g.add_root(PowerDevice::new("r", DeviceKind::Virtual).with_extra_limit(Watts::new(10.0)));
        let a = g.add_child(root, PowerDevice::new("a", DeviceKind::Rpp)).unwrap();
        let b = g.add_child(root, PowerDevice::new("b", DeviceKind::Rpp)).unwrap();
        let a1 = g.add_child(a, PowerDevice::new("a1", DeviceKind::Cdu)).unwrap();
        for id in g.iter() {
            if let Some(p) = g.parent(id) {
                assert!(p < id, "parent {p} must precede child {id}");
            }
        }
        assert_eq!(g.iter().collect::<Vec<_>>(), vec![root, a, b, a1]);
    }
}
