//! Circuit-breaker model: ratings, derating, and inverse-time trip curves.
//!
//! The paper's safety argument (§2.1) rests on two properties of molded-case
//! circuit breakers:
//!
//! 1. **Derating** — conventional practice (NFPA 70 \[21\]) is to keep the
//!    sustained load at or below 80 % of the breaker's rating.
//! 2. **Trip delay** — breakers covered by UL 489 \[17\] tolerate overload for
//!    an amount of time that shrinks as the overload grows; at 160 % of the
//!    rating they operate for *at least 30 seconds* before tripping. Power
//!    capping must therefore bring a post-failure load back under the limit
//!    within that window.
//!
//! [`TripCurve`] captures the inverse-time characteristic, and
//! [`BreakerSim`] integrates thermal stress over simulated time so failure
//! experiments can check that capping really does win the race against the
//! breaker.

use core::fmt;

use capmaestro_units::{Ratio, Seconds, Watts};

/// Default sustained-load derating factor (80 % of rating, NFPA 70).
pub const DEFAULT_DERATING: Ratio = Ratio::new(0.8);

/// Default overload ratio at which the magnetic (instantaneous) trip fires.
pub const DEFAULT_INSTANTANEOUS_TRIP_RATIO: f64 = 10.0;

/// The minimum time a UL 489 breaker carries a 160 % overload before
/// tripping (paper §2.1).
pub const UL489_160PCT_TRIP_SECONDS: f64 = 30.0;

/// An inverse-time (I²t-style) thermal trip curve.
///
/// The curve is parameterized by a thermal constant `k` such that the trip
/// time at overload ratio `r > 1` is `k / (r² − 1)` seconds, and by an
/// instantaneous-trip threshold above which the breaker opens immediately
/// (the magnetic element). The default constant is calibrated to the UL 489
/// datum the paper uses: 30 s at 160 % load.
///
/// # Examples
///
/// ```
/// use capmaestro_topology::TripCurve;
/// use capmaestro_units::Ratio;
///
/// let curve = TripCurve::ul489();
/// let t = curve.time_to_trip(Ratio::new(1.6)).unwrap();
/// assert!((t.as_f64() - 30.0).abs() < 1e-9);
/// assert!(curve.time_to_trip(Ratio::new(1.0)).is_none()); // never trips at rating
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripCurve {
    thermal_constant: f64,
    instantaneous_ratio: f64,
}

impl TripCurve {
    /// A UL-489-calibrated curve: 30 s at 160 % load, instantaneous trip at
    /// 10× rating.
    pub fn ul489() -> Self {
        // k / (1.6² − 1) = 30  ⇒  k = 30 × 1.56 = 46.8
        let k = UL489_160PCT_TRIP_SECONDS * (1.6 * 1.6 - 1.0);
        TripCurve {
            thermal_constant: k,
            instantaneous_ratio: DEFAULT_INSTANTANEOUS_TRIP_RATIO,
        }
    }

    /// Creates a curve from an explicit thermal constant and instantaneous
    /// trip ratio.
    ///
    /// # Panics
    ///
    /// Panics if `thermal_constant` is not positive or
    /// `instantaneous_ratio <= 1`.
    pub fn new(thermal_constant: f64, instantaneous_ratio: f64) -> Self {
        assert!(
            thermal_constant > 0.0,
            "trip curve thermal constant must be positive"
        );
        assert!(
            instantaneous_ratio > 1.0,
            "instantaneous trip ratio must exceed 1"
        );
        TripCurve {
            thermal_constant,
            instantaneous_ratio,
        }
    }

    /// Time the breaker sustains a constant overload before tripping.
    ///
    /// Returns `None` when `overload ≤ 1` (the breaker holds indefinitely at
    /// or below its rating) and `Some(Seconds::ZERO)` at or above the
    /// instantaneous-trip ratio.
    pub fn time_to_trip(&self, overload: Ratio) -> Option<Seconds> {
        let r = overload.as_f64();
        if r <= 1.0 {
            return None;
        }
        if r >= self.instantaneous_ratio {
            return Some(Seconds::ZERO);
        }
        Some(Seconds::new(self.thermal_constant / (r * r - 1.0)))
    }

    /// Thermal stress accumulated per second at the given overload ratio.
    ///
    /// The breaker trips when accumulated stress reaches the thermal
    /// constant. Load at or below the rating *dissipates* stress at the same
    /// scale, modelling bimetal cooling.
    pub fn stress_rate(&self, overload: Ratio) -> f64 {
        let r = overload.as_f64();
        r * r - 1.0
    }

    /// The thermal constant `k` (trip threshold of the stress integral).
    pub fn thermal_constant(&self) -> f64 {
        self.thermal_constant
    }

    /// The overload ratio at which the magnetic element trips immediately.
    pub fn instantaneous_ratio(&self) -> f64 {
        self.instantaneous_ratio
    }
}

impl Default for TripCurve {
    fn default() -> Self {
        TripCurve::ul489()
    }
}

/// A circuit breaker (or breaker-equivalent limit on a transformer) at a
/// power-distribution point.
///
/// The rating is expressed in watts **per phase** (current ratings are
/// converted via [`capmaestro_units::three_phase_power`]). The derated limit
/// — rating × derating factor — is what power-capping budgets must respect
/// under sustained load.
///
/// # Examples
///
/// ```
/// use capmaestro_topology::CircuitBreaker;
/// use capmaestro_units::Watts;
///
/// // Table 4: a CDU rated at 6.9 kW per phase, derated to 80 %.
/// let cb = CircuitBreaker::with_default_derating(Watts::from_kilowatts(6.9));
/// assert_eq!(cb.derated_limit(), Watts::new(5_520.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitBreaker {
    rating: Watts,
    derating: Ratio,
    curve: TripCurve,
}

impl CircuitBreaker {
    /// Creates a breaker with an explicit derating factor and the UL 489
    /// curve.
    ///
    /// # Panics
    ///
    /// Panics if the rating is not positive or the derating is outside
    /// `(0, 1]`.
    pub fn new(rating: Watts, derating: Ratio) -> Self {
        assert!(
            rating > Watts::ZERO,
            "breaker rating must be positive, got {rating}"
        );
        assert!(
            derating > Ratio::ZERO && derating <= Ratio::ONE,
            "breaker derating must be in (0, 1], got {derating}"
        );
        CircuitBreaker {
            rating,
            derating,
            curve: TripCurve::ul489(),
        }
    }

    /// Creates a breaker derated to the conventional 80 %.
    pub fn with_default_derating(rating: Watts) -> Self {
        CircuitBreaker::new(rating, DEFAULT_DERATING)
    }

    /// Replaces the trip curve (builder-style).
    #[must_use]
    pub fn with_curve(mut self, curve: TripCurve) -> Self {
        self.curve = curve;
        self
    }

    /// The nameplate rating per phase.
    pub fn rating(&self) -> Watts {
        self.rating
    }

    /// The derating factor applied for sustained load.
    pub fn derating(&self) -> Ratio {
        self.derating
    }

    /// The maximum sustained load: rating × derating.
    pub fn derated_limit(&self) -> Watts {
        self.rating * self.derating
    }

    /// The trip curve.
    pub fn curve(&self) -> &TripCurve {
        &self.curve
    }

    /// Overload ratio of a given load relative to the *full rating* (the
    /// quantity the trip curve acts on — derating only affects budgeting).
    pub fn overload_ratio(&self, load: Watts) -> Ratio {
        Ratio::new(load / self.rating)
    }

    /// Time the breaker carries `load` before tripping, `None` if it holds.
    pub fn time_to_trip(&self, load: Watts) -> Option<Seconds> {
        self.curve.time_to_trip(self.overload_ratio(load))
    }
}

impl fmt::Display for CircuitBreaker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CB {:.0} (derated {:.0})",
            self.rating,
            self.derated_limit()
        )
    }
}

/// Dynamic state of a breaker: closed (conducting) or tripped (open).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Conducting normally.
    #[default]
    Closed,
    /// Tripped open; downstream power is lost.
    Tripped,
}

impl fmt::Display for BreakerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakerState::Closed => write!(f, "closed"),
            BreakerState::Tripped => write!(f, "tripped"),
        }
    }
}

/// Time-domain breaker simulation: integrates thermal stress under a varying
/// load and trips when the thermal budget is exhausted.
///
/// Used by the failure-injection experiments to verify the paper's safety
/// claim — that capping restores the load within the 30-second window and
/// the breaker never opens.
///
/// # Examples
///
/// ```
/// use capmaestro_topology::{BreakerSim, BreakerState, CircuitBreaker};
/// use capmaestro_units::{Seconds, Watts};
///
/// let cb = CircuitBreaker::with_default_derating(Watts::new(1000.0));
/// let mut sim = BreakerSim::new(cb);
/// // 160 % of rating for 29 s: holds. One more second: trips.
/// for _ in 0..29 {
///     sim.step(Watts::new(1600.0), Seconds::new(1.0));
/// }
/// assert_eq!(sim.state(), BreakerState::Closed);
/// sim.step(Watts::new(1600.0), Seconds::new(1.1));
/// assert_eq!(sim.state(), BreakerState::Tripped);
/// ```
#[derive(Debug, Clone)]
pub struct BreakerSim {
    breaker: CircuitBreaker,
    stress: f64,
    state: BreakerState,
}

impl BreakerSim {
    /// Creates a simulation for the given breaker, starting closed and cool.
    pub fn new(breaker: CircuitBreaker) -> Self {
        BreakerSim {
            breaker,
            stress: 0.0,
            state: BreakerState::Closed,
        }
    }

    /// The breaker being simulated.
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Accumulated thermal stress as a fraction of the trip threshold.
    pub fn stress_fraction(&self) -> Ratio {
        Ratio::new_clamped(self.stress / self.breaker.curve.thermal_constant())
    }

    /// Advances the simulation by `dt` under a constant `load`, returning
    /// the state afterwards.
    ///
    /// Overload accumulates stress; under-load cools the breaker back toward
    /// zero stress. An already-tripped breaker stays tripped (reset requires
    /// [`BreakerSim::reset`], modelling a manual re-close).
    pub fn step(&mut self, load: Watts, dt: Seconds) -> BreakerState {
        if self.state == BreakerState::Tripped {
            return self.state;
        }
        let ratio = self.breaker.overload_ratio(load);
        if ratio.as_f64() >= self.breaker.curve.instantaneous_ratio() {
            self.state = BreakerState::Tripped;
            return self.state;
        }
        let rate = self.breaker.curve.stress_rate(ratio);
        self.stress = (self.stress + rate * dt.as_f64()).max(0.0);
        if self.stress >= self.breaker.curve.thermal_constant() {
            self.state = BreakerState::Tripped;
        }
        self.state
    }

    /// Re-closes a tripped breaker and clears thermal stress.
    pub fn reset(&mut self) {
        self.stress = 0.0;
        self.state = BreakerState::Closed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ul489_calibration() {
        let curve = TripCurve::ul489();
        let t = curve.time_to_trip(Ratio::new(1.6)).unwrap();
        assert!((t.as_f64() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn no_trip_at_or_below_rating() {
        let curve = TripCurve::ul489();
        assert!(curve.time_to_trip(Ratio::new(1.0)).is_none());
        assert!(curve.time_to_trip(Ratio::new(0.8)).is_none());
        assert!(curve.time_to_trip(Ratio::ZERO).is_none());
    }

    #[test]
    fn higher_overload_trips_faster() {
        let curve = TripCurve::ul489();
        let t16 = curve.time_to_trip(Ratio::new(1.6)).unwrap();
        let t20 = curve.time_to_trip(Ratio::new(2.0)).unwrap();
        let t40 = curve.time_to_trip(Ratio::new(4.0)).unwrap();
        assert!(t20 < t16);
        assert!(t40 < t20);
    }

    #[test]
    fn instantaneous_trip() {
        let curve = TripCurve::ul489();
        assert_eq!(
            curve.time_to_trip(Ratio::new(10.0)),
            Some(Seconds::ZERO)
        );
        assert_eq!(
            curve.time_to_trip(Ratio::new(25.0)),
            Some(Seconds::ZERO)
        );
    }

    #[test]
    #[should_panic(expected = "thermal constant")]
    fn invalid_thermal_constant_panics() {
        let _ = TripCurve::new(0.0, 10.0);
    }

    #[test]
    fn breaker_derated_limit() {
        let cb = CircuitBreaker::with_default_derating(Watts::new(750.0));
        assert_eq!(cb.derated_limit(), Watts::new(600.0));
        assert_eq!(cb.rating(), Watts::new(750.0));
        assert_eq!(cb.derating(), Ratio::new(0.8));
    }

    #[test]
    fn breaker_custom_derating() {
        // Redundant-feed practice without capping: load each side to 40 %
        // so failover lands at 80 % (paper §2.1).
        let cb = CircuitBreaker::new(Watts::new(750.0), Ratio::new(0.4));
        assert_eq!(cb.derated_limit(), Watts::new(300.0));
    }

    #[test]
    #[should_panic(expected = "rating must be positive")]
    fn zero_rating_panics() {
        let _ = CircuitBreaker::with_default_derating(Watts::ZERO);
    }

    #[test]
    #[should_panic(expected = "derating")]
    fn derating_above_one_panics() {
        let _ = CircuitBreaker::new(Watts::new(100.0), Ratio::new(1.2));
    }

    #[test]
    fn breaker_time_to_trip_from_load() {
        let cb = CircuitBreaker::with_default_derating(Watts::new(1000.0));
        // Failure scenario from §2.1: both sides at 80 %, one fails, the
        // survivor sees 160 % → must hold ≥ 30 s.
        let t = cb.time_to_trip(Watts::new(1600.0)).unwrap();
        assert!(t.as_f64() >= 30.0 - 1e-9);
        assert!(cb.time_to_trip(Watts::new(800.0)).is_none());
    }

    #[test]
    fn breaker_sim_survives_capped_failover() {
        // Load spikes to 160 % for 14 s (the paper's worst-case response
        // time), then capping brings it back to 80 %: breaker must hold.
        let cb = CircuitBreaker::with_default_derating(Watts::new(1000.0));
        let mut sim = BreakerSim::new(cb);
        for _ in 0..14 {
            sim.step(Watts::new(1600.0), Seconds::new(1.0));
        }
        assert_eq!(sim.state(), BreakerState::Closed);
        for _ in 0..600 {
            sim.step(Watts::new(800.0), Seconds::new(1.0));
        }
        assert_eq!(sim.state(), BreakerState::Closed);
        // Cooling should have reduced the stress fraction to zero.
        assert_eq!(sim.stress_fraction(), Ratio::ZERO);
    }

    #[test]
    fn breaker_sim_trips_without_capping() {
        let cb = CircuitBreaker::with_default_derating(Watts::new(1000.0));
        let mut sim = BreakerSim::new(cb);
        let mut tripped_at = None;
        for s in 0..120 {
            if sim.step(Watts::new(1600.0), Seconds::new(1.0)) == BreakerState::Tripped {
                tripped_at = Some(s + 1);
                break;
            }
        }
        // Must trip, and not before the 30 s UL 489 floor.
        let t = tripped_at.expect("breaker should trip under sustained 160 %");
        assert!((30..=31).contains(&t), "tripped at {t} s");
    }

    #[test]
    fn breaker_sim_instantaneous_trip_and_reset() {
        let cb = CircuitBreaker::with_default_derating(Watts::new(100.0));
        let mut sim = BreakerSim::new(cb);
        sim.step(Watts::new(5000.0), Seconds::new(0.001));
        assert_eq!(sim.state(), BreakerState::Tripped);
        // Stays tripped regardless of load.
        sim.step(Watts::ZERO, Seconds::new(100.0));
        assert_eq!(sim.state(), BreakerState::Tripped);
        sim.reset();
        assert_eq!(sim.state(), BreakerState::Closed);
    }

    #[test]
    fn display_impls() {
        let cb = CircuitBreaker::with_default_derating(Watts::new(750.0));
        assert_eq!(cb.to_string(), "CB 750 W (derated 600 W)");
        assert_eq!(BreakerState::Closed.to_string(), "closed");
        assert_eq!(BreakerState::Tripped.to_string(), "tripped");
    }
}
