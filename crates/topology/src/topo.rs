//! The [`Topology`]: feeds + servers + attachments, with validation and
//! control-tree extraction.

use core::fmt;

use crate::device::{FeedId, Phase, SupplyIndex};
use crate::error::TopologyError;
use crate::graph::{NodeId, OutletInfo, PowerGraph};
use crate::spec::{ControlTreeSpec, SpecLeaf, SpecNode};

/// Identifies a server across the whole topology.
///
/// Servers are registered with [`Topology::add_server`]; the id is a dense
/// index, cheap to copy and to use as a vector key in large simulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ServerId(pub u32);

impl ServerId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ServerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "server#{}", self.0)
    }
}

/// A workload priority level. **Higher values are more important.**
///
/// The paper expects "on the order of 10" distinct levels in practice
/// (§4.1); this type allows up to 256. During a power emergency, a server
/// at priority `j` is throttled only after every server at priority `< j`
/// has been throttled to its minimum (the property proved in the paper's
/// technical report).
///
/// # Examples
///
/// ```
/// use capmaestro_topology::Priority;
///
/// assert!(Priority::HIGH > Priority::LOW);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Priority(pub u8);

impl Priority {
    /// Conventional low priority (used by the paper's two-level examples).
    pub const LOW: Priority = Priority(0);
    /// Conventional high priority.
    pub const HIGH: Priority = Priority(1);

    /// Returns the raw level.
    pub fn level(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Registry entry for a server: its display name and priority.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerInfo {
    name: String,
    priority: Priority,
}

impl ServerInfo {
    /// Creates a server entry.
    pub fn new(name: impl Into<String>, priority: Priority) -> Self {
        ServerInfo {
            name: name.into(),
            priority,
        }
    }

    /// The server's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The server's priority.
    pub fn priority(&self) -> Priority {
        self.priority
    }
}

/// A complete data-center power topology: one [`PowerGraph`] per redundant
/// feed plus the registry of servers plugged into the outlets.
///
/// Use [`crate::TopologyBuilder`] for ergonomic construction, or assemble
/// graphs manually and register them with [`Topology::add_feed`].
#[derive(Debug, Clone, Default)]
pub struct Topology {
    feeds: Vec<PowerGraph>,
    servers: Vec<ServerInfo>,
    /// Supplies attached via [`Topology::attach_supply`], for O(1)
    /// duplicate checks and counts at data-center scale.
    attached: std::collections::HashSet<(ServerId, SupplyIndex)>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Registers a server, returning its id.
    pub fn add_server(&mut self, info: ServerInfo) -> ServerId {
        let id = ServerId(self.servers.len() as u32);
        self.servers.push(info);
        id
    }

    /// Adds a feed graph.
    ///
    /// # Panics
    ///
    /// Panics if a graph for the same [`FeedId`] is already present.
    pub fn add_feed(&mut self, graph: PowerGraph) -> FeedId {
        let feed = graph.feed();
        assert!(
            self.feed(feed).is_none(),
            "{feed} is already present in the topology"
        );
        self.feeds.push(graph);
        feed
    }

    /// The graph for a feed, if present.
    pub fn feed(&self, feed: FeedId) -> Option<&PowerGraph> {
        self.feeds.iter().find(|g| g.feed() == feed)
    }

    /// Mutable access to a feed's graph.
    pub fn feed_mut(&mut self, feed: FeedId) -> Option<&mut PowerGraph> {
        self.feeds.iter_mut().find(|g| g.feed() == feed)
    }

    /// All feeds, in registration order.
    pub fn feeds(&self) -> &[PowerGraph] {
        &self.feeds
    }

    /// Number of registered servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The registry entry for a server.
    pub fn server(&self, id: ServerId) -> Option<&ServerInfo> {
        self.servers.get(id.index())
    }

    /// Looks up a server id by display name (linear scan; intended for
    /// tests and small scenario wiring, not hot paths).
    pub fn server_by_name(&self, name: &str) -> Option<ServerId> {
        self.servers
            .iter()
            .position(|s| s.name() == name)
            .map(|i| ServerId(i as u32))
    }

    /// Iterates `(id, info)` over all servers.
    pub fn servers(&self) -> impl Iterator<Item = (ServerId, &ServerInfo)> + '_ {
        self.servers
            .iter()
            .enumerate()
            .map(|(i, s)| (ServerId(i as u32), s))
    }

    /// Attaches one supply of a server under a node of a feed, creating the
    /// outlet leaf.
    ///
    /// # Errors
    ///
    /// Propagates graph errors and returns [`TopologyError::UnknownFeed`] /
    /// [`TopologyError::UnknownServer`] for dangling references.
    pub fn attach_supply(
        &mut self,
        server: ServerId,
        supply: SupplyIndex,
        feed: FeedId,
        under: NodeId,
        phase: Phase,
    ) -> Result<NodeId, TopologyError> {
        if self.server(server).is_none() {
            return Err(TopologyError::UnknownServer { server });
        }
        if self.attached.contains(&(server, supply)) {
            return Err(TopologyError::DuplicateSupply { server, supply });
        }
        let graph = self
            .feed_mut(feed)
            .ok_or(TopologyError::UnknownFeed { feed })?;
        let node = graph.attach_outlet(
            under,
            OutletInfo {
                server,
                supply,
                phase,
            },
        )?;
        self.attached.insert((server, supply));
        Ok(node)
    }

    /// All `(feed, node, outlet)` attachments of a server across all feeds.
    pub fn supply_attachments(&self, server: ServerId) -> Vec<(FeedId, NodeId, OutletInfo)> {
        let mut out = Vec::new();
        for g in &self.feeds {
            for (node, o) in g.outlets() {
                if o.server == server {
                    out.push((g.feed(), node, *o));
                }
            }
        }
        out.sort_by_key(|(f, _, o)| (o.supply, *f));
        out
    }

    /// Number of supplies a server has attached (its cord count).
    pub fn supply_count(&self, server: ServerId) -> usize {
        self.attached.iter().filter(|(s, _)| *s == server).count()
    }

    /// Validates the whole topology:
    ///
    /// - every server has at least one supply attachment,
    /// - no feed has an unbounded root-to-leaf path.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn validate(&self) -> Result<(), TopologyError> {
        let mut powered = vec![false; self.servers.len()];
        for (server, _) in &self.attached {
            if let Some(slot) = powered.get_mut(server.index()) {
                *slot = true;
            }
        }
        if let Some(unpowered) = powered.iter().position(|p| !p) {
            return Err(TopologyError::UnpoweredServer {
                server: ServerId(unpowered as u32),
            });
        }
        for g in &self.feeds {
            g.validate_bounded()?;
        }
        Ok(())
    }

    /// Extracts the control-tree specifications the controllers mirror:
    /// one spec per (feed, phase) pair that actually powers at least one
    /// outlet (paper §4.1 — six trees for a 2-feed, 3-phase center).
    ///
    /// Branches with no outlet on the spec's phase are pruned, and device
    /// limits are carried over as the shifting controllers' `P_limit`.
    pub fn control_tree_specs(&self) -> Vec<ControlTreeSpec> {
        let mut specs = Vec::new();
        for g in &self.feeds {
            for phase in Phase::ALL {
                if let Some(spec) = extract_spec(self, g, phase) {
                    specs.push(spec);
                }
            }
        }
        specs
    }
}

/// Builds the spec for one (feed, phase), pruning branches without outlets
/// on that phase. Returns `None` when the phase powers nothing on this feed.
fn extract_spec(topo: &Topology, graph: &PowerGraph, phase: Phase) -> Option<ControlTreeSpec> {
    let root = graph.root()?;
    // Mark nodes whose subtree contains an outlet on `phase`. Insertion
    // order is topological, so a reverse scan sees children before parents.
    let mut keep = vec![false; graph.len()];
    for id in graph.iter().collect::<Vec<_>>().into_iter().rev() {
        let self_match = graph
            .outlet(id)
            .is_some_and(|o| o.phase == phase);
        let child_match = graph.children(id).iter().any(|c| keep[c.index()]);
        keep[id.index()] = self_match || child_match;
    }
    if !keep[root.index()] {
        return None;
    }

    let mut spec = ControlTreeSpec::new(graph.feed(), phase);
    let mut map: Vec<Option<usize>> = vec![None; graph.len()];
    for id in graph.iter() {
        if !keep[id.index()] {
            continue;
        }
        let device = graph.device(id);
        let parent = graph.parent(id).and_then(|p| map[p.index()]);
        let leaf = graph.outlet(id).map(|o| {
            let priority = topo
                .server(o.server)
                .map(|s| s.priority())
                .unwrap_or(Priority::LOW);
            SpecLeaf {
                server: o.server,
                supply: o.supply,
                priority,
            }
        });
        let idx = spec.push_node(SpecNode {
            name: device.name().to_string(),
            limit: device.effective_limit(),
            parent,
            children: Vec::new(),
            leaf,
        });
        if let Some(p) = parent {
            spec.node_mut(p).children.push(idx);
        }
        map[id.index()] = Some(idx);
    }
    Some(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceKind;
    use crate::device::PowerDevice;
    use capmaestro_units::Watts;

    fn two_feed_topology() -> (Topology, ServerId) {
        let mut topo = Topology::new();
        let s = topo.add_server(ServerInfo::new("S1", Priority::HIGH));
        for feed in [FeedId::A, FeedId::B] {
            let mut g = PowerGraph::new(feed);
            g.add_root(
                PowerDevice::new("root", DeviceKind::Virtual)
                    .with_extra_limit(Watts::new(1000.0)),
            );
            topo.add_feed(g);
        }
        (topo, s)
    }

    #[test]
    fn server_registry() {
        let mut topo = Topology::new();
        let a = topo.add_server(ServerInfo::new("SA", Priority::HIGH));
        let b = topo.add_server(ServerInfo::new("SB", Priority::LOW));
        assert_eq!(topo.server_count(), 2);
        assert_eq!(topo.server(a).unwrap().name(), "SA");
        assert_eq!(topo.server(b).unwrap().priority(), Priority::LOW);
        assert_eq!(topo.server_by_name("SB"), Some(b));
        assert_eq!(topo.server_by_name("nope"), None);
    }

    #[test]
    fn attach_dual_cords() {
        let (mut topo, s) = two_feed_topology();
        let root_a = topo.feed(FeedId::A).unwrap().root().unwrap();
        let root_b = topo.feed(FeedId::B).unwrap().root().unwrap();
        topo.attach_supply(s, SupplyIndex::FIRST, FeedId::A, root_a, Phase::L1)
            .unwrap();
        topo.attach_supply(s, SupplyIndex::SECOND, FeedId::B, root_b, Phase::L1)
            .unwrap();
        assert_eq!(topo.supply_count(s), 2);
        assert!(topo.validate().is_ok());
        let atts = topo.supply_attachments(s);
        assert_eq!(atts[0].2.supply, SupplyIndex::FIRST);
        assert_eq!(atts[0].0, FeedId::A);
        assert_eq!(atts[1].2.supply, SupplyIndex::SECOND);
    }

    #[test]
    fn duplicate_supply_rejected() {
        let (mut topo, s) = two_feed_topology();
        let root_a = topo.feed(FeedId::A).unwrap().root().unwrap();
        topo.attach_supply(s, SupplyIndex::FIRST, FeedId::A, root_a, Phase::L1)
            .unwrap();
        let err = topo
            .attach_supply(s, SupplyIndex::FIRST, FeedId::A, root_a, Phase::L2)
            .unwrap_err();
        assert_eq!(
            err,
            TopologyError::DuplicateSupply {
                server: s,
                supply: SupplyIndex::FIRST
            }
        );
    }

    #[test]
    fn unpowered_server_fails_validation() {
        let (topo, s) = two_feed_topology();
        assert_eq!(
            topo.validate().unwrap_err(),
            TopologyError::UnpoweredServer { server: s }
        );
    }

    #[test]
    fn unknown_feed_and_server_errors() {
        let (mut topo, s) = two_feed_topology();
        let root_a = topo.feed(FeedId::A).unwrap().root().unwrap();
        assert_eq!(
            topo.attach_supply(s, SupplyIndex::FIRST, FeedId(9), root_a, Phase::L1)
                .unwrap_err(),
            TopologyError::UnknownFeed { feed: FeedId(9) }
        );
        assert_eq!(
            topo.attach_supply(ServerId(99), SupplyIndex::FIRST, FeedId::A, root_a, Phase::L1)
                .unwrap_err(),
            TopologyError::UnknownServer { server: ServerId(99) }
        );
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_feed_panics() {
        let mut topo = Topology::new();
        topo.add_feed(PowerGraph::new(FeedId::A));
        topo.add_feed(PowerGraph::new(FeedId::A));
    }

    #[test]
    fn spec_extraction_prunes_phases() {
        let (mut topo, s) = two_feed_topology();
        let s2 = topo.add_server(ServerInfo::new("S2", Priority::LOW));
        let root_a = topo.feed(FeedId::A).unwrap().root().unwrap();
        let root_b = topo.feed(FeedId::B).unwrap().root().unwrap();
        topo.attach_supply(s, SupplyIndex::FIRST, FeedId::A, root_a, Phase::L1)
            .unwrap();
        topo.attach_supply(s, SupplyIndex::SECOND, FeedId::B, root_b, Phase::L2)
            .unwrap();
        topo.attach_supply(s2, SupplyIndex::FIRST, FeedId::A, root_a, Phase::L1)
            .unwrap();

        let specs = topo.control_tree_specs();
        // Feed A powers phase L1 only; feed B powers phase L2 only.
        assert_eq!(specs.len(), 2);
        let a_l1 = &specs[0];
        assert_eq!(a_l1.feed(), FeedId::A);
        assert_eq!(a_l1.phase(), Phase::L1);
        assert_eq!(a_l1.leaves().count(), 2);
        let b_l2 = &specs[1];
        assert_eq!(b_l2.feed(), FeedId::B);
        assert_eq!(b_l2.phase(), Phase::L2);
        assert_eq!(b_l2.leaves().count(), 1);
        // Leaf carries the registry priority.
        let (_, leaf) = a_l1.leaves().next().unwrap();
        assert_eq!(leaf.priority, Priority::HIGH);
    }

    #[test]
    fn priority_ordering() {
        assert!(Priority::HIGH > Priority::LOW);
        assert!(Priority(5) > Priority(2));
        assert_eq!(Priority(3).to_string(), "P3");
        assert_eq!(Priority(7).level(), 7);
    }
}
