//! Power-distribution infrastructure substrate for CapMaestro.
//!
//! Models the physical side of a highly-available data center (paper §2.1):
//! redundant utility feeds, automatic transfer switches, UPSes, transformers,
//! remote power panels (RPPs), cabinet distribution units (CDUs), and the
//! circuit breakers that protect each distribution point — including the
//! UL-489-style inverse-time trip behaviour and the 80 % sustained-load
//! derating rule (NFPA 70) that power capping relies on.
//!
//! The central type is [`Topology`]: a set of per-feed power-distribution
//! trees ([`PowerGraph`]) plus the registry of servers attached to their
//! outlets. A topology can be replicated per phase and feed into the
//! *control-tree specifications* ([`ControlTreeSpec`]) that the
//! `capmaestro-core` controllers mirror (paper §4.1: "our control trees
//! mirror the physical electrical connections of the data center").
//!
//! # Example: the paper's Fig. 2 feed
//!
//! ```
//! use capmaestro_topology::presets;
//!
//! let topo = presets::figure2_feed();
//! assert_eq!(topo.server_count(), 4);
//! let specs = topo.control_tree_specs();
//! assert_eq!(specs.len(), 1); // one feed, all servers on one phase
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod breaker;
pub mod builder;
pub mod device;
pub mod dot;
pub mod error;
pub mod graph;
pub mod lint;
pub mod presets;
pub mod spec;
mod topo;

pub use breaker::{BreakerSim, BreakerState, CircuitBreaker, TripCurve};
pub use builder::TopologyBuilder;
pub use device::{DeviceKind, FeedId, Phase, PowerDevice, SupplyIndex};
pub use error::TopologyError;
pub use lint::{lint, LintWarning};
pub use graph::{NodeId, OutletInfo, PowerGraph};
pub use spec::{ControlTreeSpec, SpecLeaf, SpecNode};
pub use topo::{Priority, ServerId, ServerInfo, Topology};
