//! Typed descriptions of power-distribution equipment.

use core::fmt;

use capmaestro_units::Watts;

use crate::breaker::CircuitBreaker;

/// The kind of equipment at a power-distribution point (paper Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// External utility power source entering the building (12.5 kV).
    UtilityFeed,
    /// Automatic transfer switch (fails over to an on-site generator).
    Ats,
    /// Uninterruptible power supply.
    Ups,
    /// Step-down transformer (480 V → 400 V line-to-line).
    Transformer,
    /// Remote power panel: a 42-pole box of branch circuit breakers.
    Rpp,
    /// Cabinet distribution unit in a rack.
    Cdu,
    /// A single outlet feeding one server power supply.
    Outlet,
    /// A virtual node carrying a contractual budget rather than a physical
    /// limit (paper §4.1: "work with power budgets based on restrictions
    /// aside from physical equipment limits").
    Virtual,
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceKind::UtilityFeed => "utility feed",
            DeviceKind::Ats => "ATS",
            DeviceKind::Ups => "UPS",
            DeviceKind::Transformer => "transformer",
            DeviceKind::Rpp => "RPP",
            DeviceKind::Cdu => "CDU",
            DeviceKind::Outlet => "outlet",
            DeviceKind::Virtual => "virtual",
        };
        f.write_str(s)
    }
}

/// Identifies one of the redundant power feeds (sides) of the data center.
///
/// The paper labels them A/B (Fig. 1) or X/Y (Fig. 7a); this type is just an
/// index so any number of feeds can be modelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FeedId(pub u8);

impl FeedId {
    /// The A (or X) side.
    pub const A: FeedId = FeedId(0);
    /// The B (or Y) side.
    pub const B: FeedId = FeedId(1);

    /// Returns the index as `usize` for container addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FeedId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "feed A"),
            1 => write!(f, "feed B"),
            n => write!(f, "feed #{n}"),
        }
    }
}

/// One of the three phases of three-phase power delivery.
///
/// The paper replicates the control tree per phase "since loading on each
/// phase is not always uniform" (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Phase 1 (L1).
    L1,
    /// Phase 2 (L2).
    L2,
    /// Phase 3 (L3).
    L3,
}

impl Phase {
    /// All three phases, in order.
    pub const ALL: [Phase; 3] = [Phase::L1, Phase::L2, Phase::L3];

    /// Assigns index `i` to a phase round-robin, the conventional way racks
    /// balance servers across phases.
    ///
    /// ```
    /// use capmaestro_topology::Phase;
    /// assert_eq!(Phase::round_robin(0), Phase::L1);
    /// assert_eq!(Phase::round_robin(4), Phase::L2);
    /// ```
    pub fn round_robin(i: usize) -> Phase {
        Phase::ALL[i % 3]
    }

    /// Returns the phase's index in `[0, 3)`.
    pub fn index(self) -> usize {
        match self {
            Phase::L1 => 0,
            Phase::L2 => 1,
            Phase::L3 => 2,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Phase::L1 => write!(f, "L1"),
            Phase::L2 => write!(f, "L2"),
            Phase::L3 => write!(f, "L3"),
        }
    }
}

/// Index of a power supply within a server (0-based).
///
/// A dual-corded server has supplies 0 and 1, connected to different feeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SupplyIndex(pub u8);

impl SupplyIndex {
    /// First supply.
    pub const FIRST: SupplyIndex = SupplyIndex(0);
    /// Second supply.
    pub const SECOND: SupplyIndex = SupplyIndex(1);

    /// Returns the index as `usize`.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SupplyIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PS{}", self.0 + 1)
    }
}

/// A piece of power-distribution equipment placed at a node of the
/// distribution tree.
///
/// A device may carry a [`CircuitBreaker`] (physical limit, per phase), an
/// extra non-physical limit (e.g. a contractual budget), both, or neither
/// (a pure pass-through such as an ATS whose limit is elsewhere).
///
/// # Examples
///
/// ```
/// use capmaestro_topology::{CircuitBreaker, DeviceKind, PowerDevice};
/// use capmaestro_units::Watts;
///
/// let rpp = PowerDevice::new("RPP-3", DeviceKind::Rpp)
///     .with_breaker(CircuitBreaker::with_default_derating(Watts::from_kilowatts(52.0)));
/// assert_eq!(rpp.effective_limit(), Some(Watts::new(41_600.0)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerDevice {
    name: String,
    kind: DeviceKind,
    breaker: Option<CircuitBreaker>,
    extra_limit: Option<Watts>,
}

impl PowerDevice {
    /// Creates an unlimited pass-through device.
    pub fn new(name: impl Into<String>, kind: DeviceKind) -> Self {
        PowerDevice {
            name: name.into(),
            kind,
            breaker: None,
            extra_limit: None,
        }
    }

    /// Attaches a breaker protecting this distribution point.
    #[must_use]
    pub fn with_breaker(mut self, breaker: CircuitBreaker) -> Self {
        self.breaker = Some(breaker);
        self
    }

    /// Attaches a non-physical limit such as a contractual budget
    /// (interpreted per phase, like breaker limits).
    ///
    /// # Panics
    ///
    /// Panics if the limit is not positive.
    #[must_use]
    pub fn with_extra_limit(mut self, limit: Watts) -> Self {
        assert!(
            limit > Watts::ZERO,
            "extra limit must be positive, got {limit}"
        );
        self.extra_limit = Some(limit);
        self
    }

    /// The device's name (for reports and debugging).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kind of equipment.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// The protecting breaker, if any.
    pub fn breaker(&self) -> Option<&CircuitBreaker> {
        self.breaker.as_ref()
    }

    /// The non-physical limit, if any.
    pub fn extra_limit(&self) -> Option<Watts> {
        self.extra_limit
    }

    /// The budgeting limit at this point: the minimum of the breaker's
    /// derated limit and the extra limit. `None` means unconstrained.
    pub fn effective_limit(&self) -> Option<Watts> {
        match (self.breaker.map(|b| b.derated_limit()), self.extra_limit) {
            (Some(b), Some(e)) => Some(b.min(e)),
            (Some(b), None) => Some(b),
            (None, Some(e)) => Some(e),
            (None, None) => None,
        }
    }
}

impl fmt::Display for PowerDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.name, self.kind)?;
        if let Some(limit) = self.effective_limit() {
            write!(f, " limit {limit:.0}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capmaestro_units::Ratio;

    #[test]
    fn round_robin_phases() {
        let phases: Vec<Phase> = (0..6).map(Phase::round_robin).collect();
        assert_eq!(
            phases,
            [
                Phase::L1,
                Phase::L2,
                Phase::L3,
                Phase::L1,
                Phase::L2,
                Phase::L3
            ]
        );
    }

    #[test]
    fn phase_indices_roundtrip() {
        for p in Phase::ALL {
            assert_eq!(Phase::ALL[p.index()], p);
        }
    }

    #[test]
    fn feed_ids() {
        assert_eq!(FeedId::A.index(), 0);
        assert_eq!(FeedId::B.index(), 1);
        assert_eq!(FeedId::A.to_string(), "feed A");
        assert_eq!(FeedId(2).to_string(), "feed #2");
    }

    #[test]
    fn supply_index_display_is_one_based() {
        assert_eq!(SupplyIndex::FIRST.to_string(), "PS1");
        assert_eq!(SupplyIndex::SECOND.to_string(), "PS2");
    }

    #[test]
    fn effective_limit_combinations() {
        let base = PowerDevice::new("d", DeviceKind::Cdu);
        assert_eq!(base.effective_limit(), None);

        let cb = CircuitBreaker::new(Watts::new(1000.0), Ratio::new(0.8));
        let with_cb = base.clone().with_breaker(cb);
        assert_eq!(with_cb.effective_limit(), Some(Watts::new(800.0)));

        let with_extra = base.clone().with_extra_limit(Watts::new(700.0));
        assert_eq!(with_extra.effective_limit(), Some(Watts::new(700.0)));

        let both = with_cb.with_extra_limit(Watts::new(700.0));
        assert_eq!(both.effective_limit(), Some(Watts::new(700.0)));

        let both_cb_lower = base
            .with_breaker(CircuitBreaker::new(Watts::new(500.0), Ratio::new(0.8)))
            .with_extra_limit(Watts::new(700.0));
        assert_eq!(both_cb_lower.effective_limit(), Some(Watts::new(400.0)));
    }

    #[test]
    #[should_panic(expected = "extra limit must be positive")]
    fn zero_extra_limit_panics() {
        let _ = PowerDevice::new("d", DeviceKind::Virtual).with_extra_limit(Watts::ZERO);
    }

    #[test]
    fn device_display() {
        let d = PowerDevice::new("CDU-7", DeviceKind::Cdu)
            .with_breaker(CircuitBreaker::with_default_derating(Watts::new(6900.0)));
        assert_eq!(d.to_string(), "CDU-7 (CDU) limit 5520 W");
        let plain = PowerDevice::new("ATS-1", DeviceKind::Ats);
        assert_eq!(plain.to_string(), "ATS-1 (ATS)");
    }
}
