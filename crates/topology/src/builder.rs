//! Fluent construction of validated topologies.

use capmaestro_units::Watts;

use crate::device::{DeviceKind, FeedId, Phase, PowerDevice, SupplyIndex};
use crate::error::TopologyError;
use crate::graph::{NodeId, PowerGraph};
use crate::topo::{Priority, ServerId, ServerInfo, Topology};

/// Builds a [`Topology`] step by step and validates it on
/// [`TopologyBuilder::build`].
///
/// # Examples
///
/// ```
/// use capmaestro_topology::{
///     CircuitBreaker, DeviceKind, FeedId, Phase, PowerDevice, Priority,
///     SupplyIndex, TopologyBuilder,
/// };
/// use capmaestro_units::Watts;
///
/// # fn main() -> Result<(), capmaestro_topology::TopologyError> {
/// let mut b = TopologyBuilder::new();
/// let root = b.add_feed(
///     FeedId::A,
///     PowerDevice::new("top", DeviceKind::Virtual).with_extra_limit(Watts::new(1400.0)),
/// );
/// let cdu = b.add_node(
///     FeedId::A,
///     root,
///     PowerDevice::new("CDU", DeviceKind::Cdu)
///         .with_breaker(CircuitBreaker::with_default_derating(Watts::new(750.0))),
/// )?;
/// let s = b.add_server("S1", Priority::HIGH);
/// b.attach(s, SupplyIndex::FIRST, FeedId::A, cdu, Phase::L1)?;
/// let topo = b.build()?;
/// assert_eq!(topo.server_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    topo: Topology,
}

impl TopologyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        TopologyBuilder::default()
    }

    /// Adds a feed with its root device, returning the root node id.
    ///
    /// # Panics
    ///
    /// Panics if the feed already exists.
    pub fn add_feed(&mut self, feed: FeedId, root: PowerDevice) -> NodeId {
        let mut graph = PowerGraph::new(feed);
        let id = graph.add_root(root);
        self.topo.add_feed(graph);
        id
    }

    /// Adds a device beneath `parent` on `feed`.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::UnknownFeed`] or graph-level errors.
    pub fn add_node(
        &mut self,
        feed: FeedId,
        parent: NodeId,
        device: PowerDevice,
    ) -> Result<NodeId, TopologyError> {
        self.topo
            .feed_mut(feed)
            .ok_or(TopologyError::UnknownFeed { feed })?
            .add_child(parent, device)
    }

    /// Registers a server.
    pub fn add_server(&mut self, name: impl Into<String>, priority: Priority) -> ServerId {
        self.topo.add_server(ServerInfo::new(name, priority))
    }

    /// Attaches a server supply beneath a node.
    ///
    /// # Errors
    ///
    /// See [`Topology::attach_supply`].
    pub fn attach(
        &mut self,
        server: ServerId,
        supply: SupplyIndex,
        feed: FeedId,
        under: NodeId,
        phase: Phase,
    ) -> Result<NodeId, TopologyError> {
        self.topo.attach_supply(server, supply, feed, under, phase)
    }

    /// Convenience: single-corded server created and attached in one call.
    ///
    /// # Errors
    ///
    /// See [`Topology::attach_supply`].
    pub fn single_corded_server(
        &mut self,
        name: impl Into<String>,
        priority: Priority,
        feed: FeedId,
        under: NodeId,
        phase: Phase,
    ) -> Result<ServerId, TopologyError> {
        let id = self.add_server(name, priority);
        self.attach(id, SupplyIndex::FIRST, feed, under, phase)?;
        Ok(id)
    }

    /// Convenience: dual-corded server attached under one node per feed on
    /// the same phase.
    ///
    /// # Errors
    ///
    /// See [`Topology::attach_supply`].
    pub fn dual_corded_server(
        &mut self,
        name: impl Into<String>,
        priority: Priority,
        attachments: [(FeedId, NodeId); 2],
        phase: Phase,
    ) -> Result<ServerId, TopologyError> {
        let id = self.add_server(name, priority);
        self.attach(id, SupplyIndex::FIRST, attachments[0].0, attachments[0].1, phase)?;
        self.attach(id, SupplyIndex::SECOND, attachments[1].0, attachments[1].1, phase)?;
        Ok(id)
    }

    /// Access to the partially-built topology (e.g. to look up node ids).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Validates and returns the finished topology.
    ///
    /// # Errors
    ///
    /// Returns the first validation failure (see [`Topology::validate`]).
    pub fn build(self) -> Result<Topology, TopologyError> {
        self.topo.validate()?;
        Ok(self.topo)
    }
}

/// Shorthand for a virtual budget node (no breaker, explicit limit).
pub(crate) fn budget_node(name: impl Into<String>, limit: Watts) -> PowerDevice {
    PowerDevice::new(name, DeviceKind::Virtual).with_extra_limit(limit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = TopologyBuilder::new();
        let ra = b.add_feed(FeedId::A, budget_node("rootA", Watts::new(1000.0)));
        let rb = b.add_feed(FeedId::B, budget_node("rootB", Watts::new(1000.0)));
        let s = b
            .dual_corded_server("S", Priority::LOW, [(FeedId::A, ra), (FeedId::B, rb)], Phase::L2)
            .unwrap();
        let topo = b.build().unwrap();
        assert_eq!(topo.supply_count(s), 2);
        assert_eq!(topo.control_tree_specs().len(), 2);
    }

    #[test]
    fn build_rejects_unpowered_server() {
        let mut b = TopologyBuilder::new();
        b.add_feed(FeedId::A, budget_node("rootA", Watts::new(1000.0)));
        let s = b.add_server("lonely", Priority::LOW);
        let err = b.build().unwrap_err();
        assert_eq!(err, TopologyError::UnpoweredServer { server: s });
    }

    #[test]
    fn add_node_unknown_feed_errors() {
        let mut b = TopologyBuilder::new();
        let root = b.add_feed(FeedId::A, budget_node("rootA", Watts::new(1.0)));
        let err = b
            .add_node(FeedId::B, root, PowerDevice::new("x", DeviceKind::Cdu))
            .unwrap_err();
        assert_eq!(err, TopologyError::UnknownFeed { feed: FeedId::B });
    }
}
