//! Ready-made topologies for the paper's experiments.
//!
//! - [`figure2_feed`] — the single-feed, three-breaker example of Fig. 2
//!   (used by Table 1, Table 2, and Fig. 6),
//! - [`figure7a_rig`] — the dual-feed stranded-power rig of Fig. 7a
//!   (used by Table 3 and Figs. 7b/7c),
//! - [`table4_datacenter`] — the production-scale data center of Table 4
//!   (used by Figs. 9 and 10).

use capmaestro_units::Watts;

use crate::breaker::CircuitBreaker;
use crate::builder::{budget_node, TopologyBuilder};
use crate::device::{DeviceKind, FeedId, Phase, PowerDevice};
use crate::graph::NodeId;
use crate::topo::{Priority, ServerId, Topology};

/// Names of the four servers used by the small-rig presets, in order.
pub const RIG_SERVER_NAMES: [&str; 4] = ["SA", "SB", "SC", "SD"];

/// The Fig. 2 example feed: a 1400 W top breaker over two 750 W child
/// breakers, with servers SA+SB on the left and SC+SD on the right; SA is
/// high priority. All four servers are single-corded on phase L1.
///
/// Breaker limits follow the figure verbatim (the figure's "Limit" labels
/// are already usable budgets, so no extra derating is applied here).
///
/// ```
/// use capmaestro_topology::presets::figure2_feed;
///
/// let topo = figure2_feed();
/// assert_eq!(topo.server_count(), 4);
/// assert_eq!(topo.control_tree_specs().len(), 1);
/// ```
pub fn figure2_feed() -> Topology {
    let mut b = TopologyBuilder::new();
    let root = b.add_feed(FeedId::A, budget_node("Top CB", Watts::new(1400.0)));
    let left = b
        .add_node(FeedId::A, root, budget_node("Left CB", Watts::new(750.0)))
        .expect("root exists");
    let right = b
        .add_node(FeedId::A, root, budget_node("Right CB", Watts::new(750.0)))
        .expect("root exists");
    for (i, name) in RIG_SERVER_NAMES.iter().enumerate() {
        let priority = if i == 0 { Priority::HIGH } else { Priority::LOW };
        let under = if i < 2 { left } else { right };
        b.single_corded_server(*name, priority, FeedId::A, under, Phase::L1)
            .expect("attachment is valid");
    }
    b.build().expect("preset topology is valid")
}

/// The Fig. 7a stranded-power rig: two feeds (X = [`FeedId::A`],
/// Y = [`FeedId::B`]), each with a 1400 W top breaker over 750 W left/right
/// breakers. SA is dual-corded but its Y-side cord is disconnected; SB's
/// X-side cord is disconnected; SC and SD are dual-corded. SA is high
/// priority.
///
/// Left breakers carry SA and SB; right breakers carry SC and SD. All
/// servers sit on phase L1 (the rig is single-phase).
pub fn figure7a_rig() -> Topology {
    let mut b = TopologyBuilder::new();
    let mut feed_nodes: Vec<(NodeId, NodeId)> = Vec::new();
    for feed in [FeedId::A, FeedId::B] {
        let label = if feed == FeedId::A { "X" } else { "Y" };
        let root = b.add_feed(feed, budget_node(format!("{label} Top CB"), Watts::new(1400.0)));
        let left = b
            .add_node(feed, root, budget_node(format!("{label} Left CB"), Watts::new(750.0)))
            .expect("root exists");
        let right = b
            .add_node(feed, root, budget_node(format!("{label} Right CB"), Watts::new(750.0)))
            .expect("root exists");
        feed_nodes.push((left, right));
    }
    let (left_x, right_x) = feed_nodes[0];
    let (left_y, right_y) = feed_nodes[1];

    // SA: X-side only (its Y cord is pulled).
    b.single_corded_server("SA", Priority::HIGH, FeedId::A, left_x, Phase::L1)
        .expect("valid attachment");
    // SB: Y-side only (its X cord is pulled).
    b.single_corded_server("SB", Priority::LOW, FeedId::B, left_y, Phase::L1)
        .expect("valid attachment");
    // SC and SD: both feeds.
    b.dual_corded_server(
        "SC",
        Priority::LOW,
        [(FeedId::A, right_x), (FeedId::B, right_y)],
        Phase::L1,
    )
    .expect("valid attachment");
    b.dual_corded_server(
        "SD",
        Priority::LOW,
        [(FeedId::A, right_x), (FeedId::B, right_y)],
        Phase::L1,
    )
    .expect("valid attachment");
    b.build().expect("preset topology is valid")
}

/// A single-feed room of `racks` rack breakers with `servers_per_rack`
/// single-corded servers each — the rig of the distributed control-plane
/// tests and the `partition` bench, where one rack maps onto one agent
/// process.
///
/// Rack breakers are sized at 360 W per server and the room breaker at
/// 330 W per server, so the room is mildly oversubscribed (demand of
/// 420 W per server cannot be met everywhere) and every rack sees real
/// budget pressure. The first server of every rack is high priority.
///
/// # Panics
///
/// Panics if `racks` or `servers_per_rack` is zero.
///
/// ```
/// use capmaestro_topology::presets::racks_feed;
///
/// let topo = racks_feed(4, 3);
/// assert_eq!(topo.server_count(), 12);
/// assert_eq!(topo.control_tree_specs().len(), 1);
/// ```
pub fn racks_feed(racks: usize, servers_per_rack: usize) -> Topology {
    assert!(racks > 0, "at least one rack is required");
    assert!(servers_per_rack > 0, "at least one server per rack is required");
    let per_rack = Watts::new(360.0 * servers_per_rack as f64);
    let room = Watts::new(330.0 * (racks * servers_per_rack) as f64);
    let mut b = TopologyBuilder::new();
    let root = b.add_feed(FeedId::A, budget_node("Room CB", room));
    for r in 0..racks {
        let rack = b
            .add_node(FeedId::A, root, budget_node(format!("Rack{r} CB"), per_rack))
            .expect("root exists");
        for s in 0..servers_per_rack {
            let priority = if s == 0 { Priority::HIGH } else { Priority::LOW };
            b.single_corded_server(format!("r{r}s{s}"), priority, FeedId::A, rack, Phase::L1)
                .expect("attachment is valid");
        }
    }
    b.build().expect("preset topology is valid")
}

/// Per-server placement inside the Table 4 data center, returned alongside
/// the topology so simulations can map servers back to racks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RackPlacement {
    /// The server.
    pub server: ServerId,
    /// Rack index in `[0, 162)`.
    pub rack: usize,
    /// Slot within the rack.
    pub slot: usize,
    /// Phase the server's supplies tap (round-robin by slot).
    pub phase: Phase,
}

/// Parameters for [`table4_datacenter`]. Defaults follow Table 4 verbatim.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DataCenterParams {
    /// Racks in the data center.
    pub racks: usize,
    /// Servers installed per rack (the capacity-planning sweep variable,
    /// 6–45 in the paper).
    pub servers_per_rack: usize,
    /// Transformers per feed.
    pub transformers_per_feed: usize,
    /// RPPs per transformer.
    pub rpps_per_transformer: usize,
    /// CDUs (racks) per RPP.
    pub cdus_per_rpp: usize,
    /// Transformer rating, per phase.
    pub transformer_rating: Watts,
    /// RPP rating, per phase.
    pub rpp_rating: Watts,
    /// CDU rating, per phase.
    pub cdu_rating: Watts,
}

impl Default for DataCenterParams {
    fn default() -> Self {
        DataCenterParams {
            racks: 162,
            servers_per_rack: 24,
            transformers_per_feed: 2,
            rpps_per_transformer: 9,
            cdus_per_rpp: 9,
            transformer_rating: Watts::from_kilowatts(420.0),
            rpp_rating: Watts::from_kilowatts(52.0),
            cdu_rating: Watts::from_kilowatts(6.9),
        }
    }
}

impl DataCenterParams {
    /// Total servers this configuration deploys.
    pub fn total_servers(&self) -> usize {
        self.racks * self.servers_per_rack
    }
}

/// Builds the Table 4 production data center: two feeds, each with
/// transformers → RPPs → CDUs protected by 80 %-derated breakers, and
/// `servers_per_rack` dual-corded servers per rack assigned to phases
/// round-robin. Priorities are supplied by `priority_of` (slot-indexed over
/// all servers), letting callers randomize the high-priority placement.
///
/// The feed roots carry no limit — the contractual budget (700 kW per phase
/// × 95 % loading in the paper) is applied at allocation time so the
/// capacity planner can split it across feeds or hand it all to a survivor
/// after a feed failure.
///
/// Returns the topology and the rack placement of every server.
///
/// # Panics
///
/// Panics if `racks` does not equal
/// `transformers_per_feed × rpps_per_transformer × cdus_per_rpp`.
pub fn table4_datacenter(
    params: &DataCenterParams,
    mut priority_of: impl FnMut(usize) -> Priority,
) -> (Topology, Vec<RackPlacement>) {
    let racks_expected =
        params.transformers_per_feed * params.rpps_per_transformer * params.cdus_per_rpp;
    assert_eq!(
        params.racks, racks_expected,
        "rack count {} does not match distribution fan-out {}",
        params.racks, racks_expected
    );

    let mut b = TopologyBuilder::new();
    // cdu_nodes[feed][rack] = CDU node id.
    let mut cdu_nodes: Vec<Vec<NodeId>> = Vec::with_capacity(2);
    for feed in [FeedId::A, FeedId::B] {
        let label = if feed == FeedId::A { "X" } else { "Y" };
        let root = b.add_feed(feed, PowerDevice::new(format!("{label} feed"), DeviceKind::UtilityFeed));
        let mut cdus = Vec::with_capacity(params.racks);
        for t in 0..params.transformers_per_feed {
            let txf = b
                .add_node(
                    feed,
                    root,
                    PowerDevice::new(format!("{label}-TXF{t}"), DeviceKind::Transformer)
                        .with_breaker(CircuitBreaker::with_default_derating(
                            params.transformer_rating,
                        )),
                )
                .expect("root exists");
            for r in 0..params.rpps_per_transformer {
                let rpp = b
                    .add_node(
                        feed,
                        txf,
                        PowerDevice::new(format!("{label}-RPP{t}.{r}"), DeviceKind::Rpp)
                            .with_breaker(CircuitBreaker::with_default_derating(params.rpp_rating)),
                    )
                    .expect("transformer exists");
                for c in 0..params.cdus_per_rpp {
                    let cdu = b
                        .add_node(
                            feed,
                            rpp,
                            PowerDevice::new(
                                format!("{label}-CDU{t}.{r}.{c}"),
                                DeviceKind::Cdu,
                            )
                            .with_breaker(CircuitBreaker::with_default_derating(params.cdu_rating)),
                        )
                        .expect("rpp exists");
                    cdus.push(cdu);
                }
            }
        }
        cdu_nodes.push(cdus);
    }

    let mut placements = Vec::with_capacity(params.total_servers());
    let mut server_index = 0usize;
    for (rack, (cdu_a, cdu_b)) in cdu_nodes[0].iter().zip(&cdu_nodes[1]).enumerate() {
        for slot in 0..params.servers_per_rack {
            let phase = Phase::round_robin(slot);
            let priority = priority_of(server_index);
            let id = b
                .dual_corded_server(
                    format!("r{rack}s{slot}"),
                    priority,
                    [(FeedId::A, *cdu_a), (FeedId::B, *cdu_b)],
                    phase,
                )
                .expect("valid attachment");
            placements.push(RackPlacement {
                server: id,
                rack,
                slot,
                phase,
            });
            server_index += 1;
        }
    }
    let topo = b.build().expect("preset topology is valid");
    (topo, placements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::SupplyIndex as SI;

    #[test]
    fn figure2_structure() {
        let topo = figure2_feed();
        assert_eq!(topo.server_count(), 4);
        let sa = topo.server_by_name("SA").unwrap();
        assert_eq!(topo.server(sa).unwrap().priority(), Priority::HIGH);
        for name in ["SB", "SC", "SD"] {
            let id = topo.server_by_name(name).unwrap();
            assert_eq!(topo.server(id).unwrap().priority(), Priority::LOW);
        }
        let specs = topo.control_tree_specs();
        assert_eq!(specs.len(), 1);
        let spec = &specs[0];
        assert_eq!(spec.leaves().count(), 4);
        assert_eq!(spec.node(spec.root()).limit, Some(Watts::new(1400.0)));
        // Two internal children of the root, 750 W each.
        let root_children = &spec.node(spec.root()).children;
        assert_eq!(root_children.len(), 2);
        for &c in root_children {
            assert_eq!(spec.node(c).limit, Some(Watts::new(750.0)));
            assert_eq!(spec.node(c).children.len(), 2);
        }
    }

    #[test]
    fn figure7a_cords() {
        let topo = figure7a_rig();
        let sa = topo.server_by_name("SA").unwrap();
        let sb = topo.server_by_name("SB").unwrap();
        let sc = topo.server_by_name("SC").unwrap();
        assert_eq!(topo.supply_count(sa), 1);
        assert_eq!(topo.supply_count(sb), 1);
        assert_eq!(topo.supply_count(sc), 2);
        // SA hangs on feed A (X side); SB on feed B (Y side).
        assert_eq!(topo.supply_attachments(sa)[0].0, FeedId::A);
        assert_eq!(topo.supply_attachments(sb)[0].0, FeedId::B);
        // Two control trees: one per feed (single phase rig).
        assert_eq!(topo.control_tree_specs().len(), 2);
    }

    #[test]
    fn figure7a_dual_cord_supplies_are_distinct() {
        let topo = figure7a_rig();
        let sc = topo.server_by_name("SC").unwrap();
        let atts = topo.supply_attachments(sc);
        assert_eq!(atts[0].2.supply, SI::FIRST);
        assert_eq!(atts[1].2.supply, SI::SECOND);
        assert_ne!(atts[0].0, atts[1].0);
    }

    #[test]
    fn racks_feed_structure() {
        let topo = racks_feed(4, 6);
        assert_eq!(topo.server_count(), 24);
        let specs = topo.control_tree_specs();
        assert_eq!(specs.len(), 1);
        let spec = &specs[0];
        // Root carries the room limit, each rack node carries 360 W/server.
        assert_eq!(spec.node(spec.root()).limit, Some(Watts::new(330.0 * 24.0)));
        let racks = &spec.node(spec.root()).children;
        assert_eq!(racks.len(), 4);
        for &r in racks {
            assert_eq!(spec.node(r).limit, Some(Watts::new(360.0 * 6.0)));
            assert_eq!(spec.node(r).children.len(), 6);
        }
        // First slot of each rack is high priority.
        for r in 0..4 {
            for s in 0..6 {
                let id = topo.server_by_name(&format!("r{r}s{s}")).unwrap();
                let want = if s == 0 { Priority::HIGH } else { Priority::LOW };
                assert_eq!(topo.server(id).unwrap().priority(), want);
            }
        }
        assert!(topo.validate().is_ok());
    }

    #[test]
    fn table4_shape() {
        let params = DataCenterParams {
            servers_per_rack: 6,
            ..DataCenterParams::default()
        };
        let (topo, placements) = table4_datacenter(&params, |_| Priority::LOW);
        assert_eq!(topo.server_count(), 162 * 6);
        assert_eq!(placements.len(), 162 * 6);
        // 2 feeds × 3 phases = 6 control trees.
        let specs = topo.control_tree_specs();
        assert_eq!(specs.len(), 6);
        // Each phase tree sees a third of the servers (6 per rack ⇒ 2).
        for spec in &specs {
            assert_eq!(spec.leaves().count(), 162 * 2);
        }
        // Feed graph: root + 2 TXF + 18 RPP + 162 CDU + outlets.
        let g = topo.feed(FeedId::A).unwrap();
        assert_eq!(g.len(), 1 + 2 + 18 + 162 + 162 * 6);
        assert!(topo.validate().is_ok());
    }

    #[test]
    fn table4_phase_round_robin_balances() {
        let params = DataCenterParams {
            servers_per_rack: 9,
            ..DataCenterParams::default()
        };
        let (_, placements) = table4_datacenter(&params, |_| Priority::LOW);
        let mut counts = [0usize; 3];
        for p in &placements {
            counts[p.phase.index()] += 1;
        }
        assert_eq!(counts, [162 * 3, 162 * 3, 162 * 3]);
    }

    #[test]
    fn table4_priority_callback_indexing() {
        let params = DataCenterParams {
            servers_per_rack: 6,
            ..DataCenterParams::default()
        };
        // Every third server high priority.
        let (topo, placements) =
            table4_datacenter(&params, |i| if i % 3 == 0 { Priority::HIGH } else { Priority::LOW });
        let high = placements
            .iter()
            .filter(|p| topo.server(p.server).unwrap().priority() == Priority::HIGH)
            .count();
        assert_eq!(high, topo.server_count() / 3);
    }

    #[test]
    #[should_panic(expected = "does not match distribution fan-out")]
    fn table4_inconsistent_rack_count_panics() {
        let params = DataCenterParams {
            racks: 100,
            ..DataCenterParams::default()
        };
        let _ = table4_datacenter(&params, |_| Priority::LOW);
    }
}
