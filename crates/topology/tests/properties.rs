//! Property-based tests for breakers and topology invariants.

use proptest::prelude::*;

use capmaestro_topology::presets::{table4_datacenter, DataCenterParams};
use capmaestro_topology::{
    BreakerSim, BreakerState, CircuitBreaker, Phase, Priority, TripCurve,
};
use capmaestro_units::{Ratio, Seconds, Watts};

proptest! {
    /// Trip time is strictly decreasing in overload (inverse-time curve).
    #[test]
    fn trip_time_monotone(r1 in 1.01f64..9.9, delta in 0.01f64..2.0) {
        let curve = TripCurve::ul489();
        let r2 = (r1 + delta).min(9.99);
        let t1 = curve.time_to_trip(Ratio::new(r1)).unwrap();
        let t2 = curve.time_to_trip(Ratio::new(r2)).unwrap();
        prop_assert!(t2 <= t1, "trip({r2}) = {t2} > trip({r1}) = {t1}");
    }

    /// A breaker never trips while held at or below its rating.
    #[test]
    fn no_trip_at_or_below_rating(load_frac in 0.0f64..1.0, seconds in 1u32..10_000) {
        let cb = CircuitBreaker::with_default_derating(Watts::new(1000.0));
        let mut sim = BreakerSim::new(cb);
        for _ in 0..seconds.min(500) {
            sim.step(Watts::new(1000.0 * load_frac), Seconds::new(1.0));
        }
        prop_assert_eq!(sim.state(), BreakerState::Closed);
    }

    /// The thermal integrator agrees with the analytic trip time for
    /// constant overloads: the sim trips within one step of the curve.
    #[test]
    fn sim_matches_curve(overload in 1.2f64..5.0) {
        let cb = CircuitBreaker::with_default_derating(Watts::new(1000.0));
        let analytic = cb
            .curve()
            .time_to_trip(Ratio::new(overload))
            .unwrap()
            .as_f64();
        let mut sim = BreakerSim::new(cb);
        let mut tripped_at = None;
        for s in 0..10_000 {
            let state = sim.step(Watts::new(1000.0 * overload), Seconds::new(1.0));
            if state == BreakerState::Tripped {
                tripped_at = Some((s + 1) as f64);
                break;
            }
        }
        let t = tripped_at.expect("must trip under sustained overload");
        prop_assert!(
            (t - analytic).abs() <= 1.0 + 1e-9,
            "sim tripped at {t}s, curve says {analytic}s"
        );
    }

    /// Round-robin phase assignment balances any multiple-of-three count.
    #[test]
    fn round_robin_balances(groups in 1usize..60) {
        let n = groups * 3;
        let mut counts = [0usize; 3];
        for i in 0..n {
            counts[Phase::round_robin(i).index()] += 1;
        }
        prop_assert_eq!(counts, [groups, groups, groups]);
    }

    /// The Table 4 generator always produces a valid topology whose six
    /// control trees partition all supplies.
    #[test]
    fn table4_specs_partition_supplies(spr in 1usize..16) {
        let params = DataCenterParams {
            racks: 4,
            transformers_per_feed: 1,
            rpps_per_transformer: 2,
            cdus_per_rpp: 2,
            servers_per_rack: spr,
            ..DataCenterParams::default()
        };
        let (topo, placements) = table4_datacenter(&params, |i| {
            if i % 3 == 0 { Priority::HIGH } else { Priority::LOW }
        });
        prop_assert!(topo.validate().is_ok());
        prop_assert_eq!(placements.len(), 4 * spr);
        let specs = topo.control_tree_specs();
        let total_leaves: usize = specs.iter().map(|s| s.leaves().count()).sum();
        // Every server appears exactly once per feed (2 supplies each).
        prop_assert_eq!(total_leaves, topo.server_count() * 2);
    }
}
