//! Property-based tests for the allocation machinery.
//!
//! The most important property is the paper's central theorem (§4.3, proven
//! in its technical report): *a higher-priority server is throttled only
//! after every lower-priority server has been pushed to its minimum, as
//! long as the power limits allow*. We check it on flat trees (where no
//! intermediate limit can interfere) for arbitrary demands, priorities, and
//! budgets, together with conservation and safety invariants on arbitrary
//! hierarchies.

use proptest::prelude::*;

use capmaestro_core::budget::split_budget;
use capmaestro_core::metrics::{LeafInput, PriorityMetrics};
use capmaestro_core::policy::{GlobalPriority, LocalPriority, NoPriority};
use capmaestro_core::tree::{ControlTree, SupplyInput};
use capmaestro_core::CappingController;
use capmaestro_topology::{
    ControlTreeSpec, FeedId, Phase, Priority, ServerId, SpecLeaf, SpecNode, SupplyIndex,
};
use capmaestro_units::{Ratio, Watts};

const CAP_MIN: f64 = 270.0;
const CAP_MAX: f64 = 490.0;
const EPS: f64 = 1e-6;

fn leaf_metrics(demand: f64, priority: u8) -> PriorityMetrics {
    PriorityMetrics::from_leaf(&LeafInput {
        demand: Watts::new(demand),
        cap_min: Watts::new(CAP_MIN),
        cap_max: Watts::new(CAP_MAX),
        share: Ratio::ONE,
        priority: Priority(priority),
    })
}

/// A strategy for a set of leaf (demand, priority) pairs.
fn leaves_strategy(max: usize) -> impl Strategy<Value = Vec<(f64, u8)>> {
    prop::collection::vec((CAP_MIN..CAP_MAX, 0u8..4), 1..max)
}

/// Builds a flat spec: one root with a limit, N leaves.
fn flat_tree(leaves: &[(f64, u8)], root_limit: f64) -> ControlTree {
    let mut spec = ControlTreeSpec::new(FeedId::A, Phase::L1);
    let root = spec.push_node(SpecNode {
        name: "root".into(),
        limit: Some(Watts::new(root_limit)),
        parent: None,
        children: vec![],
        leaf: None,
    });
    for (i, &(_, priority)) in leaves.iter().enumerate() {
        let leaf = spec.push_node(SpecNode {
            name: format!("s{i}"),
            limit: None,
            parent: Some(root),
            children: vec![],
            leaf: Some(SpecLeaf {
                server: ServerId(i as u32),
                supply: SupplyIndex::FIRST,
                priority: Priority(priority),
            }),
        });
        spec.node_mut(root).children.push(leaf);
    }
    let mut tree = ControlTree::new(spec);
    tree.set_inputs_with(|server, _| SupplyInput {
        demand: Watts::new(leaves[server.index()].0),
        cap_min: Watts::new(CAP_MIN),
        cap_max: Watts::new(CAP_MAX),
        share: Ratio::ONE,
    });
    tree
}

/// Builds a two-level spec with per-group limits, exercising hierarchy.
fn grouped_tree(groups: &[Vec<(f64, u8)>], group_limit: f64, root_limit: f64) -> ControlTree {
    let mut spec = ControlTreeSpec::new(FeedId::A, Phase::L1);
    let root = spec.push_node(SpecNode {
        name: "root".into(),
        limit: Some(Watts::new(root_limit)),
        parent: None,
        children: vec![],
        leaf: None,
    });
    let mut server = 0u32;
    let mut demands = Vec::new();
    for (g, leaves) in groups.iter().enumerate() {
        let group = spec.push_node(SpecNode {
            name: format!("g{g}"),
            limit: Some(Watts::new(group_limit)),
            parent: Some(root),
            children: vec![],
            leaf: None,
        });
        spec.node_mut(root).children.push(group);
        for &(demand, priority) in leaves {
            let leaf = spec.push_node(SpecNode {
                name: format!("g{g}s{server}"),
                limit: None,
                parent: Some(group),
                children: vec![],
                leaf: Some(SpecLeaf {
                    server: ServerId(server),
                    supply: SupplyIndex::FIRST,
                    priority: Priority(priority),
                }),
            });
            spec.node_mut(group).children.push(leaf);
            demands.push(demand);
            server += 1;
        }
    }
    let mut tree = ControlTree::new(spec);
    tree.set_inputs_with(|server, _| SupplyInput {
        demand: Watts::new(demands[server.index()]),
        cap_min: Watts::new(CAP_MIN),
        cap_max: Watts::new(CAP_MAX),
        share: Ratio::ONE,
    });
    tree
}

proptest! {
    /// split_budget conserves power for arbitrary children and budgets.
    #[test]
    fn split_budget_conserves(
        leaves in leaves_strategy(12),
        budget in 0.0f64..12_000.0,
    ) {
        let children: Vec<PriorityMetrics> = leaves
            .iter()
            .map(|&(d, p)| leaf_metrics(d, p))
            .collect();
        let split = split_budget(Watts::new(budget), &children);
        let total: Watts = split.budgets.iter().sum();
        prop_assert!(total + split.unallocated <= Watts::new(budget + EPS));
        prop_assert!(total + split.unallocated >= Watts::new(budget - EPS));
        for b in &split.budgets {
            prop_assert!(*b >= Watts::ZERO);
        }
    }

    /// With a feasible budget, every child receives at least its cap_min
    /// and never more than its constraint.
    #[test]
    fn split_budget_floor_and_ceiling(
        leaves in leaves_strategy(10),
        extra in 0.0f64..5_000.0,
    ) {
        let children: Vec<PriorityMetrics> = leaves
            .iter()
            .map(|&(d, p)| leaf_metrics(d, p))
            .collect();
        let floor: f64 = leaves.len() as f64 * CAP_MIN;
        let split = split_budget(Watts::new(floor + extra), &children);
        for (b, c) in split.budgets.iter().zip(&children) {
            prop_assert!(*b >= c.total_cap_min() - Watts::new(EPS));
            prop_assert!(*b <= c.constraint() + Watts::new(EPS));
        }
    }

    /// Tree allocation never hands a node more than its limit and never
    /// hands leaves more than the root received, under every policy.
    #[test]
    fn allocation_safety(
        groups in prop::collection::vec(leaves_strategy(6), 1..4),
        budget in 500.0f64..20_000.0,
        group_limit in 800.0f64..3_000.0,
    ) {
        let tree = grouped_tree(&groups, group_limit, budget.max(1000.0));
        for policy in [
            &GlobalPriority::new() as &dyn capmaestro_core::policy::CappingPolicy,
            &LocalPriority::new(),
            &NoPriority::new(),
        ] {
            let alloc = tree.allocate(Watts::new(budget), policy);
            let spec = tree.spec();
            for idx in 0..spec.len() {
                if let Some(limit) = spec.node(idx).limit {
                    prop_assert!(
                        alloc.node_budget(idx) <= limit + Watts::new(EPS),
                        "node {idx} exceeds its limit under {}",
                        policy.name()
                    );
                }
            }
            prop_assert!(
                alloc.total_leaf_budget() <= Watts::new(budget + EPS),
                "leaves exceed root budget under {}",
                policy.name()
            );
        }
    }

    /// THE PAPER'S THEOREM (flat-tree case): under Global Priority, if any
    /// server is budgeted less than its demand, every strictly
    /// lower-priority server sits at its minimum budget.
    #[test]
    fn priority_dominance_flat(
        leaves in leaves_strategy(10),
        budget_frac in 0.3f64..1.2,
    ) {
        let n = leaves.len() as f64;
        let total_demand: f64 = leaves.iter().map(|(d, _)| d).sum();
        let budget = (n * CAP_MIN).max(total_demand * budget_frac);
        // Generous root limit: only the budget constrains.
        let tree = flat_tree(&leaves, budget + 1.0);
        let alloc = tree.allocate(Watts::new(budget), &GlobalPriority::new());

        for (i, &(demand_i, pri_i)) in leaves.iter().enumerate() {
            let budget_i = alloc
                .supply_budget(ServerId(i as u32), SupplyIndex::FIRST)
                .unwrap();
            let effective_demand = demand_i.max(CAP_MIN);
            let capped = budget_i < Watts::new(effective_demand - 0.001);
            if !capped {
                continue;
            }
            for (j, &(_, pri_j)) in leaves.iter().enumerate() {
                if pri_j < pri_i {
                    let budget_j = alloc
                        .supply_budget(ServerId(j as u32), SupplyIndex::FIRST)
                        .unwrap();
                    prop_assert!(
                        budget_j <= Watts::new(CAP_MIN + 0.001),
                        "P{pri_i} server {i} is capped ({budget_i} < {demand_i}) while \
                         P{pri_j} server {j} holds {budget_j} above cap_min"
                    );
                }
            }
        }
    }

    /// Dominance also holds across branches when the intermediate limits
    /// do not bind (the Fig. 2 argument, generalized).
    #[test]
    fn priority_dominance_across_groups(
        g1 in leaves_strategy(5),
        g2 in leaves_strategy(5),
        budget_frac in 0.4f64..1.0,
    ) {
        let groups = vec![g1.clone(), g2.clone()];
        let all: Vec<(f64, u8)> = groups.concat();
        let total_demand: f64 = all.iter().map(|(d, _)| d.max(CAP_MIN)).sum();
        let budget = (all.len() as f64 * CAP_MIN).max(total_demand * budget_frac);
        // Group limits generous enough to never bind.
        let tree = grouped_tree(&groups, total_demand + 1.0, budget + 1.0);
        let alloc = tree.allocate(Watts::new(budget), &GlobalPriority::new());

        for (i, &(demand_i, pri_i)) in all.iter().enumerate() {
            let budget_i = alloc
                .supply_budget(ServerId(i as u32), SupplyIndex::FIRST)
                .unwrap();
            let capped = budget_i < Watts::new(demand_i.max(CAP_MIN) - 0.001);
            if !capped {
                continue;
            }
            for (j, &(_, pri_j)) in all.iter().enumerate() {
                if pri_j < pri_i {
                    let budget_j = alloc
                        .supply_budget(ServerId(j as u32), SupplyIndex::FIRST)
                        .unwrap();
                    prop_assert!(
                        budget_j <= Watts::new(CAP_MIN + 0.001),
                        "cross-group dominance violated: {i} (P{pri_i}) capped while \
                         {j} (P{pri_j}) holds {budget_j}"
                    );
                }
            }
        }
    }

    /// The capping controller's output always stays inside the DC
    /// controllable range, whatever the inputs.
    #[test]
    fn controller_output_clipped(
        steps in prop::collection::vec((0.0f64..600.0, 0.0f64..600.0), 1..50),
    ) {
        let mut ctl = CappingController::new(
            Watts::new(CAP_MIN),
            Watts::new(CAP_MAX),
            Ratio::new(0.94),
        );
        let (lo, hi) = ctl.dc_range();
        for (budget, measured) in steps {
            let cap = ctl.update(&[Watts::new(budget)], &[Watts::new(measured)]);
            prop_assert!(cap >= lo && cap <= hi);
        }
    }

    /// Allocation is deterministic: same inputs, same budgets.
    #[test]
    fn allocation_deterministic(leaves in leaves_strategy(8)) {
        let tree = flat_tree(&leaves, 5_000.0);
        let a = tree.allocate(Watts::new(2_000.0), &GlobalPriority::new());
        let b = tree.allocate(Watts::new(2_000.0), &GlobalPriority::new());
        prop_assert_eq!(a, b);
    }

    /// Monotonicity: growing the root budget never shrinks any leaf's
    /// budget (power only flows toward servers as headroom appears).
    #[test]
    fn allocation_monotone_in_budget(
        leaves in leaves_strategy(8),
        b1 in 0.0f64..5_000.0,
        extra in 0.0f64..2_000.0,
    ) {
        let n = leaves.len() as f64;
        let b1 = b1.max(n * CAP_MIN); // stay in the feasible regime
        let b2 = b1 + extra;
        let tree = flat_tree(&leaves, 10_000.0);
        let a1 = tree.allocate(Watts::new(b1), &GlobalPriority::new());
        let a2 = tree.allocate(Watts::new(b2), &GlobalPriority::new());
        for i in 0..leaves.len() {
            let w1 = a1
                .supply_budget(ServerId(i as u32), SupplyIndex::FIRST)
                .unwrap();
            let w2 = a2
                .supply_budget(ServerId(i as u32), SupplyIndex::FIRST)
                .unwrap();
            prop_assert!(
                w2 >= w1 - Watts::new(1e-6),
                "leaf {i} shrank from {w1} to {w2} when the budget grew {b1} -> {b2}"
            );
        }
    }

    /// Collapsing priorities (No Priority) still conserves and floors.
    #[test]
    fn no_priority_conserves_and_floors(
        leaves in leaves_strategy(8),
        extra in 0.0f64..3_000.0,
    ) {
        let n = leaves.len() as f64;
        let budget = n * CAP_MIN + extra;
        let tree = flat_tree(&leaves, budget + 1.0);
        let alloc = tree.allocate(Watts::new(budget), &NoPriority::new());
        let total = alloc.total_leaf_budget();
        prop_assert!(total <= Watts::new(budget + EPS));
        for i in 0..leaves.len() {
            let w = alloc
                .supply_budget(ServerId(i as u32), SupplyIndex::FIRST)
                .unwrap();
            prop_assert!(w >= Watts::new(CAP_MIN - EPS));
            prop_assert!(w <= Watts::new(CAP_MAX + EPS));
        }
    }
}

/// Promoted proptest regression (`properties.proptest-regressions`): a group
/// whose children's cap_min floors (4 × 270 W = 1080 W) exceed its own
/// 800 W limit must still never be budgeted above that limit, however large
/// the root budget is. The group-limit path used to hand the group its full
/// floor sum, overshooting the breaker rating the limit models.
#[test]
fn regression_group_limit_caps_infeasible_floors() {
    let groups = vec![vec![(270.0, 0), (270.0, 0), (270.0, 0), (270.0, 0)]];
    let budget: f64 = 9217.311100816274;
    let group_limit = 800.0;
    let tree = grouped_tree(&groups, group_limit, budget.max(1000.0));
    for policy in [
        &GlobalPriority::new() as &dyn capmaestro_core::policy::CappingPolicy,
        &LocalPriority::new(),
        &NoPriority::new(),
    ] {
        let alloc = tree.allocate(Watts::new(budget), policy);
        let spec = tree.spec();
        for idx in 0..spec.len() {
            if let Some(limit) = spec.node(idx).limit {
                assert!(
                    alloc.node_budget(idx) <= limit + Watts::new(EPS),
                    "node {idx} budget {} exceeds its limit {limit} under {}",
                    alloc.node_budget(idx),
                    policy.name()
                );
            }
        }
        assert!(
            alloc.total_leaf_budget() <= Watts::new(budget + EPS),
            "leaves exceed root budget under {}",
            policy.name()
        );
    }
}
