//! Property-based tests of the operator event log.
//!
//! The contracts under test, per DESIGN.md "Operator API &
//! reconciliation":
//!
//! - **Replay is a pure prefix fold.** For *every* prefix `log[..k]`,
//!   `DesiredState::replay(&log[..k])` is bit-identical (watts compare by
//!   `to_bits`) to applying the same `k` envelopes incrementally. This is
//!   the property that makes `GET /v1/events?since=` a faithful
//!   replication stream: a follower that applies events one at a time
//!   lands on exactly the state a cold replay would.
//! - **Envelopes round-trip bit-exactly** through
//!   `encode_envelope`/`decode_envelope`, and decoding never panics.
//! - **A torn file is a recoverable file.** Truncating the backing file
//!   at any byte boundary — the footprint of a crash mid-append — loses
//!   at most the final frame: `OpLog::open` recovers the intact prefix,
//!   reports what it dropped, and the reopened log replays to the same
//!   `DesiredState` as the surviving events.
//!
//! Failures found by fuzz runs are promoted to named `regression_*`
//! tests at the bottom (the vendored proptest does not replay
//! `.proptest-regressions`, so inputs are pinned here verbatim).

use proptest::prelude::*;

use capmaestro_core::oplog::{decode_envelope, encode_envelope, DesiredState, Envelope, Op, OpLog};
use capmaestro_core::wire::frame;
use capmaestro_core::AllocatorKind;
use capmaestro_topology::{Priority, ServerId};
use capmaestro_units::Watts;

/// One fuzzed log entry before interpretation: `(pick, a, b, watts,
/// flags, at_s)`. The vendored proptest has no `prop_map`/`prop_oneof`,
/// so raw tuples are drawn and [`op_from`] gives them meaning, the same
/// idiom as `wire_fuzz.rs`.
type RawEntry = (u8, u32, u32, f64, u8, u64);

/// The raw-entry strategy: every field bounded so [`op_from`] always
/// builds a *valid* op (finite non-negative watts, known allocator).
fn entries(max: usize) -> impl Strategy<Value = Vec<RawEntry>> {
    prop::collection::vec(
        (0u8..6, 0u32..4096, 0u32..64, 0.0f64..5.0e6, 0u8..4, 0u64..1_000_000),
        0..max,
    )
}

/// The op addressed by `pick`, all fields fuzz-controlled.
fn op_from(pick: u8, a: u32, b: u32, watts: f64, flags: u8) -> Op {
    match pick {
        0 => Op::SetTreeBudget {
            tree: a % 8,
            watts: Watts::new(watts),
        },
        1 => Op::SetRootBudgets(
            (0..(a % 5 + 1))
                .map(|i| Watts::new(watts + f64::from(i)))
                .collect(),
        ),
        2 => Op::SetGroupPriority {
            tree: a % 8,
            node: b,
            priority: Priority(flags % 4),
        },
        3 => Op::ClearGroupPriority { tree: a % 8, node: b },
        4 => Op::SetServerEnabled {
            server: ServerId(a),
            enabled: flags & 1 == 1,
        },
        _ => Op::SetAllocator(match flags % 3 {
            0 => AllocatorKind::Waterfall,
            1 => AllocatorKind::Waterfilling,
            _ => AllocatorKind::FairShare,
        }),
    }
}

/// Sequences raw entries into envelopes the way `append` would: 1-based
/// monotone seq, fuzzed timestamps, a key on every other entry (suffixed
/// with the position so keys never collide — a collision would be an
/// idempotent replay, not an append).
fn log_from(raw: &[RawEntry]) -> Vec<Envelope> {
    raw.iter()
        .enumerate()
        .map(|(i, &(pick, a, b, watts, flags, at_s))| Envelope {
            seq: i as u64 + 1,
            at_s,
            key: (flags & 2 == 2).then(|| format!("key-{i}")),
            op: op_from(pick, a, b, watts, flags),
        })
        .collect()
}

/// Two desired states are bit-identical: every watts field compares by
/// `to_bits`, everything else by `Eq`.
fn assert_bit_identical(a: &DesiredState, b: &DesiredState) {
    assert_eq!(a.seq, b.seq, "seq watermark diverged");
    let a_budgets: Vec<(u32, u64)> = a
        .tree_budgets
        .iter()
        .map(|(&t, w)| (t, w.as_f64().to_bits()))
        .collect();
    let b_budgets: Vec<(u32, u64)> = b
        .tree_budgets
        .iter()
        .map(|(&t, w)| (t, w.as_f64().to_bits()))
        .collect();
    assert_eq!(a_budgets, b_budgets, "tree budget bits diverged");
    assert_eq!(a.group_priorities, b.group_priorities, "group priorities diverged");
    assert_eq!(a.server_enabled, b.server_enabled, "server enables diverged");
    assert_eq!(a.allocator, b.allocator, "allocator diverged");
}

/// A scratch file path unique to this test invocation; removed on drop.
struct ScratchFile(std::path::PathBuf);

impl ScratchFile {
    fn new(label: &str) -> Self {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "capmaestro-oplog-{label}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        ScratchFile(path)
    }
}

impl Drop for ScratchFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

proptest! {
    /// Replaying any prefix of the log is bit-identical to applying the
    /// same events one at a time.
    #[test]
    fn replay_of_every_prefix_matches_incremental_application(raw in entries(40)) {
        let log = log_from(&raw);
        let mut incremental = DesiredState::default();
        // k = 0 first: the empty replay must be the default state.
        assert_bit_identical(&DesiredState::replay(&[]), &incremental);
        for k in 0..log.len() {
            incremental.apply(&log[k]);
            let replayed = DesiredState::replay(&log[..=k]);
            assert_bit_identical(&replayed, &incremental);
        }
    }

    /// Envelopes survive the codec bit-exactly, and decoding what the
    /// encoder produced never fails.
    #[test]
    fn envelopes_round_trip_bit_exactly(raw in entries(40)) {
        for envelope in &log_from(&raw) {
            let decoded = decode_envelope(&encode_envelope(envelope))
                .expect("encoder output must decode");
            prop_assert_eq!(&decoded, envelope);
        }
    }

    /// Decoding arbitrary bytes classifies without panicking.
    #[test]
    fn decode_is_total(raw in prop::collection::vec(0u16..256, 0..256)) {
        let bytes: Vec<u8> = raw.into_iter().map(|b| b as u8).collect();
        let _ = decode_envelope(&bytes);
    }

    /// Truncating the backing file at any byte boundary loses at most
    /// the events whose frames the cut touched; the recovered prefix
    /// replays to the same state as the surviving envelopes.
    #[test]
    fn torn_files_recover_the_intact_prefix(raw in entries(20), cut_back in 0usize..200) {
        let log = log_from(&raw);
        let scratch = ScratchFile::new("torn");
        let mut full = Vec::new();
        let mut frame_ends = vec![0usize];
        {
            let (mut persisted, report) = OpLog::open(&scratch.0).expect("create");
            prop_assert_eq!(report.recovered, 0);
            for envelope in &log {
                persisted
                    .append(envelope.at_s, envelope.key.as_deref(), envelope.op.clone())
                    .expect("append");
                full.extend_from_slice(&frame(&encode_envelope(envelope)));
                frame_ends.push(full.len());
            }
        }
        prop_assert_eq!(std::fs::read(&scratch.0).expect("read back"), full.clone());

        // Tear the tail off at an arbitrary byte boundary.
        let cut = full.len().saturating_sub(cut_back);
        std::fs::write(&scratch.0, &full[..cut]).expect("tear");
        let (recovered, report) = OpLog::open(&scratch.0).expect("recovery never errors");

        // Recovery keeps exactly the frames that fit under the cut.
        let intact = frame_ends.iter().filter(|&&end| end > 0 && end <= cut).count();
        prop_assert_eq!(recovered.len(), intact);
        prop_assert_eq!(report.recovered, intact);
        prop_assert_eq!(report.truncated, cut > frame_ends[intact]);
        assert_bit_identical(
            &DesiredState::replay(recovered.events()),
            &DesiredState::replay(&log[..intact]),
        );
        // The file itself was truncated to the healthy prefix, so a
        // second open sees a clean log.
        let (again, clean) = OpLog::open(&scratch.0).expect("reopen");
        prop_assert_eq!(again.len(), intact);
        prop_assert!(!clean.truncated);
    }

    /// A persisted log reopens to the exact same events — the restart
    /// path `capmaestrod --oplog` relies on.
    #[test]
    fn reopening_a_clean_log_is_bit_identical(raw in entries(30)) {
        let log = log_from(&raw);
        let scratch = ScratchFile::new("reopen");
        {
            let (mut persisted, _) = OpLog::open(&scratch.0).expect("create");
            for envelope in &log {
                persisted
                    .append(envelope.at_s, envelope.key.as_deref(), envelope.op.clone())
                    .expect("append");
            }
        }
        let (reopened, report) = OpLog::open(&scratch.0).expect("reopen");
        prop_assert!(!report.truncated);
        prop_assert_eq!(reopened.events(), &log[..]);
        assert_bit_identical(
            &DesiredState::replay(reopened.events()),
            &DesiredState::replay(&log),
        );
    }
}

/// Garbage appended after a healthy log is dropped at recovery and the
/// file truncated back to the intact prefix (pinned from a fuzz run:
/// a length prefix larger than the remaining bytes reads as a torn
/// frame, not an error).
#[test]
fn regression_garbage_tail_after_healthy_prefix_is_dropped() {
    let scratch = ScratchFile::new("regression-garbage");
    {
        let (mut persisted, _) = OpLog::open(&scratch.0).expect("create");
        persisted
            .append(7, Some("k1"), Op::SetTreeBudget { tree: 0, watts: Watts::new(1240.0) })
            .expect("append");
    }
    let clean_len = std::fs::metadata(&scratch.0).expect("stat").len();
    let mut bytes = std::fs::read(&scratch.0).expect("read");
    bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0x7f, 0xde, 0xad]);
    std::fs::write(&scratch.0, &bytes).expect("pollute");

    let (recovered, report) = OpLog::open(&scratch.0).expect("recover");
    assert_eq!(recovered.len(), 1);
    assert!(report.truncated);
    assert_eq!(report.dropped_bytes, 6);
    assert_eq!(
        std::fs::metadata(&scratch.0).expect("stat").len(),
        clean_len,
        "file is truncated back to the healthy prefix"
    );
    // The idempotency index survives recovery: the same keyed append
    // replays instead of re-appending.
    let (mut recovered, _) = OpLog::open(&scratch.0).expect("reopen");
    let outcome = recovered
        .append(9, Some("k1"), Op::SetTreeBudget { tree: 0, watts: Watts::new(1240.0) })
        .expect("replay");
    assert!(outcome.replayed());
    assert_eq!(recovered.len(), 1);
}

/// A frame whose payload decodes but whose sequence number skips ahead
/// marks the end of the trusted prefix (pinned from a fuzz run).
#[test]
fn regression_sequence_break_ends_the_trusted_prefix() {
    let scratch = ScratchFile::new("regression-seqbreak");
    let first = Envelope {
        seq: 1,
        at_s: 0,
        key: None,
        op: Op::SetAllocator(AllocatorKind::Waterfilling),
    };
    let skipped = Envelope {
        seq: 3, // should be 2
        at_s: 0,
        key: None,
        op: Op::SetAllocator(AllocatorKind::FairShare),
    };
    let mut bytes = frame(&encode_envelope(&first));
    bytes.extend_from_slice(&frame(&encode_envelope(&skipped)));
    std::fs::write(&scratch.0, &bytes).expect("write");

    let (recovered, report) = OpLog::open(&scratch.0).expect("recover");
    assert_eq!(recovered.len(), 1);
    assert!(report.truncated);
    assert_eq!(recovered.events()[0].op, first.op);
}
