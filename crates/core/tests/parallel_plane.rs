//! Differential tests: the parallel control-plane hot path must produce
//! bit-identical decisions to the sequential path, for every thread
//! count. The budget split itself is always sequential; what fans out is
//! the per-server estimate/sense work and the per-tree allocation — all
//! order-preserving, so a round with 8 threads must equal a round with
//! 1 thread exactly.

use capmaestro_core::plane::{BudgetSource, ControlPlane, Farm, PlaneConfig};
use capmaestro_core::policy::PolicyKind;
use capmaestro_core::tree::ControlTree;
use capmaestro_server::{PsuBank, Server, ServerConfig};
use capmaestro_topology::presets::figure7a_rig;
use capmaestro_units::{Ratio, Seconds, Watts};

/// Builds the Fig. 7a dual-feed rig with distinct per-server demands and
/// the given hot-path thread count.
fn rig(parallelism: usize, spo: bool) -> (Farm, ControlPlane) {
    let topo = figure7a_rig();
    let trees: Vec<ControlTree> = topo
        .control_tree_specs()
        .into_iter()
        .map(ControlTree::new)
        .collect();
    let mut farm = Farm::new();
    farm.set_parallelism(parallelism);
    let demands = [414.0, 415.0, 433.0, 439.0];
    let x_shares = [1.0, 0.0, 0.53, 0.46];
    for (i, (id, _)) in topo.servers().enumerate() {
        let x = x_shares[i];
        let bank = if x == 0.0 || x == 1.0 {
            PsuBank::balanced(1, Ratio::new(0.94))
        } else {
            PsuBank::dual(x, Ratio::new(0.94))
        };
        let mut server = Server::new(ServerConfig::paper_default().with_bank(bank));
        server.set_offered_demand(Watts::new(demands[i]));
        server.settle();
        farm.insert(id, server);
    }
    let plane = ControlPlane::with_budget_source(
        trees,
        BudgetSource::SharedPerPhase(Watts::new(1400.0)),
        PlaneConfig::default()
            .with_policy(PolicyKind::GlobalPriority)
            .with_spo(spo)
            .with_control_period(Seconds::new(8.0)),
    );
    (farm, plane)
}

#[test]
fn parallel_rounds_match_sequential_bitwise() {
    for spo in [false, true] {
        let (mut farm_seq, mut plane_seq) = rig(1, spo);
        let (mut farm_par, mut plane_par) = rig(8, spo);
        for round in 0..12 {
            for _ in 0..8 {
                plane_seq.record_sample(&farm_seq);
                plane_par.record_sample(&farm_par);
                farm_seq.step_all(Seconds::new(1.0));
                farm_par.step_all(Seconds::new(1.0));
            }
            let report_seq = plane_seq.round(&mut farm_seq).clone();
            let report_par = plane_par.round(&mut farm_par).clone();
            assert_eq!(
                report_seq.dc_caps.len(),
                report_par.dc_caps.len(),
                "round {round} (spo {spo}): cap count"
            );
            for (id, cap) in &report_seq.dc_caps {
                let other = report_par.dc_caps[id];
                assert_eq!(
                    cap.as_f64().to_bits(),
                    other.as_f64().to_bits(),
                    "round {round} (spo {spo}): dc cap for {id}: {cap} vs {other}"
                );
            }
            assert_eq!(
                report_seq.stranded_reclaimed.as_f64().to_bits(),
                report_par.stranded_reclaimed.as_f64().to_bits(),
                "round {round} (spo {spo}): stranded"
            );
        }
        // The simulated server states diverged nowhere either.
        for ((id_seq, srv_seq), (id_par, srv_par)) in
            farm_seq.iter().zip(farm_par.iter())
        {
            assert_eq!(id_seq, id_par);
            let (snap_seq, snap_par) = (srv_seq.sense(), srv_par.sense());
            assert_eq!(
                snap_seq.total_ac.as_f64().to_bits(),
                snap_par.total_ac.as_f64().to_bits(),
                "{id_seq} total power (spo {spo})"
            );
            assert_eq!(
                snap_seq.throttle.as_f64().to_bits(),
                snap_par.throttle.as_f64().to_bits(),
                "{id_seq} throttle (spo {spo})"
            );
        }
    }
}

#[test]
fn step_and_sense_all_matches_separate_calls_for_any_thread_count() {
    let (mut reference, _) = rig(1, false);
    reference.step_all(Seconds::new(1.0));
    let expected = reference.sense_all();
    for threads in [1, 2, 3, 8] {
        let (mut farm, _) = rig(threads, false);
        let fused = farm.step_and_sense_all(Seconds::new(1.0));
        assert_eq!(fused.len(), expected.len());
        for ((id_a, snap_a), (id_b, snap_b)) in fused.iter().zip(&expected) {
            assert_eq!(id_a, id_b);
            assert_eq!(
                snap_a.total_ac.as_f64().to_bits(),
                snap_b.total_ac.as_f64().to_bits()
            );
            assert_eq!(snap_a.supply_ac.len(), snap_b.supply_ac.len());
            for (p_a, p_b) in snap_a.supply_ac.iter().zip(&snap_b.supply_ac) {
                assert_eq!(p_a.as_f64().to_bits(), p_b.as_f64().to_bits());
            }
        }
    }
}
