//! Property-based tests of the trace exporter contract:
//!
//! - any event sequence emitted through the `TraceRecorder` API renders
//!   to a document the strict `trace::parse` validator accepts, and the
//!   parse round-trips the surviving events faithfully;
//! - the ring buffer never exceeds its capacity and always evicts
//!   oldest-first, with `dropped + kept == pushed`;
//! - `normalize` is idempotent on anything the recorder emits;
//! - the parser never panics on arbitrary byte mutations of a valid
//!   document (it may accept or reject, but must stay total).
//!
//! The vendored proptest has no shrinking or regression files; failing
//! cases get promoted to named unit tests in `obs::trace` instead.

use proptest::prelude::*;
use std::borrow::Cow;
use std::sync::Arc;

use capmaestro_core::obs::trace::{
    self, EventKind, TraceBuffer, TraceEvent, TraceRecorder,
};
use capmaestro_core::obs::Recorder;

/// One scripted emitter action, generated from tuple strategies.
#[derive(Debug, Clone)]
enum Action {
    Advance(u64),
    Begin(u32, u32),
    End(u32, u32),
    Complete(u32, u32, u64),
    Counter(u32, f64),
    Meta(u32, Option<u32>),
}

/// Decode `(op, pid, tid, magnitude)` into an action; pids/tids are kept
/// tiny so B/E pairs actually land on shared tracks.
fn action(op: u8, pid: u32, tid: u32, magnitude: u64) -> Action {
    match op % 6 {
        0 => Action::Advance(magnitude),
        1 => Action::Begin(pid, tid),
        2 => Action::End(pid, tid),
        3 => Action::Complete(pid, tid, magnitude),
        4 => Action::Counter(pid, magnitude as f64 / 7.0),
        _ => Action::Meta(pid, tid.is_multiple_of(2).then_some(tid)),
    }
}

/// Replay a script into a recorder, tracking how many events each step
/// *should* have pushed. `end_slice` is unconditional in the API (the
/// renderer handles orphans), so every action but Advance/Meta pushes
/// exactly one event.
fn replay(recorder: &TraceRecorder, script: &[(u8, u32, u32, u64)]) -> u64 {
    let mut now = 0u64;
    let mut pushed = 0u64;
    for &(op, pid, tid, magnitude) in script {
        match action(op, pid % 3, tid % 3, magnitude % 10_000) {
            Action::Advance(by) => {
                now += by;
                recorder.trace_set_time_us(now);
            }
            Action::Begin(pid, tid) => {
                recorder.begin_slice(pid, tid, "s");
                pushed += 1;
            }
            Action::End(pid, tid) => {
                recorder.end_slice(pid, tid, "s");
                pushed += 1;
            }
            Action::Complete(pid, tid, dur) => {
                recorder.complete_slice(pid, tid, "x", dur);
                pushed += 1;
            }
            Action::Counter(pid, value) => {
                recorder.counter(pid, "c", value);
                pushed += 1;
            }
            Action::Meta(pid, tid) => recorder.name_track(pid, tid, "t"),
        }
    }
    pushed
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever an emitter does, the rendered document validates, and
    /// the drop accounting closes: declared drops + surviving events
    /// equal everything pushed.
    #[test]
    fn arbitrary_emissions_render_to_valid_traces(
        script in prop::collection::vec((0u8..6, 0u32..4, 0u32..4, 0u64..50_000), 0..120),
    ) {
        let recorder = TraceRecorder::new();
        let pushed = replay(&recorder, &script);
        prop_assert_eq!(recorder.pushed_events(), pushed);
        let text = recorder.render(None);
        let parsed = trace::parse(&text);
        prop_assert!(parsed.is_ok(), "render must validate: {:?}", parsed.err());
        let parsed = parsed.unwrap();
        prop_assert_eq!(parsed.dropped + parsed.events.len() as u64, pushed);
        // Canonical renders normalize idempotently.
        let normal = trace::normalize(&text);
        prop_assert!(normal.is_ok());
        let normal = normal.unwrap();
        prop_assert_eq!(trace::normalize(&normal).unwrap(), normal);
    }

    /// Same property under a tiny ring: overflow-heavy schedules must
    /// still produce balanced, honestly-counted documents.
    #[test]
    fn overflowing_rings_stay_balanced_and_honest(
        script in prop::collection::vec((0u8..6, 0u32..4, 0u32..4, 0u64..50_000), 0..120),
        capacity in 1usize..16,
    ) {
        let recorder = TraceRecorder::with_capacity(capacity);
        let pushed = replay(&recorder, &script);
        prop_assert!(recorder.len() <= capacity);
        prop_assert_eq!(recorder.dropped_events() + recorder.len() as u64, pushed);
        let parsed = trace::parse(&recorder.render(None));
        prop_assert!(parsed.is_ok(), "overflowed render must validate: {:?}", parsed.err());
        // Orphaned `E`s sit in the ring but are skipped (and declared
        // dropped) at render time, so the document's own event count —
        // not the ring length — closes the accounting.
        let parsed = parsed.unwrap();
        prop_assert_eq!(parsed.dropped + parsed.events.len() as u64, pushed);
    }

    /// The raw ring: capacity is never exceeded, eviction is strictly
    /// oldest-first (the survivors are exactly the trailing window), and
    /// the counters account for every push.
    #[test]
    fn buffer_caps_and_evicts_oldest_first(
        capacity in 1usize..32,
        pushes in 0usize..100,
    ) {
        let mut ring = TraceBuffer::new(capacity);
        for i in 0..pushes {
            ring.push(TraceEvent {
                name: Cow::Borrowed("e"),
                pid: 1,
                tid: 0,
                ts_us: i as u64,
                kind: EventKind::Counter { value: i as f64 },
            });
            prop_assert!(ring.len() <= capacity);
        }
        prop_assert_eq!(ring.pushed(), pushes as u64);
        prop_assert_eq!(ring.dropped(), pushes.saturating_sub(capacity) as u64);
        let kept: Vec<u64> = ring.iter().map(|e| e.ts_us).collect();
        let expected: Vec<u64> =
            (pushes.saturating_sub(capacity)..pushes).map(|i| i as u64).collect();
        prop_assert_eq!(kept, expected, "survivors must be the trailing window");
    }

    /// Parsing a surviving document recovers the events the renderer
    /// kept: kinds, tracks, timestamps, and counter values round-trip.
    #[test]
    fn rendered_events_round_trip_through_parse(
        counters in prop::collection::vec((0u32..4, 0u64..1_000_000, 0u64..9_000), 1..40),
    ) {
        let recorder = TraceRecorder::new();
        let mut now = 0u64;
        let mut expected = Vec::new();
        for &(pid, numer, advance) in &counters {
            now += advance;
            recorder.trace_set_time_us(now);
            let value = numer as f64 / 3.0;
            recorder.counter(pid, "c", value);
            expected.push((pid, now, value));
        }
        let parsed = trace::parse(&recorder.render(None)).expect("valid");
        let got: Vec<(u32, u64, f64)> = parsed
            .events
            .iter()
            .map(|e| match e.kind {
                EventKind::Counter { value } => (e.pid, e.ts_us, value),
                ref other => panic!("unexpected event kind {other:?}"),
            })
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Total parser: arbitrary single-byte corruption of a valid
    /// document never panics, and if the mutant still parses, its
    /// events still satisfy the semantic invariants (enforced inside
    /// `parse` itself — this property just drives the input space).
    #[test]
    fn parser_is_total_under_byte_mutation(
        script in prop::collection::vec((0u8..6, 0u32..4, 0u32..4, 0u64..50_000), 1..40),
        index in 0usize..10_000,
        byte in 0u16..256,
    ) {
        let recorder = TraceRecorder::new();
        replay(&recorder, &script);
        let text = recorder.render(None);
        let mut bytes = text.into_bytes();
        let index = index % bytes.len();
        bytes[index] = byte as u8;
        // Invalid UTF-8 is rejected before the parser ever runs.
        if let Ok(mutant) = String::from_utf8(bytes) {
            let _ = trace::parse(&mutant);
        }
    }
}

/// The forwarding recorder keeps `Recorder` semantics intact for the
/// inner sink even while buffering trace events — spot-checked here
/// (not property-driven) because it needs a concrete registry.
#[test]
fn forwarded_registry_sees_every_metric_call() {
    use capmaestro_core::obs::MetricsRegistry;
    let registry = Arc::new(MetricsRegistry::new());
    let recorder = TraceRecorder::new().with_forward(registry.clone() as Arc<dyn Recorder>);
    recorder.counter_add(capmaestro_core::obs::names::ROUNDS_TOTAL, 5);
    recorder.gauge_set(capmaestro_core::obs::names::STALE_SERVERS, 3.0);
    let snap = registry.snapshot();
    assert_eq!(snap.counters[0].value, 5);
    assert_eq!(snap.gauges[0].value, 3.0);
}
