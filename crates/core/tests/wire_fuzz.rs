//! Property-based fuzzing of the wire codec behind the socket transport.
//!
//! The contract under test: decoding is *total* — `decode_up`,
//! `decode_down`, and `split_frame` classify any byte sequence as a
//! message or a [`WireError`] without panicking or allocating beyond the
//! frame cap; every message the encoders can produce round-trips
//! *bit-exactly* (watts compare by `to_bits`, not `==`); no strict
//! prefix of a valid payload decodes; and framing survives arbitrary
//! re-chunking of the byte stream, as a socket delivers it.
//!
//! Failures found by earlier fuzz runs are promoted to the named
//! `regression_*` tests at the bottom (the vendored proptest does not
//! replay `.proptest-regressions`, so the inputs are pinned here
//! verbatim).

use proptest::prelude::*;

use capmaestro_core::metrics::{LeafInput, PriorityMetrics};
use capmaestro_core::wire::{
    decode_down, decode_up, encode_down, encode_up, frame, split_frame, WireError,
    MAX_FRAME_BYTES, WIRE_VERSION,
};
use capmaestro_core::{DownMsg, UpMsg};
use capmaestro_topology::Priority;
use capmaestro_units::{Ratio, Watts};

/// Appends a little-endian u32 (test-local mirror of the codec's
/// private writer, for crafting hostile payloads byte by byte).
fn le32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u64.
fn le64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Builds a metrics summary from fuzzed `(demand, priority)` leaves.
fn metrics_from(leaves: &[(f64, u8)], constraint: f64) -> PriorityMetrics {
    let per_leaf: Vec<PriorityMetrics> = leaves
        .iter()
        .map(|&(demand, priority)| {
            PriorityMetrics::from_leaf(&LeafInput {
                demand: Watts::new(demand),
                cap_min: Watts::new(270.0),
                cap_max: Watts::new(490.0),
                share: Ratio::ONE,
                priority: Priority(priority),
            })
        })
        .collect();
    PriorityMetrics::aggregate(per_leaf.iter(), Some(Watts::new(constraint)))
}

/// The up message addressed by `pick`, all fields fuzz-controlled.
fn up_message(pick: usize, a: u64, b: u64, leaves: &[(f64, u8)]) -> UpMsg {
    match pick {
        0 => UpMsg::Hello {
            worker: (a % 10_000) as usize,
            workers_total: (b % 10_000) as usize,
        },
        1 => UpMsg::Metrics {
            worker: (a % 10_000) as usize,
            round: b,
            metrics: vec![
                (((a % 7) as usize, (b % 11) as usize), metrics_from(leaves, 900.0)),
                ((8, 3), PriorityMetrics::empty()),
            ],
        },
        2 => UpMsg::Enforced {
            worker: (a % 10_000) as usize,
            round: b,
        },
        3 => UpMsg::Advanced {
            worker: (a % 10_000) as usize,
            seconds: (b % u32::MAX as u64) as u32,
            violations_total: a,
        },
        _ => UpMsg::Heartbeat {
            worker: (a % 10_000) as usize,
            nonce: b,
        },
    }
}

/// The down message addressed by `pick`.
fn down_message(pick: usize, a: u64, budgets: &[(usize, usize, f64)]) -> DownMsg {
    match pick {
        0 => DownMsg::Welcome {
            workers_total: (a % 10_000) as usize,
        },
        1 => DownMsg::Gather { round: a },
        2 => DownMsg::Budgets {
            round: a,
            budgets: budgets
                .iter()
                .map(|&(t, c, w)| ((t, c), Watts::new(w)))
                .collect(),
        },
        3 => DownMsg::Advance {
            seconds: (a % u32::MAX as u64) as u32,
        },
        4 => DownMsg::HeartbeatAck { nonce: a },
        _ => DownMsg::Shutdown,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics either decoder or the framer;
    /// a framing error is only ever an oversized length prefix.
    #[test]
    fn decoding_byte_soup_is_total(raw in prop::collection::vec(0usize..256, 0..600)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let _ = decode_up(&bytes);
        let _ = decode_down(&bytes);
        match split_frame(&bytes) {
            Ok(None) => {}
            Ok(Some((payload, consumed))) => {
                assert!(consumed <= bytes.len());
                assert_eq!(payload.len() + 4, consumed);
            }
            Err(WireError::Oversized { len }) => assert!(len > MAX_FRAME_BYTES),
            Err(other) => panic!("split_frame may only fail Oversized, got {other:?}"),
        }
    }

    /// Soup behind a valid version byte and a plausible tag reaches the
    /// per-variant field decoders; still no panics, no huge allocations.
    #[test]
    fn valid_headers_over_soup_never_panic(
        tag in 0usize..9,
        raw in prop::collection::vec(0usize..256, 0..400),
    ) {
        let mut bytes = vec![WIRE_VERSION, tag as u8];
        bytes.extend(raw.iter().map(|&b| b as u8));
        let _ = decode_up(&bytes);
        let _ = decode_down(&bytes);
    }

    /// Every rack → room message round-trips to an equal message, and
    /// the re-encoding is byte-identical (the codec is canonical).
    #[test]
    fn up_messages_round_trip(
        pick in 0usize..5,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        leaves in prop::collection::vec((270.0f64..490.0, 0u8..4), 1..6),
    ) {
        let msg = up_message(pick, a, b, &leaves);
        let payload = encode_up(&msg);
        let decoded = decode_up(&payload).expect("encoder output must decode");
        assert_eq!(decoded, msg);
        assert_eq!(encode_up(&decoded), payload, "re-encoding must be canonical");
    }

    /// Every room → rack message round-trips, and watt quantities come
    /// back bit-exact — the differential tests depend on it.
    #[test]
    fn down_messages_round_trip_bit_exactly(
        pick in 0usize..6,
        a in 0u64..u64::MAX,
        budgets in prop::collection::vec((0usize..8, 0usize..64, 0.0f64..1.0e9), 0..12),
    ) {
        let msg = down_message(pick, a, &budgets);
        let payload = encode_down(&msg);
        let decoded = decode_down(&payload).expect("encoder output must decode");
        assert_eq!(decoded, msg);
        if let (DownMsg::Budgets { budgets: sent, .. }, DownMsg::Budgets { budgets: got, .. }) =
            (&msg, &decoded)
        {
            for ((_, s), (_, g)) in sent.iter().zip(got) {
                assert_eq!(s.as_f64().to_bits(), g.as_f64().to_bits());
            }
        }
    }

    /// No strict prefix of a valid payload decodes: truncation is always
    /// an error, never a shorter message (the grammar is prefix-free).
    #[test]
    fn strict_prefixes_never_decode(
        pick in 0usize..5,
        a in 0u64..u64::MAX,
        b in 0u64..u64::MAX,
        leaves in prop::collection::vec((270.0f64..490.0, 0u8..4), 1..4),
    ) {
        let up = encode_up(&up_message(pick, a, b, &leaves));
        for cut in 0..up.len() {
            assert!(decode_up(&up[..cut]).is_err(), "up prefix {cut}/{} decoded", up.len());
        }
        let down = encode_down(&down_message(pick, a, &[(0, 1, 320.0)]));
        for cut in 0..down.len() {
            assert!(decode_down(&down[..cut]).is_err(), "down prefix {cut}/{} decoded", down.len());
        }
    }

    /// A flipped version byte is always BadVersion; an out-of-range tag
    /// is always BadTag — corruption in the header never misdecodes.
    #[test]
    fn corrupt_headers_are_classified(
        pick in 0usize..6,
        a in 0u64..u64::MAX,
        version in 0usize..256,
        tag in 7usize..256,
    ) {
        let mut payload = encode_down(&down_message(pick, a, &[(0, 0, 1.0)]));
        if version as u8 != WIRE_VERSION {
            payload[0] = version as u8;
            assert_eq!(
                decode_down(&payload),
                Err(WireError::BadVersion { got: version as u8 })
            );
            payload[0] = WIRE_VERSION;
        }
        payload[1] = tag as u8;
        assert_eq!(decode_down(&payload), Err(WireError::BadTag { got: tag as u8 }));
        assert_eq!(decode_up(&payload), Err(WireError::BadTag { got: tag as u8 }));
    }

    /// A stream of frames survives arbitrary re-chunking: feeding the
    /// buffer in fuzz-sized slices recovers exactly the sent payloads,
    /// in order, regardless of how the bytes were split.
    #[test]
    fn frame_stream_survives_rechunking(
        picks in prop::collection::vec((0usize..6, 0u64..u64::MAX), 1..8),
        chunk_sizes in prop::collection::vec(1usize..40, 1..64),
    ) {
        let sent: Vec<Vec<u8>> = picks
            .iter()
            .map(|&(pick, a)| encode_down(&down_message(pick, a, &[(1, 2, 640.0)])))
            .collect();
        let stream: Vec<u8> = sent.iter().flat_map(|p| frame(p)).collect();

        let mut buf: Vec<u8> = Vec::new();
        let mut fed = 0usize;
        let mut chunks = chunk_sizes.iter().cycle();
        let mut received: Vec<Vec<u8>> = Vec::new();
        while fed < stream.len() || !buf.is_empty() {
            if let Some((payload, consumed)) = split_frame(&buf).expect("stream is well-formed") {
                received.push(payload.to_vec());
                buf.drain(..consumed);
                continue;
            }
            if fed == stream.len() {
                panic!("stream exhausted with {} buffered bytes", buf.len());
            }
            let take = (*chunks.next().unwrap()).min(stream.len() - fed);
            buf.extend_from_slice(&stream[fed..fed + take]);
            fed += take;
        }
        assert_eq!(received, sent);
    }

    /// Any length prefix over the cap tears the stream down, no matter
    /// what bytes follow — a hostile peer cannot provoke an allocation.
    #[test]
    fn oversized_prefixes_always_reject(
        over in 0usize..1_000_000,
        trailer in prop::collection::vec(0usize..256, 0..32),
    ) {
        let len = MAX_FRAME_BYTES + 1 + over;
        let mut buf = (len as u32).to_le_bytes().to_vec();
        buf.extend(trailer.iter().map(|&b| b as u8));
        assert_eq!(split_frame(&buf), Err(WireError::Oversized { len }));
    }
}

// ---------------------------------------------------------------------
// Promoted regressions (see `wire_fuzz.proptest-regressions`). The
// vendored proptest generates fresh cases only, so inputs that once
// failed are pinned here verbatim.
// ---------------------------------------------------------------------

/// The empty payload — a peer that frames zero bytes — is Truncated in
/// both directions, not an index panic on the missing version byte.
#[test]
fn regression_empty_payload_is_truncated() {
    assert_eq!(decode_up(&[]), Err(WireError::Truncated));
    assert_eq!(decode_down(&[]), Err(WireError::Truncated));
}

/// A payload holding only the version byte dies on the missing tag,
/// cleanly: Truncated, not BadTag on uninitialized memory.
#[test]
fn regression_version_only_payload_is_truncated() {
    assert_eq!(decode_up(&[WIRE_VERSION]), Err(WireError::Truncated));
    assert_eq!(decode_down(&[WIRE_VERSION]), Err(WireError::Truncated));
}

/// A zero-length frame is *valid framing* (four zero bytes, empty
/// payload) — the framer must hand the empty payload up, and only the
/// payload decoder calls it Truncated. Conflating the two layers once
/// dropped the three buffered bytes that followed.
#[test]
fn regression_zero_length_frame_splits_cleanly() {
    let mut buf = vec![0u8, 0, 0, 0];
    buf.extend_from_slice(&[9, 9, 9]);
    let (payload, consumed) = split_frame(&buf).unwrap().expect("complete frame");
    assert!(payload.is_empty());
    assert_eq!(consumed, 4);
    assert_eq!(decode_up(&[]), Err(WireError::Truncated));
}

/// A length prefix of exactly `MAX_FRAME_BYTES` is legal and must wait
/// for its bytes (`Ok(None)`), while one byte more is Oversized — no
/// off-by-one at the cap.
#[test]
fn regression_frame_cap_boundary() {
    let at_cap = (MAX_FRAME_BYTES as u32).to_le_bytes().to_vec();
    assert_eq!(split_frame(&at_cap), Ok(None));
    let over = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes().to_vec();
    assert_eq!(
        split_frame(&over),
        Err(WireError::Oversized {
            len: MAX_FRAME_BYTES + 1
        })
    );
}

/// A Budgets payload claiming `u32::MAX` entries inside a tiny buffer:
/// the count guard must reject it before reserving capacity.
#[test]
fn regression_hostile_budget_count_does_not_allocate() {
    let mut payload = vec![WIRE_VERSION, 3]; // down tag: Budgets
    le64(&mut payload, 0); // round
    le32(&mut payload, u32::MAX); // budget count
    assert_eq!(decode_down(&payload), Err(WireError::Truncated));
}

/// Negative zero is a *valid* watt value (`-0.0 < 0.0` is false) and
/// its sign bit must survive the round trip — the codec promises bit
/// patterns, not numeric equality.
#[test]
fn regression_negative_zero_watts_round_trips_bit_exactly() {
    let msg = DownMsg::Budgets {
        round: 0,
        budgets: vec![((0, 0), Watts::new(-0.0))],
    };
    let DownMsg::Budgets { budgets, .. } = decode_down(&encode_down(&msg)).unwrap() else {
        panic!("wrong variant");
    };
    assert_eq!(budgets[0].1.as_f64().to_bits(), (-0.0f64).to_bits());
}

/// Metrics whose priority levels arrive in ascending order are rejected
/// as BadValue by the summary validator — the decoder must not trust
/// the peer to have sorted them.
#[test]
fn regression_unsorted_priority_levels_are_rejected() {
    let mut payload = vec![WIRE_VERSION, 2]; // up tag: Metrics
    le32(&mut payload, 0); // worker
    le64(&mut payload, 0); // round
    le32(&mut payload, 1); // one (cut, metrics) entry
    le32(&mut payload, 0);
    le32(&mut payload, 0); // cut (0, 0)
    le64(&mut payload, 800.0f64.to_bits()); // constraint
    le32(&mut payload, 2); // two levels, ascending: invalid
    for priority in [0u8, 1] {
        payload.push(priority);
        le64(&mut payload, 270.0f64.to_bits()); // cap_min
        le64(&mut payload, 430.0f64.to_bits()); // demand
        le64(&mut payload, 430.0f64.to_bits()); // request
    }
    assert_eq!(
        decode_up(&payload),
        Err(WireError::BadValue {
            what: "priority levels must be strictly descending"
        })
    );
}
