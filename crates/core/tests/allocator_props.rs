//! Property-based tests of the [`Allocator`] contract, run against every
//! built-in policy ([`AllocatorKind::ALL`]): the waterfall, the projected
//! waterfilling solver, and the fair-share solver must all
//!
//! - conserve power: `Σ budgets + returned unallocated == input budget`;
//! - honor the `cap_min` floors whenever the budget covers them (and
//!   never exceed a child's constraint);
//! - emit only finite, non-negative watts, whatever the inputs.
//!
//! The children are arbitrary aggregates (1–3 leaves each, mixed
//! priorities, optional node limits), so the solvers see the same shapes
//! the tree's budget-down pass feeds them.

use proptest::prelude::*;

use capmaestro_core::alloc::{AllocScratch, AllocatorKind};
use capmaestro_core::metrics::{LeafInput, PriorityMetrics};
use capmaestro_topology::Priority;
use capmaestro_units::{Ratio, Watts};

const CAP_MIN: f64 = 270.0;
const CAP_MAX: f64 = 490.0;
const EPS: f64 = 1e-6;

/// One child node: 1–3 leaves plus a limit knob. Knob values below 0.6
/// mean "no limit"; values in `[0.6, 1.2]` become a node limit of that
/// fraction of the summed cap_max (so limits bind sometimes but are
/// never absurd).
type ChildSpec = (Vec<(f64, u8)>, f64);

fn child_metrics(spec: &ChildSpec) -> PriorityMetrics {
    let (leaves, limit_knob) = spec;
    let limit_frac = (*limit_knob >= 0.6).then_some(*limit_knob);
    let leaf_metrics: Vec<PriorityMetrics> = leaves
        .iter()
        .map(|&(demand, priority)| {
            PriorityMetrics::from_leaf(&LeafInput {
                demand: Watts::new(demand),
                cap_min: Watts::new(CAP_MIN),
                cap_max: Watts::new(CAP_MAX),
                share: Ratio::ONE,
                priority: Priority(priority),
            })
        })
        .collect();
    let limit = limit_frac.map(|f| Watts::new(f * CAP_MAX * leaves.len() as f64));
    PriorityMetrics::aggregate(leaf_metrics.iter(), limit)
}

fn children_strategy(max_children: usize) -> impl Strategy<Value = Vec<ChildSpec>> {
    prop::collection::vec(
        (
            prop::collection::vec((CAP_MIN..CAP_MAX, 0u8..4), 1..4),
            0.0f64..1.2,
        ),
        1..max_children,
    )
}

/// The feasibility floor the allocators guarantee: each child's cap_min
/// sum, clamped at its constraint (a limit below the floor caps what the
/// child may ever receive).
fn clamped_floor(child: &PriorityMetrics) -> Watts {
    child.total_cap_min().min(child.constraint())
}

proptest! {
    /// Every allocator conserves the budget exactly (to f64 rounding):
    /// what the children receive plus what the node keeps is what the
    /// node was given, and no child's grant is negative or non-finite.
    #[test]
    fn every_allocator_conserves_budget(
        specs in children_strategy(8),
        budget in 0.0f64..15_000.0,
    ) {
        let children: Vec<PriorityMetrics> = specs.iter().map(child_metrics).collect();
        let mut scratch = AllocScratch::default();
        let mut budgets = Vec::new();
        for kind in AllocatorKind::ALL {
            let allocator = kind.allocator();
            let leftover =
                allocator.split(Watts::new(budget), &children, &mut scratch, &mut budgets);
            prop_assert_eq!(budgets.len(), children.len());
            let granted: f64 = budgets.iter().map(|b| b.as_f64()).sum();
            prop_assert!(
                (granted + leftover.as_f64() - budget).abs() <= EPS,
                "{} leaks power: granted {granted} + leftover {leftover} != {budget}",
                kind.name()
            );
            prop_assert!(leftover >= Watts::ZERO, "{} negative leftover", kind.name());
        }
    }

    /// With a budget covering every clamped floor, each child receives at
    /// least its floor; no child ever exceeds its constraint — for every
    /// allocator.
    #[test]
    fn every_allocator_honors_floors_and_constraints(
        specs in children_strategy(8),
        extra in 0.0f64..6_000.0,
    ) {
        let children: Vec<PriorityMetrics> = specs.iter().map(child_metrics).collect();
        let floor_sum: f64 = children.iter().map(|c| clamped_floor(c).as_f64()).sum();
        let budget = floor_sum + extra;
        let mut scratch = AllocScratch::default();
        let mut budgets = Vec::new();
        for kind in AllocatorKind::ALL {
            let allocator = kind.allocator();
            allocator.split(Watts::new(budget), &children, &mut scratch, &mut budgets);
            for (b, c) in budgets.iter().zip(&children) {
                prop_assert!(
                    *b >= clamped_floor(c) - Watts::new(EPS),
                    "{} starves a child below its cap_min floor: {b} < {}",
                    kind.name(),
                    clamped_floor(c)
                );
                prop_assert!(
                    *b <= c.constraint() + Watts::new(EPS),
                    "{} overdrives a child past its constraint: {b} > {}",
                    kind.name(),
                    c.constraint()
                );
            }
        }
    }

    /// Even with budgets too small for the floors (the infeasible regime),
    /// every allocator stays finite, non-negative, and conservative.
    #[test]
    fn every_allocator_is_finite_on_infeasible_budgets(
        specs in children_strategy(8),
        frac in 0.0f64..1.0,
    ) {
        let children: Vec<PriorityMetrics> = specs.iter().map(child_metrics).collect();
        let floor_sum: f64 = children.iter().map(|c| clamped_floor(c).as_f64()).sum();
        let budget = floor_sum * frac; // strictly below the floors (unless 0)
        let mut scratch = AllocScratch::default();
        let mut budgets = Vec::new();
        for kind in AllocatorKind::ALL {
            let allocator = kind.allocator();
            let leftover =
                allocator.split(Watts::new(budget), &children, &mut scratch, &mut budgets);
            prop_assert!(leftover.as_f64().is_finite());
            let mut granted = 0.0;
            for b in &budgets {
                prop_assert!(
                    b.as_f64().is_finite() && *b >= Watts::ZERO,
                    "{} emitted a non-finite or negative budget: {b}",
                    kind.name()
                );
                granted += b.as_f64();
            }
            prop_assert!(
                granted + leftover.as_f64() <= budget + EPS,
                "{} overspends an infeasible budget",
                kind.name()
            );
        }
    }

    /// Scratch reuse across policies never changes a result: splitting
    /// with a shared, warm [`AllocScratch`] matches a fresh one bit for
    /// bit, in any policy order.
    #[test]
    fn scratch_reuse_is_bit_identical(
        specs in children_strategy(6),
        budget in 0.0f64..10_000.0,
    ) {
        let children: Vec<PriorityMetrics> = specs.iter().map(child_metrics).collect();
        let mut shared = AllocScratch::default();
        let mut shared_budgets = Vec::new();
        for kind in AllocatorKind::ALL.into_iter().rev() {
            let allocator = kind.allocator();
            let shared_leftover = allocator.split(
                Watts::new(budget),
                &children,
                &mut shared,
                &mut shared_budgets,
            );
            let mut fresh = AllocScratch::default();
            let mut fresh_budgets = Vec::new();
            let fresh_leftover = allocator.split(
                Watts::new(budget),
                &children,
                &mut fresh,
                &mut fresh_budgets,
            );
            prop_assert_eq!(
                shared_leftover.as_f64().to_bits(),
                fresh_leftover.as_f64().to_bits()
            );
            for (s, f) in shared_budgets.iter().zip(&fresh_budgets) {
                prop_assert_eq!(s.as_f64().to_bits(), f.as_f64().to_bits());
            }
        }
    }
}
