//! Power-demand estimation by throttle/power regression (paper §5).
//!
//! A capped server's measured power understates what its workload *wants*.
//! CapMaestro estimates the uncapped demand by regressing per-second
//! `(throttle level, power)` samples over a sliding 16-sample window:
//! the regression intercept is the power at 0 % throttling. When samples at
//! 0 % throttle exist in the window, their measured power is used directly.

use std::collections::VecDeque;

use capmaestro_units::{Ratio, Watts};

/// Number of per-second samples in the paper's regression window.
pub const DEFAULT_WINDOW: usize = 16;

/// Throttle levels at or below this are treated as "not throttled".
const ZERO_THROTTLE_EPS: f64 = 1e-3;

/// Minimum throttle variance for a meaningful regression slope.
const MIN_VARIANCE: f64 = 1e-6;

/// Sliding-window demand estimator for one server.
///
/// # Examples
///
/// ```
/// use capmaestro_core::estimator::DemandEstimator;
/// use capmaestro_units::{Ratio, Watts};
///
/// let mut est = DemandEstimator::new();
/// // A server throttled to varying degrees; true demand is 430 W with
/// // dynamic range 270 (idle 160): power = 430 − 270 × throttle.
/// for t in [0.2, 0.3, 0.4, 0.25] {
///     est.push(Ratio::new(t), Watts::new(430.0 - 270.0 * t));
/// }
/// let demand = est.estimate().unwrap();
/// assert!((demand.as_f64() - 430.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct DemandEstimator {
    window: VecDeque<(f64, Watts)>,
    capacity: usize,
}

impl DemandEstimator {
    /// Creates an estimator with the paper's 16-sample window.
    pub fn new() -> Self {
        DemandEstimator::with_window(DEFAULT_WINDOW)
    }

    /// Creates an estimator with a custom window length.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` (regression needs at least two samples).
    pub fn with_window(capacity: usize) -> Self {
        assert!(capacity >= 2, "regression window needs at least 2 samples");
        DemandEstimator {
            window: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Records one per-second sample of (throttle level, measured power).
    pub fn push(&mut self, throttle: Ratio, power: Watts) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window
            .push_back((throttle.clamp_fraction().as_f64(), power));
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Clears the window (e.g. after a workload change detection).
    pub fn clear(&mut self) {
        self.window.clear();
    }

    /// Estimates the uncapped power demand.
    ///
    /// Preference order (per §5):
    ///
    /// 1. mean measured power over zero-throttle samples, when any exist;
    /// 2. the intercept of an ordinary-least-squares fit of power against
    ///    throttle, clamped to at least the highest power observed
    ///    (demand can never be below a measured, throttled power);
    /// 3. `None` when the window is empty or the regression is degenerate
    ///    (constant non-zero throttle) — callers should fall back to the
    ///    last measured power.
    pub fn estimate(&self) -> Option<Watts> {
        if self.window.is_empty() {
            return None;
        }
        // Case 1: unthrottled samples measure demand directly.
        let zero: Vec<Watts> = self
            .window
            .iter()
            .filter(|(t, _)| *t <= ZERO_THROTTLE_EPS)
            .map(|(_, p)| *p)
            .collect();
        if !zero.is_empty() {
            let sum: Watts = zero.iter().sum();
            return Some(sum / zero.len() as f64);
        }
        // Case 2: OLS intercept at throttle = 0.
        let n = self.window.len() as f64;
        if self.window.len() < 2 {
            return None;
        }
        let mean_t: f64 = self.window.iter().map(|(t, _)| t).sum::<f64>() / n;
        let mean_p: f64 = self.window.iter().map(|(_, p)| p.as_f64()).sum::<f64>() / n;
        let var_t: f64 = self
            .window
            .iter()
            .map(|(t, _)| (t - mean_t) * (t - mean_t))
            .sum::<f64>()
            / n;
        if var_t < MIN_VARIANCE {
            return None;
        }
        let cov: f64 = self
            .window
            .iter()
            .map(|(t, p)| (t - mean_t) * (p.as_f64() - mean_p))
            .sum::<f64>()
            / n;
        let slope = cov / var_t;
        let intercept = mean_p - slope * mean_t;
        let max_measured = self
            .window
            .iter()
            .map(|(_, p)| *p)
            .max_by(Watts::total_cmp)
            .expect("non-empty window");
        Some(Watts::new(intercept).max(max_measured))
    }

    /// [`DemandEstimator::estimate`] with a fallback to the most recent
    /// measured power when the estimate is unavailable.
    pub fn estimate_or_last(&self) -> Option<Watts> {
        self.estimate()
            .or_else(|| self.window.back().map(|(_, p)| *p))
    }

    /// Like [`DemandEstimator::estimate`], but when the regression is
    /// degenerate (constant non-zero throttle — a server pinned at a steady
    /// cap) falls back to single-point inversion using the server's known
    /// idle power: `demand = idle + (power − idle) / (1 − throttle)`.
    ///
    /// Without this fallback a steadily-capped server's demand estimate
    /// collapses to its capped power and can never recover when budget
    /// frees up elsewhere.
    pub fn estimate_with_idle(&self, idle: Watts) -> Option<Watts> {
        if let Some(e) = self.estimate() {
            return Some(e);
        }
        let &(t, p) = self.window.back()?;
        if t >= 1.0 - 1e-9 {
            return Some(p);
        }
        let dynamic = (p - idle).clamp_non_negative();
        Some(idle + dynamic / (1.0 - t))
    }
}

impl Default for DemandEstimator {
    fn default() -> Self {
        DemandEstimator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_estimates_nothing() {
        let est = DemandEstimator::new();
        assert_eq!(est.estimate(), None);
        assert_eq!(est.estimate_or_last(), None);
        assert!(est.is_empty());
    }

    #[test]
    fn zero_throttle_samples_win() {
        let mut est = DemandEstimator::new();
        est.push(Ratio::new(0.3), Watts::new(300.0));
        est.push(Ratio::ZERO, Watts::new(425.0));
        est.push(Ratio::ZERO, Watts::new(435.0));
        // Mean of the two unthrottled readings.
        assert_eq!(est.estimate(), Some(Watts::new(430.0)));
    }

    #[test]
    fn regression_recovers_linear_demand() {
        let mut est = DemandEstimator::new();
        // power = demand − dyn × t with demand 430, dyn 270.
        for t in [0.1, 0.2, 0.3, 0.4, 0.5] {
            est.push(Ratio::new(t), Watts::new(430.0 - 270.0 * t));
        }
        let d = est.estimate().unwrap();
        assert!((d.as_f64() - 430.0).abs() < 1e-6, "estimated {d}");
    }

    #[test]
    fn constant_throttle_is_degenerate() {
        let mut est = DemandEstimator::new();
        for _ in 0..5 {
            est.push(Ratio::new(0.4), Watts::new(322.0));
        }
        assert_eq!(est.estimate(), None);
        // Fallback returns the last measurement.
        assert_eq!(est.estimate_or_last(), Some(Watts::new(322.0)));
    }

    #[test]
    fn window_slides() {
        let mut est = DemandEstimator::with_window(4);
        // Old demand 430; then workload drops to demand 300 (dyn 140).
        for t in [0.1, 0.2, 0.3, 0.4] {
            est.push(Ratio::new(t), Watts::new(430.0 - 270.0 * t));
        }
        for t in [0.1, 0.2, 0.3, 0.4] {
            est.push(Ratio::new(t), Watts::new(300.0 - 140.0 * t));
        }
        let d = est.estimate().unwrap();
        assert!((d.as_f64() - 300.0).abs() < 1e-6, "estimated {d}");
        assert_eq!(est.len(), 4);
    }

    #[test]
    fn intercept_clamped_to_max_measurement() {
        let mut est = DemandEstimator::new();
        // Noisy positive-slope data would regress to an intercept below
        // the measurements; the estimate must not.
        est.push(Ratio::new(0.1), Watts::new(300.0));
        est.push(Ratio::new(0.5), Watts::new(380.0));
        let d = est.estimate().unwrap();
        assert!(d >= Watts::new(380.0));
    }

    #[test]
    fn clear_resets() {
        let mut est = DemandEstimator::new();
        est.push(Ratio::new(0.2), Watts::new(400.0));
        est.clear();
        assert!(est.is_empty());
        assert_eq!(est.estimate(), None);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_window_rejected() {
        let _ = DemandEstimator::with_window(1);
    }

    #[test]
    fn idle_fallback_inverts_constant_throttle() {
        let mut est = DemandEstimator::new();
        // Pinned at 50 % throttle with power 295 W; idle 160 W ⇒
        // demand = 160 + 135 / 0.5 = 430 W.
        for _ in 0..5 {
            est.push(Ratio::new(0.5), Watts::new(295.0));
        }
        assert_eq!(est.estimate(), None);
        let d = est.estimate_with_idle(Watts::new(160.0)).unwrap();
        assert!((d.as_f64() - 430.0).abs() < 1e-9, "estimated {d}");
    }

    #[test]
    fn idle_fallback_prefers_regression_when_available() {
        let mut est = DemandEstimator::new();
        for t in [0.1, 0.2, 0.3] {
            est.push(Ratio::new(t), Watts::new(430.0 - 270.0 * t));
        }
        // Regression already answers; idle value is ignored.
        let d = est.estimate_with_idle(Watts::new(999.0)).unwrap();
        assert!((d.as_f64() - 430.0).abs() < 1e-6);
    }

    #[test]
    fn idle_fallback_full_throttle_returns_power() {
        let mut est = DemandEstimator::new();
        est.push(Ratio::ONE, Watts::new(270.0));
        assert_eq!(
            est.estimate_with_idle(Watts::new(160.0)),
            Some(Watts::new(270.0))
        );
    }

    #[test]
    fn noisy_regression_stays_close() {
        let mut est = DemandEstimator::new();
        // ±2 W measurement noise.
        let noise = [1.5, -2.0, 0.5, -1.0, 2.0, -0.5, 1.0, -1.5];
        for (i, t) in [0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45]
            .iter()
            .enumerate()
        {
            est.push(
                Ratio::new(*t),
                Watts::new(430.0 - 270.0 * t + noise[i]),
            );
        }
        let d = est.estimate().unwrap();
        assert!((d.as_f64() - 430.0).abs() < 10.0, "estimated {d}");
    }
}
