//! Power-demand estimation by throttle/power regression (paper §5).
//!
//! A capped server's measured power understates what its workload *wants*.
//! CapMaestro estimates the uncapped demand by regressing per-second
//! `(throttle level, power)` samples over a sliding 16-sample window:
//! the regression intercept is the power at 0 % throttling. When samples at
//! 0 % throttle exist in the window, their measured power is used directly.

use std::collections::VecDeque;

use capmaestro_units::{Ratio, Watts};

/// Number of per-second samples in the paper's regression window.
pub const DEFAULT_WINDOW: usize = 16;

/// Throttle levels at or below this are treated as "not throttled".
const ZERO_THROTTLE_EPS: f64 = 1e-3;

/// Minimum throttle variance for a meaningful regression slope.
const MIN_VARIANCE: f64 = 1e-6;

/// Plausibility lower bound as a fraction of the server's idle power: a
/// powered server can never legitimately read below half its idle draw.
pub const PLAUSIBLE_MIN_IDLE_FRACTION: f64 = 0.5;

/// Plausibility upper bound as a fraction of the server's `Pcap_max`.
pub const PLAUSIBLE_MAX_CAP_FRACTION: f64 = 1.5;

/// A sample counts as a spike when its power deviates from the median of
/// the last three samples by more than this fraction of the server's
/// dynamic range (`cap_max − idle`). Below the threshold samples pass
/// through unmodified, so healthy telemetry is never distorted.
pub const SPIKE_DEVIATION_FRACTION: f64 = 0.25;

/// What [`DemandEstimator::push_screened`] did with a sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleFate {
    /// The sample passed plausibility screening and entered the filter.
    Accepted,
    /// The sample was outside `[0.5·idle, 1.5·cap_max]` and was discarded
    /// without touching the window. A run of rejections means the feed is
    /// effectively stale.
    RejectedImplausible,
}

/// Sliding-window demand estimator for one server.
///
/// # Examples
///
/// ```
/// use capmaestro_core::estimator::DemandEstimator;
/// use capmaestro_units::{Ratio, Watts};
///
/// let mut est = DemandEstimator::new();
/// // A server throttled to varying degrees; true demand is 430 W with
/// // dynamic range 270 (idle 160): power = 430 − 270 × throttle.
/// for t in [0.2, 0.3, 0.4, 0.25] {
///     est.push(Ratio::new(t), Watts::new(430.0 - 270.0 * t));
/// }
/// let demand = est.estimate().unwrap();
/// assert!((demand.as_f64() - 430.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct DemandEstimator {
    window: VecDeque<(f64, Watts)>,
    capacity: usize,
    /// Last ≤ 3 plausible samples, feeding the deviation-gated
    /// median-of-3 spike filter used by
    /// [`DemandEstimator::push_screened`]. Plain [`push`]
    /// bypasses it entirely.
    ///
    /// [`push`]: DemandEstimator::push
    recent: VecDeque<(f64, Watts)>,
}

impl DemandEstimator {
    /// Creates an estimator with the paper's 16-sample window.
    pub fn new() -> Self {
        DemandEstimator::with_window(DEFAULT_WINDOW)
    }

    /// Creates an estimator with a custom window length.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2` (regression needs at least two samples).
    pub fn with_window(capacity: usize) -> Self {
        assert!(capacity >= 2, "regression window needs at least 2 samples");
        DemandEstimator {
            window: VecDeque::with_capacity(capacity),
            capacity,
            recent: VecDeque::with_capacity(3),
        }
    }

    /// Records one per-second sample of (throttle level, measured power).
    pub fn push(&mut self, throttle: Ratio, power: Watts) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window
            .push_back((throttle.clamp_fraction().as_f64(), power));
    }

    /// Records one sample with plausibility screening and spike filtering.
    ///
    /// Screening: a reading outside `[0.5·idle, 1.5·cap_max]` cannot come
    /// from a healthy powered server, so it is discarded outright
    /// ([`SampleFate::RejectedImplausible`]) — the window is untouched and
    /// the caller should treat the feed as not having refreshed.
    ///
    /// Filtering: an accepted sample whose power deviates from the median
    /// of the last three samples by more than
    /// [`SPIKE_DEVIATION_FRACTION`] of the dynamic range is replaced by
    /// that median (selected by power, throttle kept paired) before
    /// entering the regression window, so a single in-range spike is
    /// absorbed instead of yanking the server's cap for a round. Samples
    /// within the threshold — all of a healthy stream — enter verbatim,
    /// and the first two samples after a
    /// [`clear`](DemandEstimator::clear) always pass through.
    pub fn push_screened(
        &mut self,
        throttle: Ratio,
        power: Watts,
        idle: Watts,
        cap_max: Watts,
    ) -> SampleFate {
        let lo = idle * PLAUSIBLE_MIN_IDLE_FRACTION;
        let hi = cap_max * PLAUSIBLE_MAX_CAP_FRACTION;
        if power < lo || power > hi {
            return SampleFate::RejectedImplausible;
        }
        let t = throttle.clamp_fraction().as_f64();
        if self.recent.len() == 3 {
            self.recent.pop_front();
        }
        self.recent.push_back((t, power));
        let (ft, fp) = if self.recent.len() < 3 {
            (t, power)
        } else {
            // Exactly three recents: select the median on the stack (the
            // per-sample hot path must not allocate).
            let mut by_power = [self.recent[0], self.recent[1], self.recent[2]];
            by_power.sort_by(|a, b| Watts::total_cmp(&a.1, &b.1));
            let (mt, mp) = by_power[1];
            let limit = (cap_max - idle).as_f64() * SPIKE_DEVIATION_FRACTION;
            if (power.as_f64() - mp.as_f64()).abs() > limit {
                (mt, mp)
            } else {
                (t, power)
            }
        };
        self.push(Ratio::new(ft), fp);
        SampleFate::Accepted
    }

    /// Number of samples currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Clears the window (e.g. after a workload change detection).
    pub fn clear(&mut self) {
        self.window.clear();
        self.recent.clear();
    }

    /// Estimates the uncapped power demand.
    ///
    /// Preference order (per §5):
    ///
    /// 1. mean measured power over zero-throttle samples, when any exist;
    /// 2. the intercept of an ordinary-least-squares fit of power against
    ///    throttle, clamped to at least the highest power observed
    ///    (demand can never be below a measured, throttled power);
    /// 3. `None` when the window is empty or the regression is degenerate
    ///    (constant non-zero throttle) — callers should fall back to the
    ///    last measured power.
    pub fn estimate(&self) -> Option<Watts> {
        if self.window.is_empty() {
            return None;
        }
        // Case 1: unthrottled samples measure demand directly. Folded in
        // window order (never collected) so this runs on the control
        // plane's allocation-free hot path.
        let (zero_sum, zero_count) = self
            .window
            .iter()
            .filter(|(t, _)| *t <= ZERO_THROTTLE_EPS)
            .fold((Watts::ZERO, 0usize), |(sum, n), (_, p)| (sum + *p, n + 1));
        if zero_count > 0 {
            return Some(zero_sum / zero_count as f64);
        }
        // Case 2: OLS intercept at throttle = 0.
        let n = self.window.len() as f64;
        if self.window.len() < 2 {
            return None;
        }
        let mean_t: f64 = self.window.iter().map(|(t, _)| t).sum::<f64>() / n;
        let mean_p: f64 = self.window.iter().map(|(_, p)| p.as_f64()).sum::<f64>() / n;
        let var_t: f64 = self
            .window
            .iter()
            .map(|(t, _)| (t - mean_t) * (t - mean_t))
            .sum::<f64>()
            / n;
        if var_t < MIN_VARIANCE {
            return None;
        }
        let cov: f64 = self
            .window
            .iter()
            .map(|(t, p)| (t - mean_t) * (p.as_f64() - mean_p))
            .sum::<f64>()
            / n;
        let slope = cov / var_t;
        let intercept = mean_p - slope * mean_t;
        let max_measured = self
            .window
            .iter()
            .map(|(_, p)| *p)
            .max_by(Watts::total_cmp)
            .expect("non-empty window");
        Some(Watts::new(intercept).max(max_measured))
    }

    /// [`DemandEstimator::estimate`] with a fallback to the most recent
    /// measured power when the estimate is unavailable.
    pub fn estimate_or_last(&self) -> Option<Watts> {
        self.estimate()
            .or_else(|| self.window.back().map(|(_, p)| *p))
    }

    /// Like [`DemandEstimator::estimate`], but when the regression is
    /// degenerate (constant non-zero throttle — a server pinned at a steady
    /// cap) falls back to single-point inversion using the server's known
    /// idle power: `demand = idle + (power − idle) / (1 − throttle)`.
    ///
    /// Without this fallback a steadily-capped server's demand estimate
    /// collapses to its capped power and can never recover when budget
    /// frees up elsewhere.
    pub fn estimate_with_idle(&self, idle: Watts) -> Option<Watts> {
        if let Some(e) = self.estimate() {
            return Some(e);
        }
        let &(t, p) = self.window.back()?;
        if t >= 1.0 - 1e-9 {
            return Some(p);
        }
        let dynamic = (p - idle).clamp_non_negative();
        Some(idle + dynamic / (1.0 - t))
    }
}

impl Default for DemandEstimator {
    fn default() -> Self {
        DemandEstimator::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_window_estimates_nothing() {
        let est = DemandEstimator::new();
        assert_eq!(est.estimate(), None);
        assert_eq!(est.estimate_or_last(), None);
        assert!(est.is_empty());
    }

    #[test]
    fn zero_throttle_samples_win() {
        let mut est = DemandEstimator::new();
        est.push(Ratio::new(0.3), Watts::new(300.0));
        est.push(Ratio::ZERO, Watts::new(425.0));
        est.push(Ratio::ZERO, Watts::new(435.0));
        // Mean of the two unthrottled readings.
        assert_eq!(est.estimate(), Some(Watts::new(430.0)));
    }

    #[test]
    fn regression_recovers_linear_demand() {
        let mut est = DemandEstimator::new();
        // power = demand − dyn × t with demand 430, dyn 270.
        for t in [0.1, 0.2, 0.3, 0.4, 0.5] {
            est.push(Ratio::new(t), Watts::new(430.0 - 270.0 * t));
        }
        let d = est.estimate().unwrap();
        assert!((d.as_f64() - 430.0).abs() < 1e-6, "estimated {d}");
    }

    #[test]
    fn constant_throttle_is_degenerate() {
        let mut est = DemandEstimator::new();
        for _ in 0..5 {
            est.push(Ratio::new(0.4), Watts::new(322.0));
        }
        assert_eq!(est.estimate(), None);
        // Fallback returns the last measurement.
        assert_eq!(est.estimate_or_last(), Some(Watts::new(322.0)));
    }

    #[test]
    fn window_slides() {
        let mut est = DemandEstimator::with_window(4);
        // Old demand 430; then workload drops to demand 300 (dyn 140).
        for t in [0.1, 0.2, 0.3, 0.4] {
            est.push(Ratio::new(t), Watts::new(430.0 - 270.0 * t));
        }
        for t in [0.1, 0.2, 0.3, 0.4] {
            est.push(Ratio::new(t), Watts::new(300.0 - 140.0 * t));
        }
        let d = est.estimate().unwrap();
        assert!((d.as_f64() - 300.0).abs() < 1e-6, "estimated {d}");
        assert_eq!(est.len(), 4);
    }

    #[test]
    fn intercept_clamped_to_max_measurement() {
        let mut est = DemandEstimator::new();
        // Noisy positive-slope data would regress to an intercept below
        // the measurements; the estimate must not.
        est.push(Ratio::new(0.1), Watts::new(300.0));
        est.push(Ratio::new(0.5), Watts::new(380.0));
        let d = est.estimate().unwrap();
        assert!(d >= Watts::new(380.0));
    }

    #[test]
    fn clear_resets() {
        let mut est = DemandEstimator::new();
        est.push(Ratio::new(0.2), Watts::new(400.0));
        est.clear();
        assert!(est.is_empty());
        assert_eq!(est.estimate(), None);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_window_rejected() {
        let _ = DemandEstimator::with_window(1);
    }

    #[test]
    fn idle_fallback_inverts_constant_throttle() {
        let mut est = DemandEstimator::new();
        // Pinned at 50 % throttle with power 295 W; idle 160 W ⇒
        // demand = 160 + 135 / 0.5 = 430 W.
        for _ in 0..5 {
            est.push(Ratio::new(0.5), Watts::new(295.0));
        }
        assert_eq!(est.estimate(), None);
        let d = est.estimate_with_idle(Watts::new(160.0)).unwrap();
        assert!((d.as_f64() - 430.0).abs() < 1e-9, "estimated {d}");
    }

    #[test]
    fn idle_fallback_prefers_regression_when_available() {
        let mut est = DemandEstimator::new();
        for t in [0.1, 0.2, 0.3] {
            est.push(Ratio::new(t), Watts::new(430.0 - 270.0 * t));
        }
        // Regression already answers; idle value is ignored.
        let d = est.estimate_with_idle(Watts::new(999.0)).unwrap();
        assert!((d.as_f64() - 430.0).abs() < 1e-6);
    }

    #[test]
    fn idle_fallback_full_throttle_returns_power() {
        let mut est = DemandEstimator::new();
        est.push(Ratio::ONE, Watts::new(270.0));
        assert_eq!(
            est.estimate_with_idle(Watts::new(160.0)),
            Some(Watts::new(270.0))
        );
    }

    const IDLE: Watts = Watts::new(160.0);
    const CAP_MAX: Watts = Watts::new(490.0);

    #[test]
    fn screening_rejects_implausible_readings() {
        let mut est = DemandEstimator::new();
        // A dark server reads 0 W: below 0.5·idle, rejected.
        assert_eq!(
            est.push_screened(Ratio::ZERO, Watts::ZERO, IDLE, CAP_MAX),
            SampleFate::RejectedImplausible
        );
        // A wild spike above 1.5·cap_max: rejected.
        assert_eq!(
            est.push_screened(Ratio::ZERO, Watts::new(800.0), IDLE, CAP_MAX),
            SampleFate::RejectedImplausible
        );
        assert!(est.is_empty(), "rejected samples must not enter the window");
        // A sane reading is accepted.
        assert_eq!(
            est.push_screened(Ratio::ZERO, Watts::new(420.0), IDLE, CAP_MAX),
            SampleFate::Accepted
        );
        assert_eq!(est.len(), 1);
    }

    #[test]
    fn median_filter_absorbs_in_range_spike() {
        let mut est = DemandEstimator::new();
        // Steady 420 W with one in-range spike to 700 W (< 1.5·cap_max).
        for p in [420.0, 421.0, 700.0, 419.0, 420.0] {
            assert_eq!(
                est.push_screened(Ratio::ZERO, Watts::new(p), IDLE, CAP_MAX),
                SampleFate::Accepted
            );
        }
        // The spike never reaches the regression window: the zero-throttle
        // mean stays near 420 W instead of being dragged ~56 W high.
        let d = est.estimate().unwrap();
        assert!((d.as_f64() - 420.0).abs() < 2.0, "estimated {d}");
    }

    #[test]
    fn median_filter_keeps_throttle_power_pairs_together() {
        let mut est = DemandEstimator::with_window(4);
        // Two samples on the true line power = 430 − 270·t, then a spike
        // far off it: the replacement median must carry its own throttle,
        // not mix pairs.
        est.push_screened(Ratio::new(0.1), Watts::new(403.0), IDLE, CAP_MAX);
        est.push_screened(Ratio::new(0.3), Watts::new(349.0), IDLE, CAP_MAX);
        est.push_screened(Ratio::new(0.2), Watts::new(700.0), IDLE, CAP_MAX);
        // Window holds (0.1, 403) pass-through, (0.3, 349) pass-through,
        // then the spike replaced by median-by-power (0.1, 403) — all on
        // the line, so the regression recovers the true intercept exactly.
        let d = est.estimate().unwrap();
        assert!((d.as_f64() - 430.0).abs() < 1e-6, "estimated {d}");
    }

    #[test]
    fn spike_filter_passes_smooth_streams_verbatim() {
        let mut filtered = DemandEstimator::new();
        let mut plain = DemandEstimator::new();
        // A capped server's healthy oscillation (< 25 % of dynamic range
        // step to step) must enter the window bit-identically to plain
        // `push` — robustness must not perturb fault-free control.
        for (t, p) in [
            (0.20, 376.0),
            (0.25, 362.5),
            (0.18, 381.4),
            (0.30, 349.0),
            (0.22, 370.6),
        ] {
            filtered.push_screened(Ratio::new(t), Watts::new(p), IDLE, CAP_MAX);
            plain.push(Ratio::new(t), Watts::new(p));
        }
        assert_eq!(filtered.estimate(), plain.estimate());
    }

    #[test]
    fn clear_resets_median_filter() {
        let mut est = DemandEstimator::new();
        for p in [420.0, 460.0, 440.0] {
            est.push_screened(Ratio::ZERO, Watts::new(p), IDLE, CAP_MAX);
        }
        est.clear();
        // After a clear the filter is back in pass-through: the first new
        // sample lands in the window verbatim.
        est.push_screened(Ratio::ZERO, Watts::new(300.0), IDLE, CAP_MAX);
        assert_eq!(est.estimate(), Some(Watts::new(300.0)));
    }

    #[test]
    fn noisy_regression_stays_close() {
        let mut est = DemandEstimator::new();
        // ±2 W measurement noise.
        let noise = [1.5, -2.0, 0.5, -1.0, 2.0, -0.5, 1.0, -1.5];
        for (i, t) in [0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45]
            .iter()
            .enumerate()
        {
            est.push(
                Ratio::new(*t),
                Watts::new(430.0 - 270.0 * t + noise[i]),
            );
        }
        let d = est.estimate().unwrap();
        assert!((d.as_f64() - 430.0).abs() < 10.0, "estimated {d}");
    }
}
