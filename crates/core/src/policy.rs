//! Capping policies: Global Priority (CapMaestro), Local Priority
//! (Dynamo extended to redundant feeds), and No Priority.
//!
//! All three share the same gather/budget machinery; they differ only in
//! *where* priority levels are visible (paper §6.2):
//!
//! - **Global Priority** — every shifting controller sees the full
//!   priority-summarized metrics; power moves between any two servers on a
//!   feed, regardless of location.
//! - **Local Priority** — only the lowest-level shifting controllers (the
//!   parents of capping controllers, e.g. a branch circuit) are
//!   priority-aware; every level above splits power priority-blind, like
//!   Facebook's Dynamo.
//! - **No Priority** — after guaranteeing `P_cap_min`, remaining power is
//!   split proportionally to `P_demand − P_cap_min` everywhere.

use core::fmt;

/// Where a node sits in the control tree, as far as policies care.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeContext {
    /// `true` when every child of this node is a capping controller
    /// (server power supply) — the "local group" boundary of Dynamo.
    pub is_leaf_parent: bool,
    /// Distance from the root (root = 0).
    pub depth: usize,
}

/// Whether a node works with full priority levels or a single merged level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PriorityVisibility {
    /// Full per-priority metrics: gather keeps levels, budgeting walks them
    /// highest-first.
    Full,
    /// Priority-blind: levels are collapsed before aggregation and
    /// budgeting at this node.
    Blind,
}

/// A power-capping policy: decides priority visibility per node.
///
/// The trait is object-safe so heterogeneous experiment harnesses can store
/// `&dyn CappingPolicy`.
pub trait CappingPolicy {
    /// Visibility of priorities at the given node.
    fn visibility(&self, ctx: NodeContext) -> PriorityVisibility;

    /// Short display name used in experiment tables.
    fn name(&self) -> &str;
}

/// CapMaestro's globally priority-aware policy (§4.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GlobalPriority;

impl GlobalPriority {
    /// Creates the policy.
    pub fn new() -> Self {
        GlobalPriority
    }
}

impl CappingPolicy for GlobalPriority {
    fn visibility(&self, _ctx: NodeContext) -> PriorityVisibility {
        PriorityVisibility::Full
    }

    fn name(&self) -> &str {
        "Global Priority"
    }
}

/// Dynamo-style local priority: aware only at leaf parents (§6.2's "Local
/// Priority" baseline, Facebook's Dynamo \[5\] extended by the paper's
/// authors to support redundant feeds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalPriority;

impl LocalPriority {
    /// Creates the policy.
    pub fn new() -> Self {
        LocalPriority
    }
}

impl CappingPolicy for LocalPriority {
    fn visibility(&self, ctx: NodeContext) -> PriorityVisibility {
        if ctx.is_leaf_parent {
            PriorityVisibility::Full
        } else {
            PriorityVisibility::Blind
        }
    }

    fn name(&self) -> &str {
        "Local Priority"
    }
}

/// Priority-oblivious proportional capping (§6.2's "No Priority" baseline).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoPriority;

impl NoPriority {
    /// Creates the policy.
    pub fn new() -> Self {
        NoPriority
    }
}

impl CappingPolicy for NoPriority {
    fn visibility(&self, _ctx: NodeContext) -> PriorityVisibility {
        PriorityVisibility::Blind
    }

    fn name(&self) -> &str {
        "No Priority"
    }
}

/// The three paper policies behind one enum, convenient for experiment
/// sweeps ("for each policy …").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`NoPriority`].
    NoPriority,
    /// [`LocalPriority`].
    LocalPriority,
    /// [`GlobalPriority`].
    GlobalPriority,
}

impl PolicyKind {
    /// All three policies in the order the paper's tables list them.
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::NoPriority,
        PolicyKind::LocalPriority,
        PolicyKind::GlobalPriority,
    ];

    /// Returns the policy implementation.
    pub fn policy(self) -> Box<dyn CappingPolicy + Send + Sync> {
        match self {
            PolicyKind::NoPriority => Box::new(NoPriority),
            PolicyKind::LocalPriority => Box::new(LocalPriority),
            PolicyKind::GlobalPriority => Box::new(GlobalPriority),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PolicyKind::NoPriority => "No Priority",
            PolicyKind::LocalPriority => "Local Priority",
            PolicyKind::GlobalPriority => "Global Priority",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LEAF_PARENT: NodeContext = NodeContext {
        is_leaf_parent: true,
        depth: 3,
    };
    const UPPER: NodeContext = NodeContext {
        is_leaf_parent: false,
        depth: 1,
    };

    #[test]
    fn global_is_always_full() {
        let p = GlobalPriority::new();
        assert_eq!(p.visibility(LEAF_PARENT), PriorityVisibility::Full);
        assert_eq!(p.visibility(UPPER), PriorityVisibility::Full);
        assert_eq!(p.name(), "Global Priority");
    }

    #[test]
    fn local_is_full_only_at_leaf_parents() {
        let p = LocalPriority::new();
        assert_eq!(p.visibility(LEAF_PARENT), PriorityVisibility::Full);
        assert_eq!(p.visibility(UPPER), PriorityVisibility::Blind);
        assert_eq!(p.name(), "Local Priority");
    }

    #[test]
    fn no_priority_is_always_blind() {
        let p = NoPriority::new();
        assert_eq!(p.visibility(LEAF_PARENT), PriorityVisibility::Blind);
        assert_eq!(p.visibility(UPPER), PriorityVisibility::Blind);
        assert_eq!(p.name(), "No Priority");
    }

    #[test]
    fn kind_roundtrip() {
        for kind in PolicyKind::ALL {
            let policy = kind.policy();
            assert_eq!(policy.name(), kind.to_string());
        }
    }

    #[test]
    fn policies_are_object_safe() {
        let policies: Vec<Box<dyn CappingPolicy>> = vec![
            Box::new(GlobalPriority),
            Box::new(LocalPriority),
            Box::new(NoPriority),
        ];
        assert_eq!(policies.len(), 3);
    }
}
