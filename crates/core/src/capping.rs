//! The per-server capping controller: enforcing independent AC budgets on
//! every power supply through one DC cap (paper §4.2, Fig. 4).
//!
//! This is the paper's first novel component — "the first closed-loop
//! feedback power controller for servers with multiple power supplies."
//! Each control period it:
//!
//! 1. computes a per-supply error `budget_i − measured_i` (AC domain),
//! 2. takes the **minimum** error — the most conservative correction,
//! 3. scales by the PSU efficiency `k` (AC→DC) and by the number of working
//!    supplies `M` (a per-supply correction moves the whole server),
//! 4. integrates into the desired DC cap and clips it into the
//!    controllable range `[Pcap_min, Pcap_max]` (DC).

use core::fmt;

use capmaestro_units::{Ratio, Watts};

/// The closed-loop per-supply budget-enforcing controller.
///
/// # Examples
///
/// ```
/// use capmaestro_core::capping::CappingController;
/// use capmaestro_units::{Ratio, Watts};
///
/// let mut ctl = CappingController::new(
///     Watts::new(270.0), // Pcap_min (AC)
///     Watts::new(490.0), // Pcap_max (AC)
///     Ratio::new(0.94),  // PSU efficiency k
/// );
/// // Two supplies, PS2 over budget by 50 W: the cap comes down.
/// let before = ctl.desired_dc_cap();
/// let cap = ctl.update(
///     &[Watts::new(280.0), Watts::new(200.0)],
///     &[Watts::new(250.0), Watts::new(250.0)],
/// );
/// assert!(cap < before);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CappingController {
    cap_min_dc: Watts,
    cap_max_dc: Watts,
    efficiency: Ratio,
    desired_dc: Watts,
}

impl CappingController {
    /// Creates a controller from the server's **AC** controllable range and
    /// PSU efficiency. The integrator starts at the maximum cap
    /// (unthrottled).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < cap_min_ac ≤ cap_max_ac` and
    /// `0 < efficiency ≤ 1`.
    pub fn new(cap_min_ac: Watts, cap_max_ac: Watts, efficiency: Ratio) -> Self {
        assert!(
            cap_min_ac > Watts::ZERO && cap_min_ac <= cap_max_ac,
            "controller requires 0 < cap_min <= cap_max (AC), got {cap_min_ac} / {cap_max_ac}"
        );
        assert!(
            efficiency > Ratio::ZERO && efficiency <= Ratio::ONE,
            "efficiency must be in (0, 1], got {efficiency}"
        );
        let cap_max_dc = cap_max_ac * efficiency;
        CappingController {
            cap_min_dc: cap_min_ac * efficiency,
            cap_max_dc,
            efficiency,
            desired_dc: cap_max_dc,
        }
    }

    /// The current integrator value: the DC cap the controller wants.
    pub fn desired_dc_cap(&self) -> Watts {
        self.desired_dc
    }

    /// The DC controllable range.
    pub fn dc_range(&self) -> (Watts, Watts) {
        (self.cap_min_dc, self.cap_max_dc)
    }

    /// One control iteration (Fig. 4): feed the per-supply AC `budgets` and
    /// `measured` powers (same order, working supplies only) and receive
    /// the DC cap to command.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or of different lengths.
    pub fn update(&mut self, budgets: &[Watts], measured: &[Watts]) -> Watts {
        assert_eq!(
            budgets.len(),
            measured.len(),
            "budget/measurement slices must pair up"
        );
        self.update_pairs(budgets.iter().zip(measured).map(|(b, m)| (*b, *m)))
    }

    /// Streaming form of [`update`](Self::update): consumes
    /// `(budget, measured)` pairs directly so callers on the round hot path
    /// can feed per-supply values without collecting them into slices first.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields no pairs.
    pub fn update_pairs(&mut self, pairs: impl Iterator<Item = (Watts, Watts)>) -> Watts {
        // ① per-supply error; ② most conservative (minimum).
        let mut count = 0usize;
        let mut min_error = Watts::ZERO;
        for (b, m) in pairs {
            let err = b - m;
            if count == 0 || Watts::total_cmp(&err, &min_error).is_lt() {
                min_error = err;
            }
            count += 1;
        }
        assert!(count > 0, "at least one working supply is required");
        // ③ AC→DC and single-supply→whole-server scaling.
        let m = count as f64;
        let delta_dc = min_error * self.efficiency * m;
        // ④ integrate and clip to the controllable range.
        self.desired_dc =
            (self.desired_dc + delta_dc).clamp(self.cap_min_dc, self.cap_max_dc);
        self.desired_dc
    }

    /// Resets the integrator to the unthrottled maximum (e.g. after a
    /// budget regime change that removed all constraints).
    pub fn reset(&mut self) {
        self.desired_dc = self.cap_max_dc;
    }

    /// Overrides the integrator with an externally chosen DC cap, clamped
    /// into the controllable range, and returns the cap actually set.
    ///
    /// Used by the fail-safe degradation path: when a server's telemetry
    /// goes stale the control plane clamps its cap directly (paper §4.2 —
    /// over-throttling a blind server is safe; trusting frozen readings is
    /// not) instead of feeding the feedback loop fabricated measurements.
    /// The integrator resumes cleanly from the forced value once fresh
    /// telemetry returns.
    pub fn force_dc_cap(&mut self, dc: Watts) -> Watts {
        self.desired_dc = dc.clamp(self.cap_min_dc, self.cap_max_dc);
        self.desired_dc
    }
}

impl fmt::Display for CappingController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "capping controller [desired DC {:.0}, range {:.0}–{:.0}]",
            self.desired_dc, self.cap_min_dc, self.cap_max_dc
        )
    }
}

/// The state-of-the-art baseline the paper argues against (§3.1): a server
/// power controller that enforces only a **single combined budget** across
/// all power supplies (Intel Node Manager / RAPL-style, prior work
/// \[5–8\]).
///
/// It cannot respect individual per-supply budgets: with an uneven load
/// split, one feed can be driven past its share of the budget while the
/// total stays legal — exactly the overload scenario CapMaestro's
/// [`CappingController`] prevents. Kept here for the ablation experiment
/// (`ablation` binary in `capmaestro-bench`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CombinedBudgetController {
    cap_min_dc: Watts,
    cap_max_dc: Watts,
    efficiency: Ratio,
    desired_dc: Watts,
}

impl CombinedBudgetController {
    /// Creates the baseline controller (same envelope semantics as
    /// [`CappingController::new`]).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`CappingController::new`].
    pub fn new(cap_min_ac: Watts, cap_max_ac: Watts, efficiency: Ratio) -> Self {
        let inner = CappingController::new(cap_min_ac, cap_max_ac, efficiency);
        let (cap_min_dc, cap_max_dc) = inner.dc_range();
        CombinedBudgetController {
            cap_min_dc,
            cap_max_dc,
            efficiency,
            desired_dc: cap_max_dc,
        }
    }

    /// The current desired DC cap.
    pub fn desired_dc_cap(&self) -> Watts {
        self.desired_dc
    }

    /// One control iteration on the **summed** budget and measurement: the
    /// per-supply structure is invisible to this controller.
    pub fn update(&mut self, total_budget: Watts, total_measured: Watts) -> Watts {
        let error = total_budget - total_measured;
        self.desired_dc = (self.desired_dc + error * self.efficiency)
            .clamp(self.cap_min_dc, self.cap_max_dc);
        self.desired_dc
    }
}

impl fmt::Display for CombinedBudgetController {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "combined-budget controller [desired DC {:.0}]",
            self.desired_dc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capmaestro_server::{Server, ServerConfig};
    use capmaestro_units::Seconds;

    const K: Ratio = Ratio::new(0.94);

    fn controller() -> CappingController {
        CappingController::new(Watts::new(270.0), Watts::new(490.0), K)
    }

    #[test]
    fn starts_unthrottled() {
        let ctl = controller();
        let (lo, hi) = ctl.dc_range();
        assert_eq!(ctl.desired_dc_cap(), hi);
        assert!(lo < hi);
        assert!((hi.as_f64() - 490.0 * 0.94).abs() < 1e-9);
    }

    #[test]
    fn negative_error_lowers_cap() {
        let mut ctl = controller();
        let before = ctl.desired_dc_cap();
        // PS2 is 50 W over budget.
        let cap = ctl.update(
            &[Watts::new(280.0), Watts::new(200.0)],
            &[Watts::new(250.0), Watts::new(250.0)],
        );
        // Δ = −50 × 0.94 × 2 = −94 W DC.
        assert!((cap.as_f64() - (before.as_f64() - 94.0)).abs() < 1e-9);
    }

    #[test]
    fn positive_error_raises_cap_up_to_max() {
        let mut ctl = controller();
        ctl.update(
            &[Watts::new(280.0), Watts::new(200.0)],
            &[Watts::new(250.0), Watts::new(250.0)],
        );
        // Budgets raised well above measurements: cap recovers and clips
        // at the DC maximum.
        for _ in 0..10 {
            ctl.update(
                &[Watts::new(400.0), Watts::new(400.0)],
                &[Watts::new(200.0), Watts::new(200.0)],
            );
        }
        assert_eq!(ctl.desired_dc_cap(), ctl.dc_range().1);
    }

    #[test]
    fn clips_at_minimum() {
        let mut ctl = controller();
        for _ in 0..50 {
            ctl.update(&[Watts::new(10.0)], &[Watts::new(400.0)]);
        }
        assert_eq!(ctl.desired_dc_cap(), ctl.dc_range().0);
    }

    #[test]
    fn min_error_drives_single_supply_case() {
        let mut ctl = controller();
        let cap = ctl.update(&[Watts::new(300.0)], &[Watts::new(350.0)]);
        // Δ = −50 × 0.94 × 1.
        assert!((cap.as_f64() - (490.0 * 0.94 - 47.0)).abs() < 1e-9);
    }

    #[test]
    fn reset_restores_max() {
        let mut ctl = controller();
        ctl.update(&[Watts::new(100.0)], &[Watts::new(400.0)]);
        assert!(ctl.desired_dc_cap() < ctl.dc_range().1);
        ctl.reset();
        assert_eq!(ctl.desired_dc_cap(), ctl.dc_range().1);
    }

    #[test]
    fn force_dc_cap_clamps_and_resumes() {
        let mut ctl = controller();
        let (lo, hi) = ctl.dc_range();
        // Below the controllable floor: clamped to cap_min (DC).
        assert_eq!(ctl.force_dc_cap(Watts::new(10.0)), lo);
        assert_eq!(ctl.desired_dc_cap(), lo);
        // Above the ceiling: clamped to cap_max (DC).
        assert_eq!(ctl.force_dc_cap(Watts::new(9999.0)), hi);
        // In range: taken verbatim, and the feedback loop integrates from
        // there on the next update.
        let mid = (lo + hi) * 0.5;
        ctl.force_dc_cap(mid);
        let cap = ctl.update(&[Watts::new(300.0)], &[Watts::new(250.0)]);
        assert!((cap.as_f64() - (mid.as_f64() + 47.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "pair up")]
    fn mismatched_slices_panic() {
        let mut ctl = controller();
        let _ = ctl.update(&[Watts::new(1.0)], &[]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_slices_panic() {
        let mut ctl = controller();
        let _ = ctl.update(&[], &[]);
    }

    /// Closed-loop test against the simulated server: the controller must
    /// pin each supply at or below its budget, settling within two 8 s
    /// control periods (the paper's Fig. 5 observation).
    #[test]
    fn closed_loop_enforces_most_constrained_supply() {
        // 65/35 split server, budgets 280 W (PS1) / 120 W (PS2).
        // PS2 binds: server total must come down to 120 / 0.35 ≈ 342.9 W.
        let mut server = Server::new(ServerConfig::paper_default().with_split(0.65));
        server.set_offered_demand(Watts::new(450.0));
        server.settle();
        let mut ctl = controller();
        let budgets = [Watts::new(280.0), Watts::new(120.0)];

        for _period in 0..4 {
            let snap = server.sense();
            let cap = ctl.update(&budgets, &snap.supply_ac);
            server.set_dc_cap(cap);
            for _ in 0..8 {
                server.step(Seconds::new(1.0));
            }
        }
        let snap = server.sense();
        // Each supply within 5 % of (or below) its budget.
        assert!(
            snap.supply_ac[1] <= budgets[1] * 1.05,
            "PS2 at {} exceeds budget {}",
            snap.supply_ac[1],
            budgets[1]
        );
        assert!(snap.supply_ac[0] <= budgets[0] * 1.05);
        // And the binding budget is actually used (no over-throttling):
        assert!(
            snap.supply_ac[1] >= budgets[1] * 0.90,
            "PS2 at {} wastes budget {}",
            snap.supply_ac[1],
            budgets[1]
        );
    }

    /// The §3.1 motivation, as a controller-level fact: with a 65/35 load
    /// split and equal per-supply budgets, the combined-budget baseline
    /// overloads the heavy supply while CapMaestro's controller keeps it
    /// within budget.
    #[test]
    fn combined_budget_baseline_overloads_heavy_supply() {
        let budgets = [Watts::new(230.0), Watts::new(230.0)]; // 460 W total
        let run = |use_combined: bool| -> Vec<Watts> {
            let mut server = Server::new(ServerConfig::paper_default().with_split(0.65));
            server.set_offered_demand(Watts::new(460.0));
            server.settle();
            let mut per_supply = controller();
            let mut combined = CombinedBudgetController::new(
                Watts::new(270.0),
                Watts::new(490.0),
                K,
            );
            for _ in 0..12 {
                let snap = server.sense();
                let cap = if use_combined {
                    let total_budget: Watts = budgets.iter().sum();
                    combined.update(total_budget, snap.total_ac)
                } else {
                    per_supply.update(&budgets, &snap.supply_ac)
                };
                server.set_dc_cap(cap);
                for _ in 0..8 {
                    server.step(Seconds::new(1.0));
                }
            }
            server.sense().supply_ac
        };

        let combined = run(true);
        let per_supply = run(false);
        // Baseline: total within 460 W, but PS1 carries 65 % of it —
        // nearly 300 W against a 230 W budget.
        assert!(
            combined[0] > budgets[0] * 1.2,
            "baseline should overload PS1: {} vs budget {}",
            combined[0],
            budgets[0]
        );
        // CapMaestro: PS1 pinned at (or under) its own budget.
        assert!(
            per_supply[0] <= budgets[0] * 1.02,
            "per-supply controller must protect PS1: {}",
            per_supply[0]
        );
    }

    #[test]
    fn combined_controller_tracks_total() {
        let mut ctl =
            CombinedBudgetController::new(Watts::new(270.0), Watts::new(490.0), K);
        // Over budget: cap falls.
        let c1 = ctl.update(Watts::new(400.0), Watts::new(460.0));
        assert!(c1 < Watts::new(490.0 * 0.94));
        // Under budget: cap recovers to the max.
        for _ in 0..20 {
            ctl.update(Watts::new(480.0), Watts::new(300.0));
        }
        assert_eq!(ctl.desired_dc_cap(), Watts::new(490.0) * K);
        assert!(ctl.to_string().contains("combined-budget"));
    }

    #[test]
    fn closed_loop_tracks_budget_steps_like_fig5() {
        // Reproduce the Fig. 5 scenario shape: generous budgets, then PS2
        // down to 200 W at t=30 s, then PS1 down to 150 W at t=110 s.
        let mut server = Server::new(ServerConfig::paper_default().with_split(0.5));
        server.set_offered_demand(Watts::new(460.0));
        server.settle();
        let mut ctl = controller();

        let mut budgets = [Watts::new(280.0), Watts::new(280.0)];
        let mut t = 0u32;
        let step_phase = |server: &mut Server,
                              ctl: &mut CappingController,
                              budgets: &[Watts; 2],
                              seconds: u32,
                              t: &mut u32| {
            for _ in 0..seconds {
                if (*t).is_multiple_of(8) {
                    let snap = server.sense();
                    let cap = ctl.update(budgets, &snap.supply_ac);
                    server.set_dc_cap(cap);
                }
                server.step(Seconds::new(1.0));
                *t += 1;
            }
        };

        step_phase(&mut server, &mut ctl, &budgets, 30, &mut t);
        // Unconstrained at first: no throttling.
        assert!(server.throttle().as_f64() < 0.05);

        budgets[1] = Watts::new(200.0);
        step_phase(&mut server, &mut ctl, &budgets, 80, &mut t);
        let snap = server.sense();
        assert!(
            snap.supply_ac[1].approx_eq(Watts::new(200.0), Watts::new(10.0)),
            "PS2 should settle near 200 W, got {}",
            snap.supply_ac[1]
        );

        budgets[0] = Watts::new(150.0);
        step_phase(&mut server, &mut ctl, &budgets, 80, &mut t);
        let snap = server.sense();
        assert!(
            snap.supply_ac[0].approx_eq(Watts::new(150.0), Watts::new(8.0)),
            "PS1 should settle near 150 W, got {}",
            snap.supply_ac[0]
        );
        // PS2 follows below its budget (equal split).
        assert!(snap.supply_ac[1] <= Watts::new(200.0));
    }
}
