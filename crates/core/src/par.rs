//! Minimal scoped-thread fan-out helpers for the per-second hot path.
//!
//! The control plane and the simulation engine shard their embarrassingly
//! parallel phases (server stepping, sensing, demand estimation, per-tree
//! allocation) across OS threads with [`std::thread::scope`]. No thread
//! pool and no extra dependency: a scope is cheap enough for phases that
//! process thousands of servers, and `threads <= 1` short-circuits to a
//! plain sequential loop so single-threaded callers pay nothing.
//!
//! Every helper preserves input order in its output, which is what makes
//! the parallel control round bit-identical to the sequential one: each
//! item's computation is independent, and any cross-item reduction is left
//! to the (deterministic) caller.

/// Maps `f` over `items`, fanning out across up to `threads` scoped
/// threads. Results are returned in input order regardless of thread
/// count, so `par_map(.., 8, f)` is bit-identical to
/// `items.iter().map(f).collect()`.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|slice| scope.spawn(move || slice.iter().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("par_map worker panicked"));
        }
    });
    out
}

/// Runs `f` on every item, fanning the mutable slice out across up to
/// `threads` scoped threads. Items are independent, so ordering does not
/// matter for the result; chunks are still contiguous for locality.
pub fn par_for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for slice in items.chunks_mut(chunk) {
            scope.spawn(move || {
                for item in slice {
                    f(item);
                }
            });
        }
    });
}

/// Maps `f` over the index range `0..len`, fanning out across up to
/// `threads` scoped threads. Results come back in index order, so the
/// output is bit-identical to `(0..len).map(f).collect()` for every
/// thread count. The index-based shape lets callers read shared
/// structure-of-arrays state (e.g. the farm's server slab) without first
/// collecting a `Vec` of references — the per-round fan-outs of the
/// control plane use this to stay allocation-free on the input side.
pub fn par_map_range<R, F>(len: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.clamp(1, len.max(1));
    if threads == 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(threads);
    let f = &f;
    let mut out = Vec::with_capacity(len);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..len)
            .step_by(chunk)
            .map(|lo| {
                let hi = (lo + chunk).min(len);
                scope.spawn(move || (lo..hi).map(f).collect::<Vec<R>>())
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("par_map_range worker panicked"));
        }
    });
    out
}

/// Maps `f` over a mutable slice, fanning out across up to `threads`
/// scoped threads. Results come back in input order, so the output is
/// independent of the thread count (see [`par_map`]).
pub fn par_map_mut<T, R, F>(items: &mut [T], threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut T) -> R + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads == 1 {
        return items.iter_mut().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let f = &f;
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks_mut(chunk)
            .map(|slice| scope.spawn(move || slice.iter_mut().map(f).collect::<Vec<R>>()))
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("par_map_mut worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        for threads in [1, 2, 3, 4, 7, 1000, 5000] {
            assert_eq!(par_map(&items, threads, |x| x * 3 + 1), seq);
        }
    }

    #[test]
    fn par_map_handles_empty_and_zero_threads() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, 4, |x| *x).is_empty());
        assert_eq!(par_map(&[5u32], 0, |x| *x + 1), vec![6]);
    }

    #[test]
    fn par_map_mut_mutates_and_preserves_order() {
        for threads in [1, 3, 16] {
            let mut items: Vec<u64> = (0..100).collect();
            let doubled = par_map_mut(&mut items, threads, |x| {
                *x *= 2;
                *x
            });
            assert!(doubled.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
            assert_eq!(items, doubled);
        }
    }

    #[test]
    fn par_for_each_mut_touches_every_item_once() {
        for threads in [1, 2, 5, 64] {
            let mut items: Vec<u64> = (0..257).collect();
            par_for_each_mut(&mut items, threads, |x| *x += 1000);
            assert!(items.iter().enumerate().all(|(i, &x)| x == i as u64 + 1000));
        }
    }

    #[test]
    fn par_map_range_matches_sequential() {
        let seq: Vec<usize> = (0..257).map(|i| i * 7 + 3).collect();
        for threads in [1, 2, 3, 8, 300] {
            assert_eq!(par_map_range(257, threads, |i| i * 7 + 3), seq);
        }
        assert!(par_map_range(0, 4, |i| i).is_empty());
    }

    #[test]
    fn par_map_is_bit_identical_for_floats() {
        // f64 math per item (no cross-item reduction) must not depend on
        // the thread count.
        let items: Vec<f64> = (0..500).map(|i| i as f64 * 0.1).collect();
        let f = |x: &f64| (x.sin() * 1e9).mul_add(3.7, 1.0 / (x + 0.5));
        let seq = par_map(&items, 1, f);
        for threads in [2, 3, 8] {
            let par = par_map(&items, threads, f);
            assert!(seq
                .iter()
                .zip(&par)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }
}
