//! CapMaestro's core: the paper's contribution.
//!
//! This crate implements the three novel mechanisms of *"A Scalable
//! Priority-Aware Approach to Managing Data Center Server Power"*
//! (HPCA 2019):
//!
//! 1. **Per-supply budget enforcement** ([`capping`]) — a closed-loop
//!    controller that keeps *each* power supply of a multi-feed server
//!    within its own AC budget by steering a single server DC cap (§4.2).
//! 2. **Global priority-aware power capping** ([`metrics`], [`budget`],
//!    [`tree`], [`policy`]) — priority-summarized metrics flow up a control
//!    tree that mirrors the power topology; budgets flow down, so a
//!    high-priority server is throttled only after every lower-priority
//!    server on the feed has been pushed to its minimum (§4.3).
//! 3. **Stranded-power optimization** ([`spo`]) — budgets stranded by the
//!    unequal per-supply load split are reclaimed and re-budgeted (§4.4).
//!
//! Supporting pieces: demand estimation by throttle/power regression
//! ([`estimator`], §5), the synchronous control-plane service ([`plane`]),
//! and the distributed rack-/room-worker deployment ([`workers`], §5).
//!
//! # Quick start
//!
//! ```
//! use capmaestro_core::policy::GlobalPriority;
//! use capmaestro_core::tree::{ControlTree, SupplyInput};
//! use capmaestro_topology::presets::figure2_feed;
//! use capmaestro_topology::SupplyIndex;
//! use capmaestro_units::{Ratio, Watts};
//!
//! // The paper's Fig. 2: four 430 W servers, 1240 W budget, SA high
//! // priority. Global priority gives SA its full demand.
//! let topo = figure2_feed();
//! let spec = topo.control_tree_specs().remove(0);
//! let tree = ControlTree::with_uniform(
//!     spec,
//!     SupplyInput {
//!         demand: Watts::new(430.0),
//!         cap_min: Watts::new(270.0),
//!         cap_max: Watts::new(490.0),
//!         share: Ratio::ONE,
//!     },
//! );
//! let alloc = tree.allocate(Watts::new(1240.0), &GlobalPriority::new());
//! let sa = topo.server_by_name("SA").unwrap();
//! assert_eq!(alloc.supply_budget(sa, SupplyIndex::FIRST), Some(Watts::new(430.0)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alloc;
pub mod budget;
pub mod capping;
pub mod estimator;
pub mod metrics;
pub mod obs;
pub mod oplog;
pub mod par;
pub mod plane;
pub mod policy;
pub mod spo;
pub mod tree;
pub mod wire;
pub mod workers;

pub use alloc::{
    AllocScratch, Allocator, AllocatorKind, FairShareAllocator, WaterfallAllocator,
    WaterfillingAllocator,
};
pub use budget::{split_budget, BudgetSplit};
pub use capping::{CappingController, CombinedBudgetController};
pub use estimator::{DemandEstimator, SampleFate};
pub use metrics::{LeafInput, MetricEntry, PriorityMetrics};
pub use oplog::{
    plan as reconcile_plan, AppendOutcome, DesiredState, Envelope, Op, OpLog, OplogError,
    ReconcilePlan, RecoveryReport,
};

pub use obs::{
    null_recorder, MetricsRegistry, MetricsSnapshot, NullRecorder, PhaseTimer, Recorder,
    RoundPhase,
};
pub use plane::{
    BudgetSource, ControlPlane, Farm, PlaneConfig, RoundReport, StalenessConfig,
};
pub use policy::{CappingPolicy, GlobalPriority, LocalPriority, NoPriority, PolicyKind};
pub use spo::{
    optimize_stranded_power, optimize_stranded_power_iterated, optimize_stranded_power_par,
    SpoOutcome,
};
pub use tree::{Allocation, ControlTree, SupplyInput};
pub use workers::{
    ChannelTransport, DeploymentConfig, DownMsg, RackAssignment, RackWorker, RoundOutcome,
    Transport, UpMsg, WorkerDeployment,
};
