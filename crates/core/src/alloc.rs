//! The allocator seam: pluggable per-node budget-split policies.
//!
//! CapMaestro's §4.3.2 waterfall is one way to divide a node's budget among
//! its children; nvPAX-style solvers and FastCap-style fairness objectives
//! are others. [`Allocator`] is the object-safe seam the budget-down pass
//! calls at every internal node: it receives the gathered
//! [`PriorityMetrics`] of the children, the node's budget, and reusable
//! scratch, and writes one budget per child. Three implementations ship:
//!
//! - [`WaterfallAllocator`] — the paper's four-step waterfall, delegating
//!   verbatim to [`split_budget_into`] (bit-identical to the pre-seam
//!   plane by construction, and proven so by the differential suite);
//! - [`WaterfillingAllocator`] — projected waterfilling in the nvPAX
//!   spirit: one water level rises under per-child box constraints
//!   `[cap_min, min(request, constraint)]`, with priority-derived weights
//!   so higher-priority demand fills exponentially faster;
//! - [`FairShareAllocator`] — a FastCap-style fairness objective: equalize
//!   the normalized throughput loss `1 − b_i/d_i` across children, floored
//!   at `cap_min` and capped at the constraint (priority-blind by design).
//!
//! Every allocator must uphold the same contract (enforced by the
//! property suite in `crates/core/tests/allocator_props.rs`): budgets are
//! finite and non-negative, no child exceeds its constraint, feasible
//! budgets cover every child's `cap_min` floor, infeasible budgets scale
//! the floors proportionally, and `Σ budgets + returned unallocated`
//! equals the input budget. All three are allocation-free once the shared
//! [`AllocScratch`] is warm, preserving the round pipeline's
//! zero-allocation discipline.

#![deny(clippy::missing_docs_in_private_items)]

use core::fmt;
use core::str::FromStr;

use capmaestro_units::Watts;

use crate::budget::{split_budget_into, waterfill_into, SplitScratch};
use crate::metrics::PriorityMetrics;

/// Bisection iterations for the solver allocators. 64 halvings reduce any
/// bracket below f64 resolution; the residual top-off waterfill absorbs
/// whatever tolerance remains, so conservation never depends on the count.
const BISECT_ITERS: u32 = 64;

/// An object-safe budget-split policy: one call divides a node's budget
/// among its children.
///
/// Implementations must be pure functions of `(budget, children)` — the
/// control plane caches and reuses them across rounds and trees — and must
/// not allocate once `scratch` and `budgets` are warm.
pub trait Allocator: Send + Sync {
    /// Stable identifier (also the CLI / config spelling). Round state is
    /// invalidated when this changes between rounds, so two allocators
    /// must never share a name.
    fn name(&self) -> &'static str;

    /// Splits `budget` among `children`, writing one budget per child into
    /// `budgets` (aligned with `children`) and returning the unallocated
    /// remainder. `children` empty ⇒ `budgets` empty and the whole budget
    /// is returned.
    fn split(
        &self,
        budget: Watts,
        children: &[PriorityMetrics],
        scratch: &mut AllocScratch,
        budgets: &mut Vec<Watts>,
    ) -> Watts;
}

/// Reusable scratch for any [`Allocator`]: the waterfall's
/// [`SplitScratch`] plus the solver allocators' f64 working vectors.
/// One instance serves every policy, so swapping allocators between
/// rounds costs no allocation churn beyond the first warm-up.
#[derive(Debug, Clone, Default)]
pub struct AllocScratch {
    /// The §4.3.2 waterfall's own scratch buffers.
    split: SplitScratch,
    /// Per-child lower bounds (cap_min clamped at the constraint), raw watts.
    floors: Vec<f64>,
    /// Per-child upper bounds (request or demand clamped at the
    /// constraint), raw watts.
    ubs: Vec<f64>,
    /// Per-child solver weights (priority-scaled headroom or demand).
    weights: Vec<f64>,
    /// Weights converted to [`Watts`] for the residual top-off waterfill.
    wf_weights: Vec<Watts>,
    /// Remaining per-child room for the residual top-off waterfill.
    wf_rooms: Vec<Watts>,
    /// Grant output buffer for the residual top-off waterfill.
    wf_grants: Vec<Watts>,
}

/// The paper's §4.3.2 waterfall behind the seam: floors, priority descent,
/// proportional fill at the first partial level, surplus to constraints.
/// Delegates verbatim to [`split_budget_into`], so its output is
/// bit-identical to the pre-seam budget-down pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct WaterfallAllocator;

impl Allocator for WaterfallAllocator {
    fn name(&self) -> &'static str {
        "waterfall"
    }

    fn split(
        &self,
        budget: Watts,
        children: &[PriorityMetrics],
        scratch: &mut AllocScratch,
        budgets: &mut Vec<Watts>,
    ) -> Watts {
        split_budget_into(budget, children, &mut scratch.split, budgets)
    }
}

/// Projected waterfilling in the nvPAX spirit: a single water level θ
/// rises simultaneously for every child, each filling at a
/// priority-derived rate inside its box `[floor, min(request,
/// constraint)]`. Children at the same priority with equal headroom fill
/// identically; each priority level above doubles the fill rate, so
/// scarce budget concentrates on high-priority demand without the
/// waterfall's strict level-by-level descent (a level that cannot be
/// fully granted still shares with the levels below it).
///
/// Convergence: the fill `Σ_i clamp(w_i · θ, 0, ub_i − floor_i)` is
/// continuous and non-decreasing in θ, so after an exponential bracket
/// search, bisection pins the target inside [`BISECT_ITERS`] halvings;
/// the sub-resolution residual is then routed through the same clamped
/// waterfill the waterfall uses, making conservation exact to f64
/// rounding rather than to the bisection tolerance.
#[derive(Debug, Clone, Copy, Default)]
pub struct WaterfillingAllocator;

impl Allocator for WaterfillingAllocator {
    fn name(&self) -> &'static str {
        "waterfilling"
    }

    fn split(
        &self,
        budget: Watts,
        children: &[PriorityMetrics],
        scratch: &mut AllocScratch,
        budgets: &mut Vec<Watts>,
    ) -> Watts {
        budgets.clear();
        if children.is_empty() {
            return budget;
        }
        let AllocScratch {
            floors,
            ubs,
            weights,
            wf_weights,
            wf_rooms,
            wf_grants,
            ..
        } = scratch;
        fill_floors_and_ubs(children, floors, ubs, |c| c.total_request());

        // Priority-derived fill rates: each level's headroom above its
        // floor, doubled per priority step. All-zero weights (every child
        // already at its request) degrade to equal rates.
        weights.clear();
        weights.extend(children.iter().map(|c| {
            c.levels()
                .iter()
                .map(|(p, e)| {
                    let headroom = e.demand.saturating_sub(e.cap_min).as_f64();
                    headroom * pow2_level(p.level())
                })
                .sum::<f64>()
        }));
        if weights.iter().all(|&w| w <= 0.0) {
            weights.iter_mut().for_each(|w| *w = 1.0);
        }

        solve_monotone_fill(
            budget,
            children,
            &SolverBoxes {
                floors,
                ubs,
                weights,
            },
            None,
            &|i, theta, boxes| {
                (boxes.weights[i] * theta).min(boxes.ubs[i] - boxes.floors[i])
            },
            wf_weights,
            wf_rooms,
            wf_grants,
            budgets,
        )
    }
}

/// FastCap-style fairness: find one normalized loss λ so every child runs
/// at `b_i = d_i · (1 − λ)`, clamped into `[floor_i, min(d_i,
/// constraint_i)]` — children shed throughput in equal proportion to
/// their demand rather than by priority (priority-blind by design; racing
/// it against the waterfall quantifies what priority ordering costs in
/// fairness and vice versa).
///
/// Convergence: with `t = 1 − λ`, `Σ_i clamp(d_i · t, floor_i, ub_i)` is
/// continuous and non-decreasing over the fixed bracket `t ∈ [0, 1]`,
/// bisected for [`BISECT_ITERS`] iterations; the residual top-off and
/// surplus handling are shared with [`WaterfillingAllocator`] via the
/// same demand-weighted clamped waterfill.
#[derive(Debug, Clone, Copy, Default)]
pub struct FairShareAllocator;

impl Allocator for FairShareAllocator {
    fn name(&self) -> &'static str {
        "fair_share"
    }

    fn split(
        &self,
        budget: Watts,
        children: &[PriorityMetrics],
        scratch: &mut AllocScratch,
        budgets: &mut Vec<Watts>,
    ) -> Watts {
        budgets.clear();
        if children.is_empty() {
            return budget;
        }
        let AllocScratch {
            floors,
            ubs,
            weights,
            wf_weights,
            wf_rooms,
            wf_grants,
            ..
        } = scratch;
        fill_floors_and_ubs(children, floors, ubs, |c| c.total_demand());

        // Demands double as the top-off weights: the residual spreads in
        // proportion to demand, preserving the equal-normalized-loss
        // shape. A child whose demand sits below its floor never sheds
        // (the clamp holds it at the floor) — FastCap's per-unit minimum
        // service level.
        weights.clear();
        weights.extend(children.iter().map(|c| c.total_demand().as_f64().max(0.0)));
        if weights.iter().all(|&w| w <= 0.0) {
            weights.iter_mut().for_each(|w| *w = 1.0);
        }

        solve_monotone_fill(
            budget,
            children,
            &SolverBoxes {
                floors,
                ubs,
                weights,
            },
            Some(1.0),
            &|i, t, boxes| {
                (boxes.weights[i] * t - boxes.floors[i])
                    .max(0.0)
                    .min(boxes.ubs[i] - boxes.floors[i])
            },
            wf_weights,
            wf_rooms,
            wf_grants,
            budgets,
        )
    }
}

/// `2^level` as f64 (level is a u8, so the exponent tops out at 255 —
/// far below f64 overflow at 2^1024).
fn pow2_level(level: u8) -> f64 {
    2.0f64.powi(i32::from(level))
}

/// Fills `floors[i] = min(cap_min_i, constraint_i)` and
/// `ubs[i] = max(floor_i, min(upper(child), constraint_i))` in raw watts.
fn fill_floors_and_ubs(
    children: &[PriorityMetrics],
    floors: &mut Vec<f64>,
    ubs: &mut Vec<f64>,
    upper: impl Fn(&PriorityMetrics) -> Watts,
) {
    floors.clear();
    floors.extend(
        children
            .iter()
            .map(|c| c.total_cap_min().min(c.constraint()).as_f64()),
    );
    ubs.clear();
    ubs.extend(
        children
            .iter()
            .zip(floors.iter())
            .map(|(c, &f)| upper(c).min(c.constraint()).as_f64().max(f)),
    );
}

/// The per-child box constraints and weights a solver bisects over,
/// borrowed together so the fill closure can read all three.
struct SolverBoxes<'a> {
    /// Per-child lower bounds in raw watts.
    floors: &'a [f64],
    /// Per-child upper bounds in raw watts (`ubs[i] ≥ floors[i]`).
    ubs: &'a [f64],
    /// Per-child weights for the residual top-off (and, for solvers that
    /// use them, the fill rate).
    weights: &'a [f64],
}

/// The shared solver skeleton: floors first (scaled proportionally when
/// the budget cannot cover them), then a bisected monotone fill from
/// `floors` toward `ubs`, a waterfill top-off for the bisection residual,
/// and finally step-4-style surplus toward each child's constraint.
/// Returns the unallocated remainder.
///
/// `fill_extra(i, t, boxes)` is child `i`'s grant above its floor at
/// solver parameter `t`, clamped into `[0, ubs[i] − floors[i]]`, and must
/// be continuous and non-decreasing in `t`. `bracket` fixes the upper
/// end of the `t` range (e.g. `Some(1.0)` for a normalized parameter);
/// `None` brackets by exponential doubling from 1.
#[allow(clippy::too_many_arguments)]
fn solve_monotone_fill(
    budget: Watts,
    children: &[PriorityMetrics],
    boxes: &SolverBoxes<'_>,
    bracket: Option<f64>,
    fill_extra: &dyn Fn(usize, f64, &SolverBoxes<'_>) -> f64,
    wf_weights: &mut Vec<Watts>,
    wf_rooms: &mut Vec<Watts>,
    wf_grants: &mut Vec<Watts>,
    budgets: &mut Vec<Watts>,
) -> Watts {
    let n = children.len();
    let floor_sum: f64 = boxes.floors.iter().sum();

    // Infeasible budget: scale floors proportionally (the waterfall's
    // degenerate fallback, kept so every policy conserves identically).
    if budget.as_f64() < floor_sum {
        let scale = if floor_sum > 0.0 {
            budget.as_f64() / floor_sum
        } else {
            0.0
        };
        budgets.extend(boxes.floors.iter().map(|&f| Watts::new(f * scale)));
        return Watts::ZERO;
    }

    budgets.extend(boxes.floors.iter().map(|&f| Watts::new(f)));
    let mut remaining = budget - Watts::new(floor_sum);

    // Target extra above the floors, capped by the total box room.
    let room_total: f64 = boxes
        .ubs
        .iter()
        .zip(boxes.floors.iter())
        .map(|(u, f)| u - f)
        .sum();
    let target = remaining.as_f64().min(room_total);
    if target > 0.0 {
        // Total fill above the floors at parameter `t`.
        let total_fill = |t: f64| -> f64 { (0..n).map(|i| fill_extra(i, t, boxes)).sum() };
        let mut hi = match bracket {
            Some(hi) => hi,
            None => {
                // Exponential bracket: double until the fill covers the
                // target (or the boxes saturate).
                let mut hi = 1.0f64;
                let mut doublings = 0;
                while total_fill(hi) < target && doublings < 200 {
                    hi *= 2.0;
                    doublings += 1;
                }
                hi
            }
        };
        let mut lo = 0.0f64;
        for _ in 0..BISECT_ITERS {
            let mid = 0.5 * (lo + hi);
            if total_fill(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        // Take the under-allocating side, then route the residual through
        // the clamped waterfill so conservation is exact, not
        // tolerance-bounded.
        for (i, b) in budgets.iter_mut().enumerate() {
            let extra = fill_extra(i, lo, boxes).max(0.0);
            *b += Watts::new(extra);
            remaining -= Watts::new(extra);
        }
        wf_weights.clear();
        wf_weights.extend(boxes.weights.iter().map(|&w| Watts::new(w)));
        wf_rooms.clear();
        wf_rooms.extend(
            budgets
                .iter()
                .zip(boxes.ubs.iter())
                .map(|(b, &u)| Watts::new(u).saturating_sub(*b)),
        );
        let room_left: Watts = wf_rooms.iter().sum();
        let top_off = remaining.min(room_left).max(Watts::ZERO);
        if top_off > Watts::ZERO {
            waterfill_into(top_off, wf_weights, wf_rooms, wf_grants);
            for (b, g) in budgets.iter_mut().zip(wf_grants.iter()) {
                *b += *g;
                remaining -= *g;
            }
        }
    }

    // Surplus beyond every child's upper bound: fill toward constraints,
    // exactly like the waterfall's step 4.
    if remaining > Watts::ZERO {
        wf_rooms.clear();
        wf_rooms.extend(
            children
                .iter()
                .zip(budgets.iter())
                .map(|(c, b)| c.constraint().saturating_sub(*b)),
        );
        waterfill_into(remaining, wf_rooms, wf_rooms, wf_grants);
        for (b, g) in budgets.iter_mut().zip(wf_grants.iter()) {
            *b += *g;
            remaining -= *g;
        }
    }

    remaining.max(Watts::ZERO)
}

/// The built-in allocators, selectable by name from configuration, the
/// daemon CLI, and the policy-arena bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocatorKind {
    /// The paper's §4.3.2 waterfall ([`WaterfallAllocator`]) — the default.
    #[default]
    Waterfall,
    /// Priority-weighted projected waterfilling
    /// ([`WaterfillingAllocator`]).
    Waterfilling,
    /// FastCap-style normalized-loss fairness ([`FairShareAllocator`]).
    FairShare,
}

impl AllocatorKind {
    /// Every built-in allocator, in presentation order.
    pub const ALL: [AllocatorKind; 3] = [
        AllocatorKind::Waterfall,
        AllocatorKind::Waterfilling,
        AllocatorKind::FairShare,
    ];

    /// The stable name — matches [`Allocator::name`] of the boxed
    /// implementation and the accepted CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            AllocatorKind::Waterfall => "waterfall",
            AllocatorKind::Waterfilling => "waterfilling",
            AllocatorKind::FairShare => "fair_share",
        }
    }

    /// Boxes the implementation. The control plane calls this once per
    /// configuration change and caches the box, so allocator construction
    /// is off the hot path.
    pub fn allocator(self) -> Box<dyn Allocator> {
        match self {
            AllocatorKind::Waterfall => Box::new(WaterfallAllocator),
            AllocatorKind::Waterfilling => Box::new(WaterfillingAllocator),
            AllocatorKind::FairShare => Box::new(FairShareAllocator),
        }
    }
}

impl fmt::Display for AllocatorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An unknown allocator name, carrying the offending input; its `Display`
/// lists the valid spellings so CLI errors are self-explanatory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownAllocator(pub String);

impl fmt::Display for UnknownAllocator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown allocator policy {:?}; valid policies: waterfall, waterfilling, fair_share",
            self.0
        )
    }
}

impl std::error::Error for UnknownAllocator {}

impl FromStr for AllocatorKind {
    type Err = UnknownAllocator;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        AllocatorKind::ALL
            .into_iter()
            .find(|k| k.name() == s)
            .ok_or_else(|| UnknownAllocator(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::split_budget;
    use crate::metrics::LeafInput;
    use capmaestro_topology::Priority;
    use capmaestro_units::Ratio;

    /// A leaf summary with the rig's standard controllable range.
    fn leaf(demand: f64, priority: Priority) -> PriorityMetrics {
        PriorityMetrics::from_leaf(&LeafInput {
            demand: Watts::new(demand),
            cap_min: Watts::new(270.0),
            cap_max: Watts::new(490.0),
            share: Ratio::ONE,
            priority,
        })
    }

    /// Runs one allocator on fresh scratch and returns (budgets, leftover).
    fn run(
        alloc: &dyn Allocator,
        budget: f64,
        children: &[PriorityMetrics],
    ) -> (Vec<Watts>, Watts) {
        let mut scratch = AllocScratch::default();
        let mut budgets = Vec::new();
        let leftover = alloc.split(Watts::new(budget), children, &mut scratch, &mut budgets);
        (budgets, leftover)
    }

    #[test]
    fn kind_round_trips_names() {
        for kind in AllocatorKind::ALL {
            assert_eq!(kind.name().parse::<AllocatorKind>(), Ok(kind));
            assert_eq!(kind.to_string(), kind.name());
            assert_eq!(kind.allocator().name(), kind.name());
        }
    }

    #[test]
    fn unknown_name_lists_valid_policies() {
        let err = "nope".parse::<AllocatorKind>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("nope"), "{msg}");
        for kind in AllocatorKind::ALL {
            assert!(msg.contains(kind.name()), "{msg} missing {}", kind.name());
        }
    }

    #[test]
    fn waterfall_is_bit_identical_to_split_budget() {
        let children = vec![
            leaf(430.0, Priority(3)),
            leaf(350.0, Priority(1)),
            leaf(490.0, Priority(0)),
            leaf(280.0, Priority(1)),
        ];
        for budget in [200.0, 900.0, 1100.0, 1400.0, 2500.0] {
            let reference = split_budget(Watts::new(budget), &children);
            let (budgets, leftover) = run(&WaterfallAllocator, budget, &children);
            for (a, b) in budgets.iter().zip(reference.budgets.iter()) {
                assert_eq!(a.as_f64().to_bits(), b.as_f64().to_bits());
            }
            assert_eq!(
                leftover.as_f64().to_bits(),
                reference.unallocated.as_f64().to_bits()
            );
        }
    }

    #[test]
    fn all_allocators_handle_empty_children() {
        for kind in AllocatorKind::ALL {
            let (budgets, leftover) = run(kind.allocator().as_ref(), 500.0, &[]);
            assert!(budgets.is_empty());
            assert_eq!(leftover, Watts::new(500.0));
        }
    }

    #[test]
    fn waterfilling_favors_higher_priority_under_scarcity() {
        let children = vec![leaf(470.0, Priority::HIGH), leaf(470.0, Priority::LOW)];
        // Floors 540, +100 W of contested headroom: the high-priority
        // child's doubled fill rate takes two thirds of it.
        let (budgets, _) = run(&WaterfillingAllocator, 640.0, &children);
        assert!(
            budgets[0] > budgets[1] + Watts::new(20.0),
            "high priority should fill faster: {budgets:?}"
        );
        for b in &budgets {
            assert!(*b >= Watts::new(270.0) - Watts::new(1e-9));
        }
    }

    #[test]
    fn waterfilling_shares_within_a_level_by_headroom() {
        // Same priority, demands 470 vs 370 ⇒ headrooms 200 vs 100; the
        // extra 90 W splits 2:1.
        let children = vec![leaf(470.0, Priority::LOW), leaf(370.0, Priority::LOW)];
        let (budgets, _) = run(&WaterfillingAllocator, 630.0, &children);
        assert!(
            budgets[0].approx_eq(Watts::new(330.0), Watts::new(1e-6)),
            "{budgets:?}"
        );
        assert!(
            budgets[1].approx_eq(Watts::new(300.0), Watts::new(1e-6)),
            "{budgets:?}"
        );
    }

    #[test]
    fn fair_share_equalizes_normalized_loss() {
        // Demands 480 and 400, budget 770: the unclamped fair point is
        // t = 770/880 = 0.875 ⇒ budgets 420/350, both inside their boxes,
        // with equal normalized loss 0.125.
        let children = vec![leaf(480.0, Priority::LOW), leaf(400.0, Priority::HIGH)];
        let (budgets, leftover) = run(&FairShareAllocator, 770.0, &children);
        let loss_a = 1.0 - budgets[0].as_f64() / 480.0;
        let loss_b = 1.0 - budgets[1].as_f64() / 400.0;
        assert!(
            (loss_a - loss_b).abs() < 1e-6,
            "losses diverge: {loss_a} vs {loss_b} ({budgets:?})"
        );
        assert!(leftover.approx_eq(Watts::ZERO, Watts::new(1e-6)));
        // Priority-blind: the HIGH child sheds proportionally too.
        assert!(budgets[1] < Watts::new(400.0));
    }

    #[test]
    fn solvers_conserve_and_respect_boxes() {
        let children = vec![
            leaf(430.0, Priority(3)),
            leaf(350.0, Priority(1)),
            leaf(490.0, Priority(0)),
            leaf(280.0, Priority(1)),
        ];
        for kind in AllocatorKind::ALL {
            let alloc = kind.allocator();
            for budget in [100.0, 900.0, 1100.0, 1400.0, 2500.0] {
                let (budgets, leftover) = run(alloc.as_ref(), budget, &children);
                assert_eq!(budgets.len(), children.len());
                let total: Watts = budgets.iter().sum();
                assert!(
                    (total + leftover).approx_eq(Watts::new(budget), Watts::new(1e-6)),
                    "{kind}: budget {budget} not conserved (Σ {total} + {leftover})"
                );
                for (b, c) in budgets.iter().zip(children.iter()) {
                    assert!(b.as_f64().is_finite());
                    assert!(*b >= Watts::ZERO);
                    assert!(
                        *b <= c.constraint() + Watts::new(1e-6),
                        "{kind}: {b} over constraint {}",
                        c.constraint()
                    );
                }
            }
        }
    }

    #[test]
    fn solvers_scale_floors_when_infeasible() {
        let children = vec![leaf(430.0, Priority::LOW), leaf(430.0, Priority::LOW)];
        for kind in AllocatorKind::ALL {
            let (budgets, leftover) = run(kind.allocator().as_ref(), 270.0, &children);
            assert!(
                budgets[0].approx_eq(Watts::new(135.0), Watts::new(1e-9)),
                "{kind}: {budgets:?}"
            );
            assert!(budgets[1].approx_eq(Watts::new(135.0), Watts::new(1e-9)));
            assert_eq!(leftover, Watts::ZERO);
        }
    }

    #[test]
    fn solvers_route_surplus_to_constraints() {
        let children = vec![leaf(300.0, Priority::LOW), leaf(300.0, Priority::LOW)];
        for kind in AllocatorKind::ALL {
            let (budgets, leftover) = run(kind.allocator().as_ref(), 1200.0, &children);
            assert!(
                budgets[0].approx_eq(Watts::new(490.0), Watts::new(1e-6)),
                "{kind}: {budgets:?}"
            );
            assert!(budgets[1].approx_eq(Watts::new(490.0), Watts::new(1e-6)));
            assert!(leftover.approx_eq(Watts::new(220.0), Watts::new(1e-6)));
        }
    }

    #[test]
    fn allocators_reuse_scratch_across_policy_switches() {
        // One scratch serves every policy back to back — the plane swaps
        // allocators between rounds without rebuilding its round context.
        let children = vec![leaf(430.0, Priority::HIGH), leaf(430.0, Priority::LOW)];
        let mut scratch = AllocScratch::default();
        let mut budgets = Vec::new();
        for _ in 0..3 {
            for kind in AllocatorKind::ALL {
                let leftover = kind.allocator().split(
                    Watts::new(700.0),
                    &children,
                    &mut scratch,
                    &mut budgets,
                );
                let total: Watts = budgets.iter().sum();
                assert!((total + leftover).approx_eq(Watts::new(700.0), Watts::new(1e-6)));
            }
        }
    }
}
