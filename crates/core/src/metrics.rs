//! Priority-summarized power metrics (paper §4.3.1).
//!
//! The scalability insight of CapMaestro is that a shifting controller need
//! only convey *metrics summarized by priority level* upstream — not
//! per-server metrics — so the root sees a compact global view of thousands
//! of servers. [`PriorityMetrics`] is that summary: per priority level `j`,
//!
//! - `P_cap_min(i, j)` — minimum budget that must be allocated,
//! - `P_demand(i, j)` — full-performance power demand,
//! - `P_request(i, j)` — the budget actually requested, clamped by the
//!   *maximum allowable request* (higher priorities fully served, lower
//!   priorities kept at their minimum),
//!
//! plus the level-independent `P_constraint(i)` — the most power that can
//! be usefully and safely allocated to the subtree.

use core::fmt;

use capmaestro_topology::Priority;
use capmaestro_units::{Ratio, Watts};

/// Per-priority-level power summary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricEntry {
    /// Minimum total budget servers at this level must receive.
    pub cap_min: Watts,
    /// Total power demand at full performance.
    pub demand: Watts,
    /// Power actually requested (≤ demand aggregate, clamped by the
    /// maximum allowable request during aggregation).
    pub request: Watts,
}

impl MetricEntry {
    fn accumulate(&mut self, other: &MetricEntry) {
        self.cap_min += other.cap_min;
        self.demand += other.demand;
        self.request += other.request;
    }
}

/// The inputs a capping controller reports for one server power supply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafInput {
    /// Estimated server power demand at full performance (total AC).
    pub demand: Watts,
    /// The server's minimum controllable AC power (`Pcap_min(0)`).
    pub cap_min: Watts,
    /// The server's maximum controllable AC power (`Pcap_max(0)`).
    pub cap_max: Watts,
    /// Fraction `r` of the server load this supply carries.
    pub share: Ratio,
    /// The server's priority.
    pub priority: Priority,
}

impl LeafInput {
    /// Validates the physical sanity of the input.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < cap_min ≤ cap_max` and `0 ≤ share ≤ 1`.
    pub fn validate(&self) {
        assert!(
            self.cap_min > Watts::ZERO && self.cap_min <= self.cap_max,
            "leaf input requires 0 < cap_min <= cap_max, got {} / {}",
            self.cap_min,
            self.cap_max
        );
        assert!(
            self.share >= Ratio::ZERO && self.share <= Ratio::ONE,
            "leaf share must be within [0, 1], got {}",
            self.share
        );
    }
}

/// Metrics summarized by priority level for one control-tree node.
///
/// Levels are kept sorted in **descending** priority order — the order the
/// budgeting phase walks them.
///
/// # Examples
///
/// ```
/// use capmaestro_core::metrics::{LeafInput, PriorityMetrics};
/// use capmaestro_topology::Priority;
/// use capmaestro_units::{Ratio, Watts};
///
/// let leaf = LeafInput {
///     demand: Watts::new(430.0),
///     cap_min: Watts::new(270.0),
///     cap_max: Watts::new(490.0),
///     share: Ratio::ONE,
///     priority: Priority::HIGH,
/// };
/// let m = PriorityMetrics::from_leaf(&leaf);
/// assert_eq!(m.total_request(), Watts::new(430.0));
/// assert_eq!(m.constraint(), Watts::new(490.0));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PriorityMetrics {
    /// `(priority, entry)` sorted descending by priority.
    levels: Vec<(Priority, MetricEntry)>,
    constraint: Watts,
}

impl PriorityMetrics {
    /// An empty summary with zero constraint.
    pub fn empty() -> Self {
        PriorityMetrics::default()
    }

    /// Reassembles a summary from exported parts — the decode path of the
    /// distributed wire codec ([`crate::wire`]). The levels must arrive in
    /// strictly descending priority order (the stored invariant) and every
    /// quantity must be finite and non-negative; anything else is rejected
    /// so a corrupt or hostile frame cannot smuggle an invalid summary
    /// into the budgeting math.
    ///
    /// # Errors
    ///
    /// Returns a static description of the first violated invariant.
    pub fn from_raw_parts(
        levels: Vec<(Priority, MetricEntry)>,
        constraint: Watts,
    ) -> Result<Self, &'static str> {
        for pair in levels.windows(2) {
            if pair[0].0 <= pair[1].0 {
                return Err("priority levels must be strictly descending");
            }
        }
        for (_, entry) in &levels {
            for w in [entry.cap_min, entry.demand, entry.request] {
                if !w.as_f64().is_finite() || w < Watts::ZERO {
                    return Err("level entries must be finite and non-negative");
                }
            }
        }
        if !constraint.as_f64().is_finite() || constraint < Watts::ZERO {
            return Err("constraint must be finite and non-negative");
        }
        Ok(PriorityMetrics { levels, constraint })
    }

    /// Computes the metrics a capping controller reports for one supply
    /// (paper §4.3.1, level-1 formulas):
    ///
    /// - `cap_min = r × Pcap_min(0)`
    /// - `demand  = r × max(Pdemand(0), Pcap_min(0))`
    /// - `request = demand`
    /// - `constraint = r × Pcap_max(0)`
    ///
    /// The `max` guards the case of a lightly-loaded server: its aggregate
    /// budget must stay inside the controllable range or a later load spike
    /// could make the cap unenforceable.
    pub fn from_leaf(input: &LeafInput) -> Self {
        let mut out = PriorityMetrics::default();
        PriorityMetrics::from_leaf_into(input, &mut out);
        out
    }

    /// In-place variant of [`PriorityMetrics::from_leaf`]: writes the leaf
    /// summary into `out`, reusing its level buffer.
    pub fn from_leaf_into(input: &LeafInput, out: &mut PriorityMetrics) {
        input.validate();
        let demand = input.share * input.demand.max(input.cap_min);
        let entry = MetricEntry {
            cap_min: input.share * input.cap_min,
            demand,
            request: demand,
        };
        out.levels.clear();
        out.levels.push((input.priority, entry));
        out.constraint = input.share * input.cap_max;
    }

    /// Overwrites `self` with a copy of `src`, reusing the level buffer
    /// (no allocation once `self` has enough capacity).
    pub fn copy_from(&mut self, src: &PriorityMetrics) {
        self.levels.clear();
        self.levels.extend_from_slice(&src.levels);
        self.constraint = src.constraint;
    }

    /// Aggregates children's metrics at a shifting controller with power
    /// limit `limit` (`None` = unconstrained), applying the §4.3.1
    /// shifting-controller formulas including the maximum-allowable-request
    /// clamp.
    pub fn aggregate<'a>(
        children: impl IntoIterator<Item = &'a PriorityMetrics>,
        limit: Option<Watts>,
    ) -> Self {
        let mut out = PriorityMetrics::default();
        PriorityMetrics::aggregate_into(children, limit, false, &mut out);
        out
    }

    /// In-place variant of [`PriorityMetrics::aggregate`] that writes into
    /// `out`, reusing its level buffer.
    ///
    /// With `blind = true` each child is first collapsed to a single
    /// priority-blind level (exactly [`PriorityMetrics::collapsed`]) before
    /// accumulation — the operation sequence is identical to collapsing
    /// every child and aggregating the collapsed copies, without
    /// materializing them.
    pub fn aggregate_into<'a>(
        children: impl IntoIterator<Item = &'a PriorityMetrics>,
        limit: Option<Watts>,
        blind: bool,
        out: &mut PriorityMetrics,
    ) {
        // Sum cap_min / demand / raw requests per level, and constraints,
        // using `out.levels` directly as the sums buffer.
        out.levels.clear();
        let sums = &mut out.levels;
        let mut child_constraints = Watts::ZERO;
        for child in children {
            child_constraints += child.constraint;
            if blind {
                if child.levels.is_empty() {
                    continue;
                }
                let mut merged = MetricEntry::default();
                for (_, entry) in &child.levels {
                    merged.accumulate(entry);
                }
                merged.request = merged.request.min(child.constraint).max(merged.cap_min);
                let priority = Priority::LOW;
                match sums.binary_search_by(|(p, _)| priority.cmp(p)) {
                    Ok(pos) => sums[pos].1.accumulate(&merged),
                    Err(pos) => sums.insert(pos, (priority, merged)),
                }
            } else {
                for (priority, entry) in &child.levels {
                    match sums.binary_search_by(|(p, _)| priority.cmp(p)) {
                        Ok(pos) => sums[pos].1.accumulate(entry),
                        Err(pos) => sums.insert(pos, (*priority, *entry)),
                    }
                }
            }
        }
        let constraint = match limit {
            Some(l) => l.min(child_constraints),
            None => child_constraints,
        };
        out.constraint = constraint;

        // Clamp requests: level j may request at most
        //   constraint − Σ_{h>j} request(h) − Σ_{l<j} cap_min(l).
        // `sums` is sorted descending, so walk it once keeping running sums.
        let total_cap_min: Watts = sums.iter().map(|(_, e)| e.cap_min).sum();
        let mut higher_requests = Watts::ZERO;
        let mut cap_min_at_or_above = Watts::ZERO;
        for (_, entry) in sums.iter_mut() {
            cap_min_at_or_above += entry.cap_min;
            let lower_cap_min = total_cap_min - cap_min_at_or_above;
            let allowable = constraint
                .saturating_sub(higher_requests)
                .saturating_sub(lower_cap_min);
            // Never request below the level's own floor: step 1 of the
            // budgeting phase hands out cap_min unconditionally.
            entry.request = entry.request.min(allowable).max(entry.cap_min);
            higher_requests += entry.request;
        }
    }

    /// Collapses all levels into a single priority-blind level (used by the
    /// No-Priority policy and by Local Priority above leaf parents).
    pub fn collapsed(&self) -> Self {
        let mut out = PriorityMetrics::default();
        self.collapsed_into(&mut out);
        out
    }

    /// In-place variant of [`PriorityMetrics::collapsed`], writing into
    /// `out` (which must not alias `self`), reusing its level buffer.
    pub fn collapsed_into(&self, out: &mut PriorityMetrics) {
        let mut merged = MetricEntry::default();
        for (_, entry) in &self.levels {
            merged.accumulate(entry);
        }
        // The per-level clamp may not have bound jointly; re-clamp the
        // merged request against the constraint.
        merged.request = merged.request.min(self.constraint).max(merged.cap_min);
        out.levels.clear();
        if !self.levels.is_empty() {
            out.levels.push((Priority::LOW, merged));
        }
        out.constraint = self.constraint;
    }

    /// The levels, sorted descending by priority.
    pub fn levels(&self) -> &[(Priority, MetricEntry)] {
        &self.levels
    }

    /// The entry for a given priority, if present.
    pub fn level(&self, priority: Priority) -> Option<&MetricEntry> {
        self.levels
            .iter()
            .find(|(p, _)| *p == priority)
            .map(|(_, e)| e)
    }

    /// `P_constraint`: the most power that can be usefully allocated.
    pub fn constraint(&self) -> Watts {
        self.constraint
    }

    /// Total `P_cap_min` across levels.
    pub fn total_cap_min(&self) -> Watts {
        self.levels.iter().map(|(_, e)| e.cap_min).sum()
    }

    /// Total `P_demand` across levels.
    pub fn total_demand(&self) -> Watts {
        self.levels.iter().map(|(_, e)| e.demand).sum()
    }

    /// Total `P_request` across levels.
    pub fn total_request(&self) -> Watts {
        self.levels.iter().map(|(_, e)| e.request).sum()
    }

    /// Number of distinct priority levels summarized.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }
}

impl fmt::Display for PriorityMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "metrics [constraint {:.0}", self.constraint)?;
        for (p, e) in &self.levels {
            write!(
                f,
                "; {p}: min {:.0} demand {:.0} request {:.0}",
                e.cap_min, e.demand, e.request
            )?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(demand: f64, priority: Priority) -> PriorityMetrics {
        PriorityMetrics::from_leaf(&LeafInput {
            demand: Watts::new(demand),
            cap_min: Watts::new(270.0),
            cap_max: Watts::new(490.0),
            share: Ratio::ONE,
            priority,
        })
    }

    #[test]
    fn leaf_metrics_basic() {
        let m = leaf(430.0, Priority::HIGH);
        let entry = m.level(Priority::HIGH).unwrap();
        assert_eq!(entry.cap_min, Watts::new(270.0));
        assert_eq!(entry.demand, Watts::new(430.0));
        assert_eq!(entry.request, Watts::new(430.0));
        assert_eq!(m.constraint(), Watts::new(490.0));
        assert_eq!(m.level(Priority::LOW), None);
    }

    #[test]
    fn leaf_metrics_scaled_by_share() {
        let m = PriorityMetrics::from_leaf(&LeafInput {
            demand: Watts::new(400.0),
            cap_min: Watts::new(270.0),
            cap_max: Watts::new(490.0),
            share: Ratio::new(0.65),
            priority: Priority::LOW,
        });
        let entry = m.level(Priority::LOW).unwrap();
        assert!(entry.cap_min.approx_eq(Watts::new(175.5), Watts::new(1e-9)));
        assert!(entry.demand.approx_eq(Watts::new(260.0), Watts::new(1e-9)));
        assert!(m.constraint().approx_eq(Watts::new(318.5), Watts::new(1e-9)));
    }

    #[test]
    fn light_load_demand_floored_at_cap_min() {
        // Pdemand(0) below Pcap_min: the reported demand must not fall
        // under the controllable floor (§4.3.1 rationale).
        let m = PriorityMetrics::from_leaf(&LeafInput {
            demand: Watts::new(180.0),
            cap_min: Watts::new(270.0),
            cap_max: Watts::new(490.0),
            share: Ratio::ONE,
            priority: Priority::LOW,
        });
        assert_eq!(m.total_demand(), Watts::new(270.0));
        assert_eq!(m.total_request(), Watts::new(270.0));
    }

    #[test]
    fn aggregation_sums_levels() {
        let a = leaf(430.0, Priority::HIGH);
        let b = leaf(430.0, Priority::LOW);
        let m = PriorityMetrics::aggregate([&a, &b], Some(Watts::new(750.0)));
        assert_eq!(m.level_count(), 2);
        assert_eq!(m.total_cap_min(), Watts::new(540.0));
        assert_eq!(m.total_demand(), Watts::new(860.0));
        assert_eq!(m.constraint(), Watts::new(750.0));
        // High priority requests fully; low is clamped by the allowable
        // request: 750 − 430 = 320.
        assert_eq!(
            m.level(Priority::HIGH).unwrap().request,
            Watts::new(430.0)
        );
        assert_eq!(m.level(Priority::LOW).unwrap().request, Watts::new(320.0));
    }

    #[test]
    fn aggregation_clamps_high_priority_to_leave_lower_minimums() {
        // Tight limit: even the high level cannot request power that would
        // starve low-priority servers below cap_min.
        let a = leaf(490.0, Priority::HIGH);
        let b = leaf(490.0, Priority::LOW);
        let m = PriorityMetrics::aggregate([&a, &b], Some(Watts::new(600.0)));
        // allowable(high) = 600 − 0 − 270 = 330.
        assert_eq!(m.level(Priority::HIGH).unwrap().request, Watts::new(330.0));
        // allowable(low) = 600 − 330 − 0 = 270 (its own floor).
        assert_eq!(m.level(Priority::LOW).unwrap().request, Watts::new(270.0));
        // Σ requests ≤ constraint.
        assert!(m.total_request() <= m.constraint());
    }

    #[test]
    fn request_never_below_cap_min() {
        // Degenerate limit below the sum of minimums: requests floor at
        // cap_min so budgeting step 1 stays consistent.
        let a = leaf(490.0, Priority::HIGH);
        let b = leaf(490.0, Priority::LOW);
        let m = PriorityMetrics::aggregate([&a, &b], Some(Watts::new(400.0)));
        assert!(m.level(Priority::HIGH).unwrap().request >= Watts::new(270.0));
        assert!(m.level(Priority::LOW).unwrap().request >= Watts::new(270.0));
    }

    #[test]
    fn aggregation_uses_child_constraints_without_limit() {
        let a = leaf(430.0, Priority::LOW);
        let b = leaf(430.0, Priority::LOW);
        let m = PriorityMetrics::aggregate([&a, &b], None);
        assert_eq!(m.constraint(), Watts::new(980.0));
        assert_eq!(m.total_request(), Watts::new(860.0));
    }

    #[test]
    fn nested_aggregation_matches_fig2_table1_metrics() {
        // Fig. 2: SA(high)+SB under Left CB 750, SC+SD under Right CB 750,
        // Top CB 1400.
        let left = PriorityMetrics::aggregate(
            [&leaf(430.0, Priority::HIGH), &leaf(430.0, Priority::LOW)],
            Some(Watts::new(750.0)),
        );
        let right = PriorityMetrics::aggregate(
            [&leaf(430.0, Priority::LOW), &leaf(430.0, Priority::LOW)],
            Some(Watts::new(750.0)),
        );
        let top = PriorityMetrics::aggregate([&left, &right], Some(Watts::new(1400.0)));
        assert_eq!(top.constraint(), Watts::new(1400.0));
        assert_eq!(top.level(Priority::HIGH).unwrap().request, Watts::new(430.0));
        // Low: min(1400 − 430 − 0, 320 + 750) = 970.
        assert_eq!(top.level(Priority::LOW).unwrap().request, Watts::new(970.0));
    }

    #[test]
    fn collapse_merges_levels() {
        let a = leaf(430.0, Priority::HIGH);
        let b = leaf(430.0, Priority::LOW);
        let m = PriorityMetrics::aggregate([&a, &b], Some(Watts::new(750.0)));
        let c = m.collapsed();
        assert_eq!(c.level_count(), 1);
        assert_eq!(c.total_cap_min(), Watts::new(540.0));
        assert_eq!(c.total_demand(), Watts::new(860.0));
        // 430 + 320 = 750, already at the constraint.
        assert_eq!(c.total_request(), Watts::new(750.0));
        assert_eq!(c.constraint(), Watts::new(750.0));
    }

    #[test]
    fn collapse_of_empty_is_empty() {
        let m = PriorityMetrics::empty();
        assert_eq!(m.collapsed().level_count(), 0);
        assert_eq!(m.collapsed().constraint(), Watts::ZERO);
    }

    #[test]
    #[should_panic(expected = "cap_min")]
    fn invalid_leaf_input_panics() {
        let _ = PriorityMetrics::from_leaf(&LeafInput {
            demand: Watts::new(400.0),
            cap_min: Watts::new(500.0),
            cap_max: Watts::new(490.0),
            share: Ratio::ONE,
            priority: Priority::LOW,
        });
    }

    #[test]
    fn display_lists_levels() {
        let m = leaf(430.0, Priority::HIGH);
        let s = m.to_string();
        assert!(s.contains("constraint 490 W"));
        assert!(s.contains("P1"));
    }

    #[test]
    fn many_priority_levels_stay_sorted() {
        let leaves: Vec<PriorityMetrics> =
            (0..8).map(|p| leaf(300.0, Priority(p))).collect();
        let m = PriorityMetrics::aggregate(leaves.iter(), None);
        let priorities: Vec<u8> = m.levels().iter().map(|(p, _)| p.level()).collect();
        assert_eq!(priorities, vec![7, 6, 5, 4, 3, 2, 1, 0]);
    }
}
