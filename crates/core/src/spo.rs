//! Stranded-power optimization (paper §4.4).
//!
//! A server does not split load evenly across its supplies, so the budgets
//! two independent feed trees assign to the same server rarely match its
//! intrinsic split: the server's consumption is pinned by its most
//! constrained supply, leaving part of the other supply's budget *stranded*.
//!
//! SPO runs after the priority-aware allocation: it computes how much each
//! supply can actually use given every supply's budget and the split ratio,
//! shrinks stranded budgets to their usable amount, and re-runs the
//! allocation so the freed power reaches servers that were capped.

use std::collections::HashMap;

use capmaestro_topology::{ServerId, SupplyIndex};
use capmaestro_units::Watts;

use crate::alloc::{Allocator, WaterfallAllocator};
use crate::obs::{PhaseTimer, Recorder, RoundPhase};
use crate::par::{par_for_each_mut, par_map};
use crate::policy::CappingPolicy;
use crate::tree::{Allocation, ControlTree, SupplyInput, TreeRoundState};

/// Stranded power below this threshold is ignored (measurement noise in a
/// real deployment; numerical noise here).
pub const STRAND_EPSILON: Watts = Watts::new(0.5);

/// Result of a stranded-power optimization round.
#[derive(Debug, Clone)]
pub struct SpoOutcome {
    /// First-pass allocations, one per tree (before SPO).
    pub first: Vec<Allocation>,
    /// Second-pass allocations after stranded budgets were reclaimed.
    pub second: Vec<Allocation>,
    /// Stranded power found per supply in the first pass.
    pub stranded: HashMap<(ServerId, SupplyIndex), Watts>,
}

impl SpoOutcome {
    /// Total stranded power detected in the first pass.
    ///
    /// Summed in `(server, supply)` order: map iteration order varies per
    /// instance and f64 addition is not associative, so a fixed order
    /// keeps the reported total bit-identical across control planes.
    pub fn total_stranded(&self) -> Watts {
        let mut entries: Vec<(&(ServerId, SupplyIndex), &Watts)> =
            self.stranded.iter().collect();
        entries.sort_unstable_by_key(|(&key, _)| key);
        entries.into_iter().map(|(_, &w)| w).sum()
    }

    /// Final (post-SPO) budget for a supply, searching all trees.
    pub fn final_supply_budget(
        &self,
        server: ServerId,
        supply: SupplyIndex,
    ) -> Option<Watts> {
        self.second
            .iter()
            .find_map(|a| a.supply_budget(server, supply))
    }

    /// First-pass (pre-SPO) budget for a supply.
    pub fn initial_supply_budget(
        &self,
        server: ServerId,
        supply: SupplyIndex,
    ) -> Option<Watts> {
        self.first
            .iter()
            .find_map(|a| a.supply_budget(server, supply))
    }
}

/// Per-server view assembled across trees: supplies with their shares,
/// budgets, and the server's demand/cap_min.
#[derive(Debug, Clone)]
struct ServerView {
    demand: Watts,
    cap_min: Watts,
    /// `(tree index, server, supply, share, budget)`.
    supplies: Vec<(usize, SupplyIndex, f64, Watts)>,
}

fn collect_server_views(
    trees: &[ControlTree],
    allocations: &[Allocation],
) -> HashMap<ServerId, ServerView> {
    let mut views: HashMap<ServerId, ServerView> = HashMap::new();
    for (t, (tree, alloc)) in trees.iter().zip(allocations).enumerate() {
        for idx in 0..tree.spec().len() {
            let Some(leaf) = tree.spec().node(idx).leaf else {
                continue;
            };
            let Some(input) = tree.input_at(idx) else {
                continue;
            };
            let budget = alloc
                .supply_budget(leaf.server, leaf.supply)
                .unwrap_or(Watts::ZERO);
            let view = views.entry(leaf.server).or_insert_with(|| ServerView {
                demand: Watts::ZERO,
                cap_min: Watts::ZERO,
                supplies: Vec::new(),
            });
            view.demand = view.demand.max(input.demand);
            view.cap_min = view.cap_min.max(input.cap_min);
            view.supplies
                .push((t, leaf.supply, input.share.as_f64(), budget));
        }
    }
    views
}

/// The AC power a server will actually draw given its per-supply budgets:
/// its demand, clamped by the most constrained supply (budget ÷ share).
fn achievable_consumption(view: &ServerView) -> Watts {
    let mut limit = f64::INFINITY;
    for &(_, _, share, budget) in &view.supplies {
        if share > 0.0 {
            limit = limit.min(budget.as_f64() / share);
        }
    }
    let demand = view.demand.max(view.cap_min);
    if limit.is_finite() {
        demand.min(Watts::new(limit))
    } else {
        demand
    }
}

/// Runs the global priority-aware allocation on each tree, detects stranded
/// per-supply budget, shrinks it, and re-runs the allocation (paper §4.4).
///
/// `trees` and `root_budgets` are parallel: tree `i` allocates
/// `root_budgets[i]`. All trees must cover the same control period — in a
/// redundant data center they are the per-feed trees of one phase.
///
/// # Examples
///
/// ```
/// use capmaestro_core::policy::GlobalPriority;
/// use capmaestro_core::spo::optimize_stranded_power;
/// use capmaestro_core::tree::{ControlTree, SupplyInput};
/// use capmaestro_topology::presets::figure7a_rig;
/// use capmaestro_units::{Ratio, Watts};
///
/// let topo = figure7a_rig();
/// let mut trees: Vec<ControlTree> = topo
///     .control_tree_specs()
///     .into_iter()
///     .map(ControlTree::new)
///     .collect();
/// for tree in &mut trees {
///     // Dual-corded servers with a 60/40 split; single-corded at 1.0.
///     tree.set_inputs_with(|server, supply| SupplyInput {
///         demand: Watts::new(430.0),
///         cap_min: Watts::new(270.0),
///         cap_max: Watts::new(490.0),
///         share: if topo.supply_count(server) == 1 {
///             Ratio::ONE
///         } else if supply.index() == 0 {
///             Ratio::new(0.6)
///         } else {
///             Ratio::new(0.4)
///         },
///     });
/// }
/// let outcome = optimize_stranded_power(
///     &trees,
///     &[Watts::new(700.0), Watts::new(700.0)],
///     &GlobalPriority::new(),
/// );
/// // The split mismatch strands power on the first pass…
/// assert!(outcome.total_stranded() > Watts::ZERO);
/// ```
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn optimize_stranded_power(
    trees: &[ControlTree],
    root_budgets: &[Watts],
    policy: &dyn CappingPolicy,
) -> SpoOutcome {
    optimize_stranded_power_with(trees, root_budgets, policy, &WaterfallAllocator)
}

/// [`optimize_stranded_power`] with an explicit budget-split
/// [`Allocator`] — both SPO passes run the same allocator the plain
/// allocation rounds use, so policy selection stays consistent across a
/// round.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn optimize_stranded_power_with(
    trees: &[ControlTree],
    root_budgets: &[Watts],
    policy: &dyn CappingPolicy,
    allocator: &dyn Allocator,
) -> SpoOutcome {
    assert_eq!(
        trees.len(),
        root_budgets.len(),
        "one root budget per tree is required"
    );

    // Pass 1: plain allocation.
    let first: Vec<Allocation> = trees
        .iter()
        .zip(root_budgets)
        .map(|(t, &b)| t.allocate_with(b, policy, allocator))
        .collect();

    let (stranded, adjusted) = detect_strands(trees, &first);

    // Pass 2: shrink stranded supplies' demand/constraint to what they can
    // use, then re-allocate so the freed power moves elsewhere on the feed.
    let mut trees2: Vec<ControlTree> = trees.to_vec();
    for tree in &mut trees2 {
        shrink_stranded_inputs(tree, &adjusted);
    }
    let second: Vec<Allocation> = trees2
        .iter()
        .zip(root_budgets)
        .map(|(t, &b)| t.allocate_with(b, policy, allocator))
        .collect();

    SpoOutcome {
        first,
        second,
        stranded,
    }
}

/// [`optimize_stranded_power`] with both allocation passes (and the
/// per-tree input adjustment between them) fanned out across `threads`
/// scoped threads. Trees allocate independently within each pass; the
/// strand detection that couples them stays sequential, so the outcome is
/// bit-identical to the sequential version for every thread count.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn optimize_stranded_power_par(
    trees: &[ControlTree],
    root_budgets: &[Watts],
    policy: &(dyn CappingPolicy + Sync),
    threads: usize,
) -> SpoOutcome {
    optimize_stranded_power_par_with(trees, root_budgets, policy, &WaterfallAllocator, threads)
}

/// [`optimize_stranded_power_par`] with an explicit budget-split
/// [`Allocator`]. Bit-identical to [`optimize_stranded_power_with`] on the
/// same inputs for every thread count.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn optimize_stranded_power_par_with(
    trees: &[ControlTree],
    root_budgets: &[Watts],
    policy: &(dyn CappingPolicy + Sync),
    allocator: &dyn Allocator,
    threads: usize,
) -> SpoOutcome {
    if threads <= 1 {
        return optimize_stranded_power_with(trees, root_budgets, policy, allocator);
    }
    assert_eq!(
        trees.len(),
        root_budgets.len(),
        "one root budget per tree is required"
    );
    let allocate_all = |ts: &[ControlTree]| -> Vec<Allocation> {
        let pairs: Vec<(&ControlTree, Watts)> =
            ts.iter().zip(root_budgets.iter().copied()).collect();
        par_map(&pairs, threads, |&(t, b)| t.allocate_with(b, policy, allocator))
    };

    let first = allocate_all(trees);
    let (stranded, adjusted) = detect_strands(trees, &first);
    let mut trees2: Vec<ControlTree> = trees.to_vec();
    let adjusted_ref = &adjusted;
    par_for_each_mut(&mut trees2, threads, |tree| {
        shrink_stranded_inputs(tree, adjusted_ref);
    });
    let second = allocate_all(&trees2);

    SpoOutcome {
        first,
        second,
        stranded,
    }
}

/// Finds stranded budget per supply after a first-pass allocation. The
/// detection couples trees (a dual-corded server's supplies live in
/// different trees), so it runs sequentially in both SPO variants.
/// Returns `(stranded amount, achievable consumption)` keyed by supply,
/// the latter only for supplies worth shrinking.
#[allow(clippy::type_complexity)]
fn detect_strands(
    trees: &[ControlTree],
    first: &[Allocation],
) -> (
    HashMap<(ServerId, SupplyIndex), Watts>,
    HashMap<(ServerId, SupplyIndex), Watts>,
) {
    let views = collect_server_views(trees, first);
    let mut stranded = HashMap::new();
    let mut adjusted = HashMap::new();
    for (&server, view) in &views {
        let actual = achievable_consumption(view);
        for &(_, supply, share, budget) in &view.supplies {
            let usable = actual * share;
            let strand = budget.saturating_sub(usable);
            if strand > STRAND_EPSILON {
                stranded.insert((server, supply), strand);
                adjusted.insert((server, supply), actual);
            }
        }
    }
    (stranded, adjusted)
}

/// Shrinks a tree's stranded leaves' demand/constraint to their achievable
/// consumption (the pass-2 input adjustment). Writes only to `tree`, so
/// trees can be adjusted concurrently.
fn shrink_stranded_inputs(
    tree: &mut ControlTree,
    adjusted: &HashMap<(ServerId, SupplyIndex), Watts>,
) {
    let spec_len = tree.spec().len();
    for idx in 0..spec_len {
        let Some(leaf) = tree.spec().node(idx).leaf else {
            continue;
        };
        let Some(&actual) = adjusted.get(&(leaf.server, leaf.supply)) else {
            continue;
        };
        let Some(&input) = tree.input_at(idx) else {
            continue;
        };
        let new_input = SupplyInput {
            demand: actual,
            cap_max: actual.max(input.cap_min),
            ..input
        };
        tree.set_supply_input(leaf.server, leaf.supply, new_input);
    }
}

/// One supply's position in the precomputed SPO routing table.
#[derive(Debug, Clone)]
struct RouteSupply {
    tree: u32,
    node: u32,
    slot: u32,
    supply: SupplyIndex,
}

/// A server's supplies across all trees, precomputed so strand detection
/// walks flat lists instead of rebuilding hash-keyed views every round.
#[derive(Debug, Clone)]
struct RouteServer {
    server: ServerId,
    supplies: Vec<RouteSupply>,
}

/// Reusable buffers for [`optimize_stranded_power_in`]: precomputed
/// per-server supply routes, per-tree [`TreeRoundState`]s for both passes,
/// pass-1 allocations, per-tree input overlays, and strand bookkeeping.
/// Keep one per control plane and reuse it across rounds; steady-state SPO
/// then performs no heap allocation.
#[derive(Debug, Default)]
pub struct SpoScratch {
    routes_valid: bool,
    routes: Vec<RouteServer>,
    states1: Vec<TreeRoundState>,
    states2: Vec<TreeRoundState>,
    first: Vec<Allocation>,
    overlays: Vec<Vec<Option<SupplyInput>>>,
    stranded: HashMap<(ServerId, SupplyIndex), Watts>,
    sorted_keys: Vec<(ServerId, SupplyIndex)>,
}

impl SpoScratch {
    /// Creates an empty scratch; the first round shapes it.
    pub fn new() -> Self {
        SpoScratch::default()
    }

    /// Invalidates the cached routes and round states. Must be called
    /// whenever the tree set changes (feed failure / restore): routes are
    /// keyed by tree index and leaf slot.
    pub fn invalidate(&mut self) {
        self.routes_valid = false;
        for s in &mut self.states1 {
            s.invalidate();
        }
        for s in &mut self.states2 {
            s.invalidate();
        }
    }

    /// Cumulative `(summarized, dirty_skipped)` gather counts summed over
    /// both passes' round states.
    pub fn gather_stats(&self) -> (u64, u64) {
        self.states1
            .iter()
            .chain(&self.states2)
            .map(TreeRoundState::gather_stats)
            .fold((0, 0), |(s, k), (ds, dk)| (s + ds, k + dk))
    }

    fn rebuild_routes(&mut self, trees: &[ControlTree]) {
        self.routes.clear();
        self.overlays.clear();
        let mut by_server: HashMap<ServerId, usize> = HashMap::new();
        for (t, tree) in trees.iter().enumerate() {
            self.overlays.push(vec![None; tree.spec().len()]);
            let leaf_index = tree.arena().leaf_index();
            for slot in 0..leaf_index.len() {
                let idx = leaf_index.node(slot);
                let Some(leaf) = tree.spec().node(idx).leaf else {
                    continue;
                };
                let entry = *by_server.entry(leaf.server).or_insert_with(|| {
                    self.routes.push(RouteServer {
                        server: leaf.server,
                        supplies: Vec::new(),
                    });
                    self.routes.len() - 1
                });
                self.routes[entry].supplies.push(RouteSupply {
                    tree: t as u32,
                    node: idx as u32,
                    slot: slot as u32,
                    supply: leaf.supply,
                });
            }
        }
        self.routes_valid = true;
    }
}

/// Allocation-free variant of [`optimize_stranded_power`] for the control
/// plane's hot path: both passes run through [`ControlTree::allocate_in`]
/// with round states held in `scratch`, strand detection walks precomputed
/// per-server routes, and the pass-2 input shrink is applied as an overlay
/// instead of cloning the trees. Writes the post-SPO allocations into
/// `second` (buffers reused) and returns the total stranded power detected
/// in the first pass, summed in `(server, supply)` order.
///
/// Bit-identical to [`optimize_stranded_power_with`] on the same inputs.
///
/// The caller must call [`SpoScratch::invalidate`] whenever the tree set
/// changes between rounds.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn optimize_stranded_power_in(
    trees: &[ControlTree],
    root_budgets: &[Watts],
    policy: &dyn CappingPolicy,
    allocator: &dyn Allocator,
    scratch: &mut SpoScratch,
    second: &mut Vec<Allocation>,
    recorder: &dyn Recorder,
) -> Watts {
    assert_eq!(
        trees.len(),
        root_budgets.len(),
        "one root budget per tree is required"
    );
    let n = trees.len();
    if !scratch.routes_valid || scratch.overlays.len() != n {
        scratch.rebuild_routes(trees);
    }
    if scratch.states1.len() != n {
        scratch.states1.resize_with(n, TreeRoundState::new);
        scratch.states2.resize_with(n, TreeRoundState::new);
    }
    if scratch.first.len() != n {
        scratch.first.clear();
        scratch.first.resize_with(n, Allocation::default);
    }
    if second.len() != n {
        second.clear();
        second.resize_with(n, Allocation::default);
    }

    // Pass 1: plain allocation (incremental per tree). Attributed to the
    // Allocate phase; strand detection and pass 2 below are the Spo phase.
    let allocate_timer =
        PhaseTimer::start(recorder, RoundPhase::Allocate.metric_name());
    for i in 0..n {
        trees[i].allocate_in(
            root_budgets[i],
            policy,
            allocator,
            &mut scratch.states1[i],
            None,
            &mut scratch.first[i],
        );
    }
    drop(allocate_timer);
    let spo_timer = PhaseTimer::start(recorder, RoundPhase::Spo.metric_name());

    // Strand detection over the precomputed routes — the same max/min/mul
    // operations as `detect_strands`, so the results are bit-identical.
    for overlay in &mut scratch.overlays {
        overlay.iter_mut().for_each(|o| *o = None);
    }
    scratch.stranded.clear();
    for rs in &scratch.routes {
        let mut demand = Watts::ZERO;
        let mut cap_min = Watts::ZERO;
        let mut limit = f64::INFINITY;
        let mut any_input = false;
        for s in &rs.supplies {
            let Some(input) = trees[s.tree as usize].input_at(s.node as usize) else {
                continue;
            };
            any_input = true;
            demand = demand.max(input.demand);
            cap_min = cap_min.max(input.cap_min);
            let share = input.share.as_f64();
            if share > 0.0 {
                let budget = scratch.first[s.tree as usize].leaf_budget(s.slot as usize);
                limit = limit.min(budget.as_f64() / share);
            }
        }
        if !any_input {
            continue;
        }
        let demand = demand.max(cap_min);
        let actual = if limit.is_finite() {
            demand.min(Watts::new(limit))
        } else {
            demand
        };
        for s in &rs.supplies {
            let Some(&input) = trees[s.tree as usize].input_at(s.node as usize) else {
                continue;
            };
            let budget = scratch.first[s.tree as usize].leaf_budget(s.slot as usize);
            let usable = actual * input.share.as_f64();
            let strand = budget.saturating_sub(usable);
            if strand > STRAND_EPSILON {
                scratch.stranded.insert((rs.server, s.supply), strand);
                scratch.overlays[s.tree as usize][s.node as usize] = Some(SupplyInput {
                    demand: actual,
                    cap_max: actual.max(input.cap_min),
                    ..input
                });
            }
        }
    }

    // Total stranded, summed in deterministic key order.
    scratch.sorted_keys.clear();
    scratch.sorted_keys.extend(scratch.stranded.keys().copied());
    scratch.sorted_keys.sort_unstable();
    let total: Watts = scratch
        .sorted_keys
        .iter()
        .map(|k| scratch.stranded[k])
        .sum();

    // Pass 2: re-allocate with the shrunken inputs overlaid.
    for i in 0..n {
        trees[i].allocate_in(
            root_budgets[i],
            policy,
            allocator,
            &mut scratch.states2[i],
            Some(&scratch.overlays[i]),
            &mut second[i],
        );
    }
    drop(spo_timer);
    total
}

/// Iterates [`optimize_stranded_power`] until no further stranded power is
/// found (or `max_rounds` is hit) — an extension beyond the paper, which
/// runs the optimization exactly once per control period. Re-budgeting can
/// strand *new* power (a supply that gained budget may now be limited by
/// its sibling), so a fixpoint can recover slightly more than one pass.
///
/// Returns the outcome of the final round plus the number of rounds run.
///
/// # Panics
///
/// Panics if `max_rounds` is zero or the slices have different lengths.
pub fn optimize_stranded_power_iterated(
    trees: &[ControlTree],
    root_budgets: &[Watts],
    policy: &dyn crate::policy::CappingPolicy,
    max_rounds: usize,
) -> (SpoOutcome, usize) {
    assert!(max_rounds > 0, "at least one SPO round is required");
    let mut current: Vec<ControlTree> = trees.to_vec();
    let mut rounds = 0;
    loop {
        let outcome = optimize_stranded_power(&current, root_budgets, policy);
        rounds += 1;
        if outcome.total_stranded() <= STRAND_EPSILON || rounds >= max_rounds {
            return (outcome, rounds);
        }
        // Carry the shrunken inputs forward: rebuild the trees with the
        // adjusted demands/constraints by re-running the adjustment the
        // same way optimize_stranded_power did internally.
        let views = collect_server_views(&current, &outcome.first);
        let mut adjusted = std::collections::HashMap::new();
        for (&server, view) in &views {
            let actual = achievable_consumption(view);
            for &(_, supply, share, budget) in &view.supplies {
                let usable = actual * share;
                if budget.saturating_sub(usable) > STRAND_EPSILON {
                    adjusted.insert((server, supply), actual);
                }
            }
        }
        for tree in &mut current {
            let spec_len = tree.spec().len();
            for idx in 0..spec_len {
                let Some(leaf) = tree.spec().node(idx).leaf else {
                    continue;
                };
                let Some(&actual) = adjusted.get(&(leaf.server, leaf.supply)) else {
                    continue;
                };
                let Some(&input) = tree.input_at(idx) else {
                    continue;
                };
                tree.set_supply_input(
                    leaf.server,
                    leaf.supply,
                    crate::tree::SupplyInput {
                        demand: actual,
                        cap_max: actual.max(input.cap_min),
                        ..input
                    },
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::GlobalPriority;
    use capmaestro_topology::presets::figure7a_rig;
    use capmaestro_topology::Topology;
    use capmaestro_units::Ratio;

    /// Builds the Fig. 7a rig trees with the paper's Table 3 demands and an
    /// uneven split for the dual-corded servers.
    fn fig7a_trees() -> (Topology, Vec<ControlTree>) {
        let topo = figure7a_rig();
        let demands = [
            ("SA", 414.0),
            ("SB", 415.0),
            ("SC", 433.0),
            ("SD", 439.0),
        ];
        let mut trees: Vec<ControlTree> = topo
            .control_tree_specs()
            .into_iter()
            .map(ControlTree::new)
            .collect();
        for tree in &mut trees {
            let topo_ref = &topo;
            tree.set_inputs_with(|server, supply| {
                let name = topo_ref.server(server).unwrap().name().to_string();
                let demand = demands
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, d)| *d)
                    .unwrap();
                // SA and SB are single-corded (share 1). SC and SD split
                // unevenly: X side carries 53 %, Y side 47 % for SC;
                // SD is 46/54 — mismatched splits strand power.
                let share = match (name.as_str(), supply.index()) {
                    ("SA", _) | ("SB", _) => 1.0,
                    ("SC", 0) => 0.53,
                    ("SC", _) => 0.47,
                    ("SD", 0) => 0.46,
                    _ => 0.54,
                };
                SupplyInput {
                    demand: Watts::new(demand),
                    cap_min: Watts::new(270.0),
                    cap_max: Watts::new(490.0),
                    share: Ratio::new(share),
                }
            });
        }
        (topo, trees)
    }

    #[test]
    fn detects_and_reclaims_stranded_power() {
        let (topo, trees) = fig7a_trees();
        let budgets = vec![Watts::new(700.0), Watts::new(700.0)];
        let outcome = optimize_stranded_power(&trees, &budgets, &GlobalPriority::new());

        // Something must be stranded: SC/SD splits cannot match the
        // independent X/Y allocations exactly.
        assert!(outcome.total_stranded() > Watts::new(5.0));

        // SB (Y-side only, low priority, capped in pass 1) must gain power.
        let sb = topo.server_by_name("SB").unwrap();
        let before = outcome
            .initial_supply_budget(sb, SupplyIndex::FIRST)
            .unwrap();
        let after = outcome.final_supply_budget(sb, SupplyIndex::FIRST).unwrap();
        assert!(
            after > before + Watts::new(5.0),
            "SB budget should grow: {before} -> {after}"
        );
    }

    #[test]
    fn high_priority_server_is_unaffected() {
        let (topo, trees) = fig7a_trees();
        let budgets = vec![Watts::new(700.0), Watts::new(700.0)];
        let outcome = optimize_stranded_power(&trees, &budgets, &GlobalPriority::new());
        let sa = topo.server_by_name("SA").unwrap();
        let before = outcome
            .initial_supply_budget(sa, SupplyIndex::FIRST)
            .unwrap();
        let after = outcome.final_supply_budget(sa, SupplyIndex::FIRST).unwrap();
        // SA was already fully served (high priority): its budget must not
        // shrink below its demand.
        assert!(before >= Watts::new(413.0));
        assert!(after >= Watts::new(413.0));
    }

    #[test]
    fn feed_budgets_still_respected_after_spo() {
        let (_, trees) = fig7a_trees();
        let budgets = vec![Watts::new(700.0), Watts::new(700.0)];
        let outcome = optimize_stranded_power(&trees, &budgets, &GlobalPriority::new());
        for (alloc, budget) in outcome.second.iter().zip(&budgets) {
            assert!(
                alloc.total_leaf_budget() <= *budget + Watts::new(1e-6),
                "post-SPO allocation exceeds feed budget"
            );
        }
    }

    #[test]
    fn no_strand_when_splits_match_budgets() {
        // A single-feed scenario (every server single-corded) strands
        // nothing: each supply's budget is exactly consumable.
        let topo = capmaestro_topology::presets::figure2_feed();
        let spec = topo.control_tree_specs().remove(0);
        let tree = ControlTree::with_uniform(
            spec,
            SupplyInput {
                demand: Watts::new(430.0),
                cap_min: Watts::new(270.0),
                cap_max: Watts::new(490.0),
                share: Ratio::ONE,
            },
        );
        let outcome = optimize_stranded_power(
            &[tree],
            &[Watts::new(1240.0)],
            &GlobalPriority::new(),
        );
        assert_eq!(outcome.total_stranded(), Watts::ZERO);
        // Second pass equals the first.
        assert_eq!(outcome.first[0], outcome.second[0]);
    }

    #[test]
    fn parallel_spo_is_bit_identical_to_sequential() {
        let (_, trees) = fig7a_trees();
        let budgets = vec![Watts::new(700.0), Watts::new(700.0)];
        let policy = GlobalPriority::new();
        let seq = optimize_stranded_power(&trees, &budgets, &policy);
        for threads in [1, 2, 3, 8] {
            let par = optimize_stranded_power_par(&trees, &budgets, &policy, threads);
            assert_eq!(seq.first, par.first, "pass-1 mismatch at {threads} threads");
            assert_eq!(seq.second, par.second, "pass-2 mismatch at {threads} threads");
            assert_eq!(seq.stranded, par.stranded);
        }
    }

    #[test]
    #[should_panic(expected = "one root budget per tree")]
    fn mismatched_lengths_panic() {
        let (_, trees) = fig7a_trees();
        let _ = optimize_stranded_power(&trees, &[Watts::new(700.0)], &GlobalPriority::new());
    }

    #[test]
    fn iterated_spo_reaches_a_fixpoint() {
        let (_, trees) = fig7a_trees();
        let budgets = vec![Watts::new(700.0), Watts::new(700.0)];
        let (outcome, rounds) = optimize_stranded_power_iterated(
            &trees,
            &budgets,
            &GlobalPriority::new(),
            5,
        );
        assert!((1..=5).contains(&rounds));
        // At the fixpoint (or cap), budgets still respect the feeds.
        for (alloc, budget) in outcome.second.iter().zip(&budgets) {
            assert!(alloc.total_leaf_budget() <= *budget + Watts::new(1e-6));
        }
        // A single extra round never *loses* served power vs one pass.
        let single = optimize_stranded_power(&trees, &budgets, &GlobalPriority::new());
        let views_single = collect_server_views(&trees, &single.second);
        let views_iter = collect_server_views(&trees, &outcome.second);
        let served_single: Watts =
            views_single.values().map(achievable_consumption).sum();
        let served_iter: Watts =
            views_iter.values().map(achievable_consumption).sum();
        assert!(served_iter >= served_single - Watts::new(1.0));
    }

    #[test]
    #[should_panic(expected = "at least one SPO round")]
    fn zero_rounds_rejected() {
        let (_, trees) = fig7a_trees();
        let _ = optimize_stranded_power_iterated(
            &trees,
            &[Watts::new(700.0), Watts::new(700.0)],
            &GlobalPriority::new(),
            0,
        );
    }

    #[test]
    fn scratch_spo_is_bit_identical_to_cloning_path() {
        let (_, mut trees) = fig7a_trees();
        let policy = GlobalPriority::new();
        let mut scratch = SpoScratch::new();
        let mut second = Vec::new();
        // Several rounds with different budgets and a demand change in the
        // middle, reusing the scratch throughout: every round must match the
        // cloning implementation bit for bit.
        let budget_rounds = [
            [Watts::new(700.0), Watts::new(700.0)],
            [Watts::new(650.0), Watts::new(720.0)],
            [Watts::new(650.0), Watts::new(720.0)],
            [Watts::new(820.0), Watts::new(600.0)],
        ];
        for (round, budgets) in budget_rounds.iter().enumerate() {
            if round == 2 {
                for tree in &mut trees {
                    tree.set_inputs_with(|server, _| {
                        let bump = if server.index() == 0 { 12.0 } else { 0.0 };
                        SupplyInput {
                            demand: Watts::new(414.0 + bump),
                            cap_min: Watts::new(270.0),
                            cap_max: Watts::new(490.0),
                            share: Ratio::new(0.5),
                        }
                    });
                }
            }
            let expected = optimize_stranded_power(&trees, budgets, &policy);
            let total = optimize_stranded_power_in(
                &trees,
                budgets,
                &policy,
                &WaterfallAllocator,
                &mut scratch,
                &mut second,
                &crate::obs::NullRecorder,
            );
            assert_eq!(second, expected.second, "round {round} allocations differ");
            assert_eq!(
                total.as_f64().to_bits(),
                expected.total_stranded().as_f64().to_bits(),
                "round {round} stranded totals differ"
            );
        }
    }

    #[test]
    fn spo_never_reduces_total_served_power() {
        let (_, trees) = fig7a_trees();
        let budgets = vec![Watts::new(700.0), Watts::new(700.0)];
        let outcome = optimize_stranded_power(&trees, &budgets, &GlobalPriority::new());
        let views1 = collect_server_views(&trees, &outcome.first);
        let total_before: Watts = views1.values().map(achievable_consumption).sum();
        // Recompute achievable consumption under the second allocation with
        // the ORIGINAL inputs (shares/demands unchanged physically).
        let views2 = collect_server_views(&trees, &outcome.second);
        let total_after: Watts = views2.values().map(achievable_consumption).sum();
        assert!(
            total_after >= total_before - Watts::new(1e-6),
            "SPO reduced served power: {total_before} -> {total_after}"
        );
    }
}
