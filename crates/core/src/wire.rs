//! Versioned, length-prefixed wire codec for the distributed control
//! plane.
//!
//! The rack ↔ room message schema ([`UpMsg`], [`DownMsg`]) travels over
//! in-process channels by default; the socket transport serializes the
//! same typed messages with this codec. The format is deliberately dumb:
//!
//! ```text
//! frame   := len:u32le payload            (len = payload byte length)
//! payload := version:u8 tag:u8 fields…
//! ```
//!
//! All integers are little-endian; watt quantities are IEEE-754 f64 bit
//! patterns (`f64::to_bits`, little-endian), so a value survives a
//! round-trip *bit-exactly* — the socket-vs-channel differential tests
//! depend on that. Decoding is total: any byte sequence either yields a
//! message or a [`WireError`], never a panic, and never allocates more
//! than the frame it was handed could justify.

use capmaestro_topology::Priority;
use capmaestro_units::Watts;
use core::fmt;
use std::error::Error;

use crate::metrics::{MetricEntry, PriorityMetrics};
use crate::workers::{CutId, DownMsg, UpMsg};

/// Protocol version carried in every payload. Bump on any schema change;
/// decoders reject other versions outright (agents and controllers are
/// deployed together, so there is no cross-version negotiation).
pub const WIRE_VERSION: u8 = 1;

/// Upper bound on a single frame's payload, in bytes. Generous for the
/// schema (a 100k-leaf metrics report is still far below it) while
/// keeping a hostile or corrupt length prefix from provoking a huge
/// allocation.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Why a frame or payload failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the message did, or an element count
    /// promises more data than the payload holds.
    Truncated,
    /// The frame length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversized {
        /// The length the prefix claimed.
        len: usize,
    },
    /// The payload's version byte is not [`WIRE_VERSION`].
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// The payload's tag byte names no message in this direction.
    BadTag {
        /// The tag byte received.
        got: u8,
    },
    /// A field held a semantically invalid value (non-finite or negative
    /// watts, unordered priority levels).
    BadValue {
        /// What was wrong.
        what: &'static str,
    },
    /// The message decoded but bytes were left over — a framing bug or
    /// corruption, either way untrustworthy.
    TrailingBytes {
        /// How many bytes were left.
        extra: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "payload truncated"),
            WireError::Oversized { len } => {
                write!(f, "frame length {len} exceeds {MAX_FRAME_BYTES}")
            }
            WireError::BadVersion { got } => {
                write!(f, "wire version {got} (expected {WIRE_VERSION})")
            }
            WireError::BadTag { got } => write!(f, "unknown message tag {got}"),
            WireError::BadValue { what } => write!(f, "invalid field: {what}"),
            WireError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after message")
            }
        }
    }
}

impl Error for WireError {}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Wraps a payload in a length-prefixed frame.
///
/// # Panics
///
/// Panics if the payload exceeds [`MAX_FRAME_BYTES`] — encoders produce
/// payloads, so an oversized one is a programming error, not input.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_BYTES,
        "payload of {} bytes exceeds MAX_FRAME_BYTES",
        payload.len()
    );
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Tries to split one frame off the front of a receive buffer.
///
/// Returns `Ok(None)` when the buffer does not yet hold a complete frame
/// (read more and retry), `Ok(Some((payload, consumed)))` when it does —
/// the caller drains `consumed` bytes — and `Err` when the length prefix
/// is oversized, in which case the connection is unrecoverable (framing
/// is lost) and must be torn down.
pub fn split_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, WireError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::Oversized { len });
    }
    if buf.len() < 4 + len {
        return Ok(None);
    }
    Ok(Some((&buf[4..4 + len], 4 + len)))
}

// ---------------------------------------------------------------------------
// Primitive writers / readers
// ---------------------------------------------------------------------------

/// Byte-cursor over a payload; every `take_*` checks bounds.
struct Reader<'a> {
    /// The payload being decoded.
    buf: &'a [u8],
    /// Next unread byte.
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts a cursor at the front of `buf`.
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads `n` raw bytes.
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    fn take_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    fn take_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a watt quantity, rejecting non-finite or negative values
    /// *before* constructing [`Watts`] (whose constructor asserts).
    fn take_watts(&mut self) -> Result<Watts, WireError> {
        let v = f64::from_bits(self.take_u64()?);
        if !v.is_finite() || v < 0.0 {
            return Err(WireError::BadValue {
                what: "watts must be finite and non-negative",
            });
        }
        Ok(Watts::new(v))
    }

    /// Reads an element count for items of at least `min_item_bytes`
    /// each, bounding it by the bytes actually present so a corrupt
    /// count cannot provoke a huge allocation.
    fn take_count(&mut self, min_item_bytes: usize) -> Result<usize, WireError> {
        let count = self.take_u32()? as usize;
        if count.saturating_mul(min_item_bytes) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(count)
    }

    /// Asserts the payload was fully consumed.
    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                extra: self.remaining(),
            });
        }
        Ok(())
    }
}

/// Appends a little-endian u32.
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian u64.
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a watt quantity as its f64 bit pattern.
fn put_watts(out: &mut Vec<u8>, w: Watts) {
    put_u64(out, w.as_f64().to_bits());
}

/// Narrows a usize field to the u32 the wire carries.
///
/// # Panics
///
/// Panics if the value does not fit — worker indices and node counts are
/// far below 2³², so overflow is a programming error.
fn narrow(v: usize) -> u32 {
    u32::try_from(v).expect("wire field exceeds u32")
}

// ---------------------------------------------------------------------------
// Composite fields
// ---------------------------------------------------------------------------

/// Minimum encoded size of a `(CutId, Watts)` budget entry.
const BUDGET_ITEM_BYTES: usize = 4 + 4 + 8;
/// Minimum encoded size of a `(CutId, PriorityMetrics)` entry (empty
/// metrics: cut id + constraint + level count).
const METRICS_ITEM_BYTES: usize = 4 + 4 + 8 + 4;
/// Encoded size of one priority level entry.
const LEVEL_ITEM_BYTES: usize = 1 + 8 + 8 + 8;

/// Appends a cut id as two u32s.
fn put_cut(out: &mut Vec<u8>, cut: CutId) {
    put_u32(out, narrow(cut.0));
    put_u32(out, narrow(cut.1));
}

/// Reads a cut id.
fn take_cut(r: &mut Reader<'_>) -> Result<CutId, WireError> {
    Ok((r.take_u32()? as usize, r.take_u32()? as usize))
}

/// Appends a priority metrics summary: constraint, then the levels in
/// their stored (descending-priority) order.
fn put_metrics(out: &mut Vec<u8>, m: &PriorityMetrics) {
    put_watts(out, m.constraint());
    put_u32(out, narrow(m.levels().len()));
    for (priority, entry) in m.levels() {
        out.push(priority.level());
        put_watts(out, entry.cap_min);
        put_watts(out, entry.demand);
        put_watts(out, entry.request);
    }
}

/// Reads a priority metrics summary, re-validating level order and
/// value sanity via [`PriorityMetrics::from_raw_parts`].
fn take_metrics(r: &mut Reader<'_>) -> Result<PriorityMetrics, WireError> {
    let constraint = r.take_watts()?;
    let count = r.take_count(LEVEL_ITEM_BYTES)?;
    let mut levels = Vec::with_capacity(count);
    for _ in 0..count {
        let priority = Priority(r.take_u8()?);
        let cap_min = r.take_watts()?;
        let demand = r.take_watts()?;
        let request = r.take_watts()?;
        levels.push((
            priority,
            MetricEntry {
                cap_min,
                demand,
                request,
            },
        ));
    }
    PriorityMetrics::from_raw_parts(levels, constraint)
        .map_err(|what| WireError::BadValue { what })
}

// ---------------------------------------------------------------------------
// Message encode / decode
// ---------------------------------------------------------------------------

/// Tags for rack → room messages.
mod up_tag {
    /// `UpMsg::Hello`.
    pub const HELLO: u8 = 1;
    /// `UpMsg::Metrics`.
    pub const METRICS: u8 = 2;
    /// `UpMsg::Enforced`.
    pub const ENFORCED: u8 = 3;
    /// `UpMsg::Advanced`.
    pub const ADVANCED: u8 = 4;
    /// `UpMsg::Heartbeat`.
    pub const HEARTBEAT: u8 = 5;
}

/// Tags for room → rack messages.
mod down_tag {
    /// `DownMsg::Welcome`.
    pub const WELCOME: u8 = 1;
    /// `DownMsg::Gather`.
    pub const GATHER: u8 = 2;
    /// `DownMsg::Budgets`.
    pub const BUDGETS: u8 = 3;
    /// `DownMsg::Advance`.
    pub const ADVANCE: u8 = 4;
    /// `DownMsg::HeartbeatAck`.
    pub const HEARTBEAT_ACK: u8 = 5;
    /// `DownMsg::Shutdown`.
    pub const SHUTDOWN: u8 = 6;
}

/// Starts a payload with the version byte and a message tag.
fn header(tag: u8) -> Vec<u8> {
    vec![WIRE_VERSION, tag]
}

/// Checks the version byte and returns the tag.
fn open(r: &mut Reader<'_>) -> Result<u8, WireError> {
    let version = r.take_u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    r.take_u8()
}

/// Serializes a rack → room message (payload only; wrap with [`frame`]
/// before writing to a socket).
pub fn encode_up(msg: &UpMsg) -> Vec<u8> {
    match msg {
        UpMsg::Hello {
            worker,
            workers_total,
        } => {
            let mut out = header(up_tag::HELLO);
            put_u32(&mut out, narrow(*worker));
            put_u32(&mut out, narrow(*workers_total));
            out
        }
        UpMsg::Metrics {
            worker,
            round,
            metrics,
        } => {
            let mut out = header(up_tag::METRICS);
            put_u32(&mut out, narrow(*worker));
            put_u64(&mut out, *round);
            put_u32(&mut out, narrow(metrics.len()));
            for (cut, m) in metrics {
                put_cut(&mut out, *cut);
                put_metrics(&mut out, m);
            }
            out
        }
        UpMsg::Enforced { worker, round } => {
            let mut out = header(up_tag::ENFORCED);
            put_u32(&mut out, narrow(*worker));
            put_u64(&mut out, *round);
            out
        }
        UpMsg::Advanced {
            worker,
            seconds,
            violations_total,
        } => {
            let mut out = header(up_tag::ADVANCED);
            put_u32(&mut out, narrow(*worker));
            put_u32(&mut out, *seconds);
            put_u64(&mut out, *violations_total);
            out
        }
        UpMsg::Heartbeat { worker, nonce } => {
            let mut out = header(up_tag::HEARTBEAT);
            put_u32(&mut out, narrow(*worker));
            put_u64(&mut out, *nonce);
            out
        }
    }
}

/// Deserializes a rack → room message.
pub fn decode_up(payload: &[u8]) -> Result<UpMsg, WireError> {
    let mut r = Reader::new(payload);
    let tag = open(&mut r)?;
    let msg = match tag {
        up_tag::HELLO => UpMsg::Hello {
            worker: r.take_u32()? as usize,
            workers_total: r.take_u32()? as usize,
        },
        up_tag::METRICS => {
            let worker = r.take_u32()? as usize;
            let round = r.take_u64()?;
            let count = r.take_count(METRICS_ITEM_BYTES)?;
            let mut metrics = Vec::with_capacity(count);
            for _ in 0..count {
                let cut = take_cut(&mut r)?;
                let m = take_metrics(&mut r)?;
                metrics.push((cut, m));
            }
            UpMsg::Metrics {
                worker,
                round,
                metrics,
            }
        }
        up_tag::ENFORCED => UpMsg::Enforced {
            worker: r.take_u32()? as usize,
            round: r.take_u64()?,
        },
        up_tag::ADVANCED => UpMsg::Advanced {
            worker: r.take_u32()? as usize,
            seconds: r.take_u32()?,
            violations_total: r.take_u64()?,
        },
        up_tag::HEARTBEAT => UpMsg::Heartbeat {
            worker: r.take_u32()? as usize,
            nonce: r.take_u64()?,
        },
        got => return Err(WireError::BadTag { got }),
    };
    r.finish()?;
    Ok(msg)
}

/// Serializes a room → rack message (payload only; wrap with [`frame`]).
pub fn encode_down(msg: &DownMsg) -> Vec<u8> {
    match msg {
        DownMsg::Welcome { workers_total } => {
            let mut out = header(down_tag::WELCOME);
            put_u32(&mut out, narrow(*workers_total));
            out
        }
        DownMsg::Gather { round } => {
            let mut out = header(down_tag::GATHER);
            put_u64(&mut out, *round);
            out
        }
        DownMsg::Budgets { round, budgets } => {
            let mut out = header(down_tag::BUDGETS);
            put_u64(&mut out, *round);
            put_u32(&mut out, narrow(budgets.len()));
            for (cut, b) in budgets {
                put_cut(&mut out, *cut);
                put_watts(&mut out, *b);
            }
            out
        }
        DownMsg::Advance { seconds } => {
            let mut out = header(down_tag::ADVANCE);
            put_u32(&mut out, *seconds);
            out
        }
        DownMsg::HeartbeatAck { nonce } => {
            let mut out = header(down_tag::HEARTBEAT_ACK);
            put_u64(&mut out, *nonce);
            out
        }
        DownMsg::Shutdown => header(down_tag::SHUTDOWN),
    }
}

/// Deserializes a room → rack message.
pub fn decode_down(payload: &[u8]) -> Result<DownMsg, WireError> {
    let mut r = Reader::new(payload);
    let tag = open(&mut r)?;
    let msg = match tag {
        down_tag::WELCOME => DownMsg::Welcome {
            workers_total: r.take_u32()? as usize,
        },
        down_tag::GATHER => DownMsg::Gather {
            round: r.take_u64()?,
        },
        down_tag::BUDGETS => {
            let round = r.take_u64()?;
            let count = r.take_count(BUDGET_ITEM_BYTES)?;
            let mut budgets = Vec::with_capacity(count);
            for _ in 0..count {
                let cut = take_cut(&mut r)?;
                let b = r.take_watts()?;
                budgets.push((cut, b));
            }
            DownMsg::Budgets { round, budgets }
        }
        down_tag::ADVANCE => DownMsg::Advance {
            seconds: r.take_u32()?,
        },
        down_tag::HEARTBEAT_ACK => DownMsg::HeartbeatAck {
            nonce: r.take_u64()?,
        },
        down_tag::SHUTDOWN => DownMsg::Shutdown,
        got => return Err(WireError::BadTag { got }),
    };
    r.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LeafInput;
    use capmaestro_units::Ratio;

    fn sample_metrics() -> PriorityMetrics {
        let high = PriorityMetrics::from_leaf(&LeafInput {
            demand: Watts::new(430.0),
            cap_min: Watts::new(270.0),
            cap_max: Watts::new(490.0),
            share: Ratio::ONE,
            priority: Priority::HIGH,
        });
        let low = PriorityMetrics::from_leaf(&LeafInput {
            demand: Watts::new(310.5),
            cap_min: Watts::new(270.0),
            cap_max: Watts::new(490.0),
            share: Ratio::new(0.5),
            priority: Priority::LOW,
        });
        PriorityMetrics::aggregate([&high, &low], Some(Watts::new(750.0)))
    }

    #[test]
    fn up_messages_round_trip() {
        let msgs = vec![
            UpMsg::Hello {
                worker: 3,
                workers_total: 8,
            },
            UpMsg::Metrics {
                worker: 1,
                round: 42,
                metrics: vec![((0, 5), sample_metrics()), ((2, 9), PriorityMetrics::empty())],
            },
            UpMsg::Enforced {
                worker: 0,
                round: u64::MAX,
            },
            UpMsg::Advanced {
                worker: 7,
                seconds: 8,
                violations_total: 123,
            },
            UpMsg::Heartbeat {
                worker: 2,
                nonce: 0xDEAD_BEEF_CAFE_F00D,
            },
        ];
        for msg in msgs {
            let payload = encode_up(&msg);
            assert_eq!(decode_up(&payload).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn down_messages_round_trip() {
        let msgs = vec![
            DownMsg::Welcome { workers_total: 4 },
            DownMsg::Gather { round: 7 },
            DownMsg::Budgets {
                round: 7,
                budgets: vec![((0, 1), Watts::new(618.25)), ((0, 4), Watts::new(0.0))],
            },
            DownMsg::Advance { seconds: 8 },
            DownMsg::HeartbeatAck { nonce: 99 },
            DownMsg::Shutdown,
        ];
        for msg in msgs {
            let payload = encode_down(&msg);
            assert_eq!(decode_down(&payload).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn watts_survive_bit_exactly() {
        let tricky = Watts::new(0.1 + 0.2); // not representable exactly
        let payload = encode_down(&DownMsg::Budgets {
            round: 0,
            budgets: vec![((0, 0), tricky)],
        });
        let DownMsg::Budgets { budgets, .. } = decode_down(&payload).unwrap() else {
            panic!("wrong variant");
        };
        assert_eq!(budgets[0].1.as_f64().to_bits(), tricky.as_f64().to_bits());
    }

    #[test]
    fn framing_round_trips_and_reports_incompleteness() {
        let payload = encode_down(&DownMsg::Gather { round: 3 });
        let framed = frame(&payload);
        // Partial prefixes: incomplete, not an error.
        for cut in 0..framed.len() {
            assert_eq!(split_frame(&framed[..cut]).unwrap(), None, "cut at {cut}");
        }
        let (got, consumed) = split_frame(&framed).unwrap().unwrap();
        assert_eq!(got, &payload[..]);
        assert_eq!(consumed, framed.len());
        // Two frames back to back: the split leaves the second intact.
        let mut two = framed.clone();
        two.extend_from_slice(&framed);
        let (_, consumed) = split_frame(&two).unwrap().unwrap();
        assert_eq!(&two[consumed..], &framed[..]);
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let mut buf = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        assert_eq!(
            split_frame(&buf),
            Err(WireError::Oversized {
                len: MAX_FRAME_BYTES + 1
            })
        );
    }

    #[test]
    fn bad_version_and_tag_are_rejected() {
        let mut payload = encode_down(&DownMsg::Shutdown);
        payload[0] = 99;
        assert_eq!(decode_down(&payload), Err(WireError::BadVersion { got: 99 }));
        let mut payload = encode_down(&DownMsg::Shutdown);
        payload[1] = 200;
        assert_eq!(decode_down(&payload), Err(WireError::BadTag { got: 200 }));
        assert_eq!(decode_up(&[WIRE_VERSION, 250]), Err(WireError::BadTag { got: 250 }));
    }

    #[test]
    fn truncated_and_trailing_payloads_are_rejected() {
        let payload = encode_up(&UpMsg::Metrics {
            worker: 0,
            round: 1,
            metrics: vec![((0, 1), sample_metrics())],
        });
        for cut in 2..payload.len() {
            assert!(
                decode_up(&payload[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let mut padded = payload.clone();
        padded.push(0);
        assert_eq!(decode_up(&padded), Err(WireError::TrailingBytes { extra: 1 }));
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // A Metrics payload claiming u32::MAX entries in a tiny buffer.
        let mut payload = header(up_tag::METRICS);
        put_u32(&mut payload, 0); // worker
        put_u64(&mut payload, 0); // round
        put_u32(&mut payload, u32::MAX); // entry count
        assert_eq!(decode_up(&payload), Err(WireError::Truncated));
    }

    #[test]
    fn non_finite_and_negative_watts_are_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            let mut payload = header(down_tag::BUDGETS);
            put_u64(&mut payload, 0); // round
            put_u32(&mut payload, 1); // one budget
            put_u32(&mut payload, 0);
            put_u32(&mut payload, 0); // cut (0, 0)
            put_u64(&mut payload, bad.to_bits());
            assert_eq!(
                decode_down(&payload),
                Err(WireError::BadValue {
                    what: "watts must be finite and non-negative"
                }),
                "value {bad} must be rejected"
            );
        }
    }
}
