//! Append-only operator event log and desired-state reconciliation.
//!
//! The serving layer's operator API does not mutate the control plane
//! directly. Every operator mutation — a root budget, a group priority
//! band, a server drain, a policy switch — becomes an [`Op`] wrapped in a
//! versioned, monotonically-sequenced [`Envelope`] appended to an
//! [`OpLog`]. The log is the source of truth:
//!
//! - [`DesiredState::replay`] folds any prefix of the log into the
//!   declared state, bit-identically to incremental application — so the
//!   state after a daemon restart is exactly the state before it, and any
//!   historical instant can be reconstructed for time-travel debugging of
//!   capping incidents.
//! - [`plan`] diffs a [`DesiredState`] against the live
//!   [`ControlPlane`]/[`Farm`] pair and emits the minimal
//!   [`ReconcilePlan`] that converges live onto declared. An empty diff
//!   yields an empty plan, so a quiescent log leaves the round pipeline
//!   bit-identical to one that never had a reconciler.
//!
//! On disk the log reuses the [`crate::wire`] framing discipline: each
//! envelope is one length-prefixed frame (`len:u32le payload`), the
//! payload opens with a version byte and an op tag, integers are
//! little-endian, and watt quantities are IEEE-754 bit patterns — a
//! replayed budget is *bit-exactly* the budget that was declared.
//! Decoding is total: corrupt or torn bytes yield an error or a clean
//! truncation, never a panic. A torn final frame (the classic
//! crash-mid-append) is silently dropped on open and overwritten by the
//! next append.
//!
//! There are deliberately no dependencies here beyond `std` and the
//! workspace substrate crates.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::error::Error;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use capmaestro_topology::{Priority, ServerId};
use capmaestro_units::Watts;

use crate::alloc::AllocatorKind;
use crate::plane::{ControlPlane, Farm};
use crate::tree::TreeArena;
use crate::wire::{frame, split_frame, WireError};

/// Envelope schema version carried in every persisted payload. Bump on
/// any layout change; decoders reject other versions outright.
pub const OPLOG_VERSION: u8 = 1;

/// Upper bound on an idempotency key, in bytes. Generous for UUIDs and
/// human labels while keeping a hostile header from bloating the log.
pub const MAX_KEY_BYTES: usize = 128;

// ---------------------------------------------------------------------------
// Operations and envelopes
// ---------------------------------------------------------------------------

/// One operator mutation. Ids are positional against the live plane
/// (tree = index into [`ControlPlane::trees`], node = level-order index
/// into that tree's arena, server = topology [`ServerId`]); an id that
/// does not resolve at reconciliation time is skipped, not an error —
/// the log outlives topology changes such as feed failures.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Declare one tree's root budget.
    SetTreeBudget {
        /// Index of the tree in the live plane.
        tree: u32,
        /// The declared root budget.
        watts: Watts,
    },
    /// Declare every tree's root budget at once (the legacy
    /// `POST /budget` surface; equivalent to one [`Op::SetTreeBudget`]
    /// per element).
    SetRootBudgets(
        /// Per-tree budgets, in tree order.
        Vec<Watts>,
    ),
    /// Declare a priority band for every server under one control-tree
    /// node (a rack, a PDU, a feed — whatever the node spans). Deeper
    /// nodes are applied after shallower ones, so the most specific
    /// declared group wins.
    SetGroupPriority {
        /// Index of the tree in the live plane.
        tree: u32,
        /// Level-order arena index of the group's root node.
        node: u32,
        /// The priority band for every server under the node.
        priority: Priority,
    },
    /// Withdraw a group's declared priority band: servers it covered
    /// (and no other declared group covers) revert to their static
    /// topology priority.
    ClearGroupPriority {
        /// Index of the tree in the live plane.
        tree: u32,
        /// Level-order arena index of the group's root node.
        node: u32,
    },
    /// Declare a server drained (`enabled: false` powers it off at the
    /// next round boundary) or returned to service (`enabled: true`).
    /// Only servers that appear in some `SetServerEnabled` event are
    /// managed; the reconciler never fights simulated supply failures on
    /// undeclared servers.
    SetServerEnabled {
        /// The server being drained or restored.
        server: ServerId,
        /// Whether the server should be powered.
        enabled: bool,
    },
    /// Declare the budget-split allocator the plane races at every tree
    /// node.
    SetAllocator(
        /// The declared allocator.
        AllocatorKind,
    ),
}

/// A sequenced, optionally idempotency-keyed log entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Monotonic 1-based sequence number, assigned at append.
    pub seq: u64,
    /// Simulated second at which the mutation was accepted (operator
    /// context, not replay input — replay is a pure fold over ops).
    pub at_s: u64,
    /// The client's idempotency key, if it sent one.
    pub key: Option<String>,
    /// The mutation itself.
    pub op: Op,
}

/// Payload tag bytes, one per [`Op`] variant.
mod tag {
    /// [`super::Op::SetTreeBudget`].
    pub const SET_TREE_BUDGET: u8 = 1;
    /// [`super::Op::SetRootBudgets`].
    pub const SET_ROOT_BUDGETS: u8 = 2;
    /// [`super::Op::SetGroupPriority`].
    pub const SET_GROUP_PRIORITY: u8 = 3;
    /// [`super::Op::ClearGroupPriority`].
    pub const CLEAR_GROUP_PRIORITY: u8 = 4;
    /// [`super::Op::SetServerEnabled`].
    pub const SET_SERVER_ENABLED: u8 = 5;
    /// [`super::Op::SetAllocator`].
    pub const SET_ALLOCATOR: u8 = 6;
}

/// Stable wire byte for an allocator kind (independent of enum order).
fn allocator_to_byte(kind: AllocatorKind) -> u8 {
    match kind {
        AllocatorKind::Waterfall => 1,
        AllocatorKind::Waterfilling => 2,
        AllocatorKind::FairShare => 3,
    }
}

/// Inverse of [`allocator_to_byte`].
fn allocator_from_byte(byte: u8) -> Option<AllocatorKind> {
    match byte {
        1 => Some(AllocatorKind::Waterfall),
        2 => Some(AllocatorKind::Waterfilling),
        3 => Some(AllocatorKind::FairShare),
        _ => None,
    }
}

/// Serializes an envelope into one frame payload (without the length
/// prefix — [`crate::wire::frame`] adds that).
pub fn encode_envelope(envelope: &Envelope) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(OPLOG_VERSION);
    out.push(match &envelope.op {
        Op::SetTreeBudget { .. } => tag::SET_TREE_BUDGET,
        Op::SetRootBudgets(_) => tag::SET_ROOT_BUDGETS,
        Op::SetGroupPriority { .. } => tag::SET_GROUP_PRIORITY,
        Op::ClearGroupPriority { .. } => tag::CLEAR_GROUP_PRIORITY,
        Op::SetServerEnabled { .. } => tag::SET_SERVER_ENABLED,
        Op::SetAllocator(_) => tag::SET_ALLOCATOR,
    });
    out.extend_from_slice(&envelope.seq.to_le_bytes());
    out.extend_from_slice(&envelope.at_s.to_le_bytes());
    let key = envelope.key.as_deref().unwrap_or("");
    debug_assert!(key.len() <= MAX_KEY_BYTES, "append validates key length");
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(key.as_bytes());
    match &envelope.op {
        Op::SetTreeBudget { tree, watts } => {
            out.extend_from_slice(&tree.to_le_bytes());
            out.extend_from_slice(&watts.as_f64().to_bits().to_le_bytes());
        }
        Op::SetRootBudgets(budgets) => {
            out.extend_from_slice(&(budgets.len() as u32).to_le_bytes());
            for w in budgets {
                out.extend_from_slice(&w.as_f64().to_bits().to_le_bytes());
            }
        }
        Op::SetGroupPriority {
            tree,
            node,
            priority,
        } => {
            out.extend_from_slice(&tree.to_le_bytes());
            out.extend_from_slice(&node.to_le_bytes());
            out.push(priority.0);
        }
        Op::ClearGroupPriority { tree, node } => {
            out.extend_from_slice(&tree.to_le_bytes());
            out.extend_from_slice(&node.to_le_bytes());
        }
        Op::SetServerEnabled { server, enabled } => {
            out.extend_from_slice(&server.0.to_le_bytes());
            out.push(u8::from(*enabled));
        }
        Op::SetAllocator(kind) => out.push(allocator_to_byte(*kind)),
    }
    out
}

/// A bounds-checked little-endian payload reader (same discipline as the
/// socket codec's).
struct Reader<'a> {
    /// Remaining unread bytes.
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    /// Takes `n` bytes off the front, or fails with `Truncated`.
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.bytes.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, rest) = self.bytes.split_at(n);
        self.bytes = rest;
        Ok(head)
    }

    /// Reads one byte.
    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    fn u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian u32.
    fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian u64.
    fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    /// Reads watts from an f64 bit pattern, rejecting non-finite or
    /// negative values.
    fn watts(&mut self) -> Result<Watts, WireError> {
        let value = f64::from_bits(self.u64()?);
        if !value.is_finite() || value < 0.0 {
            return Err(WireError::BadValue {
                what: "non-finite or negative watts",
            });
        }
        Ok(Watts::new(value))
    }
}

/// Deserializes one envelope payload (the bytes inside a frame).
///
/// Total: every byte sequence yields an envelope or a [`WireError`],
/// never a panic, and element counts are bounds-checked against the
/// payload before any allocation.
pub fn decode_envelope(payload: &[u8]) -> Result<Envelope, WireError> {
    let mut r = Reader { bytes: payload };
    let version = r.u8()?;
    if version != OPLOG_VERSION {
        return Err(WireError::BadVersion { got: version });
    }
    let tag = r.u8()?;
    let seq = r.u64()?;
    let at_s = r.u64()?;
    let key_len = r.u16()? as usize;
    if key_len > MAX_KEY_BYTES {
        return Err(WireError::BadValue {
            what: "idempotency key too long",
        });
    }
    let key_bytes = r.take(key_len)?;
    let key = if key_len == 0 {
        None
    } else {
        Some(
            std::str::from_utf8(key_bytes)
                .map_err(|_| WireError::BadValue {
                    what: "idempotency key is not utf-8",
                })?
                .to_string(),
        )
    };
    let op = match tag {
        tag::SET_TREE_BUDGET => Op::SetTreeBudget {
            tree: r.u32()?,
            watts: r.watts()?,
        },
        tag::SET_ROOT_BUDGETS => {
            let count = r.u32()? as usize;
            // 8 bytes per element must already be present.
            if r.bytes.len() < count.saturating_mul(8) {
                return Err(WireError::Truncated);
            }
            let mut budgets = Vec::with_capacity(count);
            for _ in 0..count {
                budgets.push(r.watts()?);
            }
            Op::SetRootBudgets(budgets)
        }
        tag::SET_GROUP_PRIORITY => Op::SetGroupPriority {
            tree: r.u32()?,
            node: r.u32()?,
            priority: Priority(r.u8()?),
        },
        tag::CLEAR_GROUP_PRIORITY => Op::ClearGroupPriority {
            tree: r.u32()?,
            node: r.u32()?,
        },
        tag::SET_SERVER_ENABLED => Op::SetServerEnabled {
            server: ServerId(r.u32()?),
            enabled: match r.u8()? {
                0 => false,
                1 => true,
                _ => {
                    return Err(WireError::BadValue {
                        what: "enabled flag is not 0 or 1",
                    })
                }
            },
        },
        tag::SET_ALLOCATOR => Op::SetAllocator(allocator_from_byte(r.u8()?).ok_or(
            WireError::BadValue {
                what: "unknown allocator byte",
            },
        )?),
        other => return Err(WireError::BadTag { got: other }),
    };
    if !r.bytes.is_empty() {
        return Err(WireError::TrailingBytes {
            extra: r.bytes.len(),
        });
    }
    Ok(Envelope {
        seq,
        at_s,
        key,
        op,
    })
}

// ---------------------------------------------------------------------------
// Desired state
// ---------------------------------------------------------------------------

/// The declared operator state: a pure fold over the event log.
///
/// Replaying any log prefix reconstructs this bit-identically to having
/// applied the same events incrementally — the property the oplog
/// proptests pin down. All maps are ordered so iteration (and therefore
/// every reconciliation plan built from this state) is deterministic.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DesiredState {
    /// Declared per-tree root budgets (tree index → watts). Trees with
    /// no entry keep their live budget.
    pub tree_budgets: BTreeMap<u32, Watts>,
    /// Declared group priority bands, `(tree, node)` → band. `Some` is
    /// an active band; `None` records an explicit clear (servers under
    /// the node are driven back to their static priority).
    pub group_priorities: BTreeMap<(u32, u32), Option<Priority>>,
    /// Declared server enable states. Servers absent from the map are
    /// unmanaged.
    pub server_enabled: BTreeMap<ServerId, bool>,
    /// The declared budget-split allocator, if one was ever declared.
    pub allocator: Option<AllocatorKind>,
    /// Sequence number of the last event folded in (0 = none).
    pub seq: u64,
}

impl DesiredState {
    /// Folds one event into the state. Events are commutative only in
    /// the trivial cases; callers must apply them in sequence order
    /// (which [`DesiredState::replay`] and the serving reconciler do).
    pub fn apply(&mut self, envelope: &Envelope) {
        match &envelope.op {
            Op::SetTreeBudget { tree, watts } => {
                self.tree_budgets.insert(*tree, *watts);
            }
            Op::SetRootBudgets(budgets) => {
                for (tree, watts) in budgets.iter().enumerate() {
                    self.tree_budgets.insert(tree as u32, *watts);
                }
            }
            Op::SetGroupPriority {
                tree,
                node,
                priority,
            } => {
                self.group_priorities
                    .insert((*tree, *node), Some(*priority));
            }
            Op::ClearGroupPriority { tree, node } => {
                self.group_priorities.insert((*tree, *node), None);
            }
            Op::SetServerEnabled { server, enabled } => {
                self.server_enabled.insert(*server, *enabled);
            }
            Op::SetAllocator(kind) => self.allocator = Some(*kind),
        }
        self.seq = envelope.seq;
    }

    /// Reconstructs the declared state from a log slice — the pure
    /// replay the restart path and time-travel debugging use.
    pub fn replay(events: &[Envelope]) -> DesiredState {
        let mut state = DesiredState::default();
        for envelope in events {
            state.apply(envelope);
        }
        state
    }
}

// ---------------------------------------------------------------------------
// The log
// ---------------------------------------------------------------------------

/// Why an append or open failed.
#[derive(Debug)]
pub enum OplogError {
    /// The idempotency key exceeds [`MAX_KEY_BYTES`].
    KeyTooLong {
        /// The offending key's byte length.
        len: usize,
    },
    /// The key was seen before with a *different* op — a client bug, not
    /// a retry; the original event is untouched.
    IdempotencyConflict {
        /// Sequence number of the original event with this key.
        existing_seq: u64,
    },
    /// An op field is semantically invalid (non-finite or negative
    /// watts).
    InvalidOp(
        /// What was wrong.
        &'static str,
    ),
    /// The backing file could not be read or written.
    Io(
        /// The underlying I/O error.
        std::io::Error,
    ),
}

impl fmt::Display for OplogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OplogError::KeyTooLong { len } => {
                write!(f, "idempotency key of {len} bytes exceeds {MAX_KEY_BYTES}")
            }
            OplogError::IdempotencyConflict { existing_seq } => write!(
                f,
                "idempotency key already used by event {existing_seq} with a different op"
            ),
            OplogError::InvalidOp(what) => write!(f, "invalid op: {what}"),
            OplogError::Io(e) => write!(f, "oplog i/o: {e}"),
        }
    }
}

impl Error for OplogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            OplogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for OplogError {
    fn from(e: std::io::Error) -> Self {
        OplogError::Io(e)
    }
}

/// What [`OpLog::append`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppendOutcome {
    /// A new event was appended with this sequence number.
    Appended(
        /// The new event's sequence number.
        u64,
    ),
    /// The idempotency key matched an existing event with the same op;
    /// nothing was appended. Retries are safe.
    Replayed(
        /// The original event's sequence number.
        u64,
    ),
}

impl AppendOutcome {
    /// The sequence number of the event this outcome refers to.
    pub fn seq(self) -> u64 {
        match self {
            AppendOutcome::Appended(seq) | AppendOutcome::Replayed(seq) => seq,
        }
    }

    /// Whether the outcome was an idempotent replay.
    pub fn replayed(self) -> bool {
        matches!(self, AppendOutcome::Replayed(_))
    }
}

/// What [`OpLog::open`] salvaged from an existing file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Events recovered intact.
    pub recovered: usize,
    /// Trailing bytes dropped (torn final frame or corruption tail).
    pub dropped_bytes: usize,
    /// Whether anything was dropped.
    pub truncated: bool,
}

/// The append-only operator event log: an in-memory event vector, an
/// idempotency-key index, and optionally a length-prefixed backing file
/// every append is flushed to.
#[derive(Debug)]
pub struct OpLog {
    /// Events in sequence order (`events[i].seq == i + 1`).
    events: Vec<Envelope>,
    /// Idempotency key → index into `events`.
    by_key: HashMap<String, usize>,
    /// The backing file, positioned at end, when persistence is on.
    file: Option<File>,
}

impl OpLog {
    /// A fresh in-memory log (no persistence).
    pub fn in_memory() -> Self {
        OpLog {
            events: Vec::new(),
            by_key: HashMap::new(),
            file: None,
        }
    }

    /// Opens (or creates) a file-backed log, replaying whatever the file
    /// holds. A torn final frame — the footprint of a crash mid-append —
    /// is dropped and the file truncated to the last intact event, as is
    /// any tail that fails to decode or breaks the sequence; recovery
    /// never panics and never refuses the healthy prefix.
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, RecoveryReport), OplogError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let mut events: Vec<Envelope> = Vec::new();
        let mut by_key = HashMap::new();
        let mut good = 0usize; // byte offset of the last intact frame end
        let mut offset = 0usize;
        loop {
            let rest = &bytes[offset..];
            match split_frame(rest) {
                Ok(Some((payload, consumed))) => {
                    let Ok(envelope) = decode_envelope(payload) else {
                        break; // corrupt frame: keep the prefix, drop the rest
                    };
                    if envelope.seq != events.len() as u64 + 1 {
                        break; // sequence break: same treatment
                    }
                    if let Some(key) = &envelope.key {
                        by_key.insert(key.clone(), events.len());
                    }
                    events.push(envelope);
                    offset += consumed;
                    good = offset;
                }
                Ok(None) => break,  // torn tail (or clean EOF)
                Err(_) => break,    // oversized length prefix: framing lost
            }
        }

        let dropped = bytes.len() - good;
        if dropped > 0 {
            file.set_len(good as u64)?;
        }
        file.seek(SeekFrom::Start(good as u64))?;
        let report = RecoveryReport {
            recovered: events.len(),
            dropped_bytes: dropped,
            truncated: dropped > 0,
        };
        Ok((
            OpLog {
                events,
                by_key,
                file: Some(file),
            },
            report,
        ))
    }

    /// Appends an op (or replays an idempotent retry). The event is
    /// written and flushed to the backing file *before* it becomes
    /// visible in memory, so a crash can tear at most the final frame —
    /// exactly what [`OpLog::open`] recovers from.
    pub fn append(
        &mut self,
        at_s: u64,
        key: Option<&str>,
        op: Op,
    ) -> Result<AppendOutcome, OplogError> {
        if let Some(key) = key {
            if key.len() > MAX_KEY_BYTES {
                return Err(OplogError::KeyTooLong { len: key.len() });
            }
            if let Some(&idx) = self.by_key.get(key) {
                let existing = &self.events[idx];
                if existing.op == op {
                    return Ok(AppendOutcome::Replayed(existing.seq));
                }
                return Err(OplogError::IdempotencyConflict {
                    existing_seq: existing.seq,
                });
            }
        }
        validate_op(&op)?;
        let envelope = Envelope {
            seq: self.events.len() as u64 + 1,
            at_s,
            key: key.map(str::to_string),
            op,
        };
        if let Some(file) = &mut self.file {
            let framed = frame(&encode_envelope(&envelope));
            file.write_all(&framed)?;
            file.flush()?;
        }
        let seq = envelope.seq;
        if let Some(key) = &envelope.key {
            self.by_key.insert(key.clone(), self.events.len());
        }
        self.events.push(envelope);
        Ok(AppendOutcome::Appended(seq))
    }

    /// Every event, in sequence order.
    pub fn events(&self) -> &[Envelope] {
        &self.events
    }

    /// Events with `seq > since` (the `GET /v1/events?since=` slice).
    pub fn since(&self, since: u64) -> &[Envelope] {
        let start = (since.min(self.events.len() as u64)) as usize;
        &self.events[start..]
    }

    /// The newest sequence number (0 while the log is empty).
    pub fn head_seq(&self) -> u64 {
        self.events.len() as u64
    }

    /// Number of events in the log.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Rejects ops whose fields could corrupt replay (non-finite watts are
/// unrepresentable bit-exactly in JSON and meaningless as budgets).
fn validate_op(op: &Op) -> Result<(), OplogError> {
    let watts_ok = |w: &Watts| w.as_f64().is_finite() && w.as_f64() >= 0.0;
    match op {
        Op::SetTreeBudget { watts, .. } if !watts_ok(watts) => {
            Err(OplogError::InvalidOp("non-finite or negative tree budget"))
        }
        Op::SetRootBudgets(budgets) if !budgets.iter().all(watts_ok) => {
            Err(OplogError::InvalidOp("non-finite or negative root budget"))
        }
        _ => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// Reconciliation
// ---------------------------------------------------------------------------

/// The minimal set of actions that converges a live plane onto a
/// [`DesiredState`]. Produced by [`plan`]; applied by the engine (the
/// single writer) at a round boundary. Deterministic: equal inputs give
/// an identical plan, and a converged plane yields an empty one.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReconcilePlan {
    /// Full per-tree root budget vector to stage, when any tree's live
    /// budget differs bitwise from its declared one (undeclared trees
    /// keep their live value).
    pub root_budgets: Option<Vec<Watts>>,
    /// Per-server priority actions: `Some(p)` sets a dynamic override,
    /// `None` clears it (reverting to the static topology priority).
    pub priorities: Vec<(ServerId, Option<Priority>)>,
    /// Per-server power flips (drain / return to service).
    pub power: Vec<(ServerId, bool)>,
    /// Allocator switch, when the declared kind differs from the live
    /// configuration.
    pub allocator: Option<AllocatorKind>,
}

impl ReconcilePlan {
    /// Whether the plan does nothing (live already matches declared).
    pub fn is_empty(&self) -> bool {
        self.root_budgets.is_none()
            && self.priorities.is_empty()
            && self.power.is_empty()
            && self.allocator.is_none()
    }

    /// Total number of actions in the plan.
    pub fn action_count(&self) -> usize {
        usize::from(self.root_budgets.is_some())
            + self.priorities.len()
            + self.power.len()
            + usize::from(self.allocator.is_some())
    }
}

/// Every server with a leaf under the arena subtree rooted at `node`,
/// deduplicated and ordered.
fn servers_under(arena: &TreeArena, node: usize) -> BTreeSet<ServerId> {
    // Collect the subtree's node set by DFS, then map leaf slots onto it.
    let mut subtree = BTreeSet::new();
    let mut stack = vec![node];
    while let Some(idx) = stack.pop() {
        if subtree.insert(idx) {
            stack.extend(arena.children_of(idx).iter().map(|&c| c as usize));
        }
    }
    let leaves = arena.leaf_index();
    let mut servers = BTreeSet::new();
    for slot in 0..leaves.len() {
        if subtree.contains(&leaves.node(slot)) {
            servers.insert(leaves.pair(slot).0);
        }
    }
    servers
}

/// Diffs declared state against the live plane and farm.
///
/// Ids that no longer resolve (a parked tree, an out-of-range node, a
/// server the farm never had) are skipped — the declared state simply
/// has nothing to act on until the topology returns. Group bands are
/// applied in ascending `(tree, node)` order; arenas are level-ordered,
/// so a deeper (more specific) declared group overrides a shallower one
/// for the servers both cover.
pub fn plan(desired: &DesiredState, plane: &ControlPlane, farm: &Farm) -> ReconcilePlan {
    let mut out = ReconcilePlan::default();

    // Root budgets: declared overrides on top of the live resolution.
    if !desired.tree_budgets.is_empty() {
        let live = plane.root_budgets_now();
        let mut target = live.clone();
        for (&tree, &watts) in &desired.tree_budgets {
            if let Some(slot) = target.get_mut(tree as usize) {
                *slot = watts;
            }
        }
        let differs = live
            .iter()
            .zip(&target)
            .any(|(a, b)| a.as_f64().to_bits() != b.as_f64().to_bits());
        if differs {
            out.root_budgets = Some(target);
        }
    }

    // Priority bands: fold groups into a per-server target, then diff
    // against what the next round would actually use.
    let mut target: BTreeMap<ServerId, Option<Priority>> = BTreeMap::new();
    for (&(tree, node), &band) in &desired.group_priorities {
        let Some(control_tree) = plane.trees().get(tree as usize) else {
            continue;
        };
        let arena = control_tree.arena();
        if node as usize >= arena.len() {
            continue;
        }
        for server in servers_under(arena, node as usize) {
            target.insert(server, band);
        }
    }
    for (server, band) in target {
        let Some(effective) = plane.effective_priority(server) else {
            continue;
        };
        let Some(static_priority) = plane.static_priority(server) else {
            continue;
        };
        let want = band.unwrap_or(static_priority);
        if effective != want {
            out.priorities.push((server, band.map(|_| want)));
        }
    }

    // Drains: only declared servers are managed.
    for (&server, &enabled) in &desired.server_enabled {
        if let Some(live) = farm.get(server) {
            if live.is_powered() != enabled {
                out.power.push((server, enabled));
            }
        }
    }

    // Allocator.
    if let Some(kind) = desired.allocator {
        if kind != plane.config().allocator {
            out.allocator = Some(kind);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Round-trips every op variant through the codec bit-exactly.
    #[test]
    fn envelope_codec_round_trips_every_variant() {
        let ops = vec![
            Op::SetTreeBudget {
                tree: 3,
                watts: Watts::new(1240.5),
            },
            Op::SetRootBudgets(vec![Watts::new(700.0), Watts::new(699.25)]),
            Op::SetGroupPriority {
                tree: 0,
                node: 2,
                priority: Priority(4),
            },
            Op::ClearGroupPriority { tree: 0, node: 2 },
            Op::SetServerEnabled {
                server: ServerId(17),
                enabled: false,
            },
            Op::SetAllocator(AllocatorKind::FairShare),
        ];
        for (i, op) in ops.into_iter().enumerate() {
            let envelope = Envelope {
                seq: i as u64 + 1,
                at_s: 42 * i as u64,
                key: (i % 2 == 0).then(|| format!("key-{i}")),
                op,
            };
            let decoded = decode_envelope(&encode_envelope(&envelope)).expect("round trip");
            assert_eq!(decoded, envelope);
        }
    }

    #[test]
    fn decode_rejects_hostile_payloads_without_panicking() {
        // Truncations of a valid payload.
        let envelope = Envelope {
            seq: 1,
            at_s: 0,
            key: Some("abc".to_string()),
            op: Op::SetRootBudgets(vec![Watts::new(700.0)]),
        };
        let bytes = encode_envelope(&envelope);
        for cut in 0..bytes.len() {
            assert!(decode_envelope(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        // Bad version, bad tag, trailing bytes, hostile count.
        let mut bad = bytes.clone();
        bad[0] = 99;
        assert_eq!(
            decode_envelope(&bad),
            Err(WireError::BadVersion { got: 99 })
        );
        let mut bad = bytes.clone();
        bad[1] = 200;
        assert_eq!(decode_envelope(&bad), Err(WireError::BadTag { got: 200 }));
        let mut bad = bytes.clone();
        bad.push(0);
        assert!(matches!(
            decode_envelope(&bad),
            Err(WireError::TrailingBytes { .. })
        ));
        // A count promising far more elements than the payload holds
        // must fail before allocating.
        let huge = Envelope {
            seq: 1,
            at_s: 0,
            key: None,
            op: Op::SetRootBudgets(Vec::new()),
        };
        let mut bytes = encode_envelope(&huge);
        let count_at = bytes.len() - 4;
        bytes[count_at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_envelope(&bytes), Err(WireError::Truncated));
    }

    #[test]
    fn idempotent_retries_replay_and_conflicts_are_rejected() {
        let mut log = OpLog::in_memory();
        let op = Op::SetTreeBudget {
            tree: 0,
            watts: Watts::new(1200.0),
        };
        let first = log.append(5, Some("k1"), op.clone()).expect("append");
        assert_eq!(first, AppendOutcome::Appended(1));
        let retry = log.append(9, Some("k1"), op.clone()).expect("retry");
        assert_eq!(retry, AppendOutcome::Replayed(1));
        assert_eq!(log.len(), 1, "retry must not append");
        let conflict = log
            .append(
                9,
                Some("k1"),
                Op::SetTreeBudget {
                    tree: 0,
                    watts: Watts::new(999.0),
                },
            )
            .expect_err("conflicting op under the same key");
        assert!(matches!(
            conflict,
            OplogError::IdempotencyConflict { existing_seq: 1 }
        ));
        // A different key appends normally.
        assert_eq!(
            log.append(9, Some("k2"), op).expect("append"),
            AppendOutcome::Appended(2)
        );
        assert_eq!(log.since(1).len(), 1);
        assert_eq!(log.since(0).len(), 2);
        assert_eq!(log.since(99).len(), 0);
    }

    #[test]
    fn non_finite_budgets_are_rejected_at_append_and_decode() {
        let mut log = OpLog::in_memory();
        for bad in [f64::INFINITY, -1.0] {
            let err = log
                .append(
                    0,
                    None,
                    Op::SetTreeBudget {
                        tree: 0,
                        watts: Watts::new(bad),
                    },
                )
                .expect_err("invalid budget");
            assert!(matches!(err, OplogError::InvalidOp(_)), "{bad}");
        }
        assert!(log.is_empty());
        // NaN can't be constructed as Watts in-process, but hostile bytes
        // can carry its bit pattern; the decoder must refuse it.
        let envelope = Envelope {
            seq: 1,
            at_s: 0,
            key: None,
            op: Op::SetTreeBudget {
                tree: 0,
                watts: Watts::new(1.0),
            },
        };
        let mut bytes = encode_envelope(&envelope);
        let watts_at = bytes.len() - 8;
        bytes[watts_at..].copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(matches!(
            decode_envelope(&bytes),
            Err(WireError::BadValue { .. })
        ));
    }

    #[test]
    fn replay_is_a_pure_fold_and_clear_overrides_set() {
        let events = [
            Envelope {
                seq: 1,
                at_s: 0,
                key: None,
                op: Op::SetGroupPriority {
                    tree: 0,
                    node: 1,
                    priority: Priority(2),
                },
            },
            Envelope {
                seq: 2,
                at_s: 8,
                key: None,
                op: Op::ClearGroupPriority { tree: 0, node: 1 },
            },
            Envelope {
                seq: 3,
                at_s: 16,
                key: None,
                op: Op::SetRootBudgets(vec![Watts::new(1000.0), Watts::new(900.0)]),
            },
            Envelope {
                seq: 4,
                at_s: 24,
                key: None,
                op: Op::SetTreeBudget {
                    tree: 1,
                    watts: Watts::new(850.0),
                },
            },
        ];
        let replayed = DesiredState::replay(&events);
        assert_eq!(replayed.group_priorities.get(&(0, 1)), Some(&None));
        assert_eq!(
            replayed.tree_budgets.get(&0).map(|w| w.as_f64()),
            Some(1000.0)
        );
        assert_eq!(
            replayed.tree_budgets.get(&1).map(|w| w.as_f64()),
            Some(850.0)
        );
        assert_eq!(replayed.seq, 4);
        // Fold equivalence over every prefix.
        let mut incremental = DesiredState::default();
        for (k, envelope) in events.iter().enumerate() {
            assert_eq!(DesiredState::replay(&events[..k]), incremental);
            incremental.apply(envelope);
        }
        assert_eq!(DesiredState::replay(&events), incremental);
    }
}
