//! The runtime control tree: shifting controllers mirroring the power
//! topology, with gather-up and budget-down passes (paper §4.1/§4.3).
//!
//! Internally the tree is backed by a flat **arena** ([`TreeArena`]):
//! flattened child lists, per-node contexts/limits, and a dense index of
//! leaf slots ([`LeafIndex`]), so the per-round passes are branch-predictable
//! array walks instead of pointer chases and map lookups. Rounds are made
//! **incremental** by generation-stamped leaf inputs plus a reusable
//! [`TreeRoundState`]: [`ControlTree::allocate_in`] re-summarizes only
//! subtrees with a dirtied descendant and performs no heap allocation once
//! its buffers are warm.

use std::collections::HashMap;
use std::sync::Arc;

use capmaestro_topology::{ControlTreeSpec, Priority, ServerId, SupplyIndex};
use capmaestro_units::{Ratio, Watts};

use crate::alloc::{AllocScratch, Allocator, WaterfallAllocator};
use crate::metrics::{LeafInput, PriorityMetrics};
use crate::policy::{CappingPolicy, NodeContext, PriorityVisibility};

/// Runtime power information for one server supply, fed into its capping
/// controller's metrics (priority comes from the tree spec).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupplyInput {
    /// Estimated server power demand at full performance (total AC).
    pub demand: Watts,
    /// The server's minimum controllable AC power.
    pub cap_min: Watts,
    /// The server's maximum controllable AC power.
    pub cap_max: Watts,
    /// Fraction of the server load this supply carries.
    pub share: Ratio,
}

/// Dense index of a control tree's leaves: maps `(server, supply)` pairs to
/// contiguous **leaf slots** in spec-leaf order. One instance is built per
/// tree and shared (via [`Arc`]) with every [`Allocation`] the tree
/// produces, so leaf budgets live in a flat slot-indexed vector instead of
/// a per-round hash map.
#[derive(Debug, Default)]
pub struct LeafIndex {
    /// `(server, supply)` per slot, in spec-leaf order.
    pairs: Vec<(ServerId, SupplyIndex)>,
    /// Spec node index per slot.
    nodes: Vec<u32>,
    /// Slots sorted by `(server, supply)` — the deterministic order for
    /// order-sensitive f64 sums.
    sorted_slots: Vec<u32>,
    /// Reverse lookup from a pair to its slot.
    map: HashMap<(ServerId, SupplyIndex), u32>,
}

impl LeafIndex {
    fn build(spec: &ControlTreeSpec) -> Self {
        let mut index = LeafIndex::default();
        for (idx, leaf) in spec.leaves() {
            let slot = index.pairs.len() as u32;
            index.pairs.push((leaf.server, leaf.supply));
            index.nodes.push(idx as u32);
            index.map.insert((leaf.server, leaf.supply), slot);
        }
        let mut sorted: Vec<u32> = (0..index.pairs.len() as u32).collect();
        sorted.sort_unstable_by_key(|&s| index.pairs[s as usize]);
        index.sorted_slots = sorted;
        index
    }

    /// Number of leaf slots.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The slot for a `(server, supply)` pair, if that supply is a leaf.
    pub fn slot(&self, server: ServerId, supply: SupplyIndex) -> Option<usize> {
        self.map.get(&(server, supply)).map(|&s| s as usize)
    }

    /// The spec node index backing a slot.
    pub fn node(&self, slot: usize) -> usize {
        self.nodes[slot] as usize
    }

    /// The `(server, supply)` pair at a slot.
    pub fn pair(&self, slot: usize) -> (ServerId, SupplyIndex) {
        self.pairs[slot]
    }
}

/// Flat, level-free arena view of a [`ControlTreeSpec`]: flattened child
/// lists with per-node ranges, precomputed [`NodeContext`]s and limits, and
/// the shared [`LeafIndex`]. Built once per tree so the per-round passes
/// never chase spec pointers or consult maps.
#[derive(Debug, Clone)]
pub struct TreeArena {
    /// All child indices, flattened in node order.
    children: Vec<u32>,
    /// `(start, end)` into `children` per node.
    child_range: Vec<(u32, u32)>,
    /// Policy context (depth, leaf-parent flag) per node.
    ctx: Vec<NodeContext>,
    /// Shifting-controller power limit per node.
    limits: Vec<Option<Watts>>,
    /// The dense leaf slot index, shared with allocations.
    leaf_index: Arc<LeafIndex>,
}

impl TreeArena {
    fn build(spec: &ControlTreeSpec) -> Self {
        let n = spec.len();
        let mut children = Vec::new();
        let mut child_range = Vec::with_capacity(n);
        let mut ctx = Vec::with_capacity(n);
        let mut limits = Vec::with_capacity(n);
        let mut depths = vec![0usize; n];
        for idx in 0..n {
            let node = spec.node(idx);
            if let Some(p) = node.parent {
                depths[idx] = depths[p] + 1;
            }
            let start = children.len() as u32;
            children.extend(node.children.iter().map(|&c| c as u32));
            child_range.push((start, children.len() as u32));
            let is_leaf_parent = !node.children.is_empty()
                && node.children.iter().all(|&c| spec.node(c).is_leaf());
            ctx.push(NodeContext {
                is_leaf_parent,
                depth: depths[idx],
            });
            limits.push(node.limit);
        }
        TreeArena {
            children,
            child_range,
            ctx,
            limits,
            leaf_index: Arc::new(LeafIndex::build(spec)),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.child_range.len()
    }

    /// Whether the arena has no nodes.
    pub fn is_empty(&self) -> bool {
        self.child_range.is_empty()
    }

    /// The children of a node, as arena indices.
    pub fn children_of(&self, idx: usize) -> &[u32] {
        let (start, end) = self.child_range[idx];
        &self.children[start as usize..end as usize]
    }

    /// The policy context of a node.
    pub fn context(&self, idx: usize) -> NodeContext {
        self.ctx[idx]
    }

    /// The power limit of a node, if constrained.
    pub fn limit(&self, idx: usize) -> Option<Watts> {
        self.limits[idx]
    }

    /// The shared leaf slot index.
    pub fn leaf_index(&self) -> &Arc<LeafIndex> {
        &self.leaf_index
    }
}

/// The outcome of one allocation pass over a control tree.
///
/// Node budgets are indexed by spec/arena node index; leaf budgets live in
/// a dense slot-indexed vector keyed by the tree's shared [`LeafIndex`], so
/// lookups by `(server, supply)` are one hash probe into a prebuilt map
/// rather than a per-round-built one.
#[derive(Debug, Clone)]
pub struct Allocation {
    node_budgets: Vec<Watts>,
    leaf_budgets: Vec<Watts>,
    leaf_index: Arc<LeafIndex>,
    unallocated: Watts,
}

impl Default for Allocation {
    fn default() -> Self {
        Allocation {
            node_budgets: Vec::new(),
            leaf_budgets: Vec::new(),
            leaf_index: Arc::new(LeafIndex::default()),
            unallocated: Watts::ZERO,
        }
    }
}

impl PartialEq for Allocation {
    fn eq(&self, other: &Self) -> bool {
        self.unallocated == other.unallocated
            && self.node_budgets == other.node_budgets
            && self.leaf_budgets.len() == other.leaf_budgets.len()
            && self
                .supply_budgets()
                .all(|(server, supply, w)| other.supply_budget(server, supply) == Some(w))
    }
}

impl Allocation {
    /// The budget assigned to a tree node (by spec index).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn node_budget(&self, idx: usize) -> Watts {
        self.node_budgets[idx]
    }

    /// The budget assigned to a server supply, if that supply is in this
    /// tree.
    pub fn supply_budget(&self, server: ServerId, supply: SupplyIndex) -> Option<Watts> {
        self.leaf_index
            .slot(server, supply)
            .map(|s| self.leaf_budgets[s])
    }

    /// The budget at a leaf slot (see [`LeafIndex`]).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn leaf_budget(&self, slot: usize) -> Watts {
        self.leaf_budgets[slot]
    }

    /// The leaf slot index this allocation's leaf budgets are keyed by.
    pub fn leaf_index(&self) -> &LeafIndex {
        &self.leaf_index
    }

    /// Iterates `(server, supply, budget)` over all leaf budgets, in
    /// spec-leaf (slot) order.
    pub fn supply_budgets(
        &self,
    ) -> impl Iterator<Item = (ServerId, SupplyIndex, Watts)> + '_ {
        self.leaf_index
            .pairs
            .iter()
            .zip(&self.leaf_budgets)
            .map(|(&(server, supply), &w)| (server, supply, w))
    }

    /// Power the root received but could not place (children saturated).
    pub fn unallocated(&self) -> Watts {
        self.unallocated
    }

    /// Opaque identity of the leaf index backing this allocation, used by
    /// `RoundReport` to detect when its precomputed supply-slot map went
    /// stale. Stable for as long as the allocation holds the index alive.
    pub(crate) fn leaf_index_stamp(&self) -> usize {
        Arc::as_ptr(&self.leaf_index) as usize
    }

    /// Total budget across all leaves.
    ///
    /// Summed in `(server, supply)` order so the result is independent of
    /// slot layout (f64 addition is not associative).
    pub fn total_leaf_budget(&self) -> Watts {
        self.leaf_index
            .sorted_slots
            .iter()
            .map(|&s| self.leaf_budgets[s as usize])
            .sum()
    }
}

/// Reusable per-tree round state for [`ControlTree::allocate_in`]: the
/// cached per-node [`PriorityMetrics`] with their dirty/generation
/// bookkeeping, plus every scratch buffer the gather and budget-down passes
/// need. Keep one per (tree, pass) and reuse it across rounds; steady-state
/// rounds then allocate nothing.
#[derive(Debug, Default)]
pub struct TreeRoundState {
    valid: bool,
    policy_name: String,
    /// Name of the [`Allocator`] the cached budget-down scratch last
    /// served; an allocator swap invalidates the state like a policy swap.
    allocator_name: String,
    metrics: Vec<PriorityMetrics>,
    dirty: Vec<bool>,
    seen_gens: Vec<u64>,
    last_leaves: Vec<Option<(SupplyInput, Priority)>>,
    children_scratch: Vec<PriorityMetrics>,
    alloc_scratch: AllocScratch,
    split_budgets: Vec<Watts>,
    /// Cumulative count of nodes whose summary was recomputed (dirty).
    summarized: u64,
    /// Cumulative count of nodes whose cached summary was reused.
    skipped: u64,
}

impl TreeRoundState {
    /// Creates an empty state; the first `allocate_in` call shapes it.
    pub fn new() -> Self {
        TreeRoundState::default()
    }

    /// Drops all cached metrics: the next round recomputes every subtree
    /// from scratch (still bit-identical — used by differential tests and
    /// the full-recompute benchmark mode).
    pub fn invalidate(&mut self) {
        self.valid = false;
    }

    /// Cumulative `(summarized, dirty_skipped)` node counts across every
    /// gather pass this state has served. The control plane turns these
    /// into per-round deltas for the
    /// `capmaestro_tree_nodes_{summarized,dirty_skipped}_total` counters.
    pub fn gather_stats(&self) -> (u64, u64) {
        (self.summarized, self.skipped)
    }
}

/// A control tree instantiated from a [`ControlTreeSpec`]: one shifting
/// controller per internal node, one capping-controller binding per leaf.
///
/// # Examples
///
/// ```
/// use capmaestro_core::tree::{ControlTree, SupplyInput};
/// use capmaestro_core::policy::GlobalPriority;
/// use capmaestro_topology::presets::figure2_feed;
/// use capmaestro_units::{Ratio, Watts};
///
/// let topo = figure2_feed();
/// let spec = topo.control_tree_specs().remove(0);
/// let mut tree = ControlTree::with_uniform(
///     spec,
///     SupplyInput {
///         demand: Watts::new(430.0),
///         cap_min: Watts::new(270.0),
///         cap_max: Watts::new(490.0),
///         share: Ratio::ONE,
///     },
/// );
/// let alloc = tree.allocate(Watts::new(1240.0), &GlobalPriority::new());
/// // The high-priority server (SA) receives its full 430 W demand.
/// let sa = topo.server_by_name("SA").unwrap();
/// use capmaestro_topology::SupplyIndex;
/// assert_eq!(alloc.supply_budget(sa, SupplyIndex::FIRST), Some(Watts::new(430.0)));
/// ```
#[derive(Debug, Clone)]
pub struct ControlTree {
    spec: ControlTreeSpec,
    inputs: Vec<Option<SupplyInput>>,
    arena: TreeArena,
    /// Per-node generation stamp, bumped when a leaf's input or priority
    /// actually changes value. [`TreeRoundState`] compares stamps to skip
    /// re-summarizing clean subtrees.
    generations: Vec<u64>,
    generation: u64,
}

impl ControlTree {
    /// Creates a tree with no supply inputs set; every leaf must receive a
    /// [`SupplyInput`] before [`ControlTree::allocate`].
    pub fn new(spec: ControlTreeSpec) -> Self {
        let arena = TreeArena::build(&spec);
        let inputs = vec![None; spec.len()];
        let generations = vec![0u64; spec.len()];
        ControlTree {
            spec,
            inputs,
            arena,
            generations,
            generation: 0,
        }
    }

    /// Creates a tree with every leaf sharing the same input — convenient
    /// for homogeneous test rigs.
    pub fn with_uniform(spec: ControlTreeSpec, input: SupplyInput) -> Self {
        let mut tree = ControlTree::new(spec);
        for idx in 0..tree.spec.len() {
            if tree.spec.node(idx).is_leaf() {
                tree.set_input_at(idx, input);
            }
        }
        tree
    }

    /// The underlying spec.
    pub fn spec(&self) -> &ControlTreeSpec {
        &self.spec
    }

    /// The flat arena view of this tree.
    pub fn arena(&self) -> &TreeArena {
        &self.arena
    }

    fn bump(&mut self, idx: usize) {
        self.generation += 1;
        self.generations[idx] = self.generation;
    }

    fn set_input_at(&mut self, idx: usize, input: SupplyInput) {
        if self.inputs[idx] != Some(input) {
            self.inputs[idx] = Some(input);
            self.bump(idx);
        }
    }

    /// Sets the input for a server supply. Returns `false` if the supply is
    /// not a leaf of this tree.
    pub fn set_supply_input(
        &mut self,
        server: ServerId,
        supply: SupplyIndex,
        input: SupplyInput,
    ) -> bool {
        match self.arena.leaf_index.slot(server, supply) {
            Some(slot) => {
                let idx = self.arena.leaf_index.node(slot);
                self.set_input_at(idx, input);
                true
            }
            None => false,
        }
    }

    /// Sets inputs for all leaves from a callback.
    pub fn set_inputs_with(&mut self, mut f: impl FnMut(ServerId, SupplyIndex) -> SupplyInput) {
        for idx in 0..self.spec.len() {
            if let Some(leaf) = self.spec.node(idx).leaf {
                let input = f(leaf.server, leaf.supply);
                self.set_input_at(idx, input);
            }
        }
    }

    /// The input currently set for a leaf node index.
    pub fn input_at(&self, idx: usize) -> Option<&SupplyInput> {
        self.inputs.get(idx).and_then(|i| i.as_ref())
    }

    /// Overrides leaf priorities in place. Monte-Carlo capacity trials use
    /// this to re-randomize the high-priority placement without rebuilding
    /// the topology.
    pub fn set_priorities_with(&mut self, mut f: impl FnMut(ServerId) -> Priority) {
        for idx in 0..self.spec.len() {
            if let Some(leaf) = self.spec.node_mut(idx).leaf.as_mut() {
                let priority = f(leaf.server);
                if leaf.priority != priority {
                    leaf.priority = priority;
                    self.generation += 1;
                    self.generations[idx] = self.generation;
                }
            }
        }
    }

    /// The metrics-gathering phase: per-node priority summaries, bottom-up,
    /// with the policy deciding where levels collapse.
    ///
    /// # Panics
    ///
    /// Panics if any leaf lacks a [`SupplyInput`].
    pub fn gather(&self, policy: &dyn CappingPolicy) -> Vec<PriorityMetrics> {
        let n = self.spec.len();
        let mut metrics: Vec<PriorityMetrics> = vec![PriorityMetrics::empty(); n];
        for idx in (0..n).rev() {
            let node = self.spec.node(idx);
            if let Some(leaf) = &node.leaf {
                let input = self.inputs[idx].unwrap_or_else(|| {
                    panic!(
                        "leaf {idx} ({}) has no supply input set",
                        self.spec.node(idx).name
                    )
                });
                metrics[idx] = PriorityMetrics::from_leaf(&LeafInput {
                    demand: input.demand,
                    cap_min: input.cap_min,
                    cap_max: input.cap_max,
                    share: input.share,
                    priority: leaf.priority,
                });
            } else {
                let visibility = policy.visibility(self.arena.context(idx));
                let children: Vec<PriorityMetrics> = node
                    .children
                    .iter()
                    .map(|&c| match visibility {
                        PriorityVisibility::Full => metrics[c].clone(),
                        PriorityVisibility::Blind => metrics[c].collapsed(),
                    })
                    .collect();
                metrics[idx] = PriorityMetrics::aggregate(children.iter(), node.limit);
            }
        }
        metrics
    }

    /// Runs one full control round: gather metrics, then distribute
    /// `root_budget` down the tree under `policy` with the default
    /// [`WaterfallAllocator`] (the paper's §4.3.2 split).
    ///
    /// This is the from-scratch path: every subtree is re-summarized and
    /// the result is freshly allocated. The incremental equivalent is
    /// [`ControlTree::allocate_in`]; both produce bit-identical budgets.
    ///
    /// The effective root budget is clamped by the root node's own limit.
    ///
    /// # Panics
    ///
    /// Panics if the tree is empty or any leaf lacks an input.
    pub fn allocate(&self, root_budget: Watts, policy: &dyn CappingPolicy) -> Allocation {
        self.allocate_with(root_budget, policy, &WaterfallAllocator)
    }

    /// [`ControlTree::allocate`] with an explicit per-node budget-split
    /// [`Allocator`] instead of the default waterfall.
    ///
    /// # Panics
    ///
    /// Panics if the tree is empty or any leaf lacks an input.
    pub fn allocate_with(
        &self,
        root_budget: Watts,
        policy: &dyn CappingPolicy,
        allocator: &dyn Allocator,
    ) -> Allocation {
        let mut state = TreeRoundState::new();
        let mut out = Allocation::default();
        self.allocate_in(root_budget, policy, allocator, &mut state, None, &mut out);
        out
    }

    /// Incremental, allocation-free variant of [`ControlTree::allocate`].
    ///
    /// Gathers metrics with dirty-tracking — only subtrees with a dirtied
    /// descendant (generation-stamp or value change on a leaf input /
    /// priority, or an `overlay` difference) are re-summarized; clean nodes
    /// reuse the [`PriorityMetrics`] cached in `state` — then runs the
    /// budget-down pass through `allocator` into `out`, reusing its
    /// buffers. Performs no heap allocation once `state` and `out` are
    /// warm.
    ///
    /// `overlay`, when present, is a spec-indexed slice of per-leaf input
    /// replacements (used by the stranded-power optimizer's second pass):
    /// `Some(input)` at a leaf overrides the tree's stored input for this
    /// call only, without touching the tree.
    ///
    /// # Panics
    ///
    /// Panics if the tree is empty, any leaf lacks an input, or `overlay`
    /// is present with a length other than `spec().len()`.
    pub fn allocate_in(
        &self,
        root_budget: Watts,
        policy: &dyn CappingPolicy,
        allocator: &dyn Allocator,
        state: &mut TreeRoundState,
        overlay: Option<&[Option<SupplyInput>]>,
        out: &mut Allocation,
    ) {
        assert!(!self.spec.is_empty(), "cannot allocate over an empty tree");
        let n = self.spec.len();
        if let Some(o) = overlay {
            assert_eq!(o.len(), n, "overlay must be spec-indexed");
        }
        // (Re)shape the state and invalidate on tree, policy, or allocator
        // change.
        if state.metrics.len() != n
            || state.policy_name != policy.name()
            || state.allocator_name != allocator.name()
        {
            state.valid = false;
            state.policy_name.clear();
            state.policy_name.push_str(policy.name());
            state.allocator_name.clear();
            state.allocator_name.push_str(allocator.name());
            state.metrics.clear();
            state.metrics.resize_with(n, PriorityMetrics::default);
            state.dirty.clear();
            state.dirty.resize(n, true);
            state.seen_gens.clear();
            state.seen_gens.resize(n, 0);
            state.last_leaves.clear();
            state.last_leaves.resize(n, None);
        }

        // Gather with dirty-tracking, children (higher indices) first.
        for idx in (0..n).rev() {
            let node = self.spec.node(idx);
            if let Some(leaf) = &node.leaf {
                let base = self.inputs[idx];
                let effective = match overlay {
                    Some(o) => o[idx].or(base),
                    None => base,
                };
                let current = effective.map(|input| (input, leaf.priority));
                let dirty = !state.valid
                    || state.seen_gens[idx] != self.generations[idx]
                    || state.last_leaves[idx] != current;
                state.dirty[idx] = dirty;
                if dirty {
                    state.summarized += 1;
                    let (input, priority) = current.unwrap_or_else(|| {
                        panic!(
                            "leaf {idx} ({}) has no supply input set",
                            self.spec.node(idx).name
                        )
                    });
                    PriorityMetrics::from_leaf_into(
                        &LeafInput {
                            demand: input.demand,
                            cap_min: input.cap_min,
                            cap_max: input.cap_max,
                            share: input.share,
                            priority,
                        },
                        &mut state.metrics[idx],
                    );
                    state.last_leaves[idx] = current;
                } else {
                    state.skipped += 1;
                }
                state.seen_gens[idx] = self.generations[idx];
            } else {
                let children = self.arena.children_of(idx);
                let dirty =
                    !state.valid || children.iter().any(|&c| state.dirty[c as usize]);
                state.dirty[idx] = dirty;
                if dirty {
                    state.summarized += 1;
                    let blind = matches!(
                        policy.visibility(self.arena.context(idx)),
                        PriorityVisibility::Blind
                    );
                    // Children always have higher spec indices than their
                    // parent (topological push order), so a split borrow
                    // separates the output node from its children.
                    let (head, tail) = state.metrics.split_at_mut(idx + 1);
                    PriorityMetrics::aggregate_into(
                        children.iter().map(|&c| &tail[c as usize - idx - 1]),
                        self.arena.limit(idx),
                        blind,
                        &mut head[idx],
                    );
                } else {
                    state.skipped += 1;
                }
            }
        }
        state.valid = true;

        // Budget-down pass.
        let root = self.spec.root();
        out.node_budgets.clear();
        out.node_budgets.resize(n, Watts::ZERO);
        let root_limit = self.arena.limit(root).unwrap_or(root_budget);
        out.node_budgets[root] = root_budget.min(root_limit);
        let mut unallocated = root_budget - out.node_budgets[root];

        let TreeRoundState {
            metrics,
            children_scratch,
            alloc_scratch,
            split_budgets,
            ..
        } = state;
        for idx in 0..n {
            let children = self.arena.children_of(idx);
            if children.is_empty() {
                continue;
            }
            let visibility = policy.visibility(self.arena.context(idx));
            if children_scratch.len() < children.len() {
                children_scratch.resize_with(children.len(), PriorityMetrics::default);
            }
            for (s, &c) in children.iter().enumerate() {
                match visibility {
                    PriorityVisibility::Full => {
                        children_scratch[s].copy_from(&metrics[c as usize])
                    }
                    PriorityVisibility::Blind => {
                        metrics[c as usize].collapsed_into(&mut children_scratch[s])
                    }
                }
            }
            let leftover = allocator.split(
                out.node_budgets[idx],
                &children_scratch[..children.len()],
                alloc_scratch,
                split_budgets,
            );
            for (&child, budget) in children.iter().zip(split_budgets.iter()) {
                out.node_budgets[child as usize] = *budget;
            }
            if idx == root {
                unallocated += leftover;
            }
        }

        // Leaf budgets by slot.
        let leaf_index = &self.arena.leaf_index;
        let Allocation {
            node_budgets,
            leaf_budgets,
            ..
        } = out;
        leaf_budgets.clear();
        leaf_budgets.extend(
            leaf_index
                .nodes
                .iter()
                .map(|&node| node_budgets[node as usize]),
        );
        if !Arc::ptr_eq(&out.leaf_index, leaf_index) {
            out.leaf_index = Arc::clone(leaf_index);
        }
        out.unallocated = unallocated;
    }

    /// The distinct priority levels present among this tree's leaves,
    /// descending.
    pub fn priority_levels(&self) -> Vec<Priority> {
        self.spec.priority_levels_desc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{GlobalPriority, LocalPriority, NoPriority};
    use capmaestro_topology::presets::figure2_feed;
    use capmaestro_topology::Topology;

    const PAPER_INPUT: SupplyInput = SupplyInput {
        demand: Watts::new(430.0),
        cap_min: Watts::new(270.0),
        cap_max: Watts::new(490.0),
        share: Ratio::ONE,
    };

    fn fig2_tree() -> (Topology, ControlTree) {
        let topo = figure2_feed();
        let spec = topo.control_tree_specs().remove(0);
        let tree = ControlTree::with_uniform(spec, PAPER_INPUT);
        (topo, tree)
    }

    fn budget_of(topo: &Topology, alloc: &Allocation, name: &str) -> Watts {
        let id = topo.server_by_name(name).unwrap();
        alloc
            .supply_budget(id, SupplyIndex::FIRST)
            .unwrap_or_else(|| panic!("no budget for {name}"))
    }

    #[test]
    fn table1_global_priority_budgets() {
        let (topo, tree) = fig2_tree();
        let alloc = tree.allocate(Watts::new(1240.0), &GlobalPriority::new());
        assert_eq!(budget_of(&topo, &alloc, "SA"), Watts::new(430.0));
        assert_eq!(budget_of(&topo, &alloc, "SB"), Watts::new(270.0));
        assert_eq!(budget_of(&topo, &alloc, "SC"), Watts::new(270.0));
        assert_eq!(budget_of(&topo, &alloc, "SD"), Watts::new(270.0));
    }

    #[test]
    fn table1_local_priority_budgets() {
        let (topo, tree) = fig2_tree();
        let alloc = tree.allocate(Watts::new(1240.0), &LocalPriority::new());
        // The paper's Table 1: 350 / 270 / 310 / 310.
        assert_eq!(budget_of(&topo, &alloc, "SA"), Watts::new(350.0));
        assert_eq!(budget_of(&topo, &alloc, "SB"), Watts::new(270.0));
        assert_eq!(budget_of(&topo, &alloc, "SC"), Watts::new(310.0));
        assert_eq!(budget_of(&topo, &alloc, "SD"), Watts::new(310.0));
    }

    #[test]
    fn no_priority_splits_proportionally() {
        let (topo, tree) = fig2_tree();
        let alloc = tree.allocate(Watts::new(1240.0), &NoPriority::new());
        // Equal demands ⇒ equal budgets: 1240 / 4 = 310 each.
        for name in ["SA", "SB", "SC", "SD"] {
            assert!(budget_of(&topo, &alloc, name)
                .approx_eq(Watts::new(310.0), Watts::new(1e-6)));
        }
    }

    #[test]
    fn budgets_respect_cb_limits() {
        let (_, tree) = fig2_tree();
        for policy in [
            &GlobalPriority::new() as &dyn CappingPolicy,
            &LocalPriority::new(),
            &NoPriority::new(),
        ] {
            let alloc = tree.allocate(Watts::new(5000.0), policy);
            // Left/Right CBs (indices 1 and 2 in the fig2 spec) are 750 W.
            assert!(alloc.node_budget(1) <= Watts::new(750.0) + Watts::new(1e-6));
            assert!(alloc.node_budget(2) <= Watts::new(750.0) + Watts::new(1e-6));
            // Root clamped to its 1400 W limit.
            assert!(alloc.node_budget(0) <= Watts::new(1400.0) + Watts::new(1e-6));
        }
    }

    #[test]
    fn root_budget_above_limit_reported_unallocated() {
        let (_, tree) = fig2_tree();
        let alloc = tree.allocate(Watts::new(5000.0), &GlobalPriority::new());
        assert!(alloc.unallocated() >= Watts::new(5000.0 - 1400.0) - Watts::new(1e-6));
    }

    #[test]
    fn generous_budget_fills_demand_and_surplus() {
        let (topo, tree) = fig2_tree();
        let alloc = tree.allocate(Watts::new(1400.0), &GlobalPriority::new());
        // 1400 covers floors (1080) + SA's extra (160) = wait, covers all
        // demands? Σ demand = 1720 > 1400, so step 3 splits the rest.
        let total = alloc.total_leaf_budget();
        assert!(total.approx_eq(Watts::new(1400.0), Watts::new(1e-6)));
        // SA still gets its demand first.
        assert_eq!(budget_of(&topo, &alloc, "SA"), Watts::new(430.0));
    }

    #[test]
    fn conservation_under_all_policies() {
        let (_, tree) = fig2_tree();
        for policy in [
            &GlobalPriority::new() as &dyn CappingPolicy,
            &LocalPriority::new(),
            &NoPriority::new(),
        ] {
            for budget in [1080.0, 1240.0, 1400.0, 1700.0] {
                let alloc = tree.allocate(Watts::new(budget), policy);
                let leaf_total = alloc.total_leaf_budget();
                assert!(
                    leaf_total <= Watts::new(budget) + Watts::new(1e-6),
                    "{}: leaves exceed budget at {budget}",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn uneven_demands_through_set_inputs_with() {
        // Table 2's measured demands: 420 / 413 / 417 / 423.
        let (topo, mut tree) = {
            let (t, tr) = fig2_tree();
            (t, tr)
        };
        let demands = [("SA", 420.0), ("SB", 413.0), ("SC", 417.0), ("SD", 423.0)];
        let by_id: Vec<(ServerId, f64)> = demands
            .iter()
            .map(|(n, d)| (topo.server_by_name(n).unwrap(), *d))
            .collect();
        tree.set_inputs_with(|server, _| {
            let demand = by_id
                .iter()
                .find(|(id, _)| *id == server)
                .map(|(_, d)| *d)
                .unwrap();
            SupplyInput {
                demand: Watts::new(demand),
                ..PAPER_INPUT
            }
        });
        let alloc = tree.allocate(Watts::new(1240.0), &GlobalPriority::new());
        // SA gets its full demand; the rest are pushed toward cap_min.
        assert_eq!(budget_of(&topo, &alloc, "SA"), Watts::new(420.0));
        for name in ["SB", "SC", "SD"] {
            let b = budget_of(&topo, &alloc, name);
            assert!(
                b >= Watts::new(270.0) - Watts::new(1e-6) && b < Watts::new(290.0),
                "{name} got {b}"
            );
        }
    }

    #[test]
    fn light_demand_still_budgeted_to_cap_min() {
        let (topo, mut tree) = fig2_tree();
        // SB runs nearly idle; its budget must still be at least cap_min.
        let sb = topo.server_by_name("SB").unwrap();
        tree.set_supply_input(
            sb,
            SupplyIndex::FIRST,
            SupplyInput {
                demand: Watts::new(170.0),
                ..PAPER_INPUT
            },
        );
        let alloc = tree.allocate(Watts::new(1240.0), &GlobalPriority::new());
        assert!(budget_of(&topo, &alloc, "SB") >= Watts::new(270.0) - Watts::new(1e-6));
    }

    #[test]
    fn set_supply_input_rejects_unknown() {
        let (_, mut tree) = fig2_tree();
        assert!(!tree.set_supply_input(
            ServerId(999),
            SupplyIndex::FIRST,
            PAPER_INPUT
        ));
    }

    #[test]
    #[should_panic(expected = "no supply input")]
    fn allocate_without_inputs_panics() {
        let topo = figure2_feed();
        let spec = topo.control_tree_specs().remove(0);
        let tree = ControlTree::new(spec);
        let _ = tree.allocate(Watts::new(1240.0), &GlobalPriority::new());
    }

    #[test]
    fn gather_reports_levels_per_policy() {
        let (_, tree) = fig2_tree();
        let global = tree.gather(&GlobalPriority::new());
        // Root sees both priority levels under Global.
        assert_eq!(global[0].level_count(), 2);
        let local = tree.gather(&LocalPriority::new());
        // Root sees a single collapsed level under Local.
        assert_eq!(local[0].level_count(), 1);
        let nop = tree.gather(&NoPriority::new());
        assert_eq!(nop[0].level_count(), 1);
    }

    #[test]
    fn priority_levels_listed() {
        let (_, tree) = fig2_tree();
        assert_eq!(
            tree.priority_levels(),
            vec![Priority::HIGH, Priority::LOW]
        );
    }
}
