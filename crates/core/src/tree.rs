//! The runtime control tree: shifting controllers mirroring the power
//! topology, with gather-up and budget-down passes (paper §4.1/§4.3).

use std::collections::HashMap;

use capmaestro_topology::{ControlTreeSpec, Priority, ServerId, SupplyIndex};
use capmaestro_units::{Ratio, Watts};

use crate::budget::split_budget;
use crate::metrics::{LeafInput, PriorityMetrics};
use crate::policy::{CappingPolicy, NodeContext, PriorityVisibility};

/// Runtime power information for one server supply, fed into its capping
/// controller's metrics (priority comes from the tree spec).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SupplyInput {
    /// Estimated server power demand at full performance (total AC).
    pub demand: Watts,
    /// The server's minimum controllable AC power.
    pub cap_min: Watts,
    /// The server's maximum controllable AC power.
    pub cap_max: Watts,
    /// Fraction of the server load this supply carries.
    pub share: Ratio,
}

/// The outcome of one allocation pass over a control tree.
#[derive(Debug, Clone, PartialEq)]
pub struct Allocation {
    node_budgets: Vec<Watts>,
    supply_budgets: HashMap<(ServerId, SupplyIndex), Watts>,
    unallocated: Watts,
}

impl Allocation {
    /// The budget assigned to a tree node (by spec index).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn node_budget(&self, idx: usize) -> Watts {
        self.node_budgets[idx]
    }

    /// The budget assigned to a server supply, if that supply is in this
    /// tree.
    pub fn supply_budget(&self, server: ServerId, supply: SupplyIndex) -> Option<Watts> {
        self.supply_budgets.get(&(server, supply)).copied()
    }

    /// Iterates `(server, supply, budget)` over all leaf budgets.
    pub fn supply_budgets(
        &self,
    ) -> impl Iterator<Item = (ServerId, SupplyIndex, Watts)> + '_ {
        self.supply_budgets
            .iter()
            .map(|(&(server, supply), &w)| (server, supply, w))
    }

    /// Power the root received but could not place (children saturated).
    pub fn unallocated(&self) -> Watts {
        self.unallocated
    }

    /// Total budget across all leaves.
    ///
    /// Summed in `(server, supply)` order so the result is independent of
    /// the map's per-instance iteration order (f64 addition is not
    /// associative).
    pub fn total_leaf_budget(&self) -> Watts {
        let mut entries: Vec<(&(ServerId, SupplyIndex), &Watts)> =
            self.supply_budgets.iter().collect();
        entries.sort_unstable_by_key(|(&key, _)| key);
        entries.into_iter().map(|(_, &w)| w).sum()
    }
}

/// A control tree instantiated from a [`ControlTreeSpec`]: one shifting
/// controller per internal node, one capping-controller binding per leaf.
///
/// # Examples
///
/// ```
/// use capmaestro_core::tree::{ControlTree, SupplyInput};
/// use capmaestro_core::policy::GlobalPriority;
/// use capmaestro_topology::presets::figure2_feed;
/// use capmaestro_units::{Ratio, Watts};
///
/// let topo = figure2_feed();
/// let spec = topo.control_tree_specs().remove(0);
/// let mut tree = ControlTree::with_uniform(
///     spec,
///     SupplyInput {
///         demand: Watts::new(430.0),
///         cap_min: Watts::new(270.0),
///         cap_max: Watts::new(490.0),
///         share: Ratio::ONE,
///     },
/// );
/// let alloc = tree.allocate(Watts::new(1240.0), &GlobalPriority::new());
/// // The high-priority server (SA) receives its full 430 W demand.
/// let sa = topo.server_by_name("SA").unwrap();
/// use capmaestro_topology::SupplyIndex;
/// assert_eq!(alloc.supply_budget(sa, SupplyIndex::FIRST), Some(Watts::new(430.0)));
/// ```
#[derive(Debug, Clone)]
pub struct ControlTree {
    spec: ControlTreeSpec,
    inputs: Vec<Option<SupplyInput>>,
    depths: Vec<usize>,
}

impl ControlTree {
    /// Creates a tree with no supply inputs set; every leaf must receive a
    /// [`SupplyInput`] before [`ControlTree::allocate`].
    pub fn new(spec: ControlTreeSpec) -> Self {
        let mut depths = vec![0usize; spec.len()];
        for idx in 0..spec.len() {
            if let Some(p) = spec.node(idx).parent {
                depths[idx] = depths[p] + 1;
            }
        }
        let inputs = vec![None; spec.len()];
        ControlTree {
            spec,
            inputs,
            depths,
        }
    }

    /// Creates a tree with every leaf sharing the same input — convenient
    /// for homogeneous test rigs.
    pub fn with_uniform(spec: ControlTreeSpec, input: SupplyInput) -> Self {
        let mut tree = ControlTree::new(spec);
        for idx in 0..tree.spec.len() {
            if tree.spec.node(idx).is_leaf() {
                tree.inputs[idx] = Some(input);
            }
        }
        tree
    }

    /// The underlying spec.
    pub fn spec(&self) -> &ControlTreeSpec {
        &self.spec
    }

    /// Sets the input for a server supply. Returns `false` if the supply is
    /// not a leaf of this tree.
    pub fn set_supply_input(
        &mut self,
        server: ServerId,
        supply: SupplyIndex,
        input: SupplyInput,
    ) -> bool {
        for idx in 0..self.spec.len() {
            if let Some(leaf) = &self.spec.node(idx).leaf {
                if leaf.server == server && leaf.supply == supply {
                    self.inputs[idx] = Some(input);
                    return true;
                }
            }
        }
        false
    }

    /// Sets inputs for all leaves from a callback.
    pub fn set_inputs_with(&mut self, mut f: impl FnMut(ServerId, SupplyIndex) -> SupplyInput) {
        for idx in 0..self.spec.len() {
            if let Some(leaf) = self.spec.node(idx).leaf {
                self.inputs[idx] = Some(f(leaf.server, leaf.supply));
            }
        }
    }

    /// The input currently set for a leaf node index.
    pub fn input_at(&self, idx: usize) -> Option<&SupplyInput> {
        self.inputs.get(idx).and_then(|i| i.as_ref())
    }

    /// Overrides leaf priorities in place. Monte-Carlo capacity trials use
    /// this to re-randomize the high-priority placement without rebuilding
    /// the topology.
    pub fn set_priorities_with(&mut self, mut f: impl FnMut(ServerId) -> Priority) {
        for idx in 0..self.spec.len() {
            if let Some(leaf) = self.spec.node_mut(idx).leaf.as_mut() {
                leaf.priority = f(leaf.server);
            }
        }
    }

    fn node_context(&self, idx: usize) -> NodeContext {
        let node = self.spec.node(idx);
        let is_leaf_parent = !node.children.is_empty()
            && node
                .children
                .iter()
                .all(|&c| self.spec.node(c).is_leaf());
        NodeContext {
            is_leaf_parent,
            depth: self.depths[idx],
        }
    }

    /// The metrics-gathering phase: per-node priority summaries, bottom-up,
    /// with the policy deciding where levels collapse.
    ///
    /// # Panics
    ///
    /// Panics if any leaf lacks a [`SupplyInput`].
    pub fn gather(&self, policy: &dyn CappingPolicy) -> Vec<PriorityMetrics> {
        let n = self.spec.len();
        let mut metrics: Vec<PriorityMetrics> = vec![PriorityMetrics::empty(); n];
        for idx in (0..n).rev() {
            let node = self.spec.node(idx);
            if let Some(leaf) = &node.leaf {
                let input = self.inputs[idx].unwrap_or_else(|| {
                    panic!(
                        "leaf {idx} ({}) has no supply input set",
                        self.spec.node(idx).name
                    )
                });
                metrics[idx] = PriorityMetrics::from_leaf(&LeafInput {
                    demand: input.demand,
                    cap_min: input.cap_min,
                    cap_max: input.cap_max,
                    share: input.share,
                    priority: leaf.priority,
                });
            } else {
                let visibility = policy.visibility(self.node_context(idx));
                let children: Vec<PriorityMetrics> = node
                    .children
                    .iter()
                    .map(|&c| match visibility {
                        PriorityVisibility::Full => metrics[c].clone(),
                        PriorityVisibility::Blind => metrics[c].collapsed(),
                    })
                    .collect();
                metrics[idx] = PriorityMetrics::aggregate(children.iter(), node.limit);
            }
        }
        metrics
    }

    /// Runs one full control round: gather metrics, then distribute
    /// `root_budget` down the tree under `policy`.
    ///
    /// The effective root budget is clamped by the root node's own limit.
    ///
    /// # Panics
    ///
    /// Panics if the tree is empty or any leaf lacks an input.
    pub fn allocate(&self, root_budget: Watts, policy: &dyn CappingPolicy) -> Allocation {
        assert!(!self.spec.is_empty(), "cannot allocate over an empty tree");
        let metrics = self.gather(policy);
        let n = self.spec.len();
        let mut node_budgets = vec![Watts::ZERO; n];
        let root = self.spec.root();
        let root_limit = self.spec.node(root).limit.unwrap_or(root_budget);
        node_budgets[root] = root_budget.min(root_limit);
        let mut unallocated = root_budget - node_budgets[root];

        #[allow(clippy::needless_range_loop)] // parallel arrays indexed in topological order
        for idx in 0..n {
            let node = self.spec.node(idx);
            if node.children.is_empty() {
                continue;
            }
            let visibility = policy.visibility(self.node_context(idx));
            let children_metrics: Vec<PriorityMetrics> = node
                .children
                .iter()
                .map(|&c| match visibility {
                    PriorityVisibility::Full => metrics[c].clone(),
                    PriorityVisibility::Blind => metrics[c].collapsed(),
                })
                .collect();
            let split = split_budget(node_budgets[idx], &children_metrics);
            for (&child, budget) in node.children.iter().zip(&split.budgets) {
                node_budgets[child] = *budget;
            }
            if idx == root {
                unallocated += split.unallocated;
            }
        }

        let mut supply_budgets = HashMap::new();
        for (idx, budget) in node_budgets.iter().enumerate() {
            if let Some(leaf) = &self.spec.node(idx).leaf {
                supply_budgets.insert((leaf.server, leaf.supply), *budget);
            }
        }
        Allocation {
            node_budgets,
            supply_budgets,
            unallocated,
        }
    }

    /// The distinct priority levels present among this tree's leaves,
    /// descending.
    pub fn priority_levels(&self) -> Vec<Priority> {
        self.spec.priority_levels_desc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{GlobalPriority, LocalPriority, NoPriority};
    use capmaestro_topology::presets::figure2_feed;
    use capmaestro_topology::Topology;

    const PAPER_INPUT: SupplyInput = SupplyInput {
        demand: Watts::new(430.0),
        cap_min: Watts::new(270.0),
        cap_max: Watts::new(490.0),
        share: Ratio::ONE,
    };

    fn fig2_tree() -> (Topology, ControlTree) {
        let topo = figure2_feed();
        let spec = topo.control_tree_specs().remove(0);
        let tree = ControlTree::with_uniform(spec, PAPER_INPUT);
        (topo, tree)
    }

    fn budget_of(topo: &Topology, alloc: &Allocation, name: &str) -> Watts {
        let id = topo.server_by_name(name).unwrap();
        alloc
            .supply_budget(id, SupplyIndex::FIRST)
            .unwrap_or_else(|| panic!("no budget for {name}"))
    }

    #[test]
    fn table1_global_priority_budgets() {
        let (topo, tree) = fig2_tree();
        let alloc = tree.allocate(Watts::new(1240.0), &GlobalPriority::new());
        assert_eq!(budget_of(&topo, &alloc, "SA"), Watts::new(430.0));
        assert_eq!(budget_of(&topo, &alloc, "SB"), Watts::new(270.0));
        assert_eq!(budget_of(&topo, &alloc, "SC"), Watts::new(270.0));
        assert_eq!(budget_of(&topo, &alloc, "SD"), Watts::new(270.0));
    }

    #[test]
    fn table1_local_priority_budgets() {
        let (topo, tree) = fig2_tree();
        let alloc = tree.allocate(Watts::new(1240.0), &LocalPriority::new());
        // The paper's Table 1: 350 / 270 / 310 / 310.
        assert_eq!(budget_of(&topo, &alloc, "SA"), Watts::new(350.0));
        assert_eq!(budget_of(&topo, &alloc, "SB"), Watts::new(270.0));
        assert_eq!(budget_of(&topo, &alloc, "SC"), Watts::new(310.0));
        assert_eq!(budget_of(&topo, &alloc, "SD"), Watts::new(310.0));
    }

    #[test]
    fn no_priority_splits_proportionally() {
        let (topo, tree) = fig2_tree();
        let alloc = tree.allocate(Watts::new(1240.0), &NoPriority::new());
        // Equal demands ⇒ equal budgets: 1240 / 4 = 310 each.
        for name in ["SA", "SB", "SC", "SD"] {
            assert!(budget_of(&topo, &alloc, name)
                .approx_eq(Watts::new(310.0), Watts::new(1e-6)));
        }
    }

    #[test]
    fn budgets_respect_cb_limits() {
        let (_, tree) = fig2_tree();
        for policy in [
            &GlobalPriority::new() as &dyn CappingPolicy,
            &LocalPriority::new(),
            &NoPriority::new(),
        ] {
            let alloc = tree.allocate(Watts::new(5000.0), policy);
            // Left/Right CBs (indices 1 and 2 in the fig2 spec) are 750 W.
            assert!(alloc.node_budget(1) <= Watts::new(750.0) + Watts::new(1e-6));
            assert!(alloc.node_budget(2) <= Watts::new(750.0) + Watts::new(1e-6));
            // Root clamped to its 1400 W limit.
            assert!(alloc.node_budget(0) <= Watts::new(1400.0) + Watts::new(1e-6));
        }
    }

    #[test]
    fn root_budget_above_limit_reported_unallocated() {
        let (_, tree) = fig2_tree();
        let alloc = tree.allocate(Watts::new(5000.0), &GlobalPriority::new());
        assert!(alloc.unallocated() >= Watts::new(5000.0 - 1400.0) - Watts::new(1e-6));
    }

    #[test]
    fn generous_budget_fills_demand_and_surplus() {
        let (topo, tree) = fig2_tree();
        let alloc = tree.allocate(Watts::new(1400.0), &GlobalPriority::new());
        // 1400 covers floors (1080) + SA's extra (160) = wait, covers all
        // demands? Σ demand = 1720 > 1400, so step 3 splits the rest.
        let total = alloc.total_leaf_budget();
        assert!(total.approx_eq(Watts::new(1400.0), Watts::new(1e-6)));
        // SA still gets its demand first.
        assert_eq!(budget_of(&topo, &alloc, "SA"), Watts::new(430.0));
    }

    #[test]
    fn conservation_under_all_policies() {
        let (_, tree) = fig2_tree();
        for policy in [
            &GlobalPriority::new() as &dyn CappingPolicy,
            &LocalPriority::new(),
            &NoPriority::new(),
        ] {
            for budget in [1080.0, 1240.0, 1400.0, 1700.0] {
                let alloc = tree.allocate(Watts::new(budget), policy);
                let leaf_total = alloc.total_leaf_budget();
                assert!(
                    leaf_total <= Watts::new(budget) + Watts::new(1e-6),
                    "{}: leaves exceed budget at {budget}",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn uneven_demands_through_set_inputs_with() {
        // Table 2's measured demands: 420 / 413 / 417 / 423.
        let (topo, mut tree) = {
            let (t, tr) = fig2_tree();
            (t, tr)
        };
        let demands = [("SA", 420.0), ("SB", 413.0), ("SC", 417.0), ("SD", 423.0)];
        let by_id: Vec<(ServerId, f64)> = demands
            .iter()
            .map(|(n, d)| (topo.server_by_name(n).unwrap(), *d))
            .collect();
        tree.set_inputs_with(|server, _| {
            let demand = by_id
                .iter()
                .find(|(id, _)| *id == server)
                .map(|(_, d)| *d)
                .unwrap();
            SupplyInput {
                demand: Watts::new(demand),
                ..PAPER_INPUT
            }
        });
        let alloc = tree.allocate(Watts::new(1240.0), &GlobalPriority::new());
        // SA gets its full demand; the rest are pushed toward cap_min.
        assert_eq!(budget_of(&topo, &alloc, "SA"), Watts::new(420.0));
        for name in ["SB", "SC", "SD"] {
            let b = budget_of(&topo, &alloc, name);
            assert!(
                b >= Watts::new(270.0) - Watts::new(1e-6) && b < Watts::new(290.0),
                "{name} got {b}"
            );
        }
    }

    #[test]
    fn light_demand_still_budgeted_to_cap_min() {
        let (topo, mut tree) = fig2_tree();
        // SB runs nearly idle; its budget must still be at least cap_min.
        let sb = topo.server_by_name("SB").unwrap();
        tree.set_supply_input(
            sb,
            SupplyIndex::FIRST,
            SupplyInput {
                demand: Watts::new(170.0),
                ..PAPER_INPUT
            },
        );
        let alloc = tree.allocate(Watts::new(1240.0), &GlobalPriority::new());
        assert!(budget_of(&topo, &alloc, "SB") >= Watts::new(270.0) - Watts::new(1e-6));
    }

    #[test]
    fn set_supply_input_rejects_unknown() {
        let (_, mut tree) = fig2_tree();
        assert!(!tree.set_supply_input(
            ServerId(999),
            SupplyIndex::FIRST,
            PAPER_INPUT
        ));
    }

    #[test]
    #[should_panic(expected = "no supply input")]
    fn allocate_without_inputs_panics() {
        let topo = figure2_feed();
        let spec = topo.control_tree_specs().remove(0);
        let tree = ControlTree::new(spec);
        let _ = tree.allocate(Watts::new(1240.0), &GlobalPriority::new());
    }

    #[test]
    fn gather_reports_levels_per_policy() {
        let (_, tree) = fig2_tree();
        let global = tree.gather(&GlobalPriority::new());
        // Root sees both priority levels under Global.
        assert_eq!(global[0].level_count(), 2);
        let local = tree.gather(&LocalPriority::new());
        // Root sees a single collapsed level under Local.
        assert_eq!(local[0].level_count(), 1);
        let nop = tree.gather(&NoPriority::new());
        assert_eq!(nop[0].level_count(), 1);
    }

    #[test]
    fn priority_levels_listed() {
        let (_, tree) = fig2_tree();
        assert_eq!(
            tree.priority_levels(),
            vec![Priority::HIGH, Priority::LOW]
        );
    }
}
