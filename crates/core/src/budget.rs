//! The budgeting phase: splitting a node's budget among its children
//! (paper §4.3.2).
//!
//! Given the priority-summarized metrics of each child, a shifting
//! controller distributes its own budget in four steps:
//!
//! 1. allocate every child its `P_cap_min`;
//! 2. walk priority levels from highest to lowest, granting each level's
//!    additional request (`P_request − P_cap_min`) in full while the budget
//!    lasts;
//! 3. at the first level that cannot be fully granted, split the remainder
//!    proportionally to each child's `P_demand − P_cap_min` at that level
//!    (clamped so no child exceeds its own request — a safety refinement
//!    that keeps budgets within downstream constraints);
//! 4. if budget remains after all requests, hand out the surplus up to each
//!    child's `P_constraint`.

use capmaestro_topology::Priority;
use capmaestro_units::Watts;

use crate::metrics::PriorityMetrics;

/// Result of splitting a budget among child nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetSplit {
    /// Budget per child, aligned with the input slice.
    pub budgets: Vec<Watts>,
    /// Budget that could not be allocated (children saturated at their
    /// constraints, or the infeasible-floor case).
    pub unallocated: Watts,
}

/// Reusable scratch buffers for [`split_budget_into`], so steady-state
/// budget splits perform no heap allocation once warmed up.
#[derive(Debug, Clone, Default)]
pub struct SplitScratch {
    floors: Vec<Watts>,
    wants: Vec<Watts>,
    weights: Vec<Watts>,
    rooms: Vec<Watts>,
    grants: Vec<Watts>,
    levels: Vec<Priority>,
}

/// Distributes `amount` across children proportionally to `weights`,
/// clamping each grant at `rooms[i]` and re-distributing the clamped excess
/// until either the amount is exhausted or every room is full. Returns the
/// grants; the leftover is `amount − Σ grants`.
#[cfg(test)]
fn waterfill(amount: Watts, weights: &[Watts], rooms: &[Watts]) -> Vec<Watts> {
    let mut grants = Vec::new();
    waterfill_into(amount, weights, rooms, &mut grants);
    grants
}

/// In-place variant of [`waterfill`]: grants are written into `grants`,
/// reusing its capacity. Crate-visible so the solver allocators in
/// [`crate::alloc`] share the same clamped-fill primitive (and therefore
/// the same conservation epsilon) as the waterfall.
pub(crate) fn waterfill_into(
    amount: Watts,
    weights: &[Watts],
    rooms: &[Watts],
    grants: &mut Vec<Watts>,
) {
    debug_assert_eq!(weights.len(), rooms.len());
    let n = weights.len();
    grants.clear();
    grants.resize(n, Watts::ZERO);
    let mut remaining = amount;
    // Each pass either exhausts the remainder or permanently fills at
    // least one room, so n + 1 passes suffice.
    for _ in 0..=n {
        if remaining <= Watts::new(1e-9) {
            break;
        }
        let mut weight_sum = Watts::ZERO;
        for i in 0..n {
            if rooms[i] - grants[i] > Watts::new(1e-9) {
                weight_sum += weights[i];
            }
        }
        if weight_sum <= Watts::ZERO {
            // No weighted room left; fall back to equal split over open
            // rooms. Granting to an open room never changes another open
            // room's openness within the pass, so counting first and
            // filtering again while granting visits exactly the same set.
            let open = (0..n)
                .filter(|&i| rooms[i] - grants[i] > Watts::new(1e-9))
                .count();
            if open == 0 {
                break;
            }
            let each = remaining / open as f64;
            let mut progressed = false;
            for i in 0..n {
                let room = rooms[i] - grants[i];
                if room <= Watts::new(1e-9) {
                    continue;
                }
                let grant = each.min(room);
                if grant > Watts::ZERO {
                    grants[i] += grant;
                    remaining -= grant;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
            continue;
        }
        let mut clamped = false;
        let pass_remaining = remaining;
        for i in 0..n {
            let room = rooms[i] - grants[i];
            if room <= Watts::new(1e-9) {
                continue;
            }
            let share = pass_remaining * (weights[i] / weight_sum);
            let grant = share.min(room);
            if share > room {
                clamped = true;
            }
            grants[i] += grant;
            remaining -= grant;
        }
        if !clamped {
            break;
        }
    }
}

/// Splits `budget` among `children` following the four-step §4.3.2
/// procedure. Children are treated with whatever priority levels their
/// metrics carry (collapse them first for priority-blind policies).
///
/// If `budget` does not even cover the children's combined `P_cap_min` —
/// an infeasible deployment the paper excludes by construction — the floors
/// themselves are scaled proportionally so the split remains total.
pub fn split_budget(budget: Watts, children: &[PriorityMetrics]) -> BudgetSplit {
    let mut scratch = SplitScratch::default();
    let mut budgets = Vec::new();
    let unallocated = split_budget_into(budget, children, &mut scratch, &mut budgets);
    BudgetSplit {
        budgets,
        unallocated,
    }
}

/// In-place variant of [`split_budget`]: writes per-child budgets into
/// `budgets` (aligned with `children`) using `scratch` for every
/// intermediate vector, and returns the unallocated remainder. Performs no
/// heap allocation once the scratch buffers are warm.
pub fn split_budget_into(
    budget: Watts,
    children: &[PriorityMetrics],
    scratch: &mut SplitScratch,
    budgets: &mut Vec<Watts>,
) -> Watts {
    let SplitScratch {
        floors,
        wants,
        weights,
        rooms,
        grants,
        levels,
    } = scratch;
    budgets.clear();
    if children.is_empty() {
        return budget;
    }

    // Step 1: cap_min floors. A floor is additionally clamped at the
    // child's constraint — if a subtree's Σ cap_min exceeds its own power
    // limit the deployment is infeasible (excluded by construction in the
    // paper), but the allocator must still never assign a budget above a
    // limit.
    floors.clear();
    floors.extend(
        children
            .iter()
            .map(|c| c.total_cap_min().min(c.constraint())),
    );
    let floor_sum: Watts = floors.iter().sum();
    if budget < floor_sum {
        // Infeasible budget: scale floors proportionally (degenerate
        // fallback).
        let scale = if floor_sum > Watts::ZERO {
            budget / floor_sum
        } else {
            0.0
        };
        budgets.extend(floors.iter().map(|f| *f * scale));
        return Watts::ZERO;
    }
    budgets.extend_from_slice(floors);
    let mut remaining = budget - floor_sum;

    // The union of priority levels, descending.
    levels.clear();
    levels.extend(
        children
            .iter()
            .flat_map(|c| c.levels().iter().map(|(p, _)| *p)),
    );
    levels.sort_unstable_by(|a, b| b.cmp(a));
    levels.dedup();

    // Step 2 (+3 on the first level that does not fit). Wants are clamped
    // at the child's remaining constraint headroom so no grant can push a
    // child past its limit, even in infeasible corner cases.
    let mut all_requests_met = true;
    for &level in levels.iter() {
        wants.clear();
        wants.extend(children.iter().zip(budgets.iter()).map(|(c, b)| {
            let want = c
                .level(level)
                .map(|e| e.request.saturating_sub(e.cap_min))
                .unwrap_or(Watts::ZERO);
            want.min(c.constraint().saturating_sub(*b))
        }));
        let want_sum: Watts = wants.iter().sum();
        if want_sum <= Watts::ZERO {
            continue;
        }
        if remaining >= want_sum {
            for (b, w) in budgets.iter_mut().zip(wants.iter()) {
                *b += *w;
            }
            remaining -= want_sum;
        } else {
            // Step 3: proportional to demand − cap_min at this level,
            // clamped at each child's request.
            weights.clear();
            weights.extend(children.iter().map(|c| {
                c.level(level)
                    .map(|e| e.demand.saturating_sub(e.cap_min))
                    .unwrap_or(Watts::ZERO)
            }));
            waterfill_into(remaining, weights, wants, grants);
            for (b, g) in budgets.iter_mut().zip(grants.iter()) {
                *b += *g;
            }
            remaining = Watts::ZERO;
            all_requests_met = false;
            break;
        }
    }

    // Step 4: surplus up to each child's constraint.
    if all_requests_met && remaining > Watts::ZERO {
        rooms.clear();
        rooms.extend(
            children
                .iter()
                .zip(budgets.iter())
                .map(|(c, b)| c.constraint().saturating_sub(*b)),
        );
        waterfill_into(remaining, rooms, rooms, grants);
        for (b, g) in budgets.iter_mut().zip(grants.iter()) {
            *b += *g;
        }
        let granted: Watts = grants.iter().sum();
        remaining -= granted;
    }

    remaining
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::LeafInput;
    use capmaestro_units::Ratio;

    fn leaf(demand: f64, priority: Priority) -> PriorityMetrics {
        PriorityMetrics::from_leaf(&LeafInput {
            demand: Watts::new(demand),
            cap_min: Watts::new(270.0),
            cap_max: Watts::new(490.0),
            share: Ratio::ONE,
            priority,
        })
    }

    #[test]
    fn empty_children_returns_budget_unallocated() {
        let split = split_budget(Watts::new(100.0), &[]);
        assert!(split.budgets.is_empty());
        assert_eq!(split.unallocated, Watts::new(100.0));
    }

    #[test]
    fn fig2_left_cb_split() {
        // Left CB receives 700 W for SA(high, 430) + SB(low, 430):
        // SA gets its full demand, SB gets cap_min.
        let children = vec![leaf(430.0, Priority::HIGH), leaf(430.0, Priority::LOW)];
        let split = split_budget(Watts::new(700.0), &children);
        assert_eq!(split.budgets, vec![Watts::new(430.0), Watts::new(270.0)]);
        assert_eq!(split.unallocated, Watts::ZERO);
    }

    #[test]
    fn step3_proportional_on_partial_level() {
        // Two equal low-priority servers, budget covers floors + 80 W:
        // split 40/40 (equal demands).
        let children = vec![leaf(430.0, Priority::LOW), leaf(430.0, Priority::LOW)];
        let split = split_budget(Watts::new(620.0), &children);
        assert_eq!(split.budgets, vec![Watts::new(310.0), Watts::new(310.0)]);
    }

    #[test]
    fn step3_weights_by_dynamic_demand() {
        // Unequal demands: remaining 90 W splits 2:1.
        let children = vec![leaf(470.0, Priority::LOW), leaf(370.0, Priority::LOW)];
        let split = split_budget(Watts::new(630.0), &children);
        assert!(split.budgets[0].approx_eq(Watts::new(330.0), Watts::new(1e-6)));
        assert!(split.budgets[1].approx_eq(Watts::new(300.0), Watts::new(1e-6)));
    }

    #[test]
    fn priority_descent_covers_higher_levels_first() {
        // Three levels; budget only covers the top level's extra request.
        let children = vec![
            leaf(430.0, Priority(2)),
            leaf(430.0, Priority(1)),
            leaf(430.0, Priority(0)),
        ];
        // Floors 810; +160 exactly the P2 extra.
        let split = split_budget(Watts::new(970.0), &children);
        assert_eq!(
            split.budgets,
            vec![Watts::new(430.0), Watts::new(270.0), Watts::new(270.0)]
        );
    }

    #[test]
    fn step4_surplus_up_to_constraint() {
        // Budget exceeds all demands: surplus flows up to cap_max.
        let children = vec![leaf(300.0, Priority::LOW), leaf(300.0, Priority::LOW)];
        let split = split_budget(Watts::new(1200.0), &children);
        // Requests are 300 + 300; surplus 600 splits to constraints (490).
        assert_eq!(split.budgets, vec![Watts::new(490.0), Watts::new(490.0)]);
        assert!(split.unallocated.approx_eq(Watts::new(220.0), Watts::new(1e-6)));
    }

    #[test]
    fn infeasible_budget_scales_floors() {
        let children = vec![leaf(430.0, Priority::LOW), leaf(430.0, Priority::LOW)];
        let split = split_budget(Watts::new(270.0), &children);
        assert_eq!(split.budgets, vec![Watts::new(135.0), Watts::new(135.0)]);
        assert_eq!(split.unallocated, Watts::ZERO);
    }

    #[test]
    fn conservation_of_power() {
        // Whatever the inputs, Σ budgets + unallocated == budget.
        let children = vec![
            leaf(430.0, Priority(3)),
            leaf(350.0, Priority(1)),
            leaf(490.0, Priority(0)),
            leaf(280.0, Priority(1)),
        ];
        for budget in [900.0, 1100.0, 1400.0, 2500.0] {
            let split = split_budget(Watts::new(budget), &children);
            let total: Watts = split.budgets.iter().sum();
            assert!(
                (total + split.unallocated).approx_eq(Watts::new(budget), Watts::new(1e-6)),
                "budget {budget} not conserved"
            );
        }
    }

    #[test]
    fn budgets_never_exceed_constraints() {
        let children = vec![leaf(490.0, Priority(1)), leaf(490.0, Priority(0))];
        let split = split_budget(Watts::new(5000.0), &children);
        for (b, c) in split.budgets.iter().zip(&children) {
            assert!(*b <= c.constraint() + Watts::new(1e-6));
        }
    }

    #[test]
    fn step4_surplus_conserves_with_zero_rooms() {
        // Step 4 weights surplus by the rooms themselves; children already
        // at their constraint contribute zero weight AND zero room. The
        // waterfill must route the whole surplus through the remaining open
        // rooms (or report it unallocated) without losing a single watt.
        let children = vec![
            // Saturated child: demand at cap_max, so after step 2 its
            // constraint headroom (room) is exactly zero.
            leaf(490.0, Priority::LOW),
            // Open child: 190 W of headroom above its demand.
            leaf(300.0, Priority::LOW),
        ];
        let budget = 1500.0;
        let split = split_budget(Watts::new(budget), &children);
        let total: Watts = split.budgets.iter().sum();
        assert!(
            (total + split.unallocated).approx_eq(Watts::new(budget), Watts::new(1e-6)),
            "step-4 surplus lost: budgets {total} + unallocated {}",
            split.unallocated
        );
        // Both children end at their constraints; the rest is unallocated.
        assert_eq!(split.budgets, vec![Watts::new(490.0), Watts::new(490.0)]);
        assert!(split.unallocated.approx_eq(Watts::new(520.0), Watts::new(1e-6)));
    }

    #[test]
    fn waterfill_respects_rooms() {
        let weights = vec![Watts::new(300.0), Watts::new(300.0)];
        let rooms = vec![Watts::new(10.0), Watts::new(300.0)];
        let grants = waterfill(Watts::new(200.0), &weights, &rooms);
        assert!(grants[0].approx_eq(Watts::new(10.0), Watts::new(1e-6)));
        assert!(grants[1].approx_eq(Watts::new(190.0), Watts::new(1e-6)));
    }

    #[test]
    fn waterfill_zero_weights_falls_back_to_equal() {
        let weights = vec![Watts::ZERO, Watts::ZERO];
        let rooms = vec![Watts::new(50.0), Watts::new(100.0)];
        let grants = waterfill(Watts::new(60.0), &weights, &rooms);
        let total: Watts = grants.iter().sum();
        assert!(total.approx_eq(Watts::new(60.0), Watts::new(1e-6)));
        assert!(grants[0] <= Watts::new(50.0) + Watts::new(1e-9));
    }

    #[test]
    fn waterfill_leftover_when_rooms_fill() {
        let weights = vec![Watts::new(1.0)];
        let rooms = vec![Watts::new(30.0)];
        let grants = waterfill(Watts::new(100.0), &weights, &rooms);
        assert!(grants[0].approx_eq(Watts::new(30.0), Watts::new(1e-6)));
    }

    #[test]
    fn mixed_levels_with_missing_entries() {
        // Child A has only priority 1, child B only priority 0; the level
        // walk must handle children that lack a level.
        let children = vec![leaf(430.0, Priority(1)), leaf(430.0, Priority(0))];
        let split = split_budget(Watts::new(700.0), &children);
        assert_eq!(split.budgets[0], Watts::new(430.0));
        assert_eq!(split.budgets[1], Watts::new(270.0));
    }
}
