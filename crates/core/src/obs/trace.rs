//! Perfetto-format timeline export: round phases as duration slices and
//! per-tree power/budget/cap signals as counter tracks, serialized in
//! Chrome's JSON trace-event format (loadable in `chrome://tracing` and
//! [Perfetto UI](https://ui.perfetto.dev)).
//!
//! Design constraints (see DESIGN.md "Trace export"):
//!
//! - **No new dependencies.** The JSON trace format is hand-rolled text,
//!   like the Prometheus and JSON snapshot exporters; the protobuf
//!   Perfetto format would need a codegen dependency.
//! - **Free when off.** Tracing rides the [`Recorder`] seam: the default
//!   [`super::NullRecorder`] inherits no-op `trace_*` methods, so the
//!   untraced hot path stays clock-free, allocation-free, and
//!   bit-identical (`crates/sim/tests/trace_differential.rs`).
//! - **Bounded when on.** Events land in a fixed-capacity ring
//!   ([`TraceBuffer`]) that drops oldest first and counts what it
//!   dropped; a long-running daemon can never grow without bound.
//! - **A tested contract.** [`parse`] is a strict validator (event
//!   kinds, B/E nesting balance per track, monotonic timestamps, finite
//!   counter values) that doubles as the golden/differential test oracle
//!   and rejects hostile or torn input without panicking.
//!
//! Timestamps are *simulated* microseconds (the engine publishes its
//! logical clock via [`Recorder::trace_set_time_us`]), so a trace of a
//! deterministic run is itself deterministic; only slice durations come
//! from the wall clock, and [`normalize`] zeroes them for byte-for-byte
//! golden comparisons.

use std::borrow::Cow;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use super::{names, ParseError, Recorder, RoundPhase};

/// The `Content-Type` an HTTP endpoint should declare for [`render`]ed
/// traces.
pub const CONTENT_TYPE: &str = "application/json";

/// Synthetic process id carrying the control plane's phase slices and
/// fleet-wide counter tracks.
pub const PID_PLANE: u32 = 1;

/// Synthetic process id of the first control tree; tree `i` is
/// `TREE_PID_BASE + i`. Each tree process carries its own counter
/// tracks and thread-metadata rows naming its racks.
pub const TREE_PID_BASE: u32 = 100;

/// Thread id (under [`PID_PLANE`]) of the engine's per-simulated-second
/// step slices.
pub const TID_SIM_STEP: u32 = 7;

/// Counter track: a tree's root budget in watts (what the allocator was
/// given).
pub const ROOT_BUDGET_W: &str = "root_budget_w";

/// Counter track: a tree's total allocated leaf budget in watts (what
/// the allocator handed out).
pub const BUDGET_ALLOC_W: &str = "budget_alloc_w";

/// Counter track: a tree's measured AC power in watts, summed over its
/// leaves' last delivered telemetry.
pub const POWER_W: &str = "power_w";

/// Counter track: servers currently past the staleness threshold.
pub const STALE_SERVERS: &str = "stale_servers";

/// Counter track: cumulative fail-safe cap enforcements.
pub const FAILSAFE_CUTS: &str = "failsafe_cuts";

/// Counter track: stranded watts reclaimed by SPO in the latest round.
pub const STRANDED_W: &str = "stranded_w";

/// Default [`TraceBuffer`] capacity in events. A Fig. 2 rig emits ~3
/// events per simulated second (sense + step slices every second, a
/// dozen more per 8 s round), so the default holds several hours.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// What one trace event is, mirroring the `ph` field of the JSON trace
/// format.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// `ph: "X"` — a complete slice with an explicit duration.
    Complete {
        /// Slice duration in microseconds.
        dur_us: u64,
    },
    /// `ph: "B"` — a slice begins on its `(pid, tid)` track.
    Begin,
    /// `ph: "E"` — the most recent open slice on the track ends.
    End,
    /// `ph: "C"` — one sample of a counter track.
    Counter {
        /// The sampled value; always finite (non-finite samples are
        /// refused at emission).
        value: f64,
    },
}

/// One timeline event on a `(pid, tid)` track.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event (slice or counter-track) name.
    pub name: Cow<'static, str>,
    /// Synthetic process id ([`PID_PLANE`], `TREE_PID_BASE + i`, …).
    pub pid: u32,
    /// Synthetic thread id within the process (phase lane, rack lane);
    /// counters ignore it and render without a `tid`.
    pub tid: u32,
    /// Timestamp in (simulated) microseconds.
    pub ts_us: u64,
    /// What happened.
    pub kind: EventKind,
}

/// A `ph: "M"` metadata event naming a synthetic process or thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaEvent {
    /// The process being named.
    pub pid: u32,
    /// `Some(tid)` names a thread within `pid`; `None` names the process
    /// itself.
    pub tid: Option<u32>,
    /// The display name.
    pub name: String,
}

/// Fixed-capacity event ring: pushing past capacity evicts the oldest
/// event and counts it, so a long-running emitter is memory-bounded and
/// the loss is visible ([`TraceBuffer::dropped`]).
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    /// The retained events, oldest first.
    events: VecDeque<TraceEvent>,
    /// Maximum number of retained events (at least 1).
    capacity: usize,
    /// Events evicted to make room since construction (or the last
    /// [`TraceBuffer::clear`]).
    dropped: u64,
    /// Total events ever pushed (retained + evicted).
    pushed: u64,
}

impl TraceBuffer {
    /// A ring holding at most `capacity` events (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceBuffer {
            events: VecDeque::with_capacity(capacity.min(1024)),
            capacity,
            dropped: 0,
            pushed: 0,
        }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
        self.pushed += 1;
    }

    /// Retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The ring's capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted to make room so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed (retained + evicted).
    pub fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Forget all retained events and reset the counters.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
        self.pushed = 0;
    }
}

/// Mutable state behind the [`TraceRecorder`]'s lock.
#[derive(Debug)]
struct Inner {
    /// The bounded event ring.
    buffer: TraceBuffer,
    /// Process/thread naming, kept *outside* the ring so eviction can
    /// never orphan a track's name; deduplicated by `(pid, tid)`.
    meta: Vec<MetaEvent>,
    /// The current logical timestamp in microseconds, published by the
    /// engine once per simulated second.
    now_us: u64,
    /// Running total behind the cumulative [`FAILSAFE_CUTS`] track (the
    /// metrics seam delivers deltas).
    failsafe_total: u64,
}

/// A [`Recorder`] that turns the existing metrics seam into a Perfetto
/// timeline: phase histograms become duration slices, the plane's
/// gauges/counters become counter tracks, and the trait's `trace_*`
/// extension points add per-tree counters and naming. All metric calls
/// are also forwarded to an optional inner recorder, so a daemon can
/// keep its Prometheus registry and gain tracing with one attachment.
#[derive(Debug)]
pub struct TraceRecorder {
    /// Ring, metadata, clock, cumulative counters.
    inner: Mutex<Inner>,
    /// Recorder every metric call is forwarded to (a `MetricsRegistry`
    /// in the daemon; `None` when tracing stands alone).
    forward: Option<Arc<dyn Recorder>>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        TraceRecorder::new()
    }
}

impl TraceRecorder {
    /// A recorder with the [`DEFAULT_CAPACITY`] ring.
    pub fn new() -> Self {
        TraceRecorder::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder whose ring holds at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut meta = vec![MetaEvent {
            pid: PID_PLANE,
            tid: None,
            name: "control plane".to_string(),
        }];
        for (i, phase) in RoundPhase::ALL.iter().enumerate() {
            meta.push(MetaEvent {
                pid: PID_PLANE,
                tid: Some(i as u32 + 1),
                name: phase.label().to_string(),
            });
        }
        meta.push(MetaEvent {
            pid: PID_PLANE,
            tid: Some(TID_SIM_STEP),
            name: "sim step".to_string(),
        });
        TraceRecorder {
            inner: Mutex::new(Inner {
                buffer: TraceBuffer::new(capacity),
                meta,
                now_us: 0,
                failsafe_total: 0,
            }),
            forward: None,
        }
    }

    /// Forward every metric call to `recorder` as well (builder style).
    pub fn with_forward(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.forward = Some(recorder);
        self
    }

    /// Lock the inner state, shrugging off poisoning: a panicked emitter
    /// must not take the exporter down with it.
    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The current logical timestamp in microseconds.
    pub fn now_us(&self) -> u64 {
        self.locked().now_us
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.locked().buffer.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.locked().buffer.is_empty()
    }

    /// Events evicted by the ring so far.
    pub fn dropped_events(&self) -> u64 {
        self.locked().buffer.dropped()
    }

    /// Total events ever pushed into the ring.
    pub fn pushed_events(&self) -> u64 {
        self.locked().buffer.pushed()
    }

    /// Open a `B` slice on `(pid, tid)` at the current logical time.
    pub fn begin_slice(&self, pid: u32, tid: u32, name: impl Into<Cow<'static, str>>) {
        let mut inner = self.locked();
        let ts_us = inner.now_us;
        inner.buffer.push(TraceEvent {
            name: name.into(),
            pid,
            tid,
            ts_us,
            kind: EventKind::Begin,
        });
    }

    /// Close the most recent open slice on `(pid, tid)`.
    pub fn end_slice(&self, pid: u32, tid: u32, name: impl Into<Cow<'static, str>>) {
        let mut inner = self.locked();
        let ts_us = inner.now_us;
        inner.buffer.push(TraceEvent {
            name: name.into(),
            pid,
            tid,
            ts_us,
            kind: EventKind::End,
        });
    }

    /// Record a complete (`X`) slice on `(pid, tid)` at the current
    /// logical time.
    pub fn complete_slice(
        &self,
        pid: u32,
        tid: u32,
        name: impl Into<Cow<'static, str>>,
        dur_us: u64,
    ) {
        let mut inner = self.locked();
        let ts_us = inner.now_us;
        inner.buffer.push(TraceEvent {
            name: name.into(),
            pid,
            tid,
            ts_us,
            kind: EventKind::Complete { dur_us },
        });
    }

    /// Sample counter track `name` under process `pid`. Non-finite
    /// values are refused (the format cannot carry them).
    pub fn counter(&self, pid: u32, name: impl Into<Cow<'static, str>>, value: f64) {
        if !value.is_finite() {
            return;
        }
        let mut inner = self.locked();
        let ts_us = inner.now_us;
        inner.buffer.push(TraceEvent {
            name: name.into(),
            pid,
            tid: 0,
            ts_us,
            kind: EventKind::Counter { value },
        });
    }

    /// Name process `pid` (`tid: None`) or thread `(pid, tid)`. First
    /// name wins; repeats are deduplicated, so emitters may re-announce
    /// every round.
    pub fn name_track(&self, pid: u32, tid: Option<u32>, name: &str) {
        let mut inner = self.locked();
        if inner.meta.iter().any(|m| m.pid == pid && m.tid == tid) {
            return;
        }
        inner.meta.push(MetaEvent {
            pid,
            tid,
            name: name.to_string(),
        });
    }

    /// Render the retained events as a JSON trace document.
    ///
    /// `last_s: Some(n)` keeps only events in the trailing `n` simulated
    /// seconds (metadata is always included). Rendering is
    /// non-destructive — a `GET` is idempotent and never perturbs the
    /// emitting run; use [`TraceRecorder::drain`] to also clear.
    pub fn render(&self, last_s: Option<u64>) -> String {
        let inner = self.locked();
        let cutoff_us = last_s.map(|s| {
            inner.now_us.saturating_sub(s.saturating_mul(1_000_000))
        });
        render_document(&inner.buffer, cutoff_us, &inner.meta)
    }

    /// Render everything retained, then clear the ring (the `--trace`
    /// file writer's run-boundary flush).
    pub fn drain(&self) -> String {
        let mut inner = self.locked();
        let out = render_document(&inner.buffer, None, &inner.meta);
        inner.buffer.clear();
        out
    }
}

impl Recorder for TraceRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(forward) = &self.forward {
            forward.counter_add(name, delta);
        }
        if name == names::FAILSAFE_CAPS_TOTAL {
            let mut inner = self.locked();
            inner.failsafe_total += delta;
            let (ts_us, total) = (inner.now_us, inner.failsafe_total);
            inner.buffer.push(TraceEvent {
                name: Cow::Borrowed(FAILSAFE_CUTS),
                pid: PID_PLANE,
                tid: 0,
                ts_us,
                kind: EventKind::Counter {
                    value: total as f64,
                },
            });
        }
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        if let Some(forward) = &self.forward {
            forward.gauge_set(name, value);
        }
        let track = match name {
            names::STALE_SERVERS => STALE_SERVERS,
            names::STRANDED_WATTS_RECLAIMED => STRANDED_W,
            _ => return,
        };
        self.counter(PID_PLANE, track, value);
    }

    fn observe(&self, name: &'static str, value: f64) {
        if let Some(forward) = &self.forward {
            forward.observe(name, value);
        }
        let (label, tid) = if name == names::SIM_STEP_SECONDS {
            ("sim step", TID_SIM_STEP)
        } else {
            match RoundPhase::ALL
                .iter()
                .position(|p| p.metric_name() == name)
            {
                Some(i) => (RoundPhase::ALL[i].label(), i as u32 + 1),
                None => return,
            }
        };
        let dur_us = if value.is_finite() && value > 0.0 {
            (value * 1e6).round() as u64
        } else {
            0
        };
        self.complete_slice(PID_PLANE, tid, label, dur_us);
    }

    fn trace_enabled(&self) -> bool {
        true
    }

    fn trace_set_time_us(&self, now_us: u64) {
        self.locked().now_us = now_us;
    }

    fn trace_tree_counter(&self, tree: u32, track: &'static str, value: f64) {
        self.counter(TREE_PID_BASE.saturating_add(tree), track, value);
    }

    fn trace_tree_meta(&self, tree: u32, thread: Option<u32>, name: &str) {
        self.name_track(TREE_PID_BASE.saturating_add(tree), thread, name);
    }
}

/// Append `s` as a JSON string literal with the mandatory escapes.
fn fmt_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize the ring (optionally time-filtered) plus metadata as one
/// canonical JSON trace document.
///
/// Eviction (or a `last_s` cut) can strand an `E` whose `B` is gone;
/// such orphans are skipped here and counted as dropped, so the emitted
/// document always keeps B/E nesting balanced per track and the
/// `droppedEvents` tally stays honest: `dropped + emitted == pushed`
/// for an unfiltered render.
fn render_document(
    buffer: &TraceBuffer,
    cutoff_us: Option<u64>,
    meta: &[MetaEvent],
) -> String {
    // First pass: find orphaned `E` events (per-track depth going
    // negative) among the events that survive the time filter.
    let survives = |e: &TraceEvent| cutoff_us.is_none_or(|cut| e.ts_us >= cut);
    let mut depths: Vec<((u32, u32), i64)> = Vec::new();
    let mut orphans = 0u64;
    let mut filtered = 0u64;
    for event in buffer.iter() {
        if !survives(event) {
            filtered += 1;
            continue;
        }
        let delta = match event.kind {
            EventKind::Begin => 1,
            EventKind::End => -1,
            _ => continue,
        };
        let key = (event.pid, event.tid);
        let depth = match depths.iter_mut().find(|(k, _)| *k == key) {
            Some((_, d)) => d,
            None => {
                depths.push((key, 0));
                &mut depths.last_mut().expect("just pushed").1
            }
        };
        *depth += delta;
        if *depth < 0 {
            orphans += 1;
            *depth = 0;
        }
    }

    let dropped = buffer.dropped() + filtered + orphans;
    let mut out = String::with_capacity(256 + buffer.len() * 96);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"droppedEvents\":\"");
    let _ = write!(out, "{dropped}");
    out.push_str("\"},\"traceEvents\":[");
    let mut first = true;
    /// Append the separating newline between array elements.
    fn sep(out: &mut String, first: &mut bool) {
        if *first {
            *first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    }
    for m in meta {
        sep(&mut out, &mut first);
        out.push_str("{\"name\":");
        fmt_str(
            &mut out,
            if m.tid.is_some() {
                "thread_name"
            } else {
                "process_name"
            },
        );
        out.push_str(",\"ph\":\"M\",\"pid\":");
        let _ = write!(out, "{}", m.pid);
        if let Some(tid) = m.tid {
            let _ = write!(out, ",\"tid\":{tid}");
        }
        out.push_str(",\"args\":{\"name\":");
        fmt_str(&mut out, &m.name);
        out.push_str("}}");
    }
    // Second pass: emit, skipping orphaned `E`s the same way.
    depths.iter_mut().for_each(|(_, d)| *d = 0);
    for event in buffer.iter() {
        if !survives(event) {
            continue;
        }
        if matches!(event.kind, EventKind::Begin | EventKind::End) {
            let key = (event.pid, event.tid);
            let depth = match depths.iter_mut().find(|(k, _)| *k == key) {
                Some((_, d)) => d,
                None => unreachable!("track seen in first pass"),
            };
            match event.kind {
                EventKind::Begin => *depth += 1,
                EventKind::End => {
                    if *depth == 0 {
                        continue; // orphan, already counted
                    }
                    *depth -= 1;
                }
                _ => unreachable!(),
            }
        }
        sep(&mut out, &mut first);
        out.push_str("{\"name\":");
        fmt_str(&mut out, &event.name);
        out.push_str(",\"ph\":\"");
        out.push(match event.kind {
            EventKind::Complete { .. } => 'X',
            EventKind::Begin => 'B',
            EventKind::End => 'E',
            EventKind::Counter { .. } => 'C',
        });
        let _ = write!(out, "\",\"ts\":{}", event.ts_us);
        if let EventKind::Complete { dur_us } = event.kind {
            let _ = write!(out, ",\"dur\":{dur_us}");
        }
        let _ = write!(out, ",\"pid\":{}", event.pid);
        match event.kind {
            EventKind::Counter { value } => {
                out.push_str(",\"args\":{\"value\":");
                let _ = write!(out, "{value}");
                out.push_str("}}");
            }
            _ => {
                let _ = write!(out, ",\"tid\":{}}}", event.tid);
            }
        }
    }
    out.push_str("\n]}");
    out
}

/// A parsed (and therefore validated) trace document.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedTrace {
    /// Timeline events in document order.
    pub events: Vec<TraceEvent>,
    /// Process/thread naming events.
    pub meta: Vec<MetaEvent>,
    /// The document's `droppedEvents` tally.
    pub dropped: u64,
}

impl ParsedTrace {
    /// Distinct counter-track identities `(pid, name)` in the document.
    pub fn counter_tracks(&self) -> Vec<(u32, String)> {
        let mut tracks: Vec<(u32, String)> = Vec::new();
        for event in &self.events {
            if matches!(event.kind, EventKind::Counter { .. }) {
                let key = (event.pid, event.name.to_string());
                if !tracks.contains(&key) {
                    tracks.push(key);
                }
            }
        }
        tracks
    }

    /// How many slice events (`X`/`B`) carry this name.
    pub fn slice_count(&self, name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| {
                e.name == name
                    && matches!(e.kind, EventKind::Complete { .. } | EventKind::Begin)
            })
            .count()
    }
}

/// Byte cursor over a trace document; all methods are total (errors,
/// never panics) so the parser can face hostile input.
struct Cursor<'a> {
    /// The document bytes.
    bytes: &'a [u8],
    /// Current position.
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// An error at the current offset.
    fn err(&self, reason: impl Into<String>) -> ParseError {
        ParseError::Json {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    /// Skip ASCII whitespace.
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    /// The next non-whitespace byte, without consuming it.
    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    /// Consume exactly `expected` (after whitespace) or error.
    fn expect(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", expected as char)))
        }
    }

    /// Parse a JSON string literal into an owned string.
    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            let Some(c) = hex else {
                                return Err(self.err("bad \\u escape"));
                            };
                            self.pos += 4;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode from the byte position to keep UTF-8 intact.
                    let rest = &self.bytes[self.pos - 1..];
                    let Ok(s) = std::str::from_utf8(&rest[..rest.len().min(4)])
                        .or_else(|e| match e.valid_up_to() {
                            0 => Err(e),
                            n => std::str::from_utf8(&rest[..n]),
                        })
                    else {
                        return Err(self.err("invalid utf-8 in string"));
                    };
                    let Some(c) = s.chars().next() else {
                        return Err(self.err("invalid utf-8 in string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8() - 1;
                }
            }
        }
    }

    /// Parse a JSON number's raw text.
    fn number_text(&mut self) -> Result<&'a str, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))
    }

    /// Parse a non-negative integer that fits in `u64`.
    fn u64(&mut self) -> Result<u64, ParseError> {
        let text = self.number_text()?;
        text.parse::<u64>()
            .map_err(|_| self.err(format!("expected unsigned integer, got {text:?}")))
    }

    /// Parse a finite `f64`.
    fn f64(&mut self) -> Result<f64, ParseError> {
        let text = self.number_text()?;
        let value = text
            .parse::<f64>()
            .map_err(|_| self.err(format!("expected number, got {text:?}")))?;
        if !value.is_finite() {
            return Err(self.err("counter value is not finite"));
        }
        Ok(value)
    }
}

/// One raw field slot while parsing an event object.
#[derive(Debug, Default)]
struct RawEvent {
    /// `"name"`.
    name: Option<String>,
    /// `"ph"`.
    ph: Option<String>,
    /// `"ts"`.
    ts: Option<u64>,
    /// `"dur"`.
    dur: Option<u64>,
    /// `"pid"`.
    pid: Option<u64>,
    /// `"tid"`.
    tid: Option<u64>,
    /// `args.value` (counters).
    value: Option<f64>,
    /// `args.name` (metadata).
    args_name: Option<String>,
}

/// Parse one event object from the `traceEvents` array.
fn parse_event(cursor: &mut Cursor<'_>) -> Result<RawEvent, ParseError> {
    cursor.expect(b'{')?;
    let mut raw = RawEvent::default();
    if cursor.peek() == Some(b'}') {
        cursor.pos += 1;
        return Ok(raw);
    }
    loop {
        let key = cursor.string()?;
        cursor.expect(b':')?;
        match key.as_str() {
            "name" => raw.name = Some(cursor.string()?),
            "ph" => raw.ph = Some(cursor.string()?),
            "ts" => raw.ts = Some(cursor.u64()?),
            "dur" => raw.dur = Some(cursor.u64()?),
            "pid" => raw.pid = Some(cursor.u64()?),
            "tid" => raw.tid = Some(cursor.u64()?),
            "args" => {
                cursor.expect(b'{')?;
                loop {
                    let arg = cursor.string()?;
                    cursor.expect(b':')?;
                    match arg.as_str() {
                        "value" => raw.value = Some(cursor.f64()?),
                        "name" => raw.args_name = Some(cursor.string()?),
                        other => {
                            return Err(
                                cursor.err(format!("unknown args field {other:?}"))
                            )
                        }
                    }
                    match cursor.peek() {
                        Some(b',') => cursor.pos += 1,
                        Some(b'}') => {
                            cursor.pos += 1;
                            break;
                        }
                        _ => return Err(cursor.err("expected ',' or '}' in args")),
                    }
                }
            }
            other => return Err(cursor.err(format!("unknown event field {other:?}"))),
        }
        match cursor.peek() {
            Some(b',') => cursor.pos += 1,
            Some(b'}') => {
                cursor.pos += 1;
                return Ok(raw);
            }
            _ => return Err(cursor.err("expected ',' or '}' in event")),
        }
    }
}

/// The largest `pid`/`tid` the validator accepts (synthetic ids are
/// small; a huge one is hostile input).
const MAX_ID: u64 = u32::MAX as u64;

/// Parse and strictly validate a JSON trace document.
///
/// Beyond JSON well-formedness, this enforces the trace contract:
/// known event kinds only (`X`/`B`/`E`/`C`/`M`), required fields per
/// kind, finite counter values, non-decreasing timestamps in document
/// order, and per-track B/E nesting balance (an `E` with no open `B` on
/// its `(pid, tid)` track is an error; a still-open `B` at the end is
/// legal — the trace was cut mid-slice). Hostile or torn input yields
/// `Err`, never a panic. The golden and differential tests use this as
/// their oracle.
pub fn parse(text: &str) -> Result<ParsedTrace, ParseError> {
    let mut cursor = Cursor {
        bytes: text.as_bytes(),
        pos: 0,
    };
    cursor.expect(b'{')?;
    let mut events: Vec<TraceEvent> = Vec::new();
    let mut meta: Vec<MetaEvent> = Vec::new();
    let mut dropped: Option<u64> = None;
    let mut seen_events = false;
    loop {
        let key = cursor.string()?;
        cursor.expect(b':')?;
        match key.as_str() {
            "displayTimeUnit" => {
                let unit = cursor.string()?;
                if unit != "ms" && unit != "ns" {
                    return Err(cursor.err(format!("unknown displayTimeUnit {unit:?}")));
                }
            }
            "otherData" => {
                cursor.expect(b'{')?;
                loop {
                    let field = cursor.string()?;
                    cursor.expect(b':')?;
                    if field == "droppedEvents" {
                        let raw = cursor.string()?;
                        let n = raw.parse::<u64>().map_err(|_| {
                            cursor.err(format!("droppedEvents is not a count: {raw:?}"))
                        })?;
                        dropped = Some(n);
                    } else {
                        return Err(
                            cursor.err(format!("unknown otherData field {field:?}"))
                        );
                    }
                    match cursor.peek() {
                        Some(b',') => cursor.pos += 1,
                        Some(b'}') => {
                            cursor.pos += 1;
                            break;
                        }
                        _ => return Err(cursor.err("expected ',' or '}' in otherData")),
                    }
                }
            }
            "traceEvents" => {
                seen_events = true;
                cursor.expect(b'[')?;
                if cursor.peek() == Some(b']') {
                    cursor.pos += 1;
                } else {
                    loop {
                        let raw = parse_event(&mut cursor)?;
                        ingest_event(&cursor, raw, &mut events, &mut meta)?;
                        match cursor.peek() {
                            Some(b',') => cursor.pos += 1,
                            Some(b']') => {
                                cursor.pos += 1;
                                break;
                            }
                            _ => {
                                return Err(
                                    cursor.err("expected ',' or ']' in traceEvents")
                                )
                            }
                        }
                    }
                }
            }
            other => return Err(cursor.err(format!("unknown trace field {other:?}"))),
        }
        match cursor.peek() {
            Some(b',') => cursor.pos += 1,
            Some(b'}') => {
                cursor.pos += 1;
                break;
            }
            _ => return Err(cursor.err("expected ',' or '}' at top level")),
        }
    }
    if cursor.peek().is_some() {
        return Err(cursor.err("trailing bytes after document"));
    }
    if !seen_events {
        return Err(cursor.err("document has no traceEvents array"));
    }
    validate(&events)?;
    Ok(ParsedTrace {
        events,
        meta,
        dropped: dropped.unwrap_or(0),
    })
}

/// Convert a raw parsed object into a typed event, enforcing per-kind
/// required fields.
fn ingest_event(
    cursor: &Cursor<'_>,
    raw: RawEvent,
    events: &mut Vec<TraceEvent>,
    meta: &mut Vec<MetaEvent>,
) -> Result<(), ParseError> {
    let ph = raw.ph.as_deref().unwrap_or("");
    let name = raw
        .name
        .ok_or_else(|| cursor.err("event missing name"))?;
    let pid = raw
        .pid
        .filter(|&p| p <= MAX_ID)
        .ok_or_else(|| cursor.err("event missing (or oversized) pid"))? as u32;
    if raw.tid.is_some_and(|t| t > MAX_ID) {
        return Err(cursor.err("oversized tid"));
    }
    if ph == "M" {
        if name != "process_name" && name != "thread_name" {
            return Err(cursor.err(format!("unknown metadata event {name:?}")));
        }
        let display = raw
            .args_name
            .ok_or_else(|| cursor.err("metadata event missing args.name"))?;
        if (name == "thread_name") != raw.tid.is_some() {
            return Err(cursor.err("metadata tid must match thread_name/process_name"));
        }
        meta.push(MetaEvent {
            pid,
            tid: raw.tid.map(|t| t as u32),
            name: display,
        });
        return Ok(());
    }
    let ts_us = raw
        .ts
        .ok_or_else(|| cursor.err(format!("{ph:?} event missing ts")))?;
    let kind = match ph {
        "X" => EventKind::Complete {
            dur_us: raw
                .dur
                .ok_or_else(|| cursor.err("X event missing dur"))?,
        },
        "B" => EventKind::Begin,
        "E" => EventKind::End,
        "C" => EventKind::Counter {
            value: raw
                .value
                .ok_or_else(|| cursor.err("C event missing args.value"))?,
        },
        other => return Err(cursor.err(format!("unknown event kind {other:?}"))),
    };
    let tid = match kind {
        EventKind::Counter { .. } => raw.tid.unwrap_or(0) as u32,
        _ => raw
            .tid
            .ok_or_else(|| cursor.err(format!("{ph:?} event missing tid")))? as u32,
    };
    events.push(TraceEvent {
        name: Cow::Owned(name),
        pid,
        tid,
        ts_us,
        kind,
    });
    Ok(())
}

/// Semantic validation over the parsed events: monotonic timestamps and
/// per-track B/E balance.
fn validate(events: &[TraceEvent]) -> Result<(), ParseError> {
    let mut last_ts = 0u64;
    let mut stacks: Vec<((u32, u32), Vec<&str>)> = Vec::new();
    for (i, event) in events.iter().enumerate() {
        if event.ts_us < last_ts {
            return Err(ParseError::Json {
                offset: i,
                reason: format!(
                    "timestamps go backwards: event {i} at {} after {}",
                    event.ts_us, last_ts
                ),
            });
        }
        last_ts = event.ts_us;
        let key = (event.pid, event.tid);
        match event.kind {
            EventKind::Begin => {
                match stacks.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, stack)) => stack.push(&event.name),
                    None => stacks.push((key, vec![&event.name])),
                }
            }
            EventKind::End => {
                let open = stacks
                    .iter_mut()
                    .find(|(k, _)| *k == key)
                    .and_then(|(_, stack)| stack.pop());
                match open {
                    None => {
                        return Err(ParseError::Json {
                            offset: i,
                            reason: format!(
                                "E event {i} ({}) has no open B on track {key:?}",
                                event.name
                            ),
                        })
                    }
                    Some(opened) if opened != event.name => {
                        return Err(ParseError::Json {
                            offset: i,
                            reason: format!(
                                "E event {i} ({}) crosses open slice {opened:?} on track {key:?}",
                                event.name
                            ),
                        })
                    }
                    Some(_) => {}
                }
            }
            _ => {}
        }
    }
    Ok(())
}

/// Canonicalize a trace for golden comparison: parse (so only valid
/// traces normalize), zero every wall-clock-derived `dur`, and
/// re-render in canonical field order. Two runs of the same
/// deterministic scenario normalize to identical bytes.
pub fn normalize(text: &str) -> Result<String, ParseError> {
    let parsed = parse(text)?;
    let mut buffer = TraceBuffer::new(parsed.events.len().max(1));
    for mut event in parsed.events {
        if let EventKind::Complete { dur_us } = &mut event.kind {
            *dur_us = 0;
        }
        buffer.push(event);
    }
    // Rendering counts no drops here: capacity covers every event and
    // the original document's tally is wall-clock-independent only for
    // unfiltered renders, so the canonical form pins it to zero.
    Ok(render_document(&buffer, None, &parsed.meta))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut ring = TraceBuffer::new(3);
        for i in 0..5u64 {
            ring.push(TraceEvent {
                name: Cow::Borrowed("e"),
                pid: 1,
                tid: 1,
                ts_us: i,
                kind: EventKind::Begin,
            });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        assert_eq!(ring.pushed(), 5);
        let kept: Vec<u64> = ring.iter().map(|e| e.ts_us).collect();
        assert_eq!(kept, vec![2, 3, 4], "oldest evicted first");
    }

    #[test]
    fn recorder_emits_phase_slices_and_counters() {
        let recorder = TraceRecorder::new();
        recorder.trace_set_time_us(8_000_000);
        recorder.observe(RoundPhase::Allocate.metric_name(), 0.25e-3);
        recorder.gauge_set(names::STALE_SERVERS, 2.0);
        recorder.counter_add(names::FAILSAFE_CAPS_TOTAL, 3);
        recorder.counter_add(names::FAILSAFE_CAPS_TOTAL, 1);
        recorder.trace_tree_counter(0, ROOT_BUDGET_W, 1240.0);
        recorder.trace_tree_meta(0, None, "tree 0");
        let parsed = parse(&recorder.render(None)).expect("valid trace");
        assert_eq!(parsed.slice_count("allocate"), 1);
        let tracks = parsed.counter_tracks();
        assert!(tracks.contains(&(PID_PLANE, STALE_SERVERS.to_string())));
        assert!(tracks.contains(&(TREE_PID_BASE, ROOT_BUDGET_W.to_string())));
        let failsafe: Vec<f64> = parsed
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Counter { value } if e.name == FAILSAFE_CUTS => Some(*value),
                _ => None,
            })
            .collect();
        assert_eq!(failsafe, vec![3.0, 4.0], "failsafe track is cumulative");
        assert!(parsed.meta.iter().any(|m| m.name == "tree 0"));
    }

    #[test]
    fn non_finite_counters_are_refused() {
        let recorder = TraceRecorder::new();
        recorder.counter(PID_PLANE, "x", f64::NAN);
        recorder.counter(PID_PLANE, "x", f64::INFINITY);
        assert!(recorder.is_empty());
        // And the parser rejects them if someone crafts such a document.
        let doc = "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"C\",\"ts\":0,\"pid\":1,\"args\":{\"value\":1e999}}]}";
        assert!(parse(doc).is_err());
    }

    #[test]
    fn orphaned_end_events_are_skipped_and_counted() {
        let recorder = TraceRecorder::with_capacity(2);
        recorder.begin_slice(1, 1, "a"); // evicted by the pushes below
        recorder.trace_set_time_us(1);
        recorder.end_slice(1, 1, "a"); // orphaned once "B a" is evicted
        recorder.trace_set_time_us(2);
        recorder.counter(1, "c", 5.0);
        let text = recorder.render(None);
        let parsed = parse(&text).expect("balanced after orphan skip");
        assert_eq!(parsed.events.len(), 1, "only the counter survives");
        // 1 evicted B + 1 orphaned E; everything pushed is accounted for.
        assert_eq!(parsed.dropped, 2);
        assert_eq!(
            parsed.dropped + parsed.events.len() as u64,
            recorder.pushed_events()
        );
    }

    #[test]
    fn last_s_filters_by_logical_time() {
        let recorder = TraceRecorder::new();
        recorder.trace_set_time_us(0);
        recorder.counter(1, "c", 1.0);
        recorder.trace_set_time_us(10_000_000);
        recorder.counter(1, "c", 2.0);
        let all = parse(&recorder.render(None)).expect("full");
        assert_eq!(all.events.len(), 2);
        let tail = parse(&recorder.render(Some(5))).expect("tail");
        assert_eq!(tail.events.len(), 1);
        assert_eq!(tail.dropped, 1, "filtered events are declared dropped");
    }

    #[test]
    fn parse_rejects_unbalanced_and_backwards_documents() {
        let orphan_e = "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"E\",\"ts\":0,\"pid\":1,\"tid\":1}]}";
        assert!(parse(orphan_e).is_err());
        let crossed = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":1},\
            {\"name\":\"b\",\"ph\":\"E\",\"ts\":1,\"pid\":1,\"tid\":1}]}";
        assert!(parse(crossed).is_err());
        let backwards = "{\"traceEvents\":[\
            {\"name\":\"a\",\"ph\":\"X\",\"ts\":5,\"dur\":0,\"pid\":1,\"tid\":1},\
            {\"name\":\"b\",\"ph\":\"X\",\"ts\":4,\"dur\":0,\"pid\":1,\"tid\":1}]}";
        assert!(parse(backwards).is_err());
        let unknown_kind =
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"Q\",\"ts\":0,\"pid\":1,\"tid\":1}]}";
        assert!(parse(unknown_kind).is_err());
        // A still-open B at the cut is legal.
        let open_b = "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":1}]}";
        assert!(parse(open_b).is_ok());
    }

    #[test]
    fn parse_survives_torn_and_hostile_input() {
        let recorder = TraceRecorder::new();
        recorder.trace_set_time_us(1);
        recorder.begin_slice(1, 1, "a");
        recorder.end_slice(1, 1, "a");
        recorder.counter(1, "c", 1.5);
        let text = recorder.render(None);
        assert!(parse(&text).is_ok());
        for cut in 0..text.len() {
            assert!(parse(&text[..cut]).is_err(), "torn at byte {cut}");
        }
        for garbage in ["", "{", "null", "[1,2]", "{\"traceEvents\":[{}]}"] {
            assert!(parse(garbage).is_err(), "accepted {garbage:?}");
        }
    }

    #[test]
    fn normalize_is_idempotent_and_zeroes_durations() {
        let recorder = TraceRecorder::new();
        recorder.trace_set_time_us(3);
        recorder.complete_slice(1, 1, "a", 123);
        let text = recorder.render(None);
        let normal = normalize(&text).expect("normalizes");
        assert!(normal.contains("\"dur\":0"));
        assert!(!normal.contains("\"dur\":123"));
        assert_eq!(normalize(&normal).expect("idempotent"), normal);
    }

    #[test]
    fn forwarding_keeps_the_metrics_registry_live() {
        let registry = Arc::new(super::super::MetricsRegistry::new());
        let recorder =
            TraceRecorder::new().with_forward(registry.clone() as Arc<dyn Recorder>);
        recorder.counter_add(names::ROUNDS_TOTAL, 2);
        recorder.observe(RoundPhase::Sense.metric_name(), 0.5);
        let snap = registry.snapshot();
        assert_eq!(snap.counters[0].value, 2);
        assert_eq!(snap.histograms[0].count, 1);
    }
}
