//! JSON snapshot exporter and a matching minimal parser.
//!
//! [`snapshot`] serializes a [`MetricsSnapshot`] to pretty-printed
//! JSON; [`parse`] reads it back, so the ci.sh smoke can assert the
//! export round-trips losslessly (`parse(snapshot(s)) == s`). The
//! parser is a tiny hand-rolled recursive-descent JSON reader — there
//! is deliberately no serde in this workspace.
//!
//! Non-finite floats are not representable in JSON numbers; they are
//! written as the strings `"+Inf"`, `"-Inf"`, and `"NaN"` and accepted
//! back by the parser. Integers round-trip exactly up to 2^53 (they
//! pass through an `f64`).

use std::fmt::Write as _;

use super::registry::{
    BucketSample, CounterSample, GaugeSample, HistogramSample, MetricsSnapshot,
};
use super::ParseError;

/// The `Content-Type` an HTTP endpoint should declare for [`snapshot`]
/// output.
pub const CONTENT_TYPE: &str = "application/json";

/// Write an `f64` as a JSON value (string-encoding non-finite values).
fn fmt_f64(out: &mut String, value: f64) {
    if value == f64::INFINITY {
        out.push_str("\"+Inf\"");
    } else if value == f64::NEG_INFINITY {
        out.push_str("\"-Inf\"");
    } else if value.is_nan() {
        out.push_str("\"NaN\"");
    } else {
        let _ = write!(out, "{value}");
    }
}

/// Write a JSON string literal with minimal escaping.
fn fmt_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serialize a snapshot to pretty-printed JSON.
pub fn snapshot(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    snapshot_into(&mut out, snap);
    out
}

/// Serialize a snapshot into an existing buffer (appending), so a
/// serving loop can reuse one `String` across exports instead of
/// allocating a fresh document each time.
pub fn snapshot_into(out: &mut String, snap: &MetricsSnapshot) {
    snapshot_with_fields_into(out, &[], snap);
}

/// Like [`snapshot_into`], but with extra top-level string fields
/// rendered (escaped) before the metric arrays — how the serving layer
/// folds its `"policy"` label into `/report` as a genuine JSON field.
/// [`parse`] looks fields up by name, so documents with extras still
/// round-trip.
pub fn snapshot_with_fields_into(
    out: &mut String,
    fields: &[(&str, &str)],
    snap: &MetricsSnapshot,
) {
    out.push('{');
    for (name, value) in fields {
        out.push_str("\n  ");
        fmt_str(out, name);
        out.push_str(": ");
        fmt_str(out, value);
        out.push(',');
    }
    out.push_str("\n  \"counters\": [");
    for (i, c) in snap.counters.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"name\": ");
        fmt_str(out, &c.name);
        let _ = write!(out, ", \"value\": {}}}", c.value);
    }
    out.push_str("\n  ],\n  \"gauges\": [");
    for (i, g) in snap.gauges.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"name\": ");
        fmt_str(out, &g.name);
        out.push_str(", \"value\": ");
        fmt_f64(out, g.value);
        out.push('}');
    }
    out.push_str("\n  ],\n  \"histograms\": [");
    for (i, h) in snap.histograms.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str("    {\"name\": ");
        fmt_str(out, &h.name);
        out.push_str(", \"sum\": ");
        fmt_f64(out, h.sum);
        let _ = write!(out, ", \"count\": {}, \"buckets\": [", h.count);
        for (j, b) in h.buckets.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str("{\"le\": ");
            fmt_f64(out, b.le);
            let _ = write!(out, ", \"cumulative\": {}}}", b.cumulative);
        }
        out.push_str("]}");
    }
    out.push_str("\n  ]\n}\n");
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (via `f64`).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

/// Recursive-descent JSON reader over a byte slice.
struct Reader<'a> {
    /// Input bytes.
    bytes: &'a [u8],
    /// Cursor into `bytes`.
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Build an error at the current cursor.
    fn err(&self, reason: impl Into<String>) -> ParseError {
        ParseError::Json {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    /// Advance past ASCII whitespace.
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    /// Consume `token` or fail.
    fn expect(&mut self, token: &str) -> Result<(), ParseError> {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            Ok(())
        } else {
            Err(self.err(format!("expected {token:?}")))
        }
    }

    /// Parse one value at the cursor.
    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.expect("true").map(|_| Value::Bool(true)),
            Some(b'f') => self.expect("false").map(|_| Value::Bool(false)),
            Some(b'n') => self.expect("null").map(|_| Value::Null),
            Some(_) => self.number(),
            None => Err(self.err("unexpected end of input")),
        }
    }

    /// Parse an object (cursor on `{`).
    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect("{")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(":")?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    /// Parse an array (cursor on `[`).
    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect("[")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    /// Parse a string literal (cursor on the opening quote).
    fn string(&mut self) -> Result<String, ParseError> {
        self.expect("\"")?;
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            s.push(hex);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse a number literal.
    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| {
            matches!(b, b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        }) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| self.err("bad number"))
    }
}

/// Look up a field in a parsed object.
fn field<'v>(obj: &'v [(String, Value)], name: &str, at: &str) -> Result<&'v Value, ParseError> {
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| ParseError::Json {
            offset: 0,
            reason: format!("missing field {name:?} in {at}"),
        })
}

/// Interpret a value as an `f64`, accepting the string-encoded
/// non-finite sentinels.
fn as_f64(value: &Value, at: &str) -> Result<f64, ParseError> {
    match value {
        Value::Num(n) => Ok(*n),
        Value::Str(s) if s == "+Inf" => Ok(f64::INFINITY),
        Value::Str(s) if s == "-Inf" => Ok(f64::NEG_INFINITY),
        Value::Str(s) if s == "NaN" => Ok(f64::NAN),
        _ => Err(ParseError::Json {
            offset: 0,
            reason: format!("expected number in {at}"),
        }),
    }
}

/// Interpret a value as a non-negative integer.
fn as_u64(value: &Value, at: &str) -> Result<u64, ParseError> {
    match value {
        Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        _ => Err(ParseError::Json {
            offset: 0,
            reason: format!("expected unsigned integer in {at}"),
        }),
    }
}

/// Interpret a value as a string.
fn as_str(value: &Value, at: &str) -> Result<String, ParseError> {
    match value {
        Value::Str(s) => Ok(s.clone()),
        _ => Err(ParseError::Json {
            offset: 0,
            reason: format!("expected string in {at}"),
        }),
    }
}

/// Interpret a value as an array of objects.
fn as_objects<'v>(
    value: &'v Value,
    at: &str,
) -> Result<Vec<&'v [(String, Value)]>, ParseError> {
    let Value::Arr(items) = value else {
        return Err(ParseError::Json {
            offset: 0,
            reason: format!("expected array in {at}"),
        });
    };
    items
        .iter()
        .map(|item| match item {
            Value::Obj(fields) => Ok(fields.as_slice()),
            _ => Err(ParseError::Json {
                offset: 0,
                reason: format!("expected object in {at}"),
            }),
        })
        .collect()
}

/// Parse a JSON snapshot produced by [`snapshot`] back into a
/// [`MetricsSnapshot`].
pub fn parse(text: &str) -> Result<MetricsSnapshot, ParseError> {
    let mut reader = Reader {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let root = reader.value()?;
    reader.skip_ws();
    if reader.pos != reader.bytes.len() {
        return Err(reader.err("trailing data"));
    }
    let Value::Obj(root) = root else {
        return Err(ParseError::Json {
            offset: 0,
            reason: "top level must be an object".to_string(),
        });
    };

    let counters = as_objects(field(&root, "counters", "snapshot")?, "counters")?
        .into_iter()
        .map(|obj| {
            Ok(CounterSample {
                name: as_str(field(obj, "name", "counter")?, "counter name")?,
                value: as_u64(field(obj, "value", "counter")?, "counter value")?,
            })
        })
        .collect::<Result<_, ParseError>>()?;

    let gauges = as_objects(field(&root, "gauges", "snapshot")?, "gauges")?
        .into_iter()
        .map(|obj| {
            Ok(GaugeSample {
                name: as_str(field(obj, "name", "gauge")?, "gauge name")?,
                value: as_f64(field(obj, "value", "gauge")?, "gauge value")?,
            })
        })
        .collect::<Result<_, ParseError>>()?;

    let histograms = as_objects(field(&root, "histograms", "snapshot")?, "histograms")?
        .into_iter()
        .map(|obj| {
            let buckets = as_objects(field(obj, "buckets", "histogram")?, "buckets")?
                .into_iter()
                .map(|b| {
                    Ok(BucketSample {
                        le: as_f64(field(b, "le", "bucket")?, "bucket le")?,
                        cumulative: as_u64(
                            field(b, "cumulative", "bucket")?,
                            "bucket cumulative",
                        )?,
                    })
                })
                .collect::<Result<_, ParseError>>()?;
            Ok(HistogramSample {
                name: as_str(field(obj, "name", "histogram")?, "histogram name")?,
                buckets,
                sum: as_f64(field(obj, "sum", "histogram")?, "histogram sum")?,
                count: as_u64(field(obj, "count", "histogram")?, "histogram count")?,
            })
        })
        .collect::<Result<_, ParseError>>()?;

    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
    })
}

#[cfg(test)]
mod tests {
    use super::super::registry::MetricsRegistry;
    use super::super::{Recorder, RoundPhase};
    use super::*;

    #[test]
    fn snapshot_round_trips_exactly() {
        let reg = MetricsRegistry::new();
        reg.counter_add("capmaestro_rounds_total", 41);
        reg.gauge_set("capmaestro_stale_servers", 0.0);
        reg.gauge_set("tricky \"gauge\"\n", -1.25e-7);
        for phase in RoundPhase::ALL {
            reg.observe(phase.metric_name(), 3.3e-5);
        }
        let snap = reg.snapshot();
        let text = snapshot(&snap);
        assert_eq!(parse(&text).expect("round trip"), snap);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = MetricsSnapshot::default();
        assert_eq!(parse(&snapshot(&snap)).expect("round trip"), snap);
    }

    #[test]
    fn non_finite_values_survive() {
        let snap = MetricsSnapshot {
            counters: vec![],
            gauges: vec![GaugeSample {
                name: "g".to_string(),
                value: f64::INFINITY,
            }],
            histograms: vec![],
        };
        let back = parse(&snapshot(&snap)).expect("round trip");
        assert_eq!(back.gauges[0].value, f64::INFINITY);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "[]",
            "{\"counters\": [}",
            "{\"counters\": [], \"gauges\": []}",
            "{\"counters\": [{\"name\": \"x\", \"value\": -1}], \
             \"gauges\": [], \"histograms\": []}",
            "{\"counters\": [], \"gauges\": [], \"histograms\": []} trailing",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }
}
