//! Atomics-backed metrics registry and its snapshot types.
//!
//! The registry keeps three read-mostly maps (counters, gauges,
//! histograms) keyed by `&'static str` metric names. Recording takes a
//! read lock plus one relaxed atomic operation; the write lock is taken
//! only the first time a name is seen, so a warmed registry never
//! allocates on the hot path. `BTreeMap` keeps export order
//! deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use super::Recorder;

/// Default histogram bucket upper bounds, in seconds. Tuned for control
/// round phases: microseconds (small rigs, single phases) up to a few
/// seconds (giant rigs, full simulated steps).
pub const DEFAULT_BUCKETS: &[f64] = &[
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3,
    5e-3, 1e-2, 2.5e-2, 5e-2, 1e-1, 2.5e-1, 5e-1, 1.0, 2.5,
];

/// One histogram's live cells.
#[derive(Debug)]
struct HistogramCell {
    /// Finite bucket upper bounds, ascending.
    bounds: &'static [f64],
    /// Per-bucket (non-cumulative) counts; `bounds.len() + 1` slots, the
    /// last standing in for `+Inf`.
    buckets: Box<[AtomicU64]>,
    /// Bit pattern of the running `f64` sum, updated by CAS loop.
    sum_bits: AtomicU64,
    /// Total number of observations.
    count: AtomicU64,
}

impl HistogramCell {
    /// Fresh zeroed cell over `bounds`.
    fn new(bounds: &'static [f64]) -> Self {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        HistogramCell {
            bounds,
            buckets,
            sum_bits: AtomicU64::new(0f64.to_bits()),
            count: AtomicU64::new(0),
        }
    }

    /// Record one observation.
    fn observe(&self, value: f64) {
        let slot = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut current = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + value).to_bits();
            match self.sum_bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => current = actual,
            }
        }
    }
}

/// Thread-safe metrics registry implementing [`Recorder`].
///
/// Attach one to a `ControlPlane`, `WorkerDeployment`, or
/// `InvariantTracker` (they all take `Arc<dyn Recorder>`), then export
/// with [`snapshot`](MetricsRegistry::snapshot) +
/// [`prometheus::render`](super::prometheus::render) or
/// [`json::snapshot`](super::json::snapshot).
///
/// Snapshots taken while writers are active are weakly consistent: each
/// cell is read atomically but the set of cells is not frozen as one
/// unit. For the in-repo single-writer uses this is exact.
#[derive(Debug)]
pub struct MetricsRegistry {
    /// Bucket bounds handed to newly registered histograms.
    bounds: &'static [f64],
    /// Monotonic counters.
    counters: RwLock<BTreeMap<&'static str, AtomicU64>>,
    /// Gauges, stored as `f64` bit patterns.
    gauges: RwLock<BTreeMap<&'static str, AtomicU64>>,
    /// Fixed-bucket histograms.
    histograms: RwLock<BTreeMap<&'static str, HistogramCell>>,
}

impl MetricsRegistry {
    /// Empty registry using [`DEFAULT_BUCKETS`] for histograms.
    pub fn new() -> Self {
        Self::with_buckets(DEFAULT_BUCKETS)
    }

    /// Empty registry whose histograms use `bounds` (finite, ascending)
    /// as bucket upper bounds; a `+Inf` overflow bucket is implicit.
    pub fn with_buckets(bounds: &'static [f64]) -> Self {
        MetricsRegistry {
            bounds,
            counters: RwLock::new(BTreeMap::new()),
            gauges: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
        }
    }

    /// Copy the current values of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(&name, cell)| CounterSample {
                name: name.to_string(),
                value: cell.load(Ordering::Relaxed),
            })
            .collect();
        let gauges = self
            .gauges
            .read()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(&name, cell)| GaugeSample {
                name: name.to_string(),
                value: f64::from_bits(cell.load(Ordering::Relaxed)),
            })
            .collect();
        let histograms = self
            .histograms
            .read()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(&name, cell)| {
                let mut cumulative = 0u64;
                let buckets = cell
                    .bounds
                    .iter()
                    .enumerate()
                    .map(|(i, &le)| {
                        cumulative += cell.buckets[i].load(Ordering::Relaxed);
                        BucketSample {
                            le,
                            cumulative,
                        }
                    })
                    .collect();
                HistogramSample {
                    name: name.to_string(),
                    buckets,
                    sum: f64::from_bits(cell.sum_bits.load(Ordering::Relaxed)),
                    count: cell.count.load(Ordering::Relaxed),
                }
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder for MetricsRegistry {
    fn enabled(&self) -> bool {
        true
    }

    fn counter_add(&self, name: &'static str, delta: u64) {
        if let Some(cell) = self.counters.read().expect("metrics lock poisoned").get(name) {
            cell.fetch_add(delta, Ordering::Relaxed);
            return;
        }
        self.counters
            .write()
            .expect("metrics lock poisoned")
            .entry(name)
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(delta, Ordering::Relaxed);
    }

    fn gauge_set(&self, name: &'static str, value: f64) {
        if let Some(cell) = self.gauges.read().expect("metrics lock poisoned").get(name) {
            cell.store(value.to_bits(), Ordering::Relaxed);
            return;
        }
        self.gauges
            .write()
            .expect("metrics lock poisoned")
            .entry(name)
            .or_insert_with(|| AtomicU64::new(0))
            .store(value.to_bits(), Ordering::Relaxed);
    }

    fn observe(&self, name: &'static str, value: f64) {
        if let Some(cell) = self
            .histograms
            .read()
            .expect("metrics lock poisoned")
            .get(name)
        {
            cell.observe(value);
            return;
        }
        self.histograms
            .write()
            .expect("metrics lock poisoned")
            .entry(name)
            .or_insert_with(|| HistogramCell::new(self.bounds))
            .observe(value);
    }
}

/// One counter's exported value.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Full metric name (may embed a label set).
    pub name: String,
    /// Current cumulative value.
    pub value: u64,
}

/// One gauge's exported value.
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    /// Full metric name (may embed a label set).
    pub name: String,
    /// Latest value set.
    pub value: f64,
}

/// One histogram bucket in cumulative (Prometheus) form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BucketSample {
    /// Upper bound of the bucket (finite; `+Inf` is implied by
    /// [`HistogramSample::count`]).
    pub le: f64,
    /// Observations with value ≤ `le`.
    pub cumulative: u64,
}

/// One histogram's exported state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSample {
    /// Full metric name (may embed a label set).
    pub name: String,
    /// Cumulative finite buckets, ascending by bound.
    pub buckets: Vec<BucketSample>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Total observation count (the implicit `+Inf` bucket).
    pub count: u64,
}

/// Point-in-time copy of a registry, ready for export. Produced by
/// [`MetricsRegistry::snapshot`]; consumed by the `prometheus` and
/// `json` exporters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    pub counters: Vec<CounterSample>,
    /// All gauges, sorted by name.
    pub gauges: Vec<GaugeSample>,
    /// All histograms, sorted by name.
    pub histograms: Vec<HistogramSample>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_register_once() {
        let reg = MetricsRegistry::new();
        reg.counter_add("a_total", 2);
        reg.counter_add("a_total", 3);
        reg.counter_add("b_total", 0);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 2);
        assert_eq!(snap.counters[0].name, "a_total");
        assert_eq!(snap.counters[0].value, 5);
        assert_eq!(snap.counters[1].value, 0);
    }

    #[test]
    fn gauges_keep_last_value() {
        let reg = MetricsRegistry::new();
        reg.gauge_set("g", 1.5);
        reg.gauge_set("g", -2.25);
        assert_eq!(reg.snapshot().gauges[0].value, -2.25);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_count_includes_overflow() {
        let reg = MetricsRegistry::with_buckets(&[1.0, 2.0]);
        for v in [0.5, 0.5, 1.5, 10.0] {
            reg.observe("h", v);
        }
        let snap = reg.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.buckets.len(), 2);
        assert_eq!(h.buckets[0], BucketSample { le: 1.0, cumulative: 2 });
        assert_eq!(h.buckets[1], BucketSample { le: 2.0, cumulative: 3 });
        assert_eq!(h.count, 4);
        assert!((h.sum - 12.5).abs() < 1e-12);
    }

    #[test]
    fn boundary_observation_lands_in_lower_bucket() {
        let reg = MetricsRegistry::with_buckets(&[1.0, 2.0]);
        reg.observe("h", 1.0);
        let snap = reg.snapshot();
        assert_eq!(snap.histograms[0].buckets[0].cumulative, 1);
    }

    #[test]
    fn snapshot_order_is_deterministic() {
        let reg = MetricsRegistry::new();
        reg.counter_add("z", 1);
        reg.counter_add("a", 1);
        reg.counter_add("m", 1);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["a", "m", "z"]);
    }

    #[test]
    fn registry_is_shareable_across_threads() {
        let reg = std::sync::Arc::new(MetricsRegistry::new());
        reg.counter_add("t", 0);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let reg = std::sync::Arc::clone(&reg);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        reg.counter_add("t", 1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.snapshot().counters[0].value, 4000);
    }
}
