//! In-process observability for the control plane: a [`Recorder`] sink
//! trait, an atomics-backed [`MetricsRegistry`], span-style
//! [`PhaseTimer`]s for the six round phases, and two text exporters
//! ([`prometheus::render`] and [`json::snapshot`]).
//!
//! Design constraints (see DESIGN.md "Observability"):
//!
//! - **No new dependencies.** Counters and gauges are `AtomicU64`s,
//!   histograms fixed-bucket atomic arrays, and both exporters are
//!   hand-rolled text writers with matching validators/parsers.
//! - **Free when off.** The default [`NullRecorder`] reports
//!   `enabled() == false`; instrumentation sites skip clock reads and
//!   derived-stat computation entirely, keeping the round hot path
//!   allocation-free and bit-identical (the `alloc` bench smoke and the
//!   sim `observability` differential test both enforce this).
//! - **Cheap when on.** The registry takes one read lock plus one
//!   relaxed atomic op per record; it allocates only the first time a
//!   metric name is registered, so a warmed registry keeps the hot path
//!   allocation-free too.
//!
//! Metric names are `&'static str` and may carry a fixed label set
//! inline, e.g. `capmaestro_round_phase_seconds{phase="sense"}`. The
//! Prometheus renderer splits the base name at `{` when emitting
//! `# TYPE` lines and merges the histogram `le` label into an existing
//! label set; the JSON exporter passes names through verbatim.

#![deny(clippy::missing_docs_in_private_items)]

pub mod json;
pub mod prometheus;
mod registry;
pub mod trace;

use std::error::Error;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

pub use registry::{
    BucketSample, CounterSample, GaugeSample, HistogramSample, MetricsRegistry,
    MetricsSnapshot, DEFAULT_BUCKETS,
};

/// Sink for instrumentation events.
///
/// Implementations must be cheap and non-blocking: they are called from
/// the control-round hot path. The two in-repo implementations are
/// [`NullRecorder`] (drops everything, `enabled() == false`) and
/// [`MetricsRegistry`] (atomics behind a read-mostly lock).
pub trait Recorder: fmt::Debug + Send + Sync {
    /// Whether events are actually being kept. Instrumentation sites use
    /// this to skip *preparing* data for the recorder (reading clocks,
    /// walking trees for counts) — the `counter_add`/`observe` calls
    /// themselves are unconditional no-ops when disabled.
    fn enabled(&self) -> bool;

    /// Add `delta` to the monotonically increasing counter `name`.
    fn counter_add(&self, name: &'static str, delta: u64);

    /// Set the gauge `name` to `value`, replacing the previous value.
    fn gauge_set(&self, name: &'static str, value: f64);

    /// Record one observation of `value` into the histogram `name`.
    fn observe(&self, name: &'static str, value: f64);

    /// Whether timeline (trace) events are being kept. Emission sites
    /// use this — not [`Recorder::enabled`] — to gate the per-tree walk
    /// that produces counter tracks, so a metrics-only recorder pays
    /// nothing for the trace seam. Defaults to `false`; only
    /// [`trace::TraceRecorder`] overrides it.
    fn trace_enabled(&self) -> bool {
        false
    }

    /// Publish the current logical time in microseconds; subsequent
    /// trace events are stamped with it. The sim engine calls this once
    /// per simulated second so traces are deterministic. No-op by
    /// default.
    fn trace_set_time_us(&self, _now_us: u64) {}

    /// Sample counter track `track` for control tree `tree` (e.g. root
    /// budget, allocated budget, measured power). No-op by default.
    fn trace_tree_counter(&self, _tree: u32, _track: &'static str, _value: f64) {}

    /// Name control tree `tree`'s timeline process (`thread: None`) or
    /// one of its rack lanes (`thread: Some(tid)`). Implementations
    /// deduplicate, so emitters may re-announce every round. No-op by
    /// default.
    fn trace_tree_meta(&self, _tree: u32, _thread: Option<u32>, _name: &str) {}
}

/// The default recorder: keeps nothing, costs nothing.
///
/// Every method is an empty body and `enabled()` is `false`, so
/// instrumented code paths degenerate to a virtual call per site and
/// never read the clock. This is what keeps the default hot path
/// bit-identical to the pre-instrumentation pipeline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn counter_add(&self, _name: &'static str, _delta: u64) {}

    fn gauge_set(&self, _name: &'static str, _value: f64) {}

    fn observe(&self, _name: &'static str, _value: f64) {}
}

/// Convenience constructor for the shared default recorder handle used
/// by `PlaneConfig`/`DeploymentConfig` defaults.
pub fn null_recorder() -> Arc<dyn Recorder> {
    Arc::new(NullRecorder)
}

/// The six phases of a control round, in pipeline order.
///
/// `sense` covers telemetry delivery and plausibility screening
/// (`ControlPlane::record_snapshots`); the remaining five partition
/// `ControlPlane::round` itself. Each phase has a dedicated histogram
/// series under [`names::ROUND_PHASE_SECONDS`], labelled by phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoundPhase {
    /// Telemetry delivery + plausibility screening (1 Hz sampling).
    Sense,
    /// Staleness bookkeeping and per-server demand estimation.
    Estimate,
    /// Tree refresh: leaf updates and dirty-tracked re-summarization.
    Gather,
    /// Budget allocation down the control trees (SPO pass 1 when SPO is
    /// enabled, the plain policy pass otherwise).
    Allocate,
    /// Stranded-power detection and the SPO reallocation pass.
    Spo,
    /// Cap enforcement: per-supply budgets into per-server DC caps.
    Enforce,
}

impl RoundPhase {
    /// All six phases in pipeline order.
    pub const ALL: [RoundPhase; 6] = [
        RoundPhase::Sense,
        RoundPhase::Estimate,
        RoundPhase::Gather,
        RoundPhase::Allocate,
        RoundPhase::Spo,
        RoundPhase::Enforce,
    ];

    /// The phase's label value (the `phase="…"` string).
    pub fn label(self) -> &'static str {
        match self {
            RoundPhase::Sense => "sense",
            RoundPhase::Estimate => "estimate",
            RoundPhase::Gather => "gather",
            RoundPhase::Allocate => "allocate",
            RoundPhase::Spo => "spo",
            RoundPhase::Enforce => "enforce",
        }
    }

    /// The full labelled histogram series name for this phase.
    pub fn metric_name(self) -> &'static str {
        match self {
            RoundPhase::Sense => "capmaestro_round_phase_seconds{phase=\"sense\"}",
            RoundPhase::Estimate => "capmaestro_round_phase_seconds{phase=\"estimate\"}",
            RoundPhase::Gather => "capmaestro_round_phase_seconds{phase=\"gather\"}",
            RoundPhase::Allocate => "capmaestro_round_phase_seconds{phase=\"allocate\"}",
            RoundPhase::Spo => "capmaestro_round_phase_seconds{phase=\"spo\"}",
            RoundPhase::Enforce => "capmaestro_round_phase_seconds{phase=\"enforce\"}",
        }
    }
}

/// Span-style timer: starts a clock on construction (only when the
/// recorder is enabled) and records the elapsed seconds into the named
/// histogram when dropped.
///
/// With a disabled recorder the timer never touches the clock, so the
/// instrumented code path stays bit-identical and free.
#[derive(Debug)]
#[must_use = "the span is recorded when the timer is dropped"]
pub struct PhaseTimer<'a> {
    /// Where the elapsed time is recorded on drop.
    recorder: &'a dyn Recorder,
    /// Histogram series the span is recorded into.
    name: &'static str,
    /// Span start; `None` when the recorder is disabled.
    start: Option<Instant>,
}

impl<'a> PhaseTimer<'a> {
    /// Start a span over `name`. Reads the clock only if
    /// `recorder.enabled()`.
    pub fn start(recorder: &'a dyn Recorder, name: &'static str) -> Self {
        let start = recorder.enabled().then(Instant::now);
        PhaseTimer {
            recorder,
            name,
            start,
        }
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            self.recorder.observe(self.name, start.elapsed().as_secs_f64());
        }
    }
}

/// Errors from the exporter validators/parsers
/// ([`prometheus::validate`] and [`json::parse`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line of Prometheus text exposition did not match the grammar.
    Exposition {
        /// 1-based line number of the offending line.
        line: usize,
        /// What failed to parse.
        reason: String,
    },
    /// A JSON snapshot was malformed.
    Json {
        /// Byte offset where parsing failed.
        offset: usize,
        /// What failed to parse.
        reason: String,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Exposition { line, reason } => {
                write!(f, "exposition line {line}: {reason}")
            }
            ParseError::Json { offset, reason } => {
                write!(f, "json offset {offset}: {reason}")
            }
        }
    }
}

impl Error for ParseError {}

/// Canonical metric names. Everything is prefixed `capmaestro_`;
/// counters end in `_total`, histograms carry their unit (`_seconds`),
/// and gauges name the quantity directly.
pub mod names {
    /// Counter: control rounds completed (`ControlPlane::round`).
    pub const ROUNDS_TOTAL: &str = "capmaestro_rounds_total";
    /// Histogram base name for per-phase round timings; the actual
    /// series carry a `phase` label (see
    /// [`RoundPhase::metric_name`](super::RoundPhase::metric_name)).
    pub const ROUND_PHASE_SECONDS: &str = "capmaestro_round_phase_seconds";
    /// Gauge: servers currently past the staleness threshold.
    pub const STALE_SERVERS: &str = "capmaestro_stale_servers";
    /// Counter: fail-safe cap enforcements on stale servers.
    pub const FAILSAFE_CAPS_TOTAL: &str = "capmaestro_failsafe_caps_total";
    /// Gauge: stranded watts reclaimed by SPO in the latest round.
    pub const STRANDED_WATTS_RECLAIMED: &str = "capmaestro_stranded_watts_reclaimed";
    /// Counter: tree nodes (re-)summarized during gather.
    pub const TREE_NODES_SUMMARIZED_TOTAL: &str = "capmaestro_tree_nodes_summarized_total";
    /// Counter: tree nodes skipped by dirty-tracking during gather.
    pub const TREE_NODES_DIRTY_SKIPPED_TOTAL: &str =
        "capmaestro_tree_nodes_dirty_skipped_total";
    /// Counter: rack workers respawned after a death.
    pub const WORKER_RESPAWNS_TOTAL: &str = "capmaestro_worker_respawns_total";
    /// Counter: distributed gathers that hit the deadline with answers
    /// still missing.
    pub const WORKER_GATHER_TIMEOUTS_TOTAL: &str =
        "capmaestro_worker_gather_timeouts_total";
    /// Gauge: metric sets cut to fail-safe demand in the latest
    /// distributed round.
    pub const WORKER_FAILSAFE_CUTS: &str = "capmaestro_worker_failsafe_cuts";
    /// Counter: simulated seconds stepped by `sim::Engine`.
    pub const SIM_STEPS_TOTAL: &str = "capmaestro_sim_steps_total";
    /// Histogram: wall time per simulated second (steps/sec is
    /// `count / sum`).
    pub const SIM_STEP_SECONDS: &str = "capmaestro_sim_step_seconds";
    /// Counter: telemetry/feed fault events applied by the engine.
    pub const SIM_FAULT_EVENTS_TOTAL: &str = "capmaestro_sim_fault_events_total";
    /// Counter: invariant violations recorded by `audit::InvariantTracker`.
    pub const INVARIANT_VIOLATIONS_TOTAL: &str =
        "capmaestro_invariant_violations_total";
    /// Counter: HTTP requests accepted by the serving subsystem
    /// (`capmaestro-serve`), across all endpoints.
    pub const SERVE_REQUESTS_TOTAL: &str = "capmaestro_serve_requests_total";
    /// Counter: HTTP requests answered with a 4xx status (unknown path,
    /// wrong method, malformed body, out-of-bounds budget).
    pub const SERVE_CLIENT_ERRORS_TOTAL: &str =
        "capmaestro_serve_client_errors_total";
    /// Counter: accepted `POST /budget` updates staged for the next
    /// round boundary.
    pub const SERVE_BUDGET_UPDATES_TOTAL: &str =
        "capmaestro_serve_budget_updates_total";
    /// Counter: HTTP worker threads respawned after a handler panic.
    pub const SERVE_WORKER_RESPAWNS_TOTAL: &str =
        "capmaestro_serve_worker_respawns_total";
    /// Counter: operator events appended to the oplog (idempotent
    /// replays not counted).
    pub const SERVE_OPLOG_APPENDS_TOTAL: &str =
        "capmaestro_serve_oplog_appends_total";
    /// Counter: reconciliation actions applied to converge the live
    /// plane onto the declared state (budget stages, priority updates,
    /// power flips, allocator switches).
    pub const SERVE_RECONCILE_ACTIONS_TOTAL: &str =
        "capmaestro_serve_reconcile_actions_total";
    /// Counter: times a rack agent re-established its outbound
    /// connection to the room controller (first connect not counted).
    pub const AGENT_RECONNECTS_TOTAL: &str = "capmaestro_agent_reconnects_total";
    /// Histogram: heartbeat round-trip time measured by a rack agent.
    pub const AGENT_HEARTBEAT_RTT_SECONDS: &str =
        "capmaestro_agent_heartbeat_rtt_seconds";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled_and_inert() {
        let r = NullRecorder;
        assert!(!r.enabled());
        r.counter_add("x", 1);
        r.gauge_set("y", 1.0);
        r.observe("z", 1.0);
    }

    #[test]
    fn phase_timer_skips_clock_when_disabled() {
        let r = NullRecorder;
        let t = PhaseTimer::start(&r, names::SIM_STEP_SECONDS);
        assert!(t.start.is_none());
    }

    #[test]
    fn phase_timer_records_on_drop_when_enabled() {
        let reg = MetricsRegistry::new();
        {
            let _t = PhaseTimer::start(&reg, RoundPhase::Sense.metric_name());
        }
        let snap = reg.snapshot();
        let h = &snap.histograms[0];
        assert_eq!(h.name, RoundPhase::Sense.metric_name());
        assert_eq!(h.count, 1);
        assert!(h.sum >= 0.0);
    }

    #[test]
    fn phase_names_cover_all_six_phases() {
        assert_eq!(RoundPhase::ALL.len(), 6);
        for phase in RoundPhase::ALL {
            assert!(phase.metric_name().starts_with(names::ROUND_PHASE_SECONDS));
            assert!(phase.metric_name().contains(phase.label()));
        }
    }

    #[test]
    fn parse_error_displays_lowercase() {
        let e = ParseError::Exposition {
            line: 3,
            reason: "bad name".to_string(),
        };
        let msg = e.to_string();
        assert!(msg.starts_with("exposition line 3"));
        assert!(!msg.ends_with('.'));
    }
}
