//! Prometheus text-exposition rendering and a line-grammar validator.
//!
//! [`render`] produces exposition format 0.0.4 text: one `# TYPE`
//! comment per metric family followed by its samples, histograms
//! expanded into cumulative `_bucket{le=…}` series plus `_sum` and
//! `_count`. [`validate`] checks that every line of a rendered page
//! matches the exposition grammar (names, label sets, float values) —
//! it is what `examples/observability.rs` and the ci.sh smoke gate on.

use std::fmt::Write as _;

use super::registry::MetricsSnapshot;
use super::ParseError;

/// The `Content-Type` an HTTP scrape endpoint should declare for
/// [`render`] output (text exposition format 0.0.4).
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Split a full metric name into its base name and the inline label
/// body, e.g. `m{phase="sense"}` → `("m", Some("phase=\"sense\""))`.
fn split_name(full: &str) -> (&str, Option<&str>) {
    match full.find('{') {
        Some(open) if full.ends_with('}') => {
            (&full[..open], Some(&full[open + 1..full.len() - 1]))
        }
        _ => (full, None),
    }
}

/// Format a float the way Prometheus expects (`+Inf`/`-Inf`/`NaN` for
/// the non-finite values, shortest round-trip decimal otherwise).
fn fmt_value(value: f64) -> String {
    if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if value.is_nan() {
        "NaN".to_string()
    } else {
        format!("{value}")
    }
}

/// Append a `# TYPE` line the first time each family is seen. Input
/// samples are name-sorted, so families are adjacent and one `last`
/// slot suffices.
fn type_line<'a>(
    out: &mut String,
    last: &mut Option<&'a str>,
    base: &'a str,
    kind: &str,
) {
    if *last != Some(base) {
        let _ = writeln!(out, "# TYPE {base} {kind}");
        *last = Some(base);
    }
}

/// Render a snapshot as Prometheus text exposition.
pub fn render(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    render_into(&mut out, snapshot);
    out
}

/// Render a snapshot into an existing buffer (appending), so a serving
/// loop can reuse one `String` across scrapes instead of allocating a
/// fresh page each time.
pub fn render_into(out: &mut String, snapshot: &MetricsSnapshot) {
    let mut last: Option<&str> = None;
    for counter in &snapshot.counters {
        let (base, _) = split_name(&counter.name);
        type_line(out, &mut last, base, "counter");
        let _ = writeln!(out, "{} {}", counter.name, counter.value);
    }

    let mut last: Option<&str> = None;
    for gauge in &snapshot.gauges {
        let (base, _) = split_name(&gauge.name);
        type_line(out, &mut last, base, "gauge");
        let _ = writeln!(out, "{} {}", gauge.name, fmt_value(gauge.value));
    }

    let mut last: Option<&str> = None;
    for hist in &snapshot.histograms {
        let (base, labels) = split_name(&hist.name);
        type_line(out, &mut last, base, "histogram");
        let prefix = match labels {
            Some(body) => format!("{body},"),
            None => String::new(),
        };
        for bucket in &hist.buckets {
            let _ = writeln!(
                out,
                "{base}_bucket{{{prefix}le=\"{}\"}} {}",
                fmt_value(bucket.le),
                bucket.cumulative
            );
        }
        let _ = writeln!(out, "{base}_bucket{{{prefix}le=\"+Inf\"}} {}", hist.count);
        let suffix_labels = match labels {
            Some(body) => format!("{{{body}}}"),
            None => String::new(),
        };
        let _ = writeln!(out, "{base}_sum{suffix_labels} {}", fmt_value(hist.sum));
        let _ = writeln!(out, "{base}_count{suffix_labels} {}", hist.count);
    }
}

/// Whether `name` matches the metric-name regex
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Whether `name` matches the label-name regex `[a-zA-Z_][a-zA-Z0-9_]*`.
fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Consume a label body `key="value",…` from `rest` up to the closing
/// `}`; returns the remainder after `}` or a reason string.
fn scan_labels(rest: &str) -> Result<&str, String> {
    let mut s = rest;
    loop {
        let eq = s.find('=').ok_or("label without '='")?;
        if !valid_label_name(&s[..eq]) {
            return Err(format!("bad label name {:?}", &s[..eq]));
        }
        s = &s[eq + 1..];
        if !s.starts_with('"') {
            return Err("label value not quoted".to_string());
        }
        s = &s[1..];
        // Scan the quoted value, honouring \\ \" \n escapes.
        let mut escaped = false;
        let mut end = None;
        for (i, c) in s.char_indices() {
            if escaped {
                if !matches!(c, '\\' | '"' | 'n') {
                    return Err(format!("bad escape '\\{c}' in label value"));
                }
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                end = Some(i);
                break;
            }
        }
        let end = end.ok_or("unterminated label value")?;
        s = &s[end + 1..];
        if let Some(after) = s.strip_prefix(',') {
            s = after;
        } else if let Some(after) = s.strip_prefix('}') {
            return Ok(after);
        } else {
            return Err("expected ',' or '}' after label".to_string());
        }
    }
}

/// Validate one sample line (`name[{labels}] value [timestamp]`).
fn validate_sample(line: &str) -> Result<(), String> {
    let name_end = line
        .find(|c: char| c == '{' || c.is_ascii_whitespace())
        .ok_or("missing value")?;
    if !valid_metric_name(&line[..name_end]) {
        return Err(format!("bad metric name {:?}", &line[..name_end]));
    }
    let mut rest = &line[name_end..];
    if let Some(body) = rest.strip_prefix('{') {
        rest = scan_labels(body)?;
    }
    let mut parts = rest.split_ascii_whitespace();
    let value = parts.next().ok_or("missing value")?;
    let value_ok = matches!(value, "+Inf" | "-Inf" | "NaN")
        || value.parse::<f64>().is_ok();
    if !value_ok {
        return Err(format!("bad sample value {value:?}"));
    }
    if let Some(ts) = parts.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("bad timestamp {ts:?}"));
        }
    }
    if parts.next().is_some() {
        return Err("trailing tokens after timestamp".to_string());
    }
    Ok(())
}

/// Validate one `# TYPE name kind` comment.
fn validate_type_comment(line: &str) -> Result<(), String> {
    let mut parts = line.split_ascii_whitespace();
    let name = parts.next().ok_or("missing family name")?;
    if !valid_metric_name(name) {
        return Err(format!("bad family name {name:?}"));
    }
    let kind = parts.next().ok_or("missing family type")?;
    if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
        return Err(format!("bad family type {kind:?}"));
    }
    if parts.next().is_some() {
        return Err("trailing tokens after family type".to_string());
    }
    Ok(())
}

/// Check that every line of `text` matches the Prometheus text
/// exposition grammar. Returns the number of sample (non-comment,
/// non-blank) lines, or the first offending line.
pub fn validate(text: &str) -> Result<usize, ParseError> {
    let mut samples = 0;
    for (i, line) in text.lines().enumerate() {
        let outcome = if line.trim().is_empty() {
            Ok(())
        } else if let Some(body) = line.strip_prefix("# TYPE ") {
            validate_type_comment(body)
        } else if line.starts_with('#') {
            // HELP and free-form comments are unconstrained.
            Ok(())
        } else {
            samples += 1;
            validate_sample(line)
        };
        if let Err(reason) = outcome {
            return Err(ParseError::Exposition {
                line: i + 1,
                reason,
            });
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::super::registry::MetricsRegistry;
    use super::super::{RoundPhase, Recorder};
    use super::*;

    /// A registry with one of each metric kind, including a labelled
    /// histogram.
    fn sample_registry() -> MetricsRegistry {
        let reg = MetricsRegistry::with_buckets(&[0.001, 0.1]);
        reg.counter_add("capmaestro_rounds_total", 3);
        reg.gauge_set("capmaestro_stale_servers", 2.0);
        reg.observe(RoundPhase::Sense.metric_name(), 0.0005);
        reg.observe(RoundPhase::Sense.metric_name(), 5.0);
        reg.observe("plain_hist_seconds", 0.05);
        reg
    }

    #[test]
    fn render_emits_types_buckets_sum_count() {
        let text = render(&sample_registry().snapshot());
        assert!(text.contains("# TYPE capmaestro_rounds_total counter"));
        assert!(text.contains("capmaestro_rounds_total 3"));
        assert!(text.contains("# TYPE capmaestro_stale_servers gauge"));
        assert!(text.contains("capmaestro_stale_servers 2"));
        assert!(text.contains("# TYPE capmaestro_round_phase_seconds histogram"));
        assert!(text.contains(
            "capmaestro_round_phase_seconds_bucket{phase=\"sense\",le=\"0.001\"} 1"
        ));
        assert!(text.contains(
            "capmaestro_round_phase_seconds_bucket{phase=\"sense\",le=\"+Inf\"} 2"
        ));
        assert!(text.contains("capmaestro_round_phase_seconds_sum{phase=\"sense\"}"));
        assert!(text.contains("capmaestro_round_phase_seconds_count{phase=\"sense\"} 2"));
        assert!(text.contains("plain_hist_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("plain_hist_seconds_count 1"));
    }

    #[test]
    fn rendered_output_validates() {
        let text = render(&sample_registry().snapshot());
        let samples = validate(&text).expect("rendered page must parse");
        // counter + gauge + 2 histograms × (2 buckets + Inf + sum + count)
        assert_eq!(samples, 2 + 2 * 5);
    }

    #[test]
    fn validate_rejects_bad_lines() {
        for bad in [
            "9leading_digit 1",
            "name{unterminated=\"x} 1",
            "name{k=\"v\"} not_a_number",
            "name 1 2 3",
            "# TYPE name spaceship",
            "name{2bad=\"v\"} 1",
        ] {
            assert!(validate(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn validate_accepts_escapes_comments_and_timestamps() {
        let page = "# HELP x free text here\n\
                    # arbitrary comment\n\
                    x{l=\"a\\\"b\\\\c\\n\"} +Inf 1700000000\n\
                    y -12.5\n";
        assert_eq!(validate(page), Ok(2));
    }

    #[test]
    fn non_finite_values_render_prometheus_style() {
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_value(f64::NAN), "NaN");
        assert_eq!(fmt_value(0.25), "0.25");
    }
}
