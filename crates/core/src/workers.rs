//! Distributed rack-/room-worker deployment of the control plane
//! (paper §5).
//!
//! The production CapMaestro prototype groups controllers into *worker VMs*:
//! rack-level workers own the capping controllers and the lowest (CDU-level)
//! shifting controllers; a room-level worker owns everything above, up to
//! the contractual budget. Each control period, priority-summarized metrics
//! flow rack → room and budgets flow room → rack.
//!
//! This module reproduces that deployment behind a [`Transport`] seam. The
//! default [`ChannelTransport`] runs one OS thread per rack worker with
//! crossbeam channels as the transport; `capmaestro-serve` provides a
//! socket transport where each rack worker is a separate OS process
//! connecting outbound to the room controller, speaking the [`crate::wire`]
//! codec. The *cut* between room and rack workers is the set of leaf-parent
//! nodes of each control tree (the CDU-level shifting controllers).
//! Decisions are identical to the synchronous [`crate::plane::ControlPlane`]
//! running the same policy without SPO — a property the tests assert — but
//! sensing, metrics computation, and cap enforcement run concurrently per
//! rack, and identically across transports:
//!
//! - the shared rack-side math lives in [`RackWorker`], used verbatim by
//!   the channel threads and the agent binary;
//! - the room waits for [`UpMsg::Enforced`] acks before the world advances,
//!   so stepping strictly follows enforcement on every transport;
//! - fail-safe metrics come from a spawn-time [`LeafStatic`] table instead
//!   of live farm reads, so a room controller without farm access budgets
//!   a partitioned rack exactly like the in-process deployment.

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use capmaestro_topology::{Priority, ServerId, SupplyIndex};
use capmaestro_units::{Ratio, Seconds, Watts};

use crate::budget::{split_budget, split_budget_into, SplitScratch};
use crate::capping::CappingController;
use crate::estimator::DemandEstimator;
use crate::metrics::{LeafInput, PriorityMetrics};
use crate::obs::{names, null_recorder, Recorder};
use crate::policy::{CappingPolicy, NodeContext, PolicyKind, PriorityVisibility};
use crate::tree::ControlTree;

/// Identifies a cut node: `(tree index, spec node index)`.
pub type CutId = (usize, usize);

/// Tunables of the distributed deployment, passed to
/// [`WorkerDeployment::spawn`]. Real deployments tune these against their
/// control period; tests shrink them to keep fault scenarios fast.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// How long the room worker waits for rack metrics each round before
    /// budgeting from stale data. Also bounds the wait for
    /// [`UpMsg::Enforced`] acks after budgets go out.
    pub gather_timeout: Duration,
    /// Base delay between [`WorkerDeployment::respawn_worker`] attempts
    /// for the same worker; doubles per consecutive attempt (capped at
    /// `base × 2⁶`) until the worker reports again.
    pub respawn_backoff: Duration,
    /// Consecutive rounds a cut node may miss reporting before the room
    /// worker stops trusting its frozen metrics and budgets it from
    /// fail-safe metrics (every leaf at its `cap_min`) instead. Rounds
    /// 1..N are the stale-hold bridge.
    pub stale_after_rounds: u64,
    /// How long [`WorkerDeployment::advance`] waits for the transport to
    /// finish stepping the simulated world. Irrelevant for the in-process
    /// transport (stepping is synchronous); bounds the wait for
    /// [`UpMsg::Advanced`] acks over sockets.
    pub advance_timeout: Duration,
    /// Where the deployment reports its respawn / gather-timeout counters
    /// and fail-safe-cut gauge. Defaults to [`NullRecorder`]
    /// (no-op); attach a [`MetricsRegistry`] to export.
    ///
    /// [`NullRecorder`]: crate::obs::NullRecorder
    /// [`MetricsRegistry`]: crate::obs::MetricsRegistry
    pub recorder: Arc<dyn Recorder>,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            gather_timeout: Duration::from_millis(500),
            respawn_backoff: Duration::from_millis(500),
            stale_after_rounds: 3,
            advance_timeout: Duration::from_secs(5),
            recorder: null_recorder(),
        }
    }
}

impl PartialEq for DeploymentConfig {
    fn eq(&self, other: &Self) -> bool {
        self.gather_timeout == other.gather_timeout
            && self.respawn_backoff == other.respawn_backoff
            && self.stale_after_rounds == other.stale_after_rounds
            && self.advance_timeout == other.advance_timeout
            && Arc::ptr_eq(&self.recorder, &other.recorder)
    }
}

impl DeploymentConfig {
    /// Returns the config with the gather timeout replaced.
    #[must_use]
    pub fn with_gather_timeout(mut self, timeout: Duration) -> Self {
        self.gather_timeout = timeout;
        self
    }

    /// Returns the config with the respawn backoff base replaced.
    #[must_use]
    pub fn with_respawn_backoff(mut self, backoff: Duration) -> Self {
        self.respawn_backoff = backoff;
        self
    }

    /// Returns the config with the stale-hold round budget replaced.
    #[must_use]
    pub fn with_stale_after_rounds(mut self, rounds: u64) -> Self {
        self.stale_after_rounds = rounds;
        self
    }

    /// Returns the config with the advance timeout replaced.
    #[must_use]
    pub fn with_advance_timeout(mut self, timeout: Duration) -> Self {
        self.advance_timeout = timeout;
        self
    }

    /// Returns the config with the metrics recorder replaced.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }
}

/// A farm shared between rack workers, guarded by a read-write lock —
/// the stand-in for the IPMI transport to real hardware.
pub type SharedFarm = Arc<RwLock<crate::plane::Farm>>;

/// Wraps a [`crate::plane::Farm`] for sharing with rack workers.
pub fn shared_farm(farm: crate::plane::Farm) -> SharedFarm {
    Arc::new(RwLock::new(farm))
}

/// Rack → room messages. Public because the socket transport serializes
/// them with [`crate::wire`]; the channel transport sends them as-is.
#[derive(Debug, Clone, PartialEq)]
pub enum UpMsg {
    /// First message on a socket connection: which worker this is.
    /// Channel workers never send it (their identity is their channel).
    Hello {
        /// The connecting worker's index.
        worker: usize,
        /// The worker count the agent was configured with; the controller
        /// rejects mismatches (the fleets would disagree on assignments).
        workers_total: usize,
    },
    /// The worker's cut metrics for a gather round.
    Metrics {
        /// Reporting worker.
        worker: usize,
        /// The round the metrics answer.
        round: u64,
        /// Summarized metrics per owned cut node.
        metrics: Vec<(CutId, PriorityMetrics)>,
    },
    /// The worker finished enforcing a round's budgets. The room waits for
    /// these before advancing the world, so stepping strictly follows
    /// enforcement on every transport.
    Enforced {
        /// Acknowledging worker.
        worker: usize,
        /// The round whose budgets were enforced.
        round: u64,
    },
    /// The worker finished stepping its servers after
    /// [`DownMsg::Advance`]. Channel workers never send it (the room
    /// steps the shared farm itself).
    Advanced {
        /// Acknowledging worker.
        worker: usize,
        /// Seconds stepped.
        seconds: u32,
        /// Cumulative invariant violations the worker has observed
        /// locally since it started.
        violations_total: u64,
    },
    /// Socket liveness probe; answered with [`DownMsg::HeartbeatAck`].
    Heartbeat {
        /// Probing worker.
        worker: usize,
        /// Echoed in the ack so the worker can measure round-trip time.
        nonce: u64,
    },
}

/// Room → rack messages.
#[derive(Debug, Clone, PartialEq)]
pub enum DownMsg {
    /// Accepts a socket worker's [`UpMsg::Hello`].
    Welcome {
        /// The controller's worker count, echoed for cross-checking.
        workers_total: usize,
    },
    /// Sense, estimate, and report metrics for round `round`.
    Gather {
        /// The round being gathered.
        round: u64,
    },
    /// Budgets for this round's cut nodes; split, enforce, and ack with
    /// [`UpMsg::Enforced`].
    Budgets {
        /// The round the budgets answer.
        round: u64,
        /// Budget per cut node, sorted by cut id.
        budgets: Vec<(CutId, Watts)>,
    },
    /// Step the worker's servers `seconds` simulated seconds and ack with
    /// [`UpMsg::Advanced`]. Only sent over transports whose workers own
    /// their piece of the world (the socket agents); channel workers
    /// ignore it.
    Advance {
        /// Simulated seconds to step.
        seconds: u32,
    },
    /// Answers [`UpMsg::Heartbeat`].
    HeartbeatAck {
        /// The nonce from the probe.
        nonce: u64,
    },
    /// Drain and exit. Terminal: a socket agent receiving this must not
    /// reconnect.
    Shutdown,
}

/// A leaf binding beneath a cut node: `(leaf spec index, server, supply)`.
pub type LeafBinding = (usize, ServerId, SupplyIndex);

/// Static description of one rack worker's responsibility: a set of cut
/// nodes (CDU-level shifting controllers), the leaf bindings beneath them,
/// and the servers the worker *owns* (steps, in process-per-rack mode).
#[derive(Debug, Clone, PartialEq)]
pub struct RackAssignment {
    /// For each cut node: its id and the leaf bindings beneath it.
    pub cuts: Vec<(CutId, Vec<LeafBinding>)>,
    /// Servers owned by this worker: each server in the deployment is
    /// owned by exactly one worker (the first, in round-robin order,
    /// with a cut binding it). Socket agents step exactly these.
    pub owned: Vec<ServerId>,
}

/// Distributes cut nodes round-robin across `worker_count` workers — the
/// single source of truth for who owns what, shared by the room controller
/// and the out-of-process agents (both sides compute it independently from
/// the same trees and must agree).
///
/// # Panics
///
/// Panics if `worker_count == 0`.
pub fn rack_assignments(trees: &[ControlTree], worker_count: usize) -> Vec<RackAssignment> {
    assert!(worker_count > 0, "at least one rack worker is required");
    let mut assignments: Vec<RackAssignment> = (0..worker_count)
        .map(|_| RackAssignment {
            cuts: Vec::new(),
            owned: Vec::new(),
        })
        .collect();
    let mut claimed: HashSet<ServerId> = HashSet::new();
    let mut rr = 0usize;
    for (t, tree) in trees.iter().enumerate() {
        for cut in cut_nodes(tree) {
            let spec = tree.spec();
            let worker = rr % worker_count;
            let mut leaves: Vec<LeafBinding> = Vec::new();
            for &c in &spec.node(cut).children {
                let leaf = spec.node(c).leaf.expect("cut children are leaves");
                leaves.push((c, leaf.server, leaf.supply));
                if claimed.insert(leaf.server) {
                    assignments[worker].owned.push(leaf.server);
                }
            }
            assignments[worker].cuts.push(((t, cut), leaves));
            rr += 1;
        }
    }
    assignments
}

/// Whether every server bound under a worker's cuts is also *owned* by
/// that worker — i.e. no (dual-corded) server spans workers. The socket
/// transport requires this: each agent steps its owned servers in its own
/// process, so a server visible to two agents would fork into two
/// divergent copies.
pub fn assignments_server_disjoint(assignments: &[RackAssignment]) -> bool {
    assignments.iter().all(|a| {
        let owned: HashSet<ServerId> = a.owned.iter().copied().collect();
        a.cuts
            .iter()
            .flat_map(|(_, leaves)| leaves.iter())
            .all(|&(_, server, _)| owned.contains(&server))
    })
}

/// Spawn-time static facts about one leaf, captured so fail-safe metrics
/// can be rebuilt without farm access (a room controller over sockets has
/// none) and identically across transports. Shares are frozen at capture:
/// a supply failing *after* spawn does not change the fail-safe floor,
/// which only ever under-promises (cap_min demand).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeafStatic {
    /// The server's minimum controllable AC power.
    pub cap_min: Watts,
    /// The server's maximum controllable AC power.
    pub cap_max: Watts,
    /// Fraction of the server load this supply carries.
    pub share: Ratio,
    /// The server's priority.
    pub priority: Priority,
}

/// Captures the [`LeafStatic`] table for a deployment from a farm —
/// called once at spawn time, before any faults. Leaves whose server is
/// absent from the farm are skipped (they contribute nothing to
/// fail-safe budgets, exactly like the live-read path they replace).
pub fn leaf_statics(
    trees: &[ControlTree],
    assignments: &[RackAssignment],
    farm: &crate::plane::Farm,
) -> HashMap<(CutId, usize), LeafStatic> {
    let mut out = HashMap::new();
    for assignment in assignments {
        for (cut, leaves) in &assignment.cuts {
            let (t, _) = *cut;
            let spec = trees[t].spec();
            for &(leaf_idx, server, supply) in leaves {
                let leaf = spec.node(leaf_idx).leaf.expect("cut children are leaves");
                let Some(srv) = farm.get(server) else {
                    continue;
                };
                let model = srv.config().model();
                let share = srv
                    .bank()
                    .effective_shares()
                    .get(supply.index())
                    .copied()
                    .unwrap_or(Ratio::ZERO);
                out.insert(
                    (*cut, leaf_idx),
                    LeafStatic {
                        cap_min: model.cap_min(),
                        cap_max: model.cap_max(),
                        share,
                        priority: leaf.priority,
                    },
                );
            }
        }
    }
    out
}

/// The budgets and degradation state of one distributed control round.
/// Deterministically ordered so two runs (or two transports) can be
/// compared bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcome {
    /// The round this outcome answers.
    pub round: u64,
    /// Budget per cut node, sorted ascending by cut id.
    pub cut_budgets: Vec<(CutId, Watts)>,
    /// Cut nodes budgeted from fail-safe metrics this round (stale past
    /// the threshold or never reported), sorted ascending.
    pub failsafe_cuts: Vec<CutId>,
}

impl RoundOutcome {
    /// The budget assigned to `cut`, if it exists in this deployment.
    pub fn budget(&self, cut: CutId) -> Option<Watts> {
        self.cut_budgets
            .binary_search_by_key(&cut, |&(c, _)| c)
            .ok()
            .map(|i| self.cut_budgets[i].1)
    }

    /// A canonical one-line rendering with exact f64 bit patterns —
    /// the comparison key of the socket-vs-channel differential tests.
    pub fn wire_line(&self) -> String {
        use std::fmt::Write as _;
        let mut s = format!("round={}", self.round);
        for ((t, c), b) in &self.cut_budgets {
            let _ = write!(s, " {t}.{c}={:016x}", b.as_f64().to_bits());
        }
        for (t, c) in &self.failsafe_cuts {
            let _ = write!(s, " failsafe={t}.{c}");
        }
        s
    }
}

/// How the room controller reaches its rack workers. The deployment's
/// round logic is written against this seam only, so the in-process
/// channel transport and the socket transport produce identical budgets
/// from identical metrics.
///
/// Implementations own worker liveness: `send` to a dead worker returns
/// `false` (and the round treats the worker as partitioned), `recv`
/// surfaces whatever workers report, and `respawn`/`kill` map onto the
/// transport's notion of restart (thread respawn in-process; waiting for
/// an outbound reconnect over sockets).
pub trait Transport: Send + fmt::Debug {
    /// Number of rack workers (fixed at deployment creation).
    fn worker_count(&self) -> usize;

    /// Sends a message to one worker. `false` means the worker is
    /// unreachable (dead thread, torn connection) — the caller treats it
    /// as partitioned for this round.
    fn send(&mut self, worker: usize, msg: DownMsg) -> bool;

    /// Receives the next worker message, waiting until `deadline`.
    /// `None` on deadline or when no worker can ever report again.
    fn recv_deadline(&mut self, deadline: Instant) -> Option<UpMsg>;

    /// Advances the simulated world `seconds` seconds: in-process by
    /// stepping the shared farm, over sockets by broadcasting
    /// [`DownMsg::Advance`] and collecting [`UpMsg::Advanced`] acks until
    /// `deadline`. Returns `false` if any live worker failed to ack.
    fn advance(&mut self, seconds: u32, deadline: Instant) -> bool;

    /// Whether a worker is currently reachable.
    fn is_alive(&self, worker: usize) -> bool;

    /// Tears a worker down (fault injection, rolling maintenance).
    fn kill(&mut self, worker: usize);

    /// Restarts a dead worker if the transport can (thread respawn).
    /// Transports where recovery is worker-driven (socket agents
    /// reconnect outbound on their own) return `is_alive(worker)`.
    fn respawn(&mut self, worker: usize) -> bool;

    /// Cumulative invariant violations reported by workers, for
    /// transports whose workers audit their own servers. In-process
    /// workers share the farm with the caller, who audits it directly.
    fn violations(&self) -> u64 {
        0
    }

    /// Stops every worker and releases transport resources.
    fn shutdown(&mut self);
}

/// The default in-process transport: one OS thread per rack worker,
/// crossbeam channels for messages, a [`SharedFarm`] for the world.
#[derive(Debug)]
pub struct ChannelTransport {
    /// The world shared with the worker threads.
    farm: SharedFarm,
    /// Worker threads, joined on shutdown.
    handles: Vec<JoinHandle<()>>,
    /// `None` marks a worker known to be dead (killed via
    /// [`Transport::kill`] or observed unreachable): gather must not wait
    /// on it, or every round eats the full gather timeout.
    to_workers: Vec<Option<Sender<DownMsg>>>,
    /// The room side of the shared up-channel.
    from_workers: Receiver<UpMsg>,
    /// Kept to hand to respawned workers.
    up_tx: Sender<UpMsg>,
    /// Kept to restart dead workers with the assignment they held.
    trees: Vec<ControlTree>,
    /// Kept for respawns.
    policy: PolicyKind,
    /// Kept for respawns.
    assignments: Vec<RackAssignment>,
}

impl ChannelTransport {
    /// Spawns one worker thread per assignment over the shared farm.
    pub fn spawn(
        trees: Vec<ControlTree>,
        policy: PolicyKind,
        farm: SharedFarm,
        assignments: Vec<RackAssignment>,
    ) -> Self {
        let (up_tx, from_workers) = unbounded::<UpMsg>();
        let mut to_workers = Vec::with_capacity(assignments.len());
        let mut handles = Vec::with_capacity(assignments.len());
        for (w, assignment) in assignments.iter().enumerate() {
            let (down_tx, down_rx) = unbounded::<DownMsg>();
            to_workers.push(Some(down_tx));
            handles.push(spawn_worker_thread(
                w,
                assignment.clone(),
                trees.clone(),
                policy,
                Arc::clone(&farm),
                up_tx.clone(),
                down_rx,
                false,
            ));
        }
        ChannelTransport {
            farm,
            handles,
            to_workers,
            from_workers,
            up_tx,
            trees,
            policy,
            assignments,
        }
    }
}

impl Transport for ChannelTransport {
    fn worker_count(&self) -> usize {
        self.to_workers.len()
    }

    fn send(&mut self, worker: usize, msg: DownMsg) -> bool {
        let Some(slot) = self.to_workers.get_mut(worker) else {
            return false;
        };
        let Some(tx) = slot else {
            return false;
        };
        if tx.send(msg).is_ok() {
            true
        } else {
            // A send error means the worker thread is gone — mark it dead
            // so no later round waits on it.
            *slot = None;
            false
        }
    }

    fn recv_deadline(&mut self, deadline: Instant) -> Option<UpMsg> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        self.from_workers.recv_timeout(remaining).ok()
    }

    fn advance(&mut self, seconds: u32, _deadline: Instant) -> bool {
        // In-process, the room steps the shared world itself; enforcement
        // already completed (the round waited for Enforced acks), so this
        // cannot race a worker's farm write.
        let mut farm = self.farm.write();
        for _ in 0..seconds {
            farm.step_all(Seconds::new(1.0));
        }
        true
    }

    fn is_alive(&self, worker: usize) -> bool {
        self.to_workers.get(worker).is_some_and(Option::is_some)
    }

    fn kill(&mut self, worker: usize) {
        // The worker's Sender is dropped immediately after the Shutdown is
        // queued: the worker drains its queue and exits, and — critically
        // — gather never again counts it as expected.
        if let Some(slot) = self.to_workers.get_mut(worker) {
            if let Some(tx) = slot.take() {
                let _ = tx.send(DownMsg::Shutdown);
            }
        }
    }

    fn respawn(&mut self, worker: usize) -> bool {
        if worker >= self.to_workers.len() || self.is_alive(worker) {
            return false;
        }
        let (down_tx, down_rx) = unbounded::<DownMsg>();
        self.handles.push(spawn_worker_thread(
            worker,
            self.assignments[worker].clone(),
            self.trees.clone(),
            self.policy,
            Arc::clone(&self.farm),
            self.up_tx.clone(),
            down_rx,
            true,
        ));
        self.to_workers[worker] = Some(down_tx);
        true
    }

    fn shutdown(&mut self) {
        for tx in self.to_workers.iter().flatten() {
            let _ = tx.send(DownMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Spawns one rack worker thread running [`rack_worker_loop`].
#[allow(clippy::too_many_arguments)]
fn spawn_worker_thread(
    worker: usize,
    assignment: RackAssignment,
    trees: Vec<ControlTree>,
    policy: PolicyKind,
    farm: SharedFarm,
    up: Sender<UpMsg>,
    down: Receiver<DownMsg>,
    respawned: bool,
) -> JoinHandle<()> {
    let suffix = if respawned { "-respawn" } else { "" };
    thread::Builder::new()
        .name(format!("rack-worker-{worker}{suffix}"))
        .spawn(move || rack_worker_loop(worker, assignment, trees, policy, farm, up, down))
        .expect("spawning a rack worker thread")
}

/// The distributed deployment: a room worker (caller thread) plus rack
/// workers behind a [`Transport`].
///
/// # Examples
///
/// See [`WorkerDeployment::run_rounds`] usage in the crate tests and the
/// `priority_capping` example.
#[derive(Debug)]
pub struct WorkerDeployment {
    /// The control trees (shared shape with every worker).
    trees: Vec<ControlTree>,
    /// Contractual budget per tree root.
    root_budgets: Vec<Watts>,
    /// The capping policy every controller runs.
    policy: PolicyKind,
    /// Deployment tunables.
    config: DeploymentConfig,
    /// The rack workers.
    transport: Box<dyn Transport>,
    /// Cut node ids per tree, in spec order.
    cuts_per_tree: Vec<Vec<usize>>,
    /// Each worker's static responsibility.
    assignments: Vec<RackAssignment>,
    /// Fail-safe metrics per cut, precomputed at spawn from the
    /// [`LeafStatic`] table (every leaf demanding only `cap_min`).
    failsafe_metrics: HashMap<CutId, PriorityMetrics>,
    /// Freshest metrics seen per cut node (stale-hold fault tolerance).
    last_cut_metrics: HashMap<CutId, PriorityMetrics>,
    /// The round at which each cut node last reported, driving the
    /// stale-hold → fail-safe degradation.
    last_report_round: HashMap<CutId, u64>,
    /// Consecutive respawn attempts per worker since it last reported.
    respawn_attempts: Vec<u32>,
    /// Earliest instant the next respawn attempt per worker is allowed.
    respawn_not_before: Vec<Instant>,
    /// Liveness observed at the last round start, for counting
    /// worker-driven reconnects (socket agents) as respawns.
    was_alive: Vec<bool>,
}

/// Returns the leaf-parent (cut) node indices of a tree spec.
fn cut_nodes(tree: &ControlTree) -> Vec<usize> {
    let spec = tree.spec();
    (0..spec.len())
        .filter(|&idx| {
            let node = spec.node(idx);
            !node.children.is_empty()
                && node.children.iter().all(|&c| spec.node(c).is_leaf())
        })
        .collect()
}

impl WorkerDeployment {
    /// Spawns `worker_count` in-process rack workers over the given trees,
    /// budgets, and shared farm — the [`ChannelTransport`] deployment.
    /// Cut nodes are distributed round-robin across workers (a real
    /// deployment groups them by rack; the grouping does not change the
    /// decisions).
    ///
    /// # Panics
    ///
    /// Panics if `worker_count == 0` or tree/budget counts differ.
    pub fn spawn(
        trees: Vec<ControlTree>,
        root_budgets: Vec<Watts>,
        policy: PolicyKind,
        farm: SharedFarm,
        worker_count: usize,
        config: DeploymentConfig,
    ) -> Self {
        assert!(worker_count > 0, "at least one rack worker is required");
        let assignments = rack_assignments(&trees, worker_count);
        let statics = {
            let guard = farm.read();
            leaf_statics(&trees, &assignments, &guard)
        };
        let transport =
            ChannelTransport::spawn(trees.clone(), policy, farm, assignments.clone());
        Self::with_transport(
            trees,
            root_budgets,
            policy,
            assignments,
            &statics,
            Box::new(transport),
            config,
        )
    }

    /// Builds a deployment over an already-running transport — the seam
    /// the socket transport enters through. `assignments` must match what
    /// the transport's workers were configured with (both sides compute
    /// [`rack_assignments`] from the same trees), and `statics` feeds the
    /// fail-safe metrics precomputation.
    ///
    /// # Panics
    ///
    /// Panics if the transport has no workers, the assignment count
    /// differs from the transport's worker count, or tree/budget counts
    /// differ.
    pub fn with_transport(
        trees: Vec<ControlTree>,
        root_budgets: Vec<Watts>,
        policy: PolicyKind,
        assignments: Vec<RackAssignment>,
        statics: &HashMap<(CutId, usize), LeafStatic>,
        transport: Box<dyn Transport>,
        config: DeploymentConfig,
    ) -> Self {
        assert!(
            transport.worker_count() > 0,
            "at least one rack worker is required"
        );
        assert_eq!(
            transport.worker_count(),
            assignments.len(),
            "one assignment per transport worker is required"
        );
        assert_eq!(
            trees.len(),
            root_budgets.len(),
            "one root budget per control tree is required"
        );
        let cuts_per_tree: Vec<Vec<usize>> = trees.iter().map(cut_nodes).collect();
        let failsafe_metrics = build_failsafe_metrics(&trees, &assignments, statics, policy);
        let worker_count = transport.worker_count();
        let now = Instant::now();
        WorkerDeployment {
            trees,
            root_budgets,
            policy,
            config,
            transport,
            cuts_per_tree,
            assignments,
            failsafe_metrics,
            last_cut_metrics: HashMap::new(),
            last_report_round: HashMap::new(),
            respawn_attempts: vec![0; worker_count],
            respawn_not_before: vec![now; worker_count],
            was_alive: vec![true; worker_count],
        }
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &DeploymentConfig {
        &self.config
    }

    /// Number of rack workers.
    pub fn worker_count(&self) -> usize {
        self.transport.worker_count()
    }

    /// The per-worker assignments (cuts, leaf bindings, owned servers).
    pub fn assignments(&self) -> &[RackAssignment] {
        &self.assignments
    }

    /// Replaces the per-tree root budgets, applied from the next round.
    ///
    /// # Panics
    ///
    /// Panics if the count differs from the tree count.
    pub fn set_root_budgets(&mut self, budgets: Vec<Watts>) {
        assert_eq!(
            budgets.len(),
            self.root_budgets.len(),
            "one root budget per control tree is required"
        );
        self.root_budgets = budgets;
    }

    /// Cumulative invariant violations reported over the transport (zero
    /// for in-process workers, which share the caller's farm).
    pub fn transport_violations(&self) -> u64 {
        self.transport.violations()
    }

    /// Runs one control round: gather (rack, parallel) → upper-tree
    /// aggregation + budgeting (room) → enforce (rack, parallel) → wait
    /// for enforcement acks. Returns the budgets assigned to each cut
    /// node plus which cuts were budgeted fail-safe.
    ///
    /// **Fault tolerance — the degradation ladder.** A rack worker that
    /// does not answer within the configured gather timeout is skipped for
    /// the round; for up to `stale_after_rounds` rounds the room worker
    /// budgets its cut nodes from the *last metrics it reported*
    /// (stale-hold), so one sick VM cannot stall capping for the whole
    /// data center. Beyond that, the frozen metrics can no longer be
    /// trusted — a stuck sensor looks exactly like this — and the cut is
    /// budgeted from **fail-safe metrics**: every leaf at its `cap_min`
    /// demand. Cut nodes that have never reported are budgeted fail-safe
    /// from the first round.
    pub fn run_round(&mut self, round: u64) -> RoundOutcome {
        self.note_reconnects();
        let n = self.transport.worker_count();

        // Phase 1: gather.
        let mut expected = 0usize;
        for w in 0..n {
            if self.transport.send(w, DownMsg::Gather { round }) {
                expected += 1;
            }
        }
        let deadline = Instant::now() + self.config.gather_timeout;
        let mut reported = vec![false; n];
        let mut answers = 0usize;
        while answers < expected {
            if Instant::now() >= deadline {
                break;
            }
            let Some(msg) = self.transport.recv_deadline(deadline) else {
                break; // timeout or all workers gone
            };
            // Acks and heartbeats from earlier phases are drained here
            // without counting toward the gather.
            if let UpMsg::Metrics {
                worker,
                round: r,
                metrics,
            } = msg
            {
                if worker >= n {
                    continue;
                }
                self.note_metrics(worker, r, metrics);
                // A late answer to an earlier round is cached above but
                // does not count as answering *this* gather.
                if r == round && !reported[worker] {
                    reported[worker] = true;
                    answers += 1;
                }
            }
        }
        if answers < expected {
            self.config
                .recorder
                .counter_add(names::WORKER_GATHER_TIMEOUTS_TOTAL, 1);
        }

        // Phase 2: the room worker allocates over each tree's upper part,
        // treating cut nodes as pseudo-leaves with the freshest metrics it
        // holds — or fail-safe metrics for cuts past the staleness
        // threshold.
        let (effective, failsafe_cuts) = self.effective_cut_metrics(round);
        let policy = self.policy.policy();
        let mut cut_budgets: Vec<(CutId, Watts)> = Vec::new();
        for (t, tree) in self.trees.iter().enumerate() {
            let budgets = room_allocate_upper(
                tree,
                &self.cuts_per_tree[t],
                |cut| {
                    effective
                        .get(&(t, cut))
                        .cloned()
                        .unwrap_or_else(PriorityMetrics::empty)
                },
                self.root_budgets[t],
                policy.as_ref(),
            );
            for (cut, b) in budgets {
                cut_budgets.push(((t, cut), b));
            }
        }
        // Trees and cuts are walked in ascending order, so this is a
        // no-op sort guaranteeing the documented invariant.
        cut_budgets.sort_unstable_by_key(|&(c, _)| c);

        // Phase 3: enforce (dead workers silently miss their budgets;
        // their servers hold the last cap they were given — fail-safe),
        // then wait for Enforced acks so the world never advances under
        // half-applied budgets. Without the ack barrier, stepping racing
        // a worker's farm write made round results nondeterministic.
        let mut awaiting = vec![false; n];
        let mut waiting = 0usize;
        for (w, slot) in awaiting.iter_mut().enumerate() {
            let msg = DownMsg::Budgets {
                round,
                budgets: cut_budgets.clone(),
            };
            if self.transport.send(w, msg) {
                *slot = true;
                waiting += 1;
            }
        }
        let ack_deadline = Instant::now() + self.config.gather_timeout;
        while waiting > 0 {
            if Instant::now() >= ack_deadline {
                break;
            }
            let Some(msg) = self.transport.recv_deadline(ack_deadline) else {
                break;
            };
            match msg {
                UpMsg::Enforced { worker, round: r }
                    if r == round && worker < n && awaiting[worker] =>
                {
                    awaiting[worker] = false;
                    waiting -= 1;
                }
                UpMsg::Metrics {
                    worker,
                    round: r,
                    metrics,
                } if worker < n => {
                    self.note_metrics(worker, r, metrics);
                }
                _ => {}
            }
        }

        RoundOutcome {
            round,
            cut_budgets,
            failsafe_cuts,
        }
    }

    /// Caches a worker's reported metrics and resets its respawn ladder.
    fn note_metrics(
        &mut self,
        worker: usize,
        round: u64,
        metrics: Vec<(CutId, PriorityMetrics)>,
    ) {
        self.respawn_attempts[worker] = 0;
        for (cut, m) in metrics {
            self.last_cut_metrics.insert(cut, m);
            self.last_report_round.insert(cut, round);
        }
    }

    /// Counts dead → alive transitions the transport performed on its own
    /// (socket agents reconnecting outbound) as respawns, so the
    /// `capmaestro_worker_respawns_total` counter means the same thing on
    /// every transport. [`WorkerDeployment::respawn_worker`] marks the
    /// worker alive itself, so transport-driven respawns are not counted
    /// twice.
    fn note_reconnects(&mut self) {
        for w in 0..self.transport.worker_count() {
            let alive = self.transport.is_alive(w);
            if alive && !self.was_alive[w] {
                self.config
                    .recorder
                    .counter_add(names::WORKER_RESPAWNS_TOTAL, 1);
            }
            self.was_alive[w] = alive;
        }
    }

    /// The metrics the room worker will trust per cut node at `round`:
    /// the freshest report while within `stale_after_rounds`, fail-safe
    /// metrics (every leaf pinned to its `cap_min` demand, from the
    /// spawn-time [`LeafStatic`] table) beyond — a dead worker's frozen
    /// report is indistinguishable from a stuck sensor, so after the
    /// bridge the room stops believing it. Returns the effective metrics
    /// and the sorted list of fail-safe cuts.
    fn effective_cut_metrics(
        &self,
        round: u64,
    ) -> (HashMap<CutId, PriorityMetrics>, Vec<CutId>) {
        let mut out = HashMap::new();
        let mut failsafe: Vec<CutId> = Vec::new();
        for assignment in &self.assignments {
            for (cut, _) in &assignment.cuts {
                let fresh_enough = self
                    .last_report_round
                    .get(cut)
                    .is_some_and(|&r| round.saturating_sub(r) < self.config.stale_after_rounds);
                if fresh_enough {
                    if let Some(m) = self.last_cut_metrics.get(cut) {
                        out.insert(*cut, m.clone());
                        continue;
                    }
                }
                failsafe.push(*cut);
                out.insert(
                    *cut,
                    self.failsafe_metrics
                        .get(cut)
                        .cloned()
                        .unwrap_or_else(PriorityMetrics::empty),
                );
            }
        }
        failsafe.sort_unstable();
        if self.config.recorder.enabled() {
            self.config
                .recorder
                .gauge_set(names::WORKER_FAILSAFE_CUTS, failsafe.len() as f64);
        }
        (out, failsafe)
    }

    /// Whether a worker is currently reachable over the transport.
    pub fn is_worker_alive(&self, worker: usize) -> bool {
        self.transport.is_alive(worker)
    }

    /// Restarts a dead rack worker with the assignment it held. Returns
    /// `false` without side effects when the worker is still alive, the
    /// index is out of range, or the exponential backoff since the last
    /// attempt has not elapsed yet (`respawn_backoff × 2^attempts`,
    /// attempts capped at 6 and reset when the worker reports).
    ///
    /// The respawned worker starts with empty estimators and controllers —
    /// exactly like a replacement VM — so its demand estimates rebuild
    /// from the first gather after the respawn. On transports where
    /// recovery is worker-driven (socket agents reconnect outbound), this
    /// only reports whether the worker is back.
    pub fn respawn_worker(&mut self, worker: usize) -> bool {
        if worker >= self.worker_count() || self.is_worker_alive(worker) {
            return false;
        }
        let now = Instant::now();
        if now < self.respawn_not_before[worker] {
            return false;
        }
        let attempts = self.respawn_attempts[worker];
        let backoff = self.config.respawn_backoff * 2u32.saturating_pow(attempts.min(6));
        self.respawn_not_before[worker] = now + backoff;
        self.respawn_attempts[worker] = attempts.saturating_add(1);

        if !self.transport.respawn(worker) {
            return false;
        }
        self.was_alive[worker] = true;
        self.config
            .recorder
            .counter_add(names::WORKER_RESPAWNS_TOTAL, 1);
        true
    }

    /// Shuts one rack worker down (for fault-injection tests and rolling
    /// maintenance). Subsequent rounds hold its last metrics.
    pub fn kill_worker(&mut self, worker: usize) {
        self.transport.kill(worker);
        if let Some(flag) = self.was_alive.get_mut(worker) {
            *flag = false;
        }
    }

    /// Advances the simulated world `seconds` seconds through the
    /// transport (stepping the shared farm in-process; asking the agents
    /// to step their owned servers over sockets). Returns `false` if a
    /// live worker failed to confirm within the advance timeout.
    pub fn advance(&mut self, seconds: u32) -> bool {
        let deadline = Instant::now() + self.config.advance_timeout;
        self.transport.advance(seconds, deadline)
    }

    /// Runs `rounds` control periods, advancing the world
    /// `seconds_per_round` simulated seconds between rounds (the physical
    /// world keeps moving while controllers deliberate).
    pub fn run_rounds(&mut self, rounds: u64, seconds_per_round: u32) {
        for round in 0..rounds {
            self.run_round(round);
            self.advance(seconds_per_round);
        }
    }

    /// Shuts the workers down and releases the transport.
    pub fn shutdown(mut self) {
        self.transport.shutdown();
    }
}

/// Precomputes each cut's fail-safe metrics (every leaf demanding only
/// its `cap_min`) from the spawn-time statics table. Computed once: the
/// fail-safe summary depends only on statics and policy visibility, so
/// recomputing it per round bought nothing and required farm access the
/// socket controller does not have.
fn build_failsafe_metrics(
    trees: &[ControlTree],
    assignments: &[RackAssignment],
    statics: &HashMap<(CutId, usize), LeafStatic>,
    policy: PolicyKind,
) -> HashMap<CutId, PriorityMetrics> {
    let policy = policy.policy();
    let mut out = HashMap::new();
    for assignment in assignments {
        for (cut, leaves) in &assignment.cuts {
            let (t, cut_idx) = *cut;
            let spec = trees[t].spec();
            let mut children = Vec::with_capacity(leaves.len());
            for &(leaf_idx, _, _) in leaves {
                let Some(s) = statics.get(&(*cut, leaf_idx)) else {
                    continue;
                };
                children.push(PriorityMetrics::from_leaf(&LeafInput {
                    demand: s.cap_min,
                    cap_min: s.cap_min,
                    cap_max: s.cap_max,
                    share: s.share,
                    priority: s.priority,
                }));
            }
            let ctx = NodeContext {
                is_leaf_parent: true,
                depth: 0,
            };
            let children = match policy.visibility(ctx) {
                PriorityVisibility::Full => children,
                PriorityVisibility::Blind => {
                    children.iter().map(PriorityMetrics::collapsed).collect()
                }
            };
            out.insert(
                *cut,
                PriorityMetrics::aggregate(children.iter(), spec.node(cut_idx).limit),
            );
        }
    }
    out
}

/// Room-side allocation over the upper part of one tree: every node except
/// strict descendants of cut nodes, with cut nodes as pseudo-leaves.
/// Returns `(cut node, budget)` pairs.
fn room_allocate_upper(
    tree: &ControlTree,
    cuts: &[usize],
    mut metrics_of_cut: impl FnMut(usize) -> PriorityMetrics,
    root_budget: Watts,
    policy: &dyn CappingPolicy,
) -> Vec<(usize, Watts)> {
    let spec = tree.spec();
    let n = spec.len();
    let is_cut: Vec<bool> = {
        let mut v = vec![false; n];
        for &c in cuts {
            v[c] = true;
        }
        v
    };
    // A node is "upper" if no proper ancestor is a cut node.
    let mut upper = vec![false; n];
    for idx in 0..n {
        match spec.node(idx).parent {
            None => upper[idx] = true,
            Some(p) => upper[idx] = upper[p] && !is_cut[p],
        }
    }

    // Gather metrics bottom-up over upper nodes.
    let mut metrics: Vec<Option<PriorityMetrics>> = vec![None; n];
    let mut depths = vec![0usize; n];
    for idx in 0..n {
        if let Some(p) = spec.node(idx).parent {
            depths[idx] = depths[p] + 1;
        }
    }
    for idx in (0..n).rev() {
        if !upper[idx] {
            continue;
        }
        if is_cut[idx] {
            metrics[idx] = Some(metrics_of_cut(idx));
            continue;
        }
        if spec.node(idx).is_leaf() {
            // A leaf directly under the upper tree (no CDU level): treat
            // it as its own cut with empty metrics — deployments should
            // avoid this, but stay total.
            metrics[idx] = Some(PriorityMetrics::empty());
            continue;
        }
        let ctx = NodeContext {
            is_leaf_parent: false,
            depth: depths[idx],
        };
        let visibility = policy.visibility(ctx);
        let children: Vec<PriorityMetrics> = spec
            .node(idx)
            .children
            .iter()
            .map(|&c| {
                let m = metrics[c].clone().expect("children computed first");
                match visibility {
                    PriorityVisibility::Full => m,
                    PriorityVisibility::Blind => m.collapsed(),
                }
            })
            .collect();
        metrics[idx] = Some(PriorityMetrics::aggregate(
            children.iter(),
            spec.node(idx).limit,
        ));
    }

    // Budget top-down to the cut nodes.
    let mut budgets = vec![Watts::ZERO; n];
    let root = spec.root();
    let root_limit = spec.node(root).limit.unwrap_or(root_budget);
    budgets[root] = root_budget.min(root_limit);
    let mut out = Vec::with_capacity(cuts.len());
    for idx in 0..n {
        if !upper[idx] {
            continue;
        }
        if is_cut[idx] {
            out.push((idx, budgets[idx]));
            continue;
        }
        let node = spec.node(idx);
        if node.children.is_empty() {
            continue;
        }
        let ctx = NodeContext {
            is_leaf_parent: false,
            depth: depths[idx],
        };
        let visibility = policy.visibility(ctx);
        let children_metrics: Vec<PriorityMetrics> = node
            .children
            .iter()
            .map(|&c| {
                let m = metrics[c].clone().expect("computed");
                match visibility {
                    PriorityVisibility::Full => m,
                    PriorityVisibility::Blind => m.collapsed(),
                }
            })
            .collect();
        let split = split_budget(budgets[idx], &children_metrics);
        for (&child, b) in node.children.iter().zip(&split.budgets) {
            budgets[child] = *b;
        }
    }
    out
}

/// The rack-side controller state and math, shared verbatim by the
/// in-process worker threads and the out-of-process agent binary — the
/// transports can only differ in *when* messages arrive, never in what a
/// gather or an enforcement computes.
pub struct RackWorker {
    /// The cuts and leaves this worker answers for.
    assignment: RackAssignment,
    /// The control trees (for specs and node limits).
    trees: Vec<ControlTree>,
    /// The capping policy (visibility decisions).
    policy: Box<dyn CappingPolicy + Send + Sync>,
    /// Per-server demand estimators, built up over gathers.
    estimators: HashMap<ServerId, DemandEstimator>,
    /// Per-server capping controllers, built on first enforcement.
    controllers: HashMap<ServerId, CappingController>,
    /// Leaf metrics computed during gather, reused at budget time.
    leaf_metrics: HashMap<(CutId, usize), PriorityMetrics>,
    /// Budgets accumulated per server across this worker's cut nodes.
    round_budgets: HashMap<ServerId, Vec<(SupplyIndex, Watts)>>,
    /// Reusable budget-split scratch: the worker is long-lived, so the
    /// per-cut split borrows this instead of allocating every round.
    split_scratch: SplitScratch,
    /// Reusable budget-split output buffer.
    split_budgets: Vec<Watts>,
}

impl fmt::Debug for RackWorker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RackWorker")
            .field("cuts", &self.assignment.cuts.len())
            .field("owned", &self.assignment.owned.len())
            .field("estimators", &self.estimators.len())
            .field("controllers", &self.controllers.len())
            .finish_non_exhaustive()
    }
}

impl RackWorker {
    /// Builds the rack-side state for one assignment. Estimators and
    /// controllers start empty — exactly like a fresh VM — and rebuild
    /// from the first gather.
    pub fn new(assignment: RackAssignment, trees: Vec<ControlTree>, policy: PolicyKind) -> Self {
        RackWorker {
            assignment,
            trees,
            policy: policy.policy(),
            estimators: HashMap::new(),
            controllers: HashMap::new(),
            leaf_metrics: HashMap::new(),
            round_budgets: HashMap::new(),
            split_scratch: SplitScratch::default(),
            split_budgets: Vec::new(),
        }
    }

    /// The worker's assignment.
    pub fn assignment(&self) -> &RackAssignment {
        &self.assignment
    }

    /// Senses this worker's servers, feeds the demand estimators, and
    /// summarizes each owned cut's metrics (paper §4.3.1, level-1 + first
    /// aggregation).
    pub fn gather(&mut self, farm: &crate::plane::Farm) -> Vec<(CutId, PriorityMetrics)> {
        self.leaf_metrics.clear();
        self.round_budgets.clear();
        let mut out = Vec::with_capacity(self.assignment.cuts.len());
        for (cut, leaves) in &self.assignment.cuts {
            let (t, cut_idx) = *cut;
            let spec = self.trees[t].spec();
            let mut children = Vec::with_capacity(leaves.len());
            for &(leaf_idx, server, _) in leaves {
                let leaf = spec.node(leaf_idx).leaf.expect("leaf");
                let Some(srv) = farm.get(server) else {
                    continue;
                };
                let snap = srv.sense();
                let est = self.estimators.entry(server).or_default();
                est.push(snap.throttle, snap.total_ac);
                let model = srv.config().model();
                let demand = est
                    .estimate_with_idle(model.idle())
                    .unwrap_or(snap.total_ac)
                    .clamp(model.idle(), model.cap_max());
                let shares = srv.bank().effective_shares();
                let share = shares
                    .get(leaf.supply.index())
                    .copied()
                    .unwrap_or(Ratio::ZERO);
                let m = PriorityMetrics::from_leaf(&LeafInput {
                    demand: demand.max(model.cap_min()),
                    cap_min: model.cap_min(),
                    cap_max: model.cap_max(),
                    share,
                    priority: leaf.priority,
                });
                self.leaf_metrics.insert((*cut, leaf_idx), m.clone());
                children.push(m);
            }
            let ctx = NodeContext {
                is_leaf_parent: true,
                depth: 0,
            };
            let children = match self.policy.visibility(ctx) {
                PriorityVisibility::Full => children,
                PriorityVisibility::Blind => {
                    children.iter().map(PriorityMetrics::collapsed).collect()
                }
            };
            let aggregated =
                PriorityMetrics::aggregate(children.iter(), spec.node(cut_idx).limit);
            out.push((*cut, aggregated));
        }
        out
    }

    /// Splits the room's cut budgets down to leaves (using the metrics
    /// cached by the preceding [`RackWorker::gather`]) and drives the
    /// capping controllers onto the farm.
    pub fn enforce(&mut self, farm: &mut crate::plane::Farm, budgets: &[(CutId, Watts)]) {
        // Split each of our cut budgets to leaves.
        for (cut, leaves) in &self.assignment.cuts {
            let Some(&(_, budget)) = budgets.iter().find(|(c, _)| c == cut) else {
                continue;
            };
            let children_metrics: Vec<PriorityMetrics> = leaves
                .iter()
                .map(|&(leaf_idx, _, _)| {
                    self.leaf_metrics
                        .get(&(*cut, leaf_idx))
                        .cloned()
                        .unwrap_or_else(PriorityMetrics::empty)
                })
                .collect();
            let ctx = NodeContext {
                is_leaf_parent: true,
                depth: 0,
            };
            let children_metrics: Vec<PriorityMetrics> = match self.policy.visibility(ctx) {
                PriorityVisibility::Full => children_metrics,
                PriorityVisibility::Blind => children_metrics
                    .iter()
                    .map(PriorityMetrics::collapsed)
                    .collect(),
            };
            split_budget_into(
                budget,
                &children_metrics,
                &mut self.split_scratch,
                &mut self.split_budgets,
            );
            for (&(_, server, supply), b) in leaves.iter().zip(&self.split_budgets) {
                self.round_budgets
                    .entry(server)
                    .or_default()
                    .push((supply, *b));
            }
        }
        // Enforce caps on our servers.
        for (&server, supply_budgets) in &self.round_budgets {
            let Some(mut srv) = farm.get_mut(server) else {
                continue;
            };
            let snap = srv.sense();
            let covered = supply_budgets
                .iter()
                .filter(|&&(supply, _)| {
                    srv.bank().effective_share(supply.index()).as_f64() > 0.0
                })
                .count();
            if covered == 0 {
                continue;
            }
            let model = srv.config().model();
            let controller = self.controllers.entry(server).or_insert_with(|| {
                CappingController::new(
                    model.cap_min(),
                    model.cap_max(),
                    srv.bank().efficiency(),
                )
            });
            let cap = controller.update_pairs(supply_budgets.iter().filter_map(
                |&(supply, b)| {
                    let idx = supply.index();
                    if srv.bank().effective_share(idx).as_f64() > 0.0 {
                        Some((b, snap.supply_ac[idx]))
                    } else {
                        None
                    }
                },
            ));
            srv.set_dc_cap(cap);
        }
    }
}

/// The channel-transport rack worker body: wraps a [`RackWorker`] around
/// the shared farm and the crossbeam message loop.
fn rack_worker_loop(
    worker: usize,
    assignment: RackAssignment,
    trees: Vec<ControlTree>,
    policy: PolicyKind,
    farm: SharedFarm,
    up: Sender<UpMsg>,
    down: Receiver<DownMsg>,
) {
    let mut rack = RackWorker::new(assignment, trees, policy);
    while let Ok(msg) = down.recv() {
        // The room side being gone is a normal shutdown order, not a
        // rack-worker bug: exit the loop instead of panicking (and
        // aborting the whole process in release builds).
        match msg {
            DownMsg::Gather { round } => {
                let metrics = {
                    let farm = farm.read();
                    rack.gather(&farm)
                };
                if up
                    .send(UpMsg::Metrics {
                        worker,
                        round,
                        metrics,
                    })
                    .is_err()
                {
                    break;
                }
            }
            DownMsg::Budgets { round, budgets } => {
                {
                    let mut farm = farm.write();
                    rack.enforce(&mut farm, &budgets);
                }
                if up.send(UpMsg::Enforced { worker, round }).is_err() {
                    break;
                }
            }
            // The room steps the shared farm itself in-process; these are
            // socket-protocol messages a channel worker never needs.
            DownMsg::Advance { .. } | DownMsg::Welcome { .. } | DownMsg::HeartbeatAck { .. } => {}
            DownMsg::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::Farm;
    use capmaestro_server::{Server, ServerConfig};
    use capmaestro_topology::presets::figure2_feed;

    fn fig2_shared_farm() -> (capmaestro_topology::Topology, SharedFarm, Vec<ControlTree>) {
        let topo = figure2_feed();
        let trees: Vec<ControlTree> = topo
            .control_tree_specs()
            .into_iter()
            .map(ControlTree::new)
            .collect();
        let mut farm = Farm::new();
        for (id, _) in topo.servers() {
            let mut server = Server::new(ServerConfig::paper_default().single_corded());
            server.set_offered_demand(Watts::new(420.0));
            server.settle();
            farm.insert(id, server);
        }
        (topo, Arc::new(RwLock::new(farm)), trees)
    }

    #[test]
    fn cut_nodes_are_leaf_parents() {
        let (_, _, trees) = fig2_shared_farm();
        let cuts = cut_nodes(&trees[0]);
        // Fig. 2: left and right CBs.
        assert_eq!(cuts.len(), 2);
        for cut in cuts {
            let node = trees[0].spec().node(cut);
            assert!(node
                .children
                .iter()
                .all(|&c| trees[0].spec().node(c).is_leaf()));
        }
    }

    #[test]
    fn assignments_partition_server_ownership() {
        let (topo, _, trees) = fig2_shared_farm();
        let assignments = rack_assignments(&trees, 2);
        assert!(assignments_server_disjoint(&assignments));
        // Every server is owned exactly once across workers.
        let mut owned: Vec<ServerId> = assignments
            .iter()
            .flat_map(|a| a.owned.iter().copied())
            .collect();
        owned.sort_unstable();
        let mut all: Vec<ServerId> = topo.servers().map(|(id, _)| id).collect();
        all.sort_unstable();
        assert_eq!(owned, all);
        // Both sides computing assignments independently must agree.
        assert_eq!(assignments, rack_assignments(&trees, 2));
    }

    #[test]
    fn distributed_rounds_protect_high_priority() {
        let (topo, farm, trees) = fig2_shared_farm();
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
            DeploymentConfig::default(),
        );
        deployment.run_rounds(10, 8);
        deployment.shutdown();

        let farm = farm.read();
        let sa = topo.server_by_name("SA").unwrap();
        let sb = topo.server_by_name("SB").unwrap();
        assert!(
            farm.get(sa).unwrap().performance_fraction().as_f64() > 0.95,
            "SA perf {}",
            farm.get(sa).unwrap().performance_fraction()
        );
        assert!(farm.get(sb).unwrap().sense().total_ac < Watts::new(310.0));
        let total: Watts = farm.iter().map(|(_, s)| s.sense().total_ac).sum();
        assert!(total <= Watts::new(1240.0) * 1.02, "total {total}");
    }

    #[test]
    fn distributed_matches_synchronous_budgets() {
        // The same scenario through the threaded deployment and the
        // synchronous plane (SPO off) must produce the same cut budgets.
        let (topo, farm, trees) = fig2_shared_farm();

        // Synchronous reference.
        let mut sync_farm = Farm::new();
        for (id, _) in topo.servers() {
            let mut server = Server::new(ServerConfig::paper_default().single_corded());
            server.set_offered_demand(Watts::new(420.0));
            server.settle();
            sync_farm.insert(id, server);
        }
        let mut plane = crate::plane::ControlPlane::new(
            trees.clone(),
            vec![Watts::new(1240.0)],
            crate::plane::PlaneConfig::default()
                .with_policy(PolicyKind::GlobalPriority)
                .with_spo(false)
                .with_control_period(Seconds::new(8.0)),
        );
        plane.record_sample(&sync_farm);
        let report = plane.round(&mut sync_farm).clone();

        let mut deployment = WorkerDeployment::spawn(
            trees.clone(),
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
            DeploymentConfig::default(),
        );
        let outcome = deployment.run_round(0);
        deployment.shutdown();

        assert!(outcome.failsafe_cuts.is_empty());
        // Compare the budgets at each cut node (left/right CB).
        for ((t, cut), budget) in outcome.cut_budgets {
            assert_eq!(t, 0);
            let reference = report.allocations[0].node_budget(cut);
            assert!(
                budget.approx_eq(reference, Watts::new(1e-6)),
                "cut {cut}: distributed {budget} vs sync {reference}"
            );
        }
    }

    #[test]
    fn round_outcome_is_sorted_and_queryable() {
        let (_, farm, trees) = fig2_shared_farm();
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
            DeploymentConfig::default(),
        );
        let outcome = deployment.run_round(0);
        deployment.shutdown();
        let mut sorted = outcome.cut_budgets.clone();
        sorted.sort_unstable_by_key(|&(c, _)| c);
        assert_eq!(outcome.cut_budgets, sorted);
        for &(cut, b) in &outcome.cut_budgets {
            assert_eq!(outcome.budget(cut), Some(b));
        }
        assert_eq!(outcome.budget((99, 99)), None);
        // The wire line embeds exact bit patterns.
        let line = outcome.wire_line();
        for &(_, b) in &outcome.cut_budgets {
            assert!(line.contains(&format!("{:016x}", b.as_f64().to_bits())));
        }
    }

    #[test]
    fn enforcement_is_visible_when_run_round_returns() {
        // The Enforced-ack barrier: caps computed by a round must already
        // be applied to the farm when run_round returns, so advancing the
        // world never races enforcement (the determinism bug the socket
        // transport would have amplified).
        let (_, farm, trees) = fig2_shared_farm();
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
            DeploymentConfig::default(),
        );
        deployment.run_round(0);
        {
            let farm = farm.read();
            for (_, srv) in farm.iter() {
                assert!(
                    srv.dc_cap().is_some(),
                    "caps must be enforced before run_round returns"
                );
            }
        }
        deployment.shutdown();
    }

    #[test]
    fn dead_worker_does_not_stall_the_room() {
        let (_, farm, trees) = fig2_shared_farm();
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
            DeploymentConfig::default(),
        );
        // A healthy first round caches every cut's metrics.
        let healthy = deployment.run_round(0);
        assert_eq!(healthy.cut_budgets.len(), 2);

        // Kill one rack worker; the next round must still produce budgets
        // for ALL cut nodes, from the stale cache, without hanging.
        deployment.kill_worker(0);
        let degraded = deployment.run_round(1);
        assert_eq!(
            degraded.cut_budgets.len(),
            2,
            "stale-hold must cover the dead worker's cuts"
        );
        for &(cut, budget) in &healthy.cut_budgets {
            let after = degraded.budget(cut).unwrap();
            assert!(
                after.approx_eq(budget, Watts::new(1.0)),
                "cut {cut:?} budget changed {budget} -> {after} with frozen metrics"
            );
        }
        deployment.shutdown();
    }

    #[test]
    fn killed_worker_rounds_skip_the_gather_timeout() {
        // Regression: kill_worker used to leave the dead worker's Sender in
        // place, so `send(Gather)` kept succeeding and every subsequent
        // round blocked for the full gather timeout waiting on a reply the
        // dead worker could never produce.
        let (_, farm, trees) = fig2_shared_farm();
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
            DeploymentConfig::default(),
        );
        deployment.run_round(0);
        deployment.kill_worker(0);
        let start = std::time::Instant::now();
        let degraded = deployment.run_round(1);
        let elapsed = start.elapsed();
        assert_eq!(degraded.cut_budgets.len(), 2);
        // The surviving worker answers in microseconds; leave generous CI
        // slack while staying far below the 500 ms stale-hold timeout.
        assert!(
            elapsed < deployment.config().gather_timeout / 2,
            "degraded round took {elapsed:?}; dead worker still counted as expected"
        );
        deployment.shutdown();
    }

    #[test]
    fn worker_count_respected() {
        let (_, farm, trees) = fig2_shared_farm();
        let deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::NoPriority,
            farm,
            3,
            DeploymentConfig::default(),
        );
        assert_eq!(deployment.worker_count(), 3);
        deployment.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one rack worker")]
    fn zero_workers_panics() {
        let (_, farm, trees) = fig2_shared_farm();
        let _ = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::NoPriority,
            farm,
            0,
            DeploymentConfig::default(),
        );
    }

    /// Steps the shared farm `seconds` simulated seconds.
    fn step_farm(farm: &SharedFarm, seconds: u32) {
        let mut farm = farm.write();
        for _ in 0..seconds {
            farm.step_all(Seconds::new(1.0));
        }
    }

    /// The combined stuck-sensor + dead-worker acceptance scenario: a dead
    /// worker's frozen metrics ARE a stuck sensor from the room's point of
    /// view. The affected cut must be stale-held first, clamped to
    /// fail-safe (Σ cap_min) after `stale_after_rounds`, and rejoin normal
    /// budgeting within 2 rounds of `respawn_worker`.
    #[test]
    fn stuck_metrics_degrade_to_fail_safe_and_recover_on_respawn() {
        let (_, farm, trees) = fig2_shared_farm();
        let config = DeploymentConfig {
            respawn_backoff: Duration::from_millis(1),
            ..DeploymentConfig::default()
        };
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
            config,
        );
        // Healthy rounds: estimators converge, budgets settle.
        let mut round = 0u64;
        let mut healthy = None;
        for _ in 0..6 {
            healthy = Some(deployment.run_round(round));
            step_farm(&farm, 8);
            round += 1;
        }
        let healthy = healthy.expect("six healthy rounds ran");
        assert!(healthy.failsafe_cuts.is_empty());
        // Worker 0 dies. Its servers' demand changes underneath it, so the
        // frozen metrics are provably wrong — exactly a stuck sensor.
        deployment.kill_worker(0);
        let dead_cut: CutId = deployment.assignments[0].cuts[0].0;
        let dead_servers: Vec<ServerId> = deployment.assignments[0]
            .cuts
            .iter()
            .flat_map(|(_, leaves)| leaves.iter().map(|&(_, s, _)| s))
            .collect();
        {
            let mut farm = farm.write();
            for &s in &dead_servers {
                farm.get_mut(s).unwrap().set_offered_demand(Watts::new(480.0));
            }
        }

        // Stale-hold bridge: budgets stay at the frozen (healthy) values.
        for _ in 0..deployment.config().stale_after_rounds - 1 {
            let held = deployment.run_round(round);
            step_farm(&farm, 8);
            round += 1;
            assert!(
                held.budget(dead_cut)
                    .unwrap()
                    .approx_eq(healthy.budget(dead_cut).unwrap(), Watts::new(1.0)),
                "stale-hold should freeze the dead cut's budget"
            );
            assert!(
                !held.failsafe_cuts.contains(&dead_cut),
                "stale-hold rounds must not report the cut as fail-safe"
            );
        }

        // Past the threshold: the cut is budgeted from fail-safe metrics —
        // each leaf demands only cap_min (270 W), so the cut's budget
        // collapses to ~Σ cap_min of its leaves.
        let degraded = deployment.run_round(round);
        step_farm(&farm, 8);
        round += 1;
        assert!(
            degraded.failsafe_cuts.contains(&dead_cut),
            "the degraded round must report the dead cut as fail-safe"
        );
        let cap_min_sum: Watts = {
            let farm = farm.read();
            dead_servers
                .iter()
                .map(|&s| farm.get(s).unwrap().config().model().cap_min())
                .sum()
        };
        let fail_safe_budget = degraded.budget(dead_cut).unwrap();
        assert!(
            fail_safe_budget <= cap_min_sum + Watts::new(1.0),
            "fail-safe budget {fail_safe_budget} should collapse to ≤ Σ cap_min {cap_min_sum}"
        );
        assert!(
            fail_safe_budget < healthy.budget(dead_cut).unwrap() - Watts::new(50.0),
            "fail-safe budget should be well below the healthy {}",
            healthy.budget(dead_cut).unwrap()
        );

        // Respawn: the replacement worker reports real metrics (demand is
        // back at 420 W) and the cut rejoins normal budgeting within 2
        // rounds.
        {
            let mut farm = farm.write();
            for &s in &dead_servers {
                farm.get_mut(s).unwrap().set_offered_demand(Watts::new(420.0));
            }
        }
        assert!(deployment.respawn_worker(0), "respawn should succeed");
        assert!(deployment.is_worker_alive(0));
        let mut recovered = None;
        for _ in 0..2 {
            recovered = Some(deployment.run_round(round));
            step_farm(&farm, 8);
            round += 1;
        }
        let recovered = recovered.expect("two recovery rounds ran");
        assert!(
            recovered
                .budget(dead_cut)
                .unwrap()
                .approx_eq(healthy.budget(dead_cut).unwrap(), Watts::new(10.0)),
            "cut budget should recover to ~{} within 2 rounds, got {}",
            healthy.budget(dead_cut).unwrap(),
            recovered.budget(dead_cut).unwrap()
        );
        assert!(
            !recovered.failsafe_cuts.contains(&dead_cut),
            "a recovered cut must leave the fail-safe set"
        );
        deployment.shutdown();
    }

    #[test]
    fn respawn_respects_backoff_and_aliveness() {
        let (_, farm, trees) = fig2_shared_farm();
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
            DeploymentConfig {
                respawn_backoff: Duration::from_secs(3600),
                ..DeploymentConfig::default()
            },
        );
        // Alive workers cannot be respawned; out-of-range is rejected.
        assert!(!deployment.respawn_worker(0));
        assert!(!deployment.respawn_worker(99));
        deployment.kill_worker(0);
        assert!(!deployment.is_worker_alive(0));
        // First attempt goes through immediately…
        assert!(deployment.respawn_worker(0));
        deployment.kill_worker(0);
        // …the second is throttled by the (here: huge) backoff.
        assert!(
            !deployment.respawn_worker(0),
            "second respawn must wait out the backoff"
        );
        deployment.shutdown();
    }

    #[test]
    fn never_reported_cut_is_budgeted_fail_safe_not_empty() {
        let (_, farm, trees) = fig2_shared_farm();
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
            DeploymentConfig::default(),
        );
        // Kill worker 0 before any round: its cuts never report.
        deployment.kill_worker(0);
        let outcome = deployment.run_round(0);
        assert_eq!(outcome.cut_budgets.len(), 2);
        let dead_cut: CutId = deployment.assignments[0].cuts[0].0;
        assert!(outcome.failsafe_cuts.contains(&dead_cut));
        // Fail-safe, not zero: the blind cut still gets ≥ its cap_min sum
        // … well, ≥ something clearly non-zero.
        assert!(
            outcome.budget(dead_cut).unwrap() > Watts::new(100.0),
            "never-reported cut should receive a fail-safe budget, got {}",
            outcome.budget(dead_cut).unwrap()
        );
        deployment.shutdown();
    }

    #[test]
    fn set_root_budgets_applies_next_round() {
        let (_, farm, trees) = fig2_shared_farm();
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
            DeploymentConfig::default(),
        );
        let wide = deployment.run_round(0);
        deployment.set_root_budgets(vec![Watts::new(1100.0)]);
        let narrow = deployment.run_round(1);
        let wide_total: f64 = wide.cut_budgets.iter().map(|(_, b)| b.as_f64()).sum();
        let narrow_total: f64 = narrow.cut_budgets.iter().map(|(_, b)| b.as_f64()).sum();
        assert!(
            narrow_total < wide_total,
            "tighter root budget must shrink cut budgets ({narrow_total} vs {wide_total})"
        );
        deployment.shutdown();
    }
}
