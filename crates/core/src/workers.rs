//! Distributed rack-/room-worker deployment of the control plane
//! (paper §5).
//!
//! The production CapMaestro prototype groups controllers into *worker VMs*:
//! rack-level workers own the capping controllers and the lowest (CDU-level)
//! shifting controllers; a room-level worker owns everything above, up to
//! the contractual budget. Each control period, priority-summarized metrics
//! flow rack → room and budgets flow room → rack.
//!
//! This module reproduces that deployment with one OS thread per rack
//! worker and crossbeam channels as the transport. The *cut* between room
//! and rack workers is the set of leaf-parent nodes of each control tree
//! (the CDU-level shifting controllers). Decisions are identical to the
//! synchronous [`crate::plane::ControlPlane`] running the same policy
//! without SPO — a property the tests assert — but sensing, metrics
//! computation, and cap enforcement run concurrently per rack.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use capmaestro_topology::{ServerId, SupplyIndex};
use capmaestro_units::{Ratio, Watts};

use crate::budget::{split_budget, split_budget_into, SplitScratch};
use crate::capping::CappingController;
use crate::estimator::DemandEstimator;
use crate::metrics::{LeafInput, PriorityMetrics};
use crate::obs::{names, null_recorder, Recorder};
use crate::policy::{CappingPolicy, NodeContext, PolicyKind, PriorityVisibility};
use crate::tree::ControlTree;

/// Identifies a cut node: `(tree index, spec node index)`.
pub type CutId = (usize, usize);

/// Tunables of the distributed deployment, passed to
/// [`WorkerDeployment::spawn`]. Real deployments tune these against their
/// control period; tests shrink them to keep fault scenarios fast.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// How long the room worker waits for rack metrics each round before
    /// budgeting from stale data.
    pub gather_timeout: Duration,
    /// Base delay between [`WorkerDeployment::respawn_worker`] attempts
    /// for the same worker; doubles per consecutive attempt (capped at
    /// `base × 2⁶`) until the worker reports again.
    pub respawn_backoff: Duration,
    /// Consecutive rounds a cut node may miss reporting before the room
    /// worker stops trusting its frozen metrics and budgets it from
    /// fail-safe metrics (every leaf at its `cap_min`) instead. Rounds
    /// 1..N are the stale-hold bridge.
    pub stale_after_rounds: u64,
    /// Where the deployment reports its respawn / gather-timeout counters
    /// and fail-safe-cut gauge. Defaults to [`NullRecorder`]
    /// (no-op); attach a [`MetricsRegistry`] to export.
    ///
    /// [`NullRecorder`]: crate::obs::NullRecorder
    /// [`MetricsRegistry`]: crate::obs::MetricsRegistry
    pub recorder: Arc<dyn Recorder>,
}

impl Default for DeploymentConfig {
    fn default() -> Self {
        DeploymentConfig {
            gather_timeout: Duration::from_millis(500),
            respawn_backoff: Duration::from_millis(500),
            stale_after_rounds: 3,
            recorder: null_recorder(),
        }
    }
}

impl PartialEq for DeploymentConfig {
    fn eq(&self, other: &Self) -> bool {
        self.gather_timeout == other.gather_timeout
            && self.respawn_backoff == other.respawn_backoff
            && self.stale_after_rounds == other.stale_after_rounds
            && Arc::ptr_eq(&self.recorder, &other.recorder)
    }
}

impl DeploymentConfig {
    /// Returns the config with the gather timeout replaced.
    #[must_use]
    pub fn with_gather_timeout(mut self, timeout: Duration) -> Self {
        self.gather_timeout = timeout;
        self
    }

    /// Returns the config with the respawn backoff base replaced.
    #[must_use]
    pub fn with_respawn_backoff(mut self, backoff: Duration) -> Self {
        self.respawn_backoff = backoff;
        self
    }

    /// Returns the config with the stale-hold round budget replaced.
    #[must_use]
    pub fn with_stale_after_rounds(mut self, rounds: u64) -> Self {
        self.stale_after_rounds = rounds;
        self
    }

    /// Returns the config with the metrics recorder replaced.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }
}

/// A farm shared between rack workers, guarded by a read-write lock —
/// the stand-in for the IPMI transport to real hardware.
pub type SharedFarm = Arc<RwLock<crate::plane::Farm>>;

/// Wraps a [`crate::plane::Farm`] for sharing with rack workers.
pub fn shared_farm(farm: crate::plane::Farm) -> SharedFarm {
    Arc::new(RwLock::new(farm))
}

#[derive(Debug)]
enum UpMsg {
    Metrics {
        worker: usize,
        round: u64,
        metrics: Vec<(CutId, PriorityMetrics)>,
    },
}

#[derive(Debug)]
enum DownMsg {
    /// Sense, estimate, and report metrics for round `round`.
    Gather { round: u64 },
    /// Budgets for this worker's cut nodes; split and enforce.
    Budgets { budgets: Vec<(CutId, Watts)> },
    Shutdown,
}

/// Static description of one rack worker's responsibility: a set of cut
/// nodes (CDU-level shifting controllers) and, implicitly, the leaves
/// below them.
/// A leaf binding beneath a cut node: `(leaf spec index, server, supply)`.
type LeafBinding = (usize, ServerId, SupplyIndex);

#[derive(Debug, Clone)]
struct RackAssignment {
    /// For each cut node: its id and the leaf bindings beneath it.
    cuts: Vec<(CutId, Vec<LeafBinding>)>,
}

/// The distributed deployment: a room worker (caller thread) plus rack
/// worker threads.
///
/// # Examples
///
/// See [`WorkerDeployment::run_rounds`] usage in the crate tests and the
/// `priority_capping` example.
#[derive(Debug)]
pub struct WorkerDeployment {
    trees: Vec<ControlTree>,
    root_budgets: Vec<Watts>,
    policy: PolicyKind,
    farm: SharedFarm,
    config: DeploymentConfig,
    handles: Vec<JoinHandle<()>>,
    /// `None` marks a worker known to be dead (killed via
    /// [`WorkerDeployment::kill_worker`] or observed unreachable): gather
    /// must not wait on it, or every round eats the full gather timeout.
    to_workers: Vec<Option<Sender<DownMsg>>>,
    from_workers: Receiver<UpMsg>,
    /// Kept to hand to respawned workers.
    up_tx: Sender<UpMsg>,
    /// Cut node ids per tree, in spec order.
    cuts_per_tree: Vec<Vec<usize>>,
    /// Each worker's static responsibility, kept so
    /// [`WorkerDeployment::respawn_worker`] can restart a dead worker with
    /// the assignment it held.
    assignments: Vec<RackAssignment>,
    worker_count: usize,
    /// Freshest metrics seen per cut node (stale-hold fault tolerance).
    last_cut_metrics: HashMap<CutId, PriorityMetrics>,
    /// The round at which each cut node last reported, driving the
    /// stale-hold → fail-safe degradation.
    last_report_round: HashMap<CutId, u64>,
    /// Consecutive respawn attempts per worker since it last reported.
    respawn_attempts: Vec<u32>,
    /// Earliest instant the next respawn attempt per worker is allowed.
    respawn_not_before: Vec<Instant>,
}

/// Returns the leaf-parent (cut) node indices of a tree spec.
fn cut_nodes(tree: &ControlTree) -> Vec<usize> {
    let spec = tree.spec();
    (0..spec.len())
        .filter(|&idx| {
            let node = spec.node(idx);
            !node.children.is_empty()
                && node.children.iter().all(|&c| spec.node(c).is_leaf())
        })
        .collect()
}

impl WorkerDeployment {
    /// Spawns `worker_count` rack workers over the given trees, budgets,
    /// and shared farm. Cut nodes are distributed round-robin across
    /// workers (a real deployment groups them by rack; the grouping does
    /// not change the decisions).
    ///
    /// # Panics
    ///
    /// Panics if `worker_count == 0` or tree/budget counts differ.
    pub fn spawn(
        trees: Vec<ControlTree>,
        root_budgets: Vec<Watts>,
        policy: PolicyKind,
        farm: SharedFarm,
        worker_count: usize,
        config: DeploymentConfig,
    ) -> Self {
        assert!(worker_count > 0, "at least one rack worker is required");
        assert_eq!(
            trees.len(),
            root_budgets.len(),
            "one root budget per control tree is required"
        );

        let cuts_per_tree: Vec<Vec<usize>> = trees.iter().map(cut_nodes).collect();

        // Round-robin cut nodes over workers.
        let mut assignments: Vec<RackAssignment> = (0..worker_count)
            .map(|_| RackAssignment { cuts: Vec::new() })
            .collect();
        let mut rr = 0usize;
        for (t, tree) in trees.iter().enumerate() {
            for &cut in &cuts_per_tree[t] {
                let spec = tree.spec();
                let leaves: Vec<LeafBinding> = spec
                    .node(cut)
                    .children
                    .iter()
                    .map(|&c| {
                        let leaf = spec.node(c).leaf.expect("cut children are leaves");
                        (c, leaf.server, leaf.supply)
                    })
                    .collect();
                assignments[rr % worker_count]
                    .cuts
                    .push(((t, cut), leaves));
                rr += 1;
            }
        }

        let (up_tx, from_workers) = unbounded::<UpMsg>();
        let mut to_workers = Vec::with_capacity(worker_count);
        let mut handles = Vec::with_capacity(worker_count);
        for (w, assignment) in assignments.iter().enumerate() {
            let (down_tx, down_rx) = unbounded::<DownMsg>();
            to_workers.push(Some(down_tx));
            let up = up_tx.clone();
            let farm = Arc::clone(&farm);
            let trees = trees.clone();
            let assignment = assignment.clone();
            handles.push(
                thread::Builder::new()
                    .name(format!("rack-worker-{w}"))
                    .spawn(move || {
                        rack_worker_loop(w, assignment, trees, policy, farm, up, down_rx)
                    })
                    .expect("spawning a rack worker thread"),
            );
        }

        let now = Instant::now();
        WorkerDeployment {
            trees,
            root_budgets,
            policy,
            farm,
            config,
            handles,
            to_workers,
            from_workers,
            up_tx,
            cuts_per_tree,
            assignments,
            worker_count,
            last_cut_metrics: HashMap::new(),
            last_report_round: HashMap::new(),
            respawn_attempts: vec![0; worker_count],
            respawn_not_before: vec![now; worker_count],
        }
    }

    /// The deployment's configuration.
    pub fn config(&self) -> &DeploymentConfig {
        &self.config
    }

    /// Number of rack workers.
    pub fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// Runs one control round: gather (rack, parallel) → upper-tree
    /// aggregation + budgeting (room) → enforce (rack, parallel).
    /// Returns the budgets assigned to each cut node.
    ///
    /// **Fault tolerance — the degradation ladder.** A rack worker that
    /// does not answer within the configured gather timeout is skipped for
    /// the round; for up to `stale_after_rounds` rounds the room worker
    /// budgets its cut nodes from the *last metrics it reported*
    /// (stale-hold), so one sick VM cannot stall capping for the whole
    /// data center. Beyond that, the frozen metrics can no longer be
    /// trusted — a stuck sensor looks exactly like this — and the cut is
    /// budgeted from **fail-safe metrics**: every leaf at its `cap_min`
    /// demand. Cut nodes that have never reported are budgeted fail-safe
    /// from the first round.
    pub fn run_round(&mut self, round: u64) -> HashMap<CutId, Watts> {
        // Phase 1: gather. A send error means the worker is gone — mark it
        // dead so no later round waits on it, and rely on its cached
        // metrics below.
        let mut expected = 0usize;
        for slot in &mut self.to_workers {
            let Some(tx) = slot else {
                continue;
            };
            if tx.send(DownMsg::Gather { round }).is_ok() {
                expected += 1;
            } else {
                *slot = None;
            }
        }
        let deadline = Instant::now() + self.config.gather_timeout;
        let mut reported = vec![false; self.worker_count];
        let mut answers = 0usize;
        while answers < expected {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                break;
            }
            match self.from_workers.recv_timeout(remaining) {
                Ok(UpMsg::Metrics {
                    worker,
                    round: r,
                    metrics,
                }) => {
                    self.respawn_attempts[worker] = 0;
                    if r != round {
                        // A late answer to an earlier round: its metrics
                        // are still fresher than whatever we hold.
                        for (cut, m) in metrics {
                            self.last_cut_metrics.insert(cut, m);
                            self.last_report_round.insert(cut, r);
                        }
                        continue;
                    }
                    if !reported[worker] {
                        reported[worker] = true;
                        answers += 1;
                    }
                    for (cut, m) in metrics {
                        self.last_cut_metrics.insert(cut, m);
                        self.last_report_round.insert(cut, round);
                    }
                }
                Err(_) => break, // timeout or all senders dropped
            }
        }
        if answers < expected {
            self.config
                .recorder
                .counter_add(names::WORKER_GATHER_TIMEOUTS_TOTAL, 1);
        }

        // Phase 2: the room worker allocates over each tree's upper part,
        // treating cut nodes as pseudo-leaves with the freshest metrics it
        // holds — or fail-safe metrics for cuts past the staleness
        // threshold.
        let effective = self.effective_cut_metrics(round);
        let mut cut_budgets: HashMap<CutId, Watts> = HashMap::new();
        let policy = self.policy.policy();
        for (t, tree) in self.trees.iter().enumerate() {
            let budgets = room_allocate_upper(
                tree,
                &self.cuts_per_tree[t],
                |cut| {
                    effective
                        .get(&(t, cut))
                        .cloned()
                        .unwrap_or_else(PriorityMetrics::empty)
                },
                self.root_budgets[t],
                policy.as_ref(),
            );
            for (cut, b) in budgets {
                cut_budgets.insert((t, cut), b);
            }
        }

        // Phase 3: enforce (dead workers silently miss their budgets; their
        // servers hold the last cap they were given — fail-safe).
        for tx in self.to_workers.iter().flatten() {
            let _ = tx.send(DownMsg::Budgets {
                budgets: cut_budgets.iter().map(|(&c, &b)| (c, b)).collect(),
            });
        }
        cut_budgets
    }

    /// The metrics the room worker will trust per cut node at `round`:
    /// the freshest report while within `stale_after_rounds`, fail-safe
    /// metrics (every leaf pinned to its `cap_min` demand) beyond — a
    /// dead worker's frozen report is indistinguishable from a stuck
    /// sensor, so after the bridge the room stops believing it.
    fn effective_cut_metrics(&self, round: u64) -> HashMap<CutId, PriorityMetrics> {
        let policy = self.policy.policy();
        let mut out = HashMap::new();
        let mut failsafe_cuts: u64 = 0;
        let mut farm_guard: Option<std::sync::RwLockReadGuard<'_, crate::plane::Farm>> =
            None;
        for assignment in &self.assignments {
            for (cut, leaves) in &assignment.cuts {
                let fresh_enough = self
                    .last_report_round
                    .get(cut)
                    .is_some_and(|&r| round.saturating_sub(r) < self.config.stale_after_rounds);
                if fresh_enough {
                    if let Some(m) = self.last_cut_metrics.get(cut) {
                        out.insert(*cut, m.clone());
                        continue;
                    }
                }
                // Fail-safe: rebuild the cut's metrics from the topology
                // and PSU state alone, demanding only cap_min per leaf.
                failsafe_cuts += 1;
                let farm = farm_guard.get_or_insert_with(|| self.farm.read());
                let (t, cut_idx) = *cut;
                let spec = self.trees[t].spec();
                let mut children = Vec::with_capacity(leaves.len());
                for &(leaf_idx, server, supply) in leaves {
                    let leaf = spec.node(leaf_idx).leaf.expect("leaf");
                    let Some(srv) = farm.get(server) else {
                        continue;
                    };
                    let model = srv.config().model();
                    let shares = srv.bank().effective_shares();
                    let share = shares
                        .get(supply.index())
                        .copied()
                        .unwrap_or(Ratio::ZERO);
                    children.push(PriorityMetrics::from_leaf(&LeafInput {
                        demand: model.cap_min(),
                        cap_min: model.cap_min(),
                        cap_max: model.cap_max(),
                        share,
                        priority: leaf.priority,
                    }));
                }
                let ctx = NodeContext {
                    is_leaf_parent: true,
                    depth: 0,
                };
                let children = match policy.visibility(ctx) {
                    PriorityVisibility::Full => children,
                    PriorityVisibility::Blind => {
                        children.iter().map(PriorityMetrics::collapsed).collect()
                    }
                };
                out.insert(
                    *cut,
                    PriorityMetrics::aggregate(children.iter(), spec.node(cut_idx).limit),
                );
            }
        }
        if self.config.recorder.enabled() {
            self.config
                .recorder
                .gauge_set(names::WORKER_FAILSAFE_CUTS, failsafe_cuts as f64);
        }
        out
    }

    /// Whether a worker's channel is still open (it has not been killed or
    /// observed dead).
    pub fn is_worker_alive(&self, worker: usize) -> bool {
        self.to_workers.get(worker).is_some_and(Option::is_some)
    }

    /// Restarts a dead rack worker with the assignment it held. Returns
    /// `false` without side effects when the worker is still alive, the
    /// index is out of range, or the exponential backoff since the last
    /// attempt has not elapsed yet (`respawn_backoff × 2^attempts`,
    /// attempts capped at 6 and reset when the worker reports).
    ///
    /// The respawned worker starts with empty estimators and controllers —
    /// exactly like a replacement VM — so its demand estimates rebuild
    /// from the first gather after the respawn.
    pub fn respawn_worker(&mut self, worker: usize) -> bool {
        if worker >= self.worker_count || self.is_worker_alive(worker) {
            return false;
        }
        let now = Instant::now();
        if now < self.respawn_not_before[worker] {
            return false;
        }
        let attempts = self.respawn_attempts[worker];
        let backoff = self.config.respawn_backoff * 2u32.saturating_pow(attempts.min(6));
        self.respawn_not_before[worker] = now + backoff;
        self.respawn_attempts[worker] = attempts.saturating_add(1);

        let (down_tx, down_rx) = unbounded::<DownMsg>();
        let up = self.up_tx.clone();
        let farm = Arc::clone(&self.farm);
        let trees = self.trees.clone();
        let assignment = self.assignments[worker].clone();
        let policy = self.policy;
        self.handles.push(
            thread::Builder::new()
                .name(format!("rack-worker-{worker}-respawn"))
                .spawn(move || {
                    rack_worker_loop(worker, assignment, trees, policy, farm, up, down_rx)
                })
                .expect("spawning a rack worker thread"),
        );
        self.to_workers[worker] = Some(down_tx);
        self.config
            .recorder
            .counter_add(names::WORKER_RESPAWNS_TOTAL, 1);
        true
    }

    /// Shuts one rack worker down (for fault-injection tests and rolling
    /// maintenance). Subsequent rounds hold its last metrics.
    ///
    /// The worker's `Sender` is dropped immediately after the `Shutdown` is
    /// queued: the worker drains its queue and exits, and — critically —
    /// gather never again counts it as expected. Before this, a killed
    /// worker's channel kept accepting `Gather` messages, so every later
    /// round blocked for the full gather timeout waiting on a reply that
    /// could never come.
    pub fn kill_worker(&mut self, worker: usize) {
        if let Some(slot) = self.to_workers.get_mut(worker) {
            if let Some(tx) = slot.take() {
                let _ = tx.send(DownMsg::Shutdown);
            }
        }
    }

    /// Runs `rounds` control periods, stepping the farm `seconds_per_round`
    /// simulated seconds between rounds (the physical world keeps moving
    /// while controllers deliberate).
    pub fn run_rounds(&mut self, rounds: u64, seconds_per_round: u32) {
        for round in 0..rounds {
            self.run_round(round);
            let mut farm = self.farm.write();
            for _ in 0..seconds_per_round {
                farm.step_all(capmaestro_units::Seconds::new(1.0));
            }
        }
    }

    /// Shuts the workers down and joins their threads.
    pub fn shutdown(mut self) {
        for tx in self.to_workers.iter().flatten() {
            let _ = tx.send(DownMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Room-side allocation over the upper part of one tree: every node except
/// strict descendants of cut nodes, with cut nodes as pseudo-leaves.
/// Returns `(cut node, budget)` pairs.
fn room_allocate_upper(
    tree: &ControlTree,
    cuts: &[usize],
    mut metrics_of_cut: impl FnMut(usize) -> PriorityMetrics,
    root_budget: Watts,
    policy: &dyn CappingPolicy,
) -> Vec<(usize, Watts)> {
    let spec = tree.spec();
    let n = spec.len();
    let is_cut: Vec<bool> = {
        let mut v = vec![false; n];
        for &c in cuts {
            v[c] = true;
        }
        v
    };
    // A node is "upper" if no proper ancestor is a cut node.
    let mut upper = vec![false; n];
    for idx in 0..n {
        match spec.node(idx).parent {
            None => upper[idx] = true,
            Some(p) => upper[idx] = upper[p] && !is_cut[p],
        }
    }

    // Gather metrics bottom-up over upper nodes.
    let mut metrics: Vec<Option<PriorityMetrics>> = vec![None; n];
    let mut depths = vec![0usize; n];
    for idx in 0..n {
        if let Some(p) = spec.node(idx).parent {
            depths[idx] = depths[p] + 1;
        }
    }
    for idx in (0..n).rev() {
        if !upper[idx] {
            continue;
        }
        if is_cut[idx] {
            metrics[idx] = Some(metrics_of_cut(idx));
            continue;
        }
        if spec.node(idx).is_leaf() {
            // A leaf directly under the upper tree (no CDU level): treat
            // it as its own cut with empty metrics — deployments should
            // avoid this, but stay total.
            metrics[idx] = Some(PriorityMetrics::empty());
            continue;
        }
        let ctx = NodeContext {
            is_leaf_parent: false,
            depth: depths[idx],
        };
        let visibility = policy.visibility(ctx);
        let children: Vec<PriorityMetrics> = spec
            .node(idx)
            .children
            .iter()
            .map(|&c| {
                let m = metrics[c].clone().expect("children computed first");
                match visibility {
                    PriorityVisibility::Full => m,
                    PriorityVisibility::Blind => m.collapsed(),
                }
            })
            .collect();
        metrics[idx] = Some(PriorityMetrics::aggregate(
            children.iter(),
            spec.node(idx).limit,
        ));
    }

    // Budget top-down to the cut nodes.
    let mut budgets = vec![Watts::ZERO; n];
    let root = spec.root();
    let root_limit = spec.node(root).limit.unwrap_or(root_budget);
    budgets[root] = root_budget.min(root_limit);
    let mut out = Vec::with_capacity(cuts.len());
    for idx in 0..n {
        if !upper[idx] {
            continue;
        }
        if is_cut[idx] {
            out.push((idx, budgets[idx]));
            continue;
        }
        let node = spec.node(idx);
        if node.children.is_empty() {
            continue;
        }
        let ctx = NodeContext {
            is_leaf_parent: false,
            depth: depths[idx],
        };
        let visibility = policy.visibility(ctx);
        let children_metrics: Vec<PriorityMetrics> = node
            .children
            .iter()
            .map(|&c| {
                let m = metrics[c].clone().expect("computed");
                match visibility {
                    PriorityVisibility::Full => m,
                    PriorityVisibility::Blind => m.collapsed(),
                }
            })
            .collect();
        let split = split_budget(budgets[idx], &children_metrics);
        for (&child, b) in node.children.iter().zip(&split.budgets) {
            budgets[child] = *b;
        }
    }
    out
}

/// The rack worker body: senses its servers, reports cut metrics, splits
/// received budgets to leaves, and drives the capping controllers.
fn rack_worker_loop(
    worker: usize,
    assignment: RackAssignment,
    trees: Vec<ControlTree>,
    policy: PolicyKind,
    farm: SharedFarm,
    up: Sender<UpMsg>,
    down: Receiver<DownMsg>,
) {
    let policy = policy.policy();
    let mut estimators: HashMap<ServerId, DemandEstimator> = HashMap::new();
    let mut controllers: HashMap<ServerId, CappingController> = HashMap::new();
    // Leaf metrics computed during gather, reused at budget time.
    let mut leaf_metrics: HashMap<(CutId, usize), PriorityMetrics> = HashMap::new();
    // Budgets accumulated per server across this worker's cut nodes.
    let mut round_budgets: HashMap<ServerId, Vec<(SupplyIndex, Watts)>> = HashMap::new();
    // Reusable budget-split buffers: the worker thread is long-lived, so
    // the per-cut split borrows these instead of allocating every round.
    let mut split_scratch = SplitScratch::default();
    let mut split_budgets: Vec<Watts> = Vec::new();

    while let Ok(msg) = down.recv() {
        match msg {
            DownMsg::Gather { round } => {
                leaf_metrics.clear();
                round_budgets.clear();
                let mut out = Vec::with_capacity(assignment.cuts.len());
                let farm = farm.read();
                for (cut, leaves) in &assignment.cuts {
                    let (t, cut_idx) = *cut;
                    let spec = trees[t].spec();
                    let mut children = Vec::with_capacity(leaves.len());
                    for &(leaf_idx, server, _) in leaves {
                        let leaf = spec.node(leaf_idx).leaf.expect("leaf");
                        let Some(srv) = farm.get(server) else {
                            continue;
                        };
                        let snap = srv.sense();
                        let est = estimators.entry(server).or_default();
                        est.push(snap.throttle, snap.total_ac);
                        let model = srv.config().model();
                        let demand = est
                            .estimate_with_idle(model.idle())
                            .unwrap_or(snap.total_ac)
                            .clamp(model.idle(), model.cap_max());
                        let shares = srv.bank().effective_shares();
                        let share = shares
                            .get(leaf.supply.index())
                            .copied()
                            .unwrap_or(Ratio::ZERO);
                        let m = PriorityMetrics::from_leaf(&LeafInput {
                            demand: demand.max(model.cap_min()),
                            cap_min: model.cap_min(),
                            cap_max: model.cap_max(),
                            share,
                            priority: leaf.priority,
                        });
                        leaf_metrics.insert((*cut, leaf_idx), m.clone());
                        children.push(m);
                    }
                    let ctx = NodeContext {
                        is_leaf_parent: true,
                        depth: 0,
                    };
                    let children = match policy.visibility(ctx) {
                        PriorityVisibility::Full => children,
                        PriorityVisibility::Blind => {
                            children.iter().map(PriorityMetrics::collapsed).collect()
                        }
                    };
                    let aggregated = PriorityMetrics::aggregate(
                        children.iter(),
                        spec.node(cut_idx).limit,
                    );
                    out.push((*cut, aggregated));
                }
                drop(farm);
                // The room side being gone is a normal shutdown order, not
                // a rack-worker bug: exit the loop instead of panicking
                // (and aborting the whole process in release builds).
                if up
                    .send(UpMsg::Metrics {
                        worker,
                        round,
                        metrics: out,
                    })
                    .is_err()
                {
                    break;
                }
            }
            DownMsg::Budgets { budgets } => {
                // Split each of our cut budgets to leaves.
                for (cut, leaves) in &assignment.cuts {
                    let Some(&(_, budget)) =
                        budgets.iter().find(|(c, _)| c == cut)
                    else {
                        continue;
                    };
                    let children_metrics: Vec<PriorityMetrics> = leaves
                        .iter()
                        .map(|&(leaf_idx, _, _)| {
                            leaf_metrics
                                .get(&(*cut, leaf_idx))
                                .cloned()
                                .unwrap_or_else(PriorityMetrics::empty)
                        })
                        .collect();
                    let ctx = NodeContext {
                        is_leaf_parent: true,
                        depth: 0,
                    };
                    let children_metrics: Vec<PriorityMetrics> =
                        match policy.visibility(ctx) {
                            PriorityVisibility::Full => children_metrics,
                            PriorityVisibility::Blind => children_metrics
                                .iter()
                                .map(PriorityMetrics::collapsed)
                                .collect(),
                        };
                    split_budget_into(
                        budget,
                        &children_metrics,
                        &mut split_scratch,
                        &mut split_budgets,
                    );
                    for (&(_, server, supply), b) in leaves.iter().zip(&split_budgets) {
                        round_budgets
                            .entry(server)
                            .or_default()
                            .push((supply, *b));
                    }
                }
                // Enforce caps on our servers.
                let mut farm = farm.write();
                for (&server, supply_budgets) in &round_budgets {
                    let Some(mut srv) = farm.get_mut(server) else {
                        continue;
                    };
                    let snap = srv.sense();
                    let covered = supply_budgets
                        .iter()
                        .filter(|&&(supply, _)| {
                            srv.bank().effective_share(supply.index()).as_f64() > 0.0
                        })
                        .count();
                    if covered == 0 {
                        continue;
                    }
                    let model = srv.config().model();
                    let controller = controllers.entry(server).or_insert_with(|| {
                        CappingController::new(
                            model.cap_min(),
                            model.cap_max(),
                            srv.bank().efficiency(),
                        )
                    });
                    let cap =
                        controller.update_pairs(supply_budgets.iter().filter_map(
                            |&(supply, b)| {
                                let idx = supply.index();
                                if srv.bank().effective_share(idx).as_f64() > 0.0 {
                                    Some((b, snap.supply_ac[idx]))
                                } else {
                                    None
                                }
                            },
                        ));
                    srv.set_dc_cap(cap);
                }
            }
            DownMsg::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::Farm;
    use capmaestro_server::{Server, ServerConfig};
    use capmaestro_topology::presets::figure2_feed;
    use capmaestro_units::Seconds;

    fn fig2_shared_farm() -> (capmaestro_topology::Topology, SharedFarm, Vec<ControlTree>) {
        let topo = figure2_feed();
        let trees: Vec<ControlTree> = topo
            .control_tree_specs()
            .into_iter()
            .map(ControlTree::new)
            .collect();
        let mut farm = Farm::new();
        for (id, _) in topo.servers() {
            let mut server = Server::new(ServerConfig::paper_default().single_corded());
            server.set_offered_demand(Watts::new(420.0));
            server.settle();
            farm.insert(id, server);
        }
        (topo, Arc::new(RwLock::new(farm)), trees)
    }

    #[test]
    fn cut_nodes_are_leaf_parents() {
        let (_, _, trees) = fig2_shared_farm();
        let cuts = cut_nodes(&trees[0]);
        // Fig. 2: left and right CBs.
        assert_eq!(cuts.len(), 2);
        for cut in cuts {
            let node = trees[0].spec().node(cut);
            assert!(node
                .children
                .iter()
                .all(|&c| trees[0].spec().node(c).is_leaf()));
        }
    }

    #[test]
    fn distributed_rounds_protect_high_priority() {
        let (topo, farm, trees) = fig2_shared_farm();
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
            DeploymentConfig::default(),
        );
        deployment.run_rounds(10, 8);
        deployment.shutdown();

        let farm = farm.read();
        let sa = topo.server_by_name("SA").unwrap();
        let sb = topo.server_by_name("SB").unwrap();
        assert!(
            farm.get(sa).unwrap().performance_fraction().as_f64() > 0.95,
            "SA perf {}",
            farm.get(sa).unwrap().performance_fraction()
        );
        assert!(farm.get(sb).unwrap().sense().total_ac < Watts::new(310.0));
        let total: Watts = farm.iter().map(|(_, s)| s.sense().total_ac).sum();
        assert!(total <= Watts::new(1240.0) * 1.02, "total {total}");
    }

    #[test]
    fn distributed_matches_synchronous_budgets() {
        // The same scenario through the threaded deployment and the
        // synchronous plane (SPO off) must produce the same cut budgets.
        let (topo, farm, trees) = fig2_shared_farm();

        // Synchronous reference.
        let mut sync_farm = Farm::new();
        for (id, _) in topo.servers() {
            let mut server = Server::new(ServerConfig::paper_default().single_corded());
            server.set_offered_demand(Watts::new(420.0));
            server.settle();
            sync_farm.insert(id, server);
        }
        let mut plane = crate::plane::ControlPlane::new(
            trees.clone(),
            vec![Watts::new(1240.0)],
            crate::plane::PlaneConfig::default()
                .with_policy(PolicyKind::GlobalPriority)
                .with_spo(false)
                .with_control_period(Seconds::new(8.0)),
        );
        plane.record_sample(&sync_farm);
        let report = plane.round(&mut sync_farm).clone();

        let mut deployment = WorkerDeployment::spawn(
            trees.clone(),
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
            DeploymentConfig::default(),
        );
        let cut_budgets = deployment.run_round(0);
        deployment.shutdown();

        // Compare the budgets at each cut node (left/right CB).
        for ((t, cut), budget) in cut_budgets {
            assert_eq!(t, 0);
            let reference = report.allocations[0].node_budget(cut);
            assert!(
                budget.approx_eq(reference, Watts::new(1e-6)),
                "cut {cut}: distributed {budget} vs sync {reference}"
            );
        }
    }

    #[test]
    fn dead_worker_does_not_stall_the_room() {
        let (_, farm, trees) = fig2_shared_farm();
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
            DeploymentConfig::default(),
        );
        // A healthy first round caches every cut's metrics.
        let healthy = deployment.run_round(0);
        assert_eq!(healthy.len(), 2);

        // Kill one rack worker; the next round must still produce budgets
        // for ALL cut nodes, from the stale cache, without hanging.
        deployment.kill_worker(0);
        let degraded = deployment.run_round(1);
        assert_eq!(degraded.len(), 2, "stale-hold must cover the dead worker's cuts");
        for (cut, budget) in &healthy {
            let after = degraded[cut];
            assert!(
                after.approx_eq(*budget, Watts::new(1.0)),
                "cut {cut:?} budget changed {budget} -> {after} with frozen metrics"
            );
        }
        deployment.shutdown();
    }

    #[test]
    fn killed_worker_rounds_skip_the_gather_timeout() {
        // Regression: kill_worker used to leave the dead worker's Sender in
        // place, so `send(Gather)` kept succeeding and every subsequent
        // round blocked for the full gather timeout waiting on a reply the
        // dead worker could never produce.
        let (_, farm, trees) = fig2_shared_farm();
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
            DeploymentConfig::default(),
        );
        deployment.run_round(0);
        deployment.kill_worker(0);
        let start = std::time::Instant::now();
        let degraded = deployment.run_round(1);
        let elapsed = start.elapsed();
        assert_eq!(degraded.len(), 2);
        // The surviving worker answers in microseconds; leave generous CI
        // slack while staying far below the 500 ms stale-hold timeout.
        assert!(
            elapsed < deployment.config().gather_timeout / 2,
            "degraded round took {elapsed:?}; dead worker still counted as expected"
        );
        deployment.shutdown();
    }

    #[test]
    fn worker_count_respected() {
        let (_, farm, trees) = fig2_shared_farm();
        let deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::NoPriority,
            farm,
            3,
            DeploymentConfig::default(),
        );
        assert_eq!(deployment.worker_count(), 3);
        deployment.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one rack worker")]
    fn zero_workers_panics() {
        let (_, farm, trees) = fig2_shared_farm();
        let _ = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::NoPriority,
            farm,
            0,
            DeploymentConfig::default(),
        );
    }

    /// Steps the shared farm `seconds` simulated seconds.
    fn step_farm(farm: &SharedFarm, seconds: u32) {
        let mut farm = farm.write();
        for _ in 0..seconds {
            farm.step_all(Seconds::new(1.0));
        }
    }

    /// The combined stuck-sensor + dead-worker acceptance scenario: a dead
    /// worker's frozen metrics ARE a stuck sensor from the room's point of
    /// view. The affected cut must be stale-held first, clamped to
    /// fail-safe (Σ cap_min) after `stale_after_rounds`, and rejoin normal
    /// budgeting within 2 rounds of `respawn_worker`.
    #[test]
    fn stuck_metrics_degrade_to_fail_safe_and_recover_on_respawn() {
        let (_, farm, trees) = fig2_shared_farm();
        let config = DeploymentConfig {
            respawn_backoff: Duration::from_millis(1),
            ..DeploymentConfig::default()
        };
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
            config,
        );
        // Healthy rounds: estimators converge, budgets settle.
        let mut round = 0u64;
        let mut healthy = HashMap::new();
        for _ in 0..6 {
            healthy = deployment.run_round(round);
            step_farm(&farm, 8);
            round += 1;
        }
        // Worker 0 dies. Its servers' demand changes underneath it, so the
        // frozen metrics are provably wrong — exactly a stuck sensor.
        deployment.kill_worker(0);
        let dead_cut: CutId = deployment.assignments[0].cuts[0].0;
        let dead_servers: Vec<ServerId> = deployment.assignments[0]
            .cuts
            .iter()
            .flat_map(|(_, leaves)| leaves.iter().map(|&(_, s, _)| s))
            .collect();
        {
            let mut farm = farm.write();
            for &s in &dead_servers {
                farm.get_mut(s).unwrap().set_offered_demand(Watts::new(480.0));
            }
        }

        // Stale-hold bridge: budgets stay at the frozen (healthy) values.
        for _ in 0..deployment.config().stale_after_rounds - 1 {
            let held = deployment.run_round(round);
            step_farm(&farm, 8);
            round += 1;
            assert!(
                held[&dead_cut].approx_eq(healthy[&dead_cut], Watts::new(1.0)),
                "stale-hold should freeze the dead cut's budget"
            );
        }

        // Past the threshold: the cut is budgeted from fail-safe metrics —
        // each leaf demands only cap_min (270 W), so the cut's budget
        // collapses to ~Σ cap_min of its leaves.
        let degraded = deployment.run_round(round);
        step_farm(&farm, 8);
        round += 1;
        let cap_min_sum: Watts = {
            let farm = farm.read();
            dead_servers
                .iter()
                .map(|&s| farm.get(s).unwrap().config().model().cap_min())
                .sum()
        };
        let fail_safe_budget = degraded[&dead_cut];
        assert!(
            fail_safe_budget <= cap_min_sum + Watts::new(1.0),
            "fail-safe budget {fail_safe_budget} should collapse to ≤ Σ cap_min {cap_min_sum}"
        );
        assert!(
            fail_safe_budget < healthy[&dead_cut] - Watts::new(50.0),
            "fail-safe budget should be well below the healthy {}",
            healthy[&dead_cut]
        );

        // Respawn: the replacement worker reports real metrics (demand is
        // back at 420 W) and the cut rejoins normal budgeting within 2
        // rounds.
        {
            let mut farm = farm.write();
            for &s in &dead_servers {
                farm.get_mut(s).unwrap().set_offered_demand(Watts::new(420.0));
            }
        }
        assert!(deployment.respawn_worker(0), "respawn should succeed");
        assert!(deployment.is_worker_alive(0));
        let mut recovered = HashMap::new();
        for _ in 0..2 {
            recovered = deployment.run_round(round);
            step_farm(&farm, 8);
            round += 1;
        }
        assert!(
            recovered[&dead_cut].approx_eq(healthy[&dead_cut], Watts::new(10.0)),
            "cut budget should recover to ~{} within 2 rounds, got {}",
            healthy[&dead_cut],
            recovered[&dead_cut]
        );
        deployment.shutdown();
    }

    #[test]
    fn respawn_respects_backoff_and_aliveness() {
        let (_, farm, trees) = fig2_shared_farm();
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
            DeploymentConfig {
                respawn_backoff: Duration::from_secs(3600),
                ..DeploymentConfig::default()
            },
        );
        // Alive workers cannot be respawned; out-of-range is rejected.
        assert!(!deployment.respawn_worker(0));
        assert!(!deployment.respawn_worker(99));
        deployment.kill_worker(0);
        assert!(!deployment.is_worker_alive(0));
        // First attempt goes through immediately…
        assert!(deployment.respawn_worker(0));
        deployment.kill_worker(0);
        // …the second is throttled by the (here: huge) backoff.
        assert!(
            !deployment.respawn_worker(0),
            "second respawn must wait out the backoff"
        );
        deployment.shutdown();
    }

    #[test]
    fn never_reported_cut_is_budgeted_fail_safe_not_empty() {
        let (_, farm, trees) = fig2_shared_farm();
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
            DeploymentConfig::default(),
        );
        // Kill worker 0 before any round: its cuts never report.
        deployment.kill_worker(0);
        let budgets = deployment.run_round(0);
        assert_eq!(budgets.len(), 2);
        let dead_cut: CutId = deployment.assignments[0].cuts[0].0;
        // Fail-safe, not zero: the blind cut still gets ≥ its cap_min sum
        // … well, ≥ something clearly non-zero.
        assert!(
            budgets[&dead_cut] > Watts::new(100.0),
            "never-reported cut should receive a fail-safe budget, got {}",
            budgets[&dead_cut]
        );
        deployment.shutdown();
    }
}
