//! Distributed rack-/room-worker deployment of the control plane
//! (paper §5).
//!
//! The production CapMaestro prototype groups controllers into *worker VMs*:
//! rack-level workers own the capping controllers and the lowest (CDU-level)
//! shifting controllers; a room-level worker owns everything above, up to
//! the contractual budget. Each control period, priority-summarized metrics
//! flow rack → room and budgets flow room → rack.
//!
//! This module reproduces that deployment with one OS thread per rack
//! worker and crossbeam channels as the transport. The *cut* between room
//! and rack workers is the set of leaf-parent nodes of each control tree
//! (the CDU-level shifting controllers). Decisions are identical to the
//! synchronous [`crate::plane::ControlPlane`] running the same policy
//! without SPO — a property the tests assert — but sensing, metrics
//! computation, and cap enforcement run concurrently per rack.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;

use capmaestro_topology::{ServerId, SupplyIndex};
use capmaestro_units::{Ratio, Watts};

use crate::budget::split_budget;
use crate::capping::CappingController;
use crate::estimator::DemandEstimator;
use crate::metrics::{LeafInput, PriorityMetrics};
use crate::policy::{CappingPolicy, NodeContext, PolicyKind, PriorityVisibility};
use crate::tree::ControlTree;

/// Identifies a cut node: `(tree index, spec node index)`.
pub type CutId = (usize, usize);

/// How long the room worker waits for rack metrics before budgeting from
/// stale data (a real deployment tunes this against its control period).
pub const GATHER_TIMEOUT: std::time::Duration = std::time::Duration::from_millis(500);

/// A farm shared between rack workers, guarded by a read-write lock —
/// the stand-in for the IPMI transport to real hardware.
pub type SharedFarm = Arc<RwLock<crate::plane::Farm>>;

/// Wraps a [`crate::plane::Farm`] for sharing with rack workers.
pub fn shared_farm(farm: crate::plane::Farm) -> SharedFarm {
    Arc::new(RwLock::new(farm))
}

#[derive(Debug)]
enum UpMsg {
    Metrics {
        worker: usize,
        round: u64,
        metrics: Vec<(CutId, PriorityMetrics)>,
    },
}

#[derive(Debug)]
enum DownMsg {
    /// Sense, estimate, and report metrics for round `round`.
    Gather { round: u64 },
    /// Budgets for this worker's cut nodes; split and enforce.
    Budgets { budgets: Vec<(CutId, Watts)> },
    Shutdown,
}

/// Static description of one rack worker's responsibility: a set of cut
/// nodes (CDU-level shifting controllers) and, implicitly, the leaves
/// below them.
/// A leaf binding beneath a cut node: `(leaf spec index, server, supply)`.
type LeafBinding = (usize, ServerId, SupplyIndex);

#[derive(Debug, Clone)]
struct RackAssignment {
    /// For each cut node: its id and the leaf bindings beneath it.
    cuts: Vec<(CutId, Vec<LeafBinding>)>,
}

/// The distributed deployment: a room worker (caller thread) plus rack
/// worker threads.
///
/// # Examples
///
/// See [`WorkerDeployment::run_rounds`] usage in the crate tests and the
/// `priority_capping` example.
#[derive(Debug)]
pub struct WorkerDeployment {
    trees: Vec<ControlTree>,
    root_budgets: Vec<Watts>,
    policy: PolicyKind,
    farm: SharedFarm,
    handles: Vec<JoinHandle<()>>,
    /// `None` marks a worker known to be dead (killed via
    /// [`WorkerDeployment::kill_worker`] or observed unreachable): gather
    /// must not wait on it, or every round eats the full
    /// [`GATHER_TIMEOUT`].
    to_workers: Vec<Option<Sender<DownMsg>>>,
    from_workers: Receiver<UpMsg>,
    /// Cut node ids per tree, in spec order.
    cuts_per_tree: Vec<Vec<usize>>,
    worker_count: usize,
    /// Freshest metrics seen per cut node (stale-hold fault tolerance).
    last_cut_metrics: HashMap<CutId, PriorityMetrics>,
}

/// Returns the leaf-parent (cut) node indices of a tree spec.
fn cut_nodes(tree: &ControlTree) -> Vec<usize> {
    let spec = tree.spec();
    (0..spec.len())
        .filter(|&idx| {
            let node = spec.node(idx);
            !node.children.is_empty()
                && node.children.iter().all(|&c| spec.node(c).is_leaf())
        })
        .collect()
}

impl WorkerDeployment {
    /// Spawns `worker_count` rack workers over the given trees, budgets,
    /// and shared farm. Cut nodes are distributed round-robin across
    /// workers (a real deployment groups them by rack; the grouping does
    /// not change the decisions).
    ///
    /// # Panics
    ///
    /// Panics if `worker_count == 0` or tree/budget counts differ.
    pub fn spawn(
        trees: Vec<ControlTree>,
        root_budgets: Vec<Watts>,
        policy: PolicyKind,
        farm: SharedFarm,
        worker_count: usize,
    ) -> Self {
        assert!(worker_count > 0, "at least one rack worker is required");
        assert_eq!(
            trees.len(),
            root_budgets.len(),
            "one root budget per control tree is required"
        );

        let cuts_per_tree: Vec<Vec<usize>> = trees.iter().map(cut_nodes).collect();

        // Round-robin cut nodes over workers.
        let mut assignments: Vec<RackAssignment> = (0..worker_count)
            .map(|_| RackAssignment { cuts: Vec::new() })
            .collect();
        let mut rr = 0usize;
        for (t, tree) in trees.iter().enumerate() {
            for &cut in &cuts_per_tree[t] {
                let spec = tree.spec();
                let leaves: Vec<LeafBinding> = spec
                    .node(cut)
                    .children
                    .iter()
                    .map(|&c| {
                        let leaf = spec.node(c).leaf.expect("cut children are leaves");
                        (c, leaf.server, leaf.supply)
                    })
                    .collect();
                assignments[rr % worker_count]
                    .cuts
                    .push(((t, cut), leaves));
                rr += 1;
            }
        }

        let (up_tx, from_workers) = unbounded::<UpMsg>();
        let mut to_workers = Vec::with_capacity(worker_count);
        let mut handles = Vec::with_capacity(worker_count);
        for (w, assignment) in assignments.into_iter().enumerate() {
            let (down_tx, down_rx) = unbounded::<DownMsg>();
            to_workers.push(Some(down_tx));
            let up = up_tx.clone();
            let farm = Arc::clone(&farm);
            let trees = trees.clone();
            handles.push(
                thread::Builder::new()
                    .name(format!("rack-worker-{w}"))
                    .spawn(move || {
                        rack_worker_loop(w, assignment, trees, policy, farm, up, down_rx)
                    })
                    .expect("spawning a rack worker thread"),
            );
        }

        WorkerDeployment {
            trees,
            root_budgets,
            policy,
            farm,
            handles,
            to_workers,
            from_workers,
            cuts_per_tree,
            worker_count,
            last_cut_metrics: HashMap::new(),
        }
    }

    /// Number of rack workers.
    pub fn worker_count(&self) -> usize {
        self.worker_count
    }

    /// Runs one control round: gather (rack, parallel) → upper-tree
    /// aggregation + budgeting (room) → enforce (rack, parallel).
    /// Returns the budgets assigned to each cut node.
    ///
    /// **Fault tolerance**: a rack worker that does not answer within
    /// [`GATHER_TIMEOUT`] is skipped for the round and the room worker
    /// budgets its cut nodes from the *last metrics it reported* — the
    /// stale-hold behaviour a production control plane needs so one sick
    /// VM cannot stall capping for the whole data center. Cut nodes that
    /// have never reported fall back to empty metrics (they receive no
    /// budget until their worker appears).
    pub fn run_round(&mut self, round: u64) -> HashMap<CutId, Watts> {
        // Phase 1: gather. A send error means the worker is gone — mark it
        // dead so no later round waits on it, and rely on its cached
        // metrics below.
        let mut expected = 0usize;
        for slot in &mut self.to_workers {
            let Some(tx) = slot else {
                continue;
            };
            if tx.send(DownMsg::Gather { round }).is_ok() {
                expected += 1;
            } else {
                *slot = None;
            }
        }
        let deadline = std::time::Instant::now() + GATHER_TIMEOUT;
        let mut reported = vec![false; self.worker_count];
        let mut answers = 0usize;
        while answers < expected {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            if remaining.is_zero() {
                break;
            }
            match self.from_workers.recv_timeout(remaining) {
                Ok(UpMsg::Metrics {
                    worker,
                    round: r,
                    metrics,
                }) => {
                    if r != round {
                        // A late answer to an earlier round: its metrics
                        // are still fresher than whatever we hold.
                        for (cut, m) in metrics {
                            self.last_cut_metrics.insert(cut, m);
                        }
                        continue;
                    }
                    if !reported[worker] {
                        reported[worker] = true;
                        answers += 1;
                    }
                    for (cut, m) in metrics {
                        self.last_cut_metrics.insert(cut, m);
                    }
                }
                Err(_) => break, // timeout or all senders dropped
            }
        }

        // Phase 2: the room worker allocates over each tree's upper part,
        // treating cut nodes as pseudo-leaves with the freshest metrics it
        // holds for each.
        let mut cut_budgets: HashMap<CutId, Watts> = HashMap::new();
        let policy = self.policy.policy();
        for (t, tree) in self.trees.iter().enumerate() {
            let last = &self.last_cut_metrics;
            let budgets = room_allocate_upper(
                tree,
                &self.cuts_per_tree[t],
                |cut| {
                    last.get(&(t, cut))
                        .cloned()
                        .unwrap_or_else(PriorityMetrics::empty)
                },
                self.root_budgets[t],
                policy.as_ref(),
            );
            for (cut, b) in budgets {
                cut_budgets.insert((t, cut), b);
            }
        }

        // Phase 3: enforce (dead workers silently miss their budgets; their
        // servers hold the last cap they were given — fail-safe).
        for tx in self.to_workers.iter().flatten() {
            let _ = tx.send(DownMsg::Budgets {
                budgets: cut_budgets.iter().map(|(&c, &b)| (c, b)).collect(),
            });
        }
        cut_budgets
    }

    /// Shuts one rack worker down (for fault-injection tests and rolling
    /// maintenance). Subsequent rounds hold its last metrics.
    ///
    /// The worker's `Sender` is dropped immediately after the `Shutdown` is
    /// queued: the worker drains its queue and exits, and — critically —
    /// gather never again counts it as expected. Before this, a killed
    /// worker's channel kept accepting `Gather` messages, so every later
    /// round blocked for the full [`GATHER_TIMEOUT`] waiting on a reply
    /// that could never come.
    pub fn kill_worker(&mut self, worker: usize) {
        if let Some(slot) = self.to_workers.get_mut(worker) {
            if let Some(tx) = slot.take() {
                let _ = tx.send(DownMsg::Shutdown);
            }
        }
    }

    /// Runs `rounds` control periods, stepping the farm `seconds_per_round`
    /// simulated seconds between rounds (the physical world keeps moving
    /// while controllers deliberate).
    pub fn run_rounds(&mut self, rounds: u64, seconds_per_round: u32) {
        for round in 0..rounds {
            self.run_round(round);
            let mut farm = self.farm.write();
            for _ in 0..seconds_per_round {
                farm.step_all(capmaestro_units::Seconds::new(1.0));
            }
        }
    }

    /// Shuts the workers down and joins their threads.
    pub fn shutdown(mut self) {
        for tx in self.to_workers.iter().flatten() {
            let _ = tx.send(DownMsg::Shutdown);
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Room-side allocation over the upper part of one tree: every node except
/// strict descendants of cut nodes, with cut nodes as pseudo-leaves.
/// Returns `(cut node, budget)` pairs.
fn room_allocate_upper(
    tree: &ControlTree,
    cuts: &[usize],
    mut metrics_of_cut: impl FnMut(usize) -> PriorityMetrics,
    root_budget: Watts,
    policy: &dyn CappingPolicy,
) -> Vec<(usize, Watts)> {
    let spec = tree.spec();
    let n = spec.len();
    let is_cut: Vec<bool> = {
        let mut v = vec![false; n];
        for &c in cuts {
            v[c] = true;
        }
        v
    };
    // A node is "upper" if no proper ancestor is a cut node.
    let mut upper = vec![false; n];
    for idx in 0..n {
        match spec.node(idx).parent {
            None => upper[idx] = true,
            Some(p) => upper[idx] = upper[p] && !is_cut[p],
        }
    }

    // Gather metrics bottom-up over upper nodes.
    let mut metrics: Vec<Option<PriorityMetrics>> = vec![None; n];
    let mut depths = vec![0usize; n];
    for idx in 0..n {
        if let Some(p) = spec.node(idx).parent {
            depths[idx] = depths[p] + 1;
        }
    }
    for idx in (0..n).rev() {
        if !upper[idx] {
            continue;
        }
        if is_cut[idx] {
            metrics[idx] = Some(metrics_of_cut(idx));
            continue;
        }
        if spec.node(idx).is_leaf() {
            // A leaf directly under the upper tree (no CDU level): treat
            // it as its own cut with empty metrics — deployments should
            // avoid this, but stay total.
            metrics[idx] = Some(PriorityMetrics::empty());
            continue;
        }
        let ctx = NodeContext {
            is_leaf_parent: false,
            depth: depths[idx],
        };
        let visibility = policy.visibility(ctx);
        let children: Vec<PriorityMetrics> = spec
            .node(idx)
            .children
            .iter()
            .map(|&c| {
                let m = metrics[c].clone().expect("children computed first");
                match visibility {
                    PriorityVisibility::Full => m,
                    PriorityVisibility::Blind => m.collapsed(),
                }
            })
            .collect();
        metrics[idx] = Some(PriorityMetrics::aggregate(
            children.iter(),
            spec.node(idx).limit,
        ));
    }

    // Budget top-down to the cut nodes.
    let mut budgets = vec![Watts::ZERO; n];
    let root = spec.root();
    let root_limit = spec.node(root).limit.unwrap_or(root_budget);
    budgets[root] = root_budget.min(root_limit);
    let mut out = Vec::with_capacity(cuts.len());
    for idx in 0..n {
        if !upper[idx] {
            continue;
        }
        if is_cut[idx] {
            out.push((idx, budgets[idx]));
            continue;
        }
        let node = spec.node(idx);
        if node.children.is_empty() {
            continue;
        }
        let ctx = NodeContext {
            is_leaf_parent: false,
            depth: depths[idx],
        };
        let visibility = policy.visibility(ctx);
        let children_metrics: Vec<PriorityMetrics> = node
            .children
            .iter()
            .map(|&c| {
                let m = metrics[c].clone().expect("computed");
                match visibility {
                    PriorityVisibility::Full => m,
                    PriorityVisibility::Blind => m.collapsed(),
                }
            })
            .collect();
        let split = split_budget(budgets[idx], &children_metrics);
        for (&child, b) in node.children.iter().zip(&split.budgets) {
            budgets[child] = *b;
        }
    }
    out
}

/// The rack worker body: senses its servers, reports cut metrics, splits
/// received budgets to leaves, and drives the capping controllers.
fn rack_worker_loop(
    worker: usize,
    assignment: RackAssignment,
    trees: Vec<ControlTree>,
    policy: PolicyKind,
    farm: SharedFarm,
    up: Sender<UpMsg>,
    down: Receiver<DownMsg>,
) {
    let policy = policy.policy();
    let mut estimators: HashMap<ServerId, DemandEstimator> = HashMap::new();
    let mut controllers: HashMap<ServerId, CappingController> = HashMap::new();
    // Leaf metrics computed during gather, reused at budget time.
    let mut leaf_metrics: HashMap<(CutId, usize), PriorityMetrics> = HashMap::new();
    // Budgets accumulated per server across this worker's cut nodes.
    let mut round_budgets: HashMap<ServerId, Vec<(SupplyIndex, Watts)>> = HashMap::new();

    while let Ok(msg) = down.recv() {
        match msg {
            DownMsg::Gather { round } => {
                leaf_metrics.clear();
                round_budgets.clear();
                let mut out = Vec::with_capacity(assignment.cuts.len());
                let farm = farm.read();
                for (cut, leaves) in &assignment.cuts {
                    let (t, cut_idx) = *cut;
                    let spec = trees[t].spec();
                    let mut children = Vec::with_capacity(leaves.len());
                    for &(leaf_idx, server, _) in leaves {
                        let leaf = spec.node(leaf_idx).leaf.expect("leaf");
                        let Some(srv) = farm.get(server) else {
                            continue;
                        };
                        let snap = srv.sense();
                        let est = estimators.entry(server).or_default();
                        est.push(snap.throttle, snap.total_ac);
                        let model = srv.config().model();
                        let demand = est
                            .estimate_with_idle(model.idle())
                            .unwrap_or(snap.total_ac)
                            .clamp(model.idle(), model.cap_max());
                        let shares = srv.bank().effective_shares();
                        let share = shares
                            .get(leaf.supply.index())
                            .copied()
                            .unwrap_or(Ratio::ZERO);
                        let m = PriorityMetrics::from_leaf(&LeafInput {
                            demand: demand.max(model.cap_min()),
                            cap_min: model.cap_min(),
                            cap_max: model.cap_max(),
                            share,
                            priority: leaf.priority,
                        });
                        leaf_metrics.insert((*cut, leaf_idx), m.clone());
                        children.push(m);
                    }
                    let ctx = NodeContext {
                        is_leaf_parent: true,
                        depth: 0,
                    };
                    let children = match policy.visibility(ctx) {
                        PriorityVisibility::Full => children,
                        PriorityVisibility::Blind => {
                            children.iter().map(PriorityMetrics::collapsed).collect()
                        }
                    };
                    let aggregated = PriorityMetrics::aggregate(
                        children.iter(),
                        spec.node(cut_idx).limit,
                    );
                    out.push((*cut, aggregated));
                }
                drop(farm);
                up.send(UpMsg::Metrics {
                    worker,
                    round,
                    metrics: out,
                })
                .expect("room worker alive");
            }
            DownMsg::Budgets { budgets } => {
                // Split each of our cut budgets to leaves.
                for (cut, leaves) in &assignment.cuts {
                    let Some(&(_, budget)) =
                        budgets.iter().find(|(c, _)| c == cut)
                    else {
                        continue;
                    };
                    let children_metrics: Vec<PriorityMetrics> = leaves
                        .iter()
                        .map(|&(leaf_idx, _, _)| {
                            leaf_metrics
                                .get(&(*cut, leaf_idx))
                                .cloned()
                                .unwrap_or_else(PriorityMetrics::empty)
                        })
                        .collect();
                    let ctx = NodeContext {
                        is_leaf_parent: true,
                        depth: 0,
                    };
                    let children_metrics: Vec<PriorityMetrics> =
                        match policy.visibility(ctx) {
                            PriorityVisibility::Full => children_metrics,
                            PriorityVisibility::Blind => children_metrics
                                .iter()
                                .map(PriorityMetrics::collapsed)
                                .collect(),
                        };
                    let split = split_budget(budget, &children_metrics);
                    for (&(_, server, supply), b) in leaves.iter().zip(&split.budgets) {
                        round_budgets
                            .entry(server)
                            .or_default()
                            .push((supply, *b));
                    }
                }
                // Enforce caps on our servers.
                let mut farm = farm.write();
                for (&server, supply_budgets) in &round_budgets {
                    let Some(srv) = farm.get_mut(server) else {
                        continue;
                    };
                    let snap = srv.sense();
                    let shares = srv.bank().effective_shares();
                    let mut bs = Vec::new();
                    let mut ms = Vec::new();
                    for &(supply, b) in supply_budgets {
                        let idx = supply.index();
                        if shares.get(idx).map(|s| s.as_f64() > 0.0) == Some(true) {
                            bs.push(b);
                            ms.push(snap.supply_ac[idx]);
                        }
                    }
                    if bs.is_empty() {
                        continue;
                    }
                    let model = srv.config().model();
                    let controller = controllers.entry(server).or_insert_with(|| {
                        CappingController::new(
                            model.cap_min(),
                            model.cap_max(),
                            srv.bank().efficiency(),
                        )
                    });
                    let cap = controller.update(&bs, &ms);
                    srv.set_dc_cap(cap);
                }
            }
            DownMsg::Shutdown => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::Farm;
    use capmaestro_server::{Server, ServerConfig};
    use capmaestro_topology::presets::figure2_feed;
    use capmaestro_units::Seconds;

    fn fig2_shared_farm() -> (capmaestro_topology::Topology, SharedFarm, Vec<ControlTree>) {
        let topo = figure2_feed();
        let trees: Vec<ControlTree> = topo
            .control_tree_specs()
            .into_iter()
            .map(ControlTree::new)
            .collect();
        let mut farm = Farm::new();
        for (id, _) in topo.servers() {
            let mut server = Server::new(ServerConfig::paper_default().single_corded());
            server.set_offered_demand(Watts::new(420.0));
            server.settle();
            farm.insert(id, server);
        }
        (topo, Arc::new(RwLock::new(farm)), trees)
    }

    #[test]
    fn cut_nodes_are_leaf_parents() {
        let (_, _, trees) = fig2_shared_farm();
        let cuts = cut_nodes(&trees[0]);
        // Fig. 2: left and right CBs.
        assert_eq!(cuts.len(), 2);
        for cut in cuts {
            let node = trees[0].spec().node(cut);
            assert!(node
                .children
                .iter()
                .all(|&c| trees[0].spec().node(c).is_leaf()));
        }
    }

    #[test]
    fn distributed_rounds_protect_high_priority() {
        let (topo, farm, trees) = fig2_shared_farm();
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
        );
        deployment.run_rounds(10, 8);
        deployment.shutdown();

        let farm = farm.read();
        let sa = topo.server_by_name("SA").unwrap();
        let sb = topo.server_by_name("SB").unwrap();
        assert!(
            farm.get(sa).unwrap().performance_fraction().as_f64() > 0.95,
            "SA perf {}",
            farm.get(sa).unwrap().performance_fraction()
        );
        assert!(farm.get(sb).unwrap().sense().total_ac < Watts::new(310.0));
        let total: Watts = farm.iter().map(|(_, s)| s.sense().total_ac).sum();
        assert!(total <= Watts::new(1240.0) * 1.02, "total {total}");
    }

    #[test]
    fn distributed_matches_synchronous_budgets() {
        // The same scenario through the threaded deployment and the
        // synchronous plane (SPO off) must produce the same cut budgets.
        let (topo, farm, trees) = fig2_shared_farm();

        // Synchronous reference.
        let mut sync_farm = Farm::new();
        for (id, _) in topo.servers() {
            let mut server = Server::new(ServerConfig::paper_default().single_corded());
            server.set_offered_demand(Watts::new(420.0));
            server.settle();
            sync_farm.insert(id, server);
        }
        let mut plane = crate::plane::ControlPlane::new(
            trees.clone(),
            vec![Watts::new(1240.0)],
            crate::plane::PlaneConfig {
                policy: PolicyKind::GlobalPriority,
                spo: false,
                control_period: Seconds::new(8.0),
            },
        );
        plane.record_sample(&sync_farm);
        let report = plane.run_round(&mut sync_farm);

        let mut deployment = WorkerDeployment::spawn(
            trees.clone(),
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
        );
        let cut_budgets = deployment.run_round(0);
        deployment.shutdown();

        // Compare the budgets at each cut node (left/right CB).
        for ((t, cut), budget) in cut_budgets {
            assert_eq!(t, 0);
            let reference = report.allocations[0].node_budget(cut);
            assert!(
                budget.approx_eq(reference, Watts::new(1e-6)),
                "cut {cut}: distributed {budget} vs sync {reference}"
            );
        }
    }

    #[test]
    fn dead_worker_does_not_stall_the_room() {
        let (_, farm, trees) = fig2_shared_farm();
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
        );
        // A healthy first round caches every cut's metrics.
        let healthy = deployment.run_round(0);
        assert_eq!(healthy.len(), 2);

        // Kill one rack worker; the next round must still produce budgets
        // for ALL cut nodes, from the stale cache, without hanging.
        deployment.kill_worker(0);
        let degraded = deployment.run_round(1);
        assert_eq!(degraded.len(), 2, "stale-hold must cover the dead worker's cuts");
        for (cut, budget) in &healthy {
            let after = degraded[cut];
            assert!(
                after.approx_eq(*budget, Watts::new(1.0)),
                "cut {cut:?} budget changed {budget} -> {after} with frozen metrics"
            );
        }
        deployment.shutdown();
    }

    #[test]
    fn killed_worker_rounds_skip_the_gather_timeout() {
        // Regression: kill_worker used to leave the dead worker's Sender in
        // place, so `send(Gather)` kept succeeding and every subsequent
        // round blocked for the full GATHER_TIMEOUT waiting on a reply the
        // dead worker could never produce.
        let (_, farm, trees) = fig2_shared_farm();
        let mut deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::GlobalPriority,
            Arc::clone(&farm),
            2,
        );
        deployment.run_round(0);
        deployment.kill_worker(0);
        let start = std::time::Instant::now();
        let degraded = deployment.run_round(1);
        let elapsed = start.elapsed();
        assert_eq!(degraded.len(), 2);
        // The surviving worker answers in microseconds; leave generous CI
        // slack while staying far below the 500 ms stale-hold timeout.
        assert!(
            elapsed < GATHER_TIMEOUT / 2,
            "degraded round took {elapsed:?}; dead worker still counted as expected"
        );
        deployment.shutdown();
    }

    #[test]
    fn worker_count_respected() {
        let (_, farm, trees) = fig2_shared_farm();
        let deployment = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::NoPriority,
            farm,
            3,
        );
        assert_eq!(deployment.worker_count(), 3);
        deployment.shutdown();
    }

    #[test]
    #[should_panic(expected = "at least one rack worker")]
    fn zero_workers_panics() {
        let (_, farm, trees) = fig2_shared_farm();
        let _ = WorkerDeployment::spawn(
            trees,
            vec![Watts::new(1240.0)],
            PolicyKind::NoPriority,
            farm,
            0,
        );
    }
}
