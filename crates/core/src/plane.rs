//! The CapMaestro control-plane service (paper §5).
//!
//! [`ControlPlane`] is the synchronous "integral service": every second it
//! records sensor samples ([`ControlPlane::record_sample`]), and every
//! control period (8 s in the paper) it runs one full round
//! ([`ControlPlane::round`]): estimate demands, gather metrics up every
//! control tree, allocate budgets down, optionally reclaim stranded power,
//! and command per-server DC caps through the capping controllers.
//!
//! The multi-threaded rack-/room-worker deployment of §5 lives in
//! [`crate::workers`]; it produces the same decisions, distributed.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::Arc;

use capmaestro_server::{SensorSnapshot, Server, ServerMut, ServerRef, ServerSlab};
use capmaestro_topology::{FeedId, ServerId, SupplyIndex};
use capmaestro_units::{Seconds, Watts};

use crate::alloc::{Allocator, AllocatorKind};
use crate::capping::CappingController;
use crate::estimator::{DemandEstimator, SampleFate};
use crate::obs::{names, null_recorder, PhaseTimer, Recorder, RoundPhase};
use crate::par::{par_for_each_mut, par_map, par_map_mut, par_map_range};
use crate::policy::{CappingPolicy, PolicyKind};
use crate::spo::{optimize_stranded_power_in, optimize_stranded_power_par_with, SpoScratch};
use crate::tree::{Allocation, ControlTree, SupplyInput, TreeRoundState};

/// The population of servers under management, keyed by id.
///
/// Per-server state lives in a struct-of-arrays [`ServerSlab`] (sorted id
/// lane + state lanes), so the per-second hot path sweeps contiguous
/// memory instead of chasing a map of boxed servers. Accessors hand out
/// [`ServerRef`] / [`ServerMut`] views that mirror the old `&Server` /
/// `&mut Server` surface; iteration order is id order, as before.
///
/// The farm carries the thread-count knob for the per-second hot path:
/// [`Farm::set_parallelism`] shards [`Farm::step_all`] and the sensing
/// sweeps across scoped threads at 64-server bitmap-word boundaries, and
/// the control plane's estimate phase fans out the same way. Stepping is
/// **event-driven** by default: servers at the exact `f64` fixed point of
/// their settling filter are skipped (see [`ServerSlab`]), which is a
/// bitwise no-op by construction. Results are bit-identical for every
/// thread count and for event-driven on/off — servers are independent and
/// all outputs stay in id order.
#[derive(Debug)]
pub struct Farm {
    /// Sorted server ids; position i maps to slab slot i.
    ids: Vec<ServerId>,
    slab: ServerSlab,
    parallelism: usize,
}

impl Default for Farm {
    fn default() -> Self {
        Farm {
            ids: Vec::new(),
            slab: ServerSlab::new(),
            parallelism: 1,
        }
    }
}

impl Farm {
    /// Creates an empty farm.
    pub fn new() -> Self {
        Farm::default()
    }

    /// Sets how many threads the hot-path sweeps (stepping, sensing,
    /// demand estimation) may fan out across. Clamped to at least 1;
    /// 1 (the default) keeps everything on the calling thread.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.parallelism = threads.max(1);
    }

    /// The configured hot-path thread count.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Enables or disables event-driven stepping (on by default).
    /// Disabling forces every server to be stepped every tick — the
    /// sequential full-rebuild reference path the differential tests
    /// compare against. Trajectories are bitwise identical either way.
    pub fn set_event_driven(&mut self, enabled: bool) {
        self.slab.set_event_driven(enabled);
    }

    /// Whether event-driven stepping is enabled.
    pub fn event_driven(&self) -> bool {
        self.slab.event_driven()
    }

    /// Adds (or replaces) a server.
    pub fn insert(&mut self, id: ServerId, server: Server) {
        match self.ids.binary_search(&id) {
            Ok(pos) => self.slab.replace(pos, server),
            Err(pos) => {
                self.ids.insert(pos, id);
                self.slab.insert(pos, server);
            }
        }
    }

    /// Borrows a server.
    pub fn get(&self, id: ServerId) -> Option<ServerRef<'_>> {
        self.index_of(id).map(|i| self.slab.view(i))
    }

    /// Mutably borrows a server.
    pub fn get_mut(&mut self, id: ServerId) -> Option<ServerMut<'_>> {
        self.index_of(id).map(|i| self.slab.view_mut(i))
    }

    /// The slot index of a server id, if present (slots are id-ordered
    /// and stable until an insert of a new id).
    pub fn index_of(&self, id: ServerId) -> Option<usize> {
        self.ids.binary_search(&id).ok()
    }

    /// The managed server ids, sorted (slot i holds `ids()[i]`).
    pub fn ids(&self) -> &[ServerId] {
        &self.ids
    }

    /// Borrows the server in slot `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn server_at(&self, idx: usize) -> ServerRef<'_> {
        self.slab.view(idx)
    }

    /// Number of servers.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the farm is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Iterates `(id, server)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ServerId, ServerRef<'_>)> + '_ {
        (0..self.ids.len()).map(move |i| (self.ids[i], self.slab.view(i)))
    }

    /// Visits every server mutably in id order as
    /// `(slot index, id, view)` — the replacement for the old `iter_mut`
    /// (mutable views borrow the whole slab, so they cannot be yielded by
    /// a `std` iterator).
    pub fn for_each_mut(&mut self, mut f: impl FnMut(usize, ServerId, ServerMut<'_>)) {
        for i in 0..self.ids.len() {
            f(i, self.ids[i], self.slab.view_mut(i));
        }
    }

    /// Advances every server by `dt`, event-driven (quiescent servers are
    /// skipped bit-exactly) and sharded across the configured thread
    /// count.
    pub fn step_all(&mut self, dt: Seconds) {
        self.slab.begin_step(dt);
        let threads = self.parallelism;
        if threads <= 1 {
            self.slab.full_shard().step(dt);
        } else {
            let mut shards = self.slab.shards_mut(threads);
            par_for_each_mut(&mut shards, threads, |shard| shard.step(dt));
        }
    }

    /// Reads every server's sensors, in id order, sharded across the
    /// configured thread count. Allocates the result vector; hot-path
    /// callers should prefer [`Farm::sense_into`].
    pub fn sense_all(&self) -> Vec<(ServerId, SensorSnapshot)> {
        let n = self.ids.len();
        if self.parallelism <= 1 {
            return self.iter().map(|(id, s)| (id, s.sense())).collect();
        }
        par_map_range(n, self.parallelism, |i| {
            (self.ids[i], self.slab.view(i).sense())
        })
    }

    /// Refreshes the slab's cached snapshots (only stale ones are
    /// recomputed) and syncs `buf` to them, reusing its allocations — the
    /// zero-steady-state-allocation replacement for [`Farm::sense_all`].
    pub fn sense_into(&mut self, buf: &mut SenseBuffer) {
        self.refresh_snaps();
        self.sync_buffer(buf);
    }

    /// Advances every server by `dt` and syncs `buf` to the refreshed
    /// snapshots in the same sweep — the fused per-second hot path of the
    /// simulation engine. Quiescent servers cost ~zero: no stepping
    /// arithmetic, no re-sensing, no buffer write.
    pub fn step_and_sense_into(&mut self, dt: Seconds, buf: &mut SenseBuffer) {
        self.slab.begin_step(dt);
        self.slab.begin_refresh();
        let threads = self.parallelism;
        if threads <= 1 {
            let mut shard = self.slab.full_shard();
            shard.step(dt);
            shard.refresh();
        } else {
            let mut shards = self.slab.shards_mut(threads);
            par_for_each_mut(&mut shards, threads, |shard| {
                shard.step(dt);
                shard.refresh();
            });
        }
        self.sync_buffer(buf);
    }

    /// Advances every server by `dt` and reads its sensors in the same
    /// sweep, returning snapshots in id order. Allocates the result
    /// vector; hot-path callers should prefer
    /// [`Farm::step_and_sense_into`].
    pub fn step_and_sense_all(&mut self, dt: Seconds) -> Vec<(ServerId, SensorSnapshot)> {
        let mut buf = SenseBuffer::new();
        self.step_and_sense_into(dt, &mut buf);
        buf.entries
    }

    /// Refreshes every stale cached snapshot, sharded.
    fn refresh_snaps(&mut self) {
        self.slab.begin_refresh();
        let threads = self.parallelism;
        if threads <= 1 {
            self.slab.full_shard().refresh();
        } else {
            let mut shards = self.slab.shards_mut(threads);
            par_for_each_mut(&mut shards, threads, |shard| shard.refresh());
        }
    }

    /// Syncs a [`SenseBuffer`] to the slab's (just-refreshed) snapshot
    /// cache: a full rebuild when the farm's slot layout changed since the
    /// buffer last synced, otherwise `clone_from` on exactly the entries
    /// whose snapshots changed — allocation-free in the steady state.
    fn sync_buffer(&self, buf: &mut SenseBuffer) {
        let n = self.ids.len();
        if buf.layout_gen != self.slab.layout_generation() {
            buf.entries.clear();
            buf.entries.extend(
                (0..n).map(|i| (self.ids[i], self.slab.snapshot(i).clone())),
            );
            buf.layout_gen = self.slab.layout_generation();
        } else {
            for i in 0..n {
                if self.slab.changed_since(i, buf.seen_gen) {
                    buf.entries[i].1.clone_from(self.slab.snapshot(i));
                }
            }
        }
        buf.seen_gen = self.slab.generation();
    }
}

/// A reusable sensing scratch buffer: `(id, snapshot)` entries in id
/// order, kept in sync with one [`Farm`] by [`Farm::sense_into`] /
/// [`Farm::step_and_sense_into`] with zero steady-state allocation.
///
/// A buffer belongs to the farm it was first synced against — syncing it
/// against a different farm is a logic error (the change-tracking
/// generations would not line up).
#[derive(Debug, Default)]
pub struct SenseBuffer {
    entries: Vec<(ServerId, SensorSnapshot)>,
    /// Highest slab refresh generation this buffer has absorbed.
    seen_gen: u64,
    /// Slab layout generation the entry layout was built from.
    layout_gen: u64,
}

impl SenseBuffer {
    /// Creates an empty buffer (first sync does a full rebuild).
    pub fn new() -> Self {
        SenseBuffer::default()
    }

    /// The synced `(id, snapshot)` entries, in id order.
    pub fn entries(&self) -> &[(ServerId, SensorSnapshot)] {
        &self.entries
    }

    /// Mutable access to the entries, for callers that overwrite
    /// individual readings after a sync (e.g. re-sensing breaker-trip
    /// victims). Overwrites are transient: they survive until the
    /// corresponding server next changes in the farm.
    pub fn entries_mut(&mut self) -> &mut [(ServerId, SensorSnapshot)] {
        &mut self.entries
    }
}

/// Configuration of the control plane.
///
/// Construct with [`PlaneConfig::default`] and the chained `with_*`
/// builders (the same idiom as [`StalenessConfig`] and
/// `DeploymentConfig`):
///
/// ```
/// use capmaestro_core::plane::{PlaneConfig, StalenessConfig};
/// use capmaestro_core::policy::PolicyKind;
///
/// let config = PlaneConfig::default()
///     .with_policy(PolicyKind::LocalPriority)
///     .with_spo(false)
///     .with_staleness(StalenessConfig::default().with_stale_after_rounds(5));
/// assert!(!config.spo);
/// ```
#[derive(Debug, Clone)]
pub struct PlaneConfig {
    /// The capping policy.
    pub policy: PolicyKind,
    /// The budget-split allocator raced at every tree node (the paper's
    /// §4.3.2 waterfall by default; see [`crate::alloc`]).
    pub allocator: AllocatorKind,
    /// Whether to run the stranded-power optimization each round (§4.4).
    pub spo: bool,
    /// The control period (8 s in the paper's deployment).
    pub control_period: Seconds,
    /// The staleness watchdog knobs, applied at plane construction
    /// (reconfigure a live plane with [`ControlPlane::set_staleness`]).
    pub staleness: StalenessConfig,
    /// Where instrumentation goes (phase timings, counters, gauges).
    /// Defaults to [`crate::obs::NullRecorder`], which keeps the hot
    /// path allocation-free and bit-identical; attach a
    /// [`crate::obs::MetricsRegistry`] to export metrics.
    pub recorder: Arc<dyn Recorder>,
}

impl Default for PlaneConfig {
    fn default() -> Self {
        PlaneConfig {
            policy: PolicyKind::GlobalPriority,
            allocator: AllocatorKind::Waterfall,
            spo: true,
            control_period: Seconds::new(8.0),
            staleness: StalenessConfig::default(),
            recorder: null_recorder(),
        }
    }
}

impl PartialEq for PlaneConfig {
    /// Recorders are compared by identity (`Arc::ptr_eq`): two configs
    /// are equal when they would drive the same rounds *and* report to
    /// the same sink.
    fn eq(&self, other: &Self) -> bool {
        self.policy == other.policy
            && self.allocator == other.allocator
            && self.spo == other.spo
            && self.control_period == other.control_period
            && self.staleness == other.staleness
            && Arc::ptr_eq(&self.recorder, &other.recorder)
    }
}

impl PlaneConfig {
    /// Returns the config with the capping policy replaced.
    #[must_use]
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Returns the config with the budget-split allocator replaced.
    #[must_use]
    pub fn with_allocator(mut self, allocator: AllocatorKind) -> Self {
        self.allocator = allocator;
        self
    }

    /// Returns the config with stranded-power optimization on or off.
    #[must_use]
    pub fn with_spo(mut self, spo: bool) -> Self {
        self.spo = spo;
        self
    }

    /// Returns the config with the control period replaced.
    #[must_use]
    pub fn with_control_period(mut self, control_period: Seconds) -> Self {
        self.control_period = control_period;
        self
    }

    /// Returns the config with the staleness watchdog knobs replaced.
    #[must_use]
    pub fn with_staleness(mut self, staleness: StalenessConfig) -> Self {
        self.staleness = staleness;
        self
    }

    /// Returns the config with the instrumentation sink replaced.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<dyn Recorder>) -> Self {
        self.recorder = recorder;
        self
    }
}

/// The staleness watchdog / fail-safe degradation knobs (paper §4.2's
/// safety argument extended to telemetry faults).
///
/// Every control round, each managed server either refreshed its telemetry
/// since the last round (at least one *plausible* sensor reading was
/// delivered) or it did not. After `stale_after_rounds` consecutive rounds
/// without a refresh the server is declared **stale**: instead of trusting
/// a frozen demand estimate forever, the plane budgets it from a fail-safe
/// demand and clamps its DC cap to match. Over-throttling a blind server
/// is safe; a tripped breaker is not.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StalenessConfig {
    /// Consecutive telemetry-free control rounds before a server is
    /// declared stale. Rounds 1..N are the *stale-hold* bridge — the last
    /// good estimate keeps being used, riding out transient sensor drops.
    pub stale_after_rounds: u32,
    /// The AC demand a stale server is budgeted from. `None` (the
    /// default) means the server's own `Pcap_min` — the most conservative
    /// budget that is still guaranteed enforceable.
    pub fail_safe_demand: Option<Watts>,
}

impl Default for StalenessConfig {
    fn default() -> Self {
        StalenessConfig {
            stale_after_rounds: 3,
            fail_safe_demand: None,
        }
    }
}

impl StalenessConfig {
    /// Returns the config with the stale-declaration threshold replaced.
    #[must_use]
    pub fn with_stale_after_rounds(mut self, rounds: u32) -> Self {
        self.stale_after_rounds = rounds;
        self
    }

    /// Returns the config with the fail-safe demand replaced (`None`
    /// falls back to each server's `Pcap_min`).
    #[must_use]
    pub fn with_fail_safe_demand(mut self, demand: Option<Watts>) -> Self {
        self.fail_safe_demand = demand;
        self
    }
}

/// What one control round decided.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// Final allocation per tree (post-SPO when enabled).
    pub allocations: Vec<Allocation>,
    /// Total stranded power reclaimed this round (zero when SPO is off).
    pub stranded_reclaimed: Watts,
    /// The DC cap commanded per server.
    pub dc_caps: HashMap<ServerId, Watts>,
    /// `(server, supply)` → `(tree, slot)` lookup index over
    /// `allocations`, so [`RoundReport::supply_budget`] is one hash
    /// probe instead of a linear scan across every tree. First tree
    /// wins, matching the scan order it replaces.
    supply_slots: HashMap<(ServerId, SupplyIndex), (u32, u32)>,
    /// Identity stamps (leaf-index [`Arc`] addresses, stored as plain
    /// `usize` so the report stays `Send + Sync`) of the allocations the
    /// index was built from. The allocations hold those `Arc`s alive, so
    /// a matching stamp means the slot layout is unchanged and the index
    /// can be reused without rebuilding.
    index_stamp: Vec<usize>,
}

impl RoundReport {
    /// Empty report, ready to be filled by a round.
    fn empty() -> Self {
        RoundReport {
            allocations: Vec::new(),
            stranded_reclaimed: Watts::ZERO,
            dc_caps: HashMap::new(),
            supply_slots: HashMap::new(),
            index_stamp: Vec::new(),
        }
    }

    /// Whether the lookup index matches the current `allocations`.
    fn index_is_current(&self) -> bool {
        self.index_stamp.len() == self.allocations.len()
            && self
                .allocations
                .iter()
                .zip(&self.index_stamp)
                .all(|(a, &stamp)| a.leaf_index_stamp() == stamp)
    }

    /// Rebuilds the `(server, supply)` lookup index if the allocations'
    /// slot layouts changed; a no-op (stamp comparison only, no
    /// allocation) in the steady state. Called by the round pipeline
    /// after every allocation pass.
    fn refresh_supply_index(&mut self) {
        if self.index_is_current() {
            return;
        }
        self.supply_slots.clear();
        self.index_stamp.clear();
        for (tree, allocation) in self.allocations.iter().enumerate() {
            self.index_stamp.push(allocation.leaf_index_stamp());
            let index = allocation.leaf_index();
            for slot in 0..index.len() {
                let pair = index.pair(slot);
                self.supply_slots
                    .entry(pair)
                    .or_insert((tree as u32, slot as u32));
            }
        }
    }

    /// The final budget assigned to a supply, if any tree covers it.
    ///
    /// Served from the precomputed `(server, supply)` index when it is
    /// current (always the case for reports produced by
    /// [`ControlPlane::round`] and their clones); falls back to the
    /// original linear scan over `allocations` if a caller has replaced
    /// the allocation set by hand.
    pub fn supply_budget(&self, server: ServerId, supply: SupplyIndex) -> Option<Watts> {
        if self.index_is_current() {
            return self
                .supply_slots
                .get(&(server, supply))
                .map(|&(tree, slot)| {
                    self.allocations[tree as usize].leaf_budget(slot as usize)
                });
        }
        self.allocations
            .iter()
            .find_map(|a| a.supply_budget(server, supply))
    }

    /// The total budget a server received across its supplies.
    pub fn server_budget(&self, server: ServerId) -> Watts {
        self.allocations
            .iter()
            .flat_map(|a| a.supply_budgets())
            .filter(|(s, _, _)| *s == server)
            .map(|(_, _, w)| w)
            .sum()
    }

    /// Encode the report as a [`MetricsSnapshot`](crate::obs::MetricsSnapshot)
    /// so it can ride the existing `obs::json` exporter/parser pair: the
    /// serving subsystem's `GET /report` renders this snapshot with
    /// [`json::snapshot`](crate::obs::json::snapshot) and clients round-trip
    /// it through [`json::parse`](crate::obs::json::parse).
    ///
    /// Counters carry the report's cardinalities (trees, capped servers);
    /// gauges carry the watt figures (per-tree root and leaf totals, per-
    /// server DC caps, stranded power reclaimed); there are no histograms.
    /// Names follow the registry convention (sorted, labels inline).
    pub fn metrics_snapshot(&self) -> crate::obs::MetricsSnapshot {
        use crate::obs::{CounterSample, GaugeSample, MetricsSnapshot};

        let counters = vec![
            CounterSample {
                name: "capmaestro_report_servers_capped".to_string(),
                value: self.dc_caps.len() as u64,
            },
            CounterSample {
                name: "capmaestro_report_trees".to_string(),
                value: self.allocations.len() as u64,
            },
        ];

        let mut gauges = Vec::with_capacity(self.dc_caps.len() + 2 * self.allocations.len() + 1);
        let mut caps: Vec<(ServerId, Watts)> =
            self.dc_caps.iter().map(|(&id, &w)| (id, w)).collect();
        caps.sort_unstable_by_key(|(id, _)| *id);
        for (id, cap) in caps {
            gauges.push(GaugeSample {
                name: format!("capmaestro_report_dc_cap_watts{{server=\"{}\"}}", id.0),
                value: cap.as_f64(),
            });
        }
        gauges.push(GaugeSample {
            name: "capmaestro_report_stranded_watts_reclaimed".to_string(),
            value: self.stranded_reclaimed.as_f64(),
        });
        for (tree, allocation) in self.allocations.iter().enumerate() {
            gauges.push(GaugeSample {
                name: format!("capmaestro_report_tree_leaf_watts{{tree=\"{tree}\"}}"),
                value: allocation.total_leaf_budget().as_f64(),
            });
            gauges.push(GaugeSample {
                name: format!("capmaestro_report_tree_root_watts{{tree=\"{tree}\"}}"),
                value: allocation.node_budget(0).as_f64(),
            });
        }
        gauges.sort_by(|a, b| a.name.cmp(&b.name));

        MetricsSnapshot {
            counters,
            gauges,
            histograms: Vec::new(),
        }
    }
}

/// How the per-tree root budgets are determined each round.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetSource {
    /// Fixed budgets, one per tree (operator-managed; must be updated by
    /// hand after a feed failure).
    Fixed(Vec<Watts>),
    /// One contractual budget **per phase**, shared across the redundant
    /// feeds and split each round proportionally to the feeds' estimated
    /// demand on that phase (paper Table 4: "700 kW per phase, split over
    /// two feeds"). Failover is automatic: when a feed's trees are gone,
    /// the survivor inherits the whole phase budget.
    SharedPerPhase(Watts),
}

/// Reusable buffers for the per-round hot path (the "RoundContext" of the
/// round-pipeline design): the stale-server set, the demand map, resolved
/// root budgets, the cached capping-policy object, per-tree round states
/// for the plain allocation path, the SPO scratch, and the round report
/// itself. [`ControlPlane::round`] borrows these instead of
/// allocating, so a steady-state sequential round performs no heap
/// allocation.
struct RoundContext {
    stale: HashSet<ServerId>,
    demands: HashMap<ServerId, Watts>,
    /// Sensing scratch for [`ControlPlane::sample`] — reused every second
    /// so steady-state sampling allocates nothing.
    snaps: SenseBuffer,
    root_budgets: Vec<Watts>,
    /// Scratch for the [`BudgetSource::SharedPerPhase`] resolution.
    tree_demands: Vec<Watts>,
    phase_members: Vec<usize>,
    /// The policy object, rebuilt only when the configured kind changes.
    policy: Option<(PolicyKind, Box<dyn CappingPolicy + Send + Sync>)>,
    /// The budget-split allocator, rebuilt only when the configured kind
    /// changes.
    allocator: Option<(AllocatorKind, Box<dyn Allocator>)>,
    spo: SpoScratch,
    /// Per-tree incremental gather state for the SPO-disabled path.
    plain_states: Vec<TreeRoundState>,
    report: RoundReport,
    /// Whether `report` holds a completed round.
    valid: bool,
    /// Cumulative (summarized, dirty-skipped) gather totals already
    /// reported to the recorder, so each round reports only its delta.
    last_gather: (u64, u64),
}

impl Default for RoundContext {
    fn default() -> Self {
        RoundContext {
            stale: HashSet::new(),
            demands: HashMap::new(),
            snaps: SenseBuffer::new(),
            root_budgets: Vec::new(),
            tree_demands: Vec::new(),
            phase_members: Vec::new(),
            policy: None,
            allocator: None,
            spo: SpoScratch::new(),
            plain_states: Vec::new(),
            report: RoundReport::empty(),
            valid: false,
            last_gather: (0, 0),
        }
    }
}

impl RoundContext {
    /// Drops the cached incremental allocation state (SPO routes and all
    /// per-tree round states) — required when the tree set changes.
    fn invalidate_allocation_caches(&mut self) {
        self.spo.invalidate();
        for state in &mut self.plain_states {
            state.invalidate();
        }
    }
}

impl fmt::Debug for RoundContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RoundContext")
            .field("valid", &self.valid)
            .finish_non_exhaustive()
    }
}

/// Resolves the per-tree root budgets into `out`. For
/// [`BudgetSource::SharedPerPhase`], each phase's contractual budget is
/// split across that phase's trees proportionally to their estimated
/// demand (equal split when total demand is zero). `tree_demands` and
/// `members` are caller-owned scratch so the round hot path allocates
/// nothing.
fn resolve_root_budgets_into(
    trees: &[ControlTree],
    source: &BudgetSource,
    tree_demands: &mut Vec<Watts>,
    members: &mut Vec<usize>,
    out: &mut Vec<Watts>,
) {
    out.clear();
    match source {
        BudgetSource::Fixed(budgets) => out.extend_from_slice(budgets),
        BudgetSource::SharedPerPhase(per_phase) => {
            // Demand per tree = Σ leaf demand × share.
            tree_demands.clear();
            tree_demands.extend(trees.iter().map(|tree| {
                let mut total = Watts::ZERO;
                for idx in 0..tree.spec().len() {
                    if let (Some(input), true) =
                        (tree.input_at(idx), tree.spec().node(idx).is_leaf())
                    {
                        total += input.demand * input.share;
                    }
                }
                total
            }));
            out.resize(trees.len(), Watts::ZERO);
            for phase in capmaestro_topology::Phase::ALL {
                members.clear();
                members.extend(
                    trees
                        .iter()
                        .enumerate()
                        .filter(|(_, t)| t.spec().phase() == phase)
                        .map(|(i, _)| i),
                );
                if members.is_empty() {
                    continue;
                }
                let total: Watts = members.iter().map(|&i| tree_demands[i]).sum();
                for &i in members.iter() {
                    out[i] = if total > Watts::ZERO {
                        *per_phase * (tree_demands[i] / total)
                    } else {
                        *per_phase / members.len() as f64
                    };
                }
            }
        }
    }
}

/// The CapMaestro control-plane service.
///
/// # Examples
///
/// Managing the paper's Fig. 2 rig end to end:
///
/// ```
/// use capmaestro_core::plane::{ControlPlane, Farm, PlaneConfig};
/// use capmaestro_core::tree::ControlTree;
/// use capmaestro_server::{Server, ServerConfig};
/// use capmaestro_topology::presets::figure2_feed;
/// use capmaestro_units::{Seconds, Watts};
///
/// let topo = figure2_feed();
/// let trees: Vec<ControlTree> = topo
///     .control_tree_specs()
///     .into_iter()
///     .map(ControlTree::new)
///     .collect();
/// let mut farm = Farm::new();
/// for (id, _) in topo.servers() {
///     // The Fig. 2 rig is single-corded: one supply per server.
///     let mut server = Server::new(ServerConfig::paper_default().single_corded());
///     server.set_offered_demand(Watts::new(430.0));
///     server.settle();
///     farm.insert(id, server);
/// }
/// let mut plane = ControlPlane::new(trees, vec![Watts::new(1240.0)], PlaneConfig::default());
/// plane.record_sample(&farm);
/// let report = plane.round(&mut farm);
/// let sa = topo.server_by_name("SA").unwrap();
/// // The high-priority server is budgeted its full demand.
/// assert!(report.server_budget(sa) > Watts::new(420.0));
/// ```
#[derive(Debug)]
pub struct ControlPlane {
    trees: Vec<ControlTree>,
    budget_source: BudgetSource,
    config: PlaneConfig,
    controllers: HashMap<ServerId, CappingController>,
    estimators: HashMap<ServerId, DemandEstimator>,
    /// Dynamic priority overrides, e.g. from a job scheduler (§7's
    /// "coordination of job scheduling with power management").
    priority_overrides: HashMap<ServerId, capmaestro_topology::Priority>,
    /// Trees parked by [`ControlPlane::fail_feed`], with their fixed
    /// budgets where applicable, awaiting [`ControlPlane::restore_feed`].
    parked: Vec<(ControlTree, Option<Watts>)>,
    /// The topology's static priorities, snapshotted at construction so
    /// cleared overrides fall back correctly.
    static_priorities: HashMap<ServerId, capmaestro_topology::Priority>,
    /// The staleness watchdog configuration.
    staleness: StalenessConfig,
    /// Last *plausible* snapshot delivered per server — the only sensor
    /// data the plane ever acts on. Enforcement reads this cache, not the
    /// server directly, so a fault layer interposing on delivery affects
    /// every consumer consistently.
    telemetry: HashMap<ServerId, SensorSnapshot>,
    /// Servers that delivered a plausible reading since the last round.
    fresh: HashSet<ServerId>,
    /// Consecutive rounds without a plausible reading, per server.
    stale_rounds: HashMap<ServerId, u32>,
    /// Reusable round buffers (see [`RoundContext`]).
    ctx: RoundContext,
}

impl ControlPlane {
    /// Creates a plane over the given control trees and their root budgets.
    ///
    /// # Panics
    ///
    /// Panics if the numbers of trees and budgets differ.
    pub fn new(trees: Vec<ControlTree>, root_budgets: Vec<Watts>, config: PlaneConfig) -> Self {
        assert_eq!(
            trees.len(),
            root_budgets.len(),
            "one root budget per control tree is required"
        );
        ControlPlane::with_budget_source(trees, BudgetSource::Fixed(root_budgets), config)
    }

    /// Creates a plane with an explicit [`BudgetSource`] — use
    /// [`BudgetSource::SharedPerPhase`] for the paper's contractual-budget
    /// arrangement with automatic failover.
    /// # Panics
    ///
    /// Panics if `config.staleness.stale_after_rounds` is zero (see
    /// [`ControlPlane::set_staleness`]).
    pub fn with_budget_source(
        trees: Vec<ControlTree>,
        budget_source: BudgetSource,
        config: PlaneConfig,
    ) -> Self {
        if let BudgetSource::Fixed(budgets) = &budget_source {
            assert_eq!(
                trees.len(),
                budgets.len(),
                "one root budget per control tree is required"
            );
        }
        assert!(
            config.staleness.stale_after_rounds >= 1,
            "stale_after_rounds must be at least 1"
        );
        let mut static_priorities = HashMap::new();
        for tree in &trees {
            for (_, leaf) in tree.spec().leaves() {
                static_priorities.insert(leaf.server, leaf.priority);
            }
        }
        let staleness = config.staleness;
        ControlPlane {
            trees,
            budget_source,
            config,
            controllers: HashMap::new(),
            estimators: HashMap::new(),
            priority_overrides: HashMap::new(),
            parked: Vec::new(),
            static_priorities,
            staleness,
            telemetry: HashMap::new(),
            fresh: HashSet::new(),
            stale_rounds: HashMap::new(),
            ctx: RoundContext::default(),
        }
    }

    /// Reconfigures the staleness watchdog (defaults:
    /// [`StalenessConfig::default`]).
    ///
    /// # Panics
    ///
    /// Panics if `stale_after_rounds` is zero — every server would be
    /// permanently stale.
    pub fn set_staleness(&mut self, config: StalenessConfig) {
        assert!(
            config.stale_after_rounds >= 1,
            "stale_after_rounds must be at least 1"
        );
        self.staleness = config;
        self.config.staleness = config;
    }

    /// The staleness watchdog configuration.
    pub fn staleness(&self) -> StalenessConfig {
        self.staleness
    }

    /// Replaces the instrumentation sink (e.g. attaching a
    /// [`crate::obs::MetricsRegistry`] to a plane built with the default
    /// [`crate::obs::NullRecorder`]).
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        self.config.recorder = recorder;
    }

    /// The instrumentation sink rounds report to.
    pub fn recorder(&self) -> &Arc<dyn Recorder> {
        &self.config.recorder
    }

    /// Servers currently declared stale (no plausible telemetry for at
    /// least `stale_after_rounds` rounds), in id order.
    pub fn stale_servers(&self) -> Vec<ServerId> {
        let mut ids: Vec<ServerId> = self
            .stale_rounds
            .iter()
            .filter(|(_, &ctr)| ctr >= self.staleness.stale_after_rounds)
            .map(|(&id, _)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Whether a server is currently declared stale.
    pub fn is_stale(&self, id: ServerId) -> bool {
        self.stale_rounds
            .get(&id)
            .is_some_and(|&ctr| ctr >= self.staleness.stale_after_rounds)
    }

    /// The per-tree root budgets the next round would resolve (the fixed
    /// budgets, or the demand-proportional split of a shared phase
    /// budget). Exposed for invariant auditing.
    pub fn root_budgets_now(&self) -> Vec<Watts> {
        self.resolve_root_budgets()
    }

    /// Resolves the per-tree root budgets for this round (see
    /// [`resolve_root_budgets_into`]).
    fn resolve_root_budgets(&self) -> Vec<Watts> {
        let mut out = Vec::new();
        let (mut demands, mut members) = (Vec::new(), Vec::new());
        resolve_root_budgets_into(
            &self.trees,
            &self.budget_source,
            &mut demands,
            &mut members,
            &mut out,
        );
        out
    }

    /// The configuration.
    pub fn config(&self) -> &PlaneConfig {
        &self.config
    }

    /// Switches the budget-split allocator for every subsequent round.
    /// Incremental allocation caches are invalidated (the allocator box
    /// itself is cached per kind, so switching back and forth is cheap).
    /// A no-op when `kind` is already active.
    pub fn set_allocator(&mut self, kind: AllocatorKind) {
        if self.config.allocator != kind {
            self.config.allocator = kind;
            self.ctx.invalidate_allocation_caches();
        }
    }

    /// The managed control trees.
    pub fn trees(&self) -> &[ControlTree] {
        &self.trees
    }

    /// Replaces the per-tree root budgets (e.g. handing the contractual
    /// budget to the surviving feed after a failure).
    ///
    /// # Panics
    ///
    /// Panics if the count differs from the tree count.
    pub fn set_root_budgets(&mut self, budgets: Vec<Watts>) {
        assert_eq!(budgets.len(), self.trees.len());
        self.budget_source = BudgetSource::Fixed(budgets);
    }

    /// Parks all trees of a failed feed; returns how many were parked.
    /// With [`BudgetSource::Fixed`], callers must also
    /// [`ControlPlane::set_root_budgets`] for the remaining trees and mark
    /// the affected server supplies failed; with
    /// [`BudgetSource::SharedPerPhase`] the survivor inherits the phase
    /// budget automatically. [`ControlPlane::restore_feed`] reverses this
    /// after the repair.
    pub fn fail_feed(&mut self, feed: FeedId) -> usize {
        let mut removed = 0;
        let mut kept_trees = Vec::new();
        let mut kept_budgets = Vec::new();
        let fixed = match &mut self.budget_source {
            BudgetSource::Fixed(budgets) => Some(std::mem::take(budgets)),
            BudgetSource::SharedPerPhase(_) => None,
        };
        for (i, tree) in self.trees.drain(..).enumerate() {
            if tree.spec().feed() == feed {
                removed += 1;
                self.parked
                    .push((tree, fixed.as_ref().map(|f| f[i])));
            } else {
                if let Some(fixed) = &fixed {
                    kept_budgets.push(fixed[i]);
                }
                kept_trees.push(tree);
            }
        }
        self.trees = kept_trees;
        if fixed.is_some() {
            self.budget_source = BudgetSource::Fixed(kept_budgets);
        }
        // Tree indices shifted: the cached routes and incremental gather
        // states no longer line up with the tree list.
        self.ctx.invalidate_allocation_caches();
        removed
    }

    /// Returns a repaired feed's parked trees to service; returns how many
    /// were restored. With [`BudgetSource::Fixed`], each restored tree
    /// resumes the budget it held when parked (adjust afterwards via
    /// [`ControlPlane::set_root_budgets`] if the operator re-splits).
    pub fn restore_feed(&mut self, feed: FeedId) -> usize {
        let mut restored = 0;
        let mut still_parked = Vec::new();
        for (tree, budget) in self.parked.drain(..) {
            if tree.spec().feed() == feed {
                if let BudgetSource::Fixed(budgets) = &mut self.budget_source {
                    budgets.push(budget.unwrap_or(Watts::ZERO));
                }
                self.trees.push(tree);
                restored += 1;
            } else {
                still_parked.push((tree, budget));
            }
        }
        self.parked = still_parked;
        if restored > 0 {
            self.ctx.invalidate_allocation_caches();
        }
        restored
    }

    /// Overrides a server's priority from now on — the hook a job
    /// scheduler uses to communicate dynamic priorities (paper §7). Takes
    /// effect at the next control round.
    pub fn set_priority(
        &mut self,
        server: ServerId,
        priority: capmaestro_topology::Priority,
    ) {
        self.priority_overrides.insert(server, priority);
    }

    /// Removes a dynamic priority override, restoring the topology's
    /// static priority.
    pub fn clear_priority(&mut self, server: ServerId) {
        self.priority_overrides.remove(&server);
    }

    /// The priority the next control round will allocate this server at:
    /// its dynamic override when one is set, otherwise the static
    /// priority recorded at plane construction. `None` for servers the
    /// plane has never heard of. Auditors use this to check the
    /// priority-ordering invariant against the same view the allocator
    /// sees.
    pub fn effective_priority(
        &self,
        server: ServerId,
    ) -> Option<capmaestro_topology::Priority> {
        self.priority_overrides
            .get(&server)
            .or_else(|| self.static_priorities.get(&server))
            .copied()
    }

    /// The topology's static priority for a server, snapshotted at plane
    /// construction — the value [`ControlPlane::clear_priority`] falls
    /// back to. `None` for servers the plane has never heard of.
    pub fn static_priority(
        &self,
        server: ServerId,
    ) -> Option<capmaestro_topology::Priority> {
        self.static_priorities.get(&server).copied()
    }

    /// Records one per-second sensor sample for every server (throttle
    /// level and total AC power), feeding the demand estimators through
    /// plausibility screening and updating the telemetry cache. Sensing
    /// fans out across the farm's configured thread count; the estimator
    /// updates stay in id order, so the result is thread-count
    /// independent.
    pub fn record_sample(&mut self, farm: &Farm) {
        self.record_snapshots(farm, &farm.sense_all());
    }

    /// Records one per-second sensor sample for every server, like
    /// [`ControlPlane::record_sample`], but sensing through the farm's
    /// snapshot cache into a plane-owned scratch buffer: quiescent servers
    /// are not re-sensed and the steady state performs **no heap
    /// allocation** (the `alloc --smoke` gate covers this path).
    pub fn sample(&mut self, farm: &mut Farm) {
        let mut buf = std::mem::take(&mut self.ctx.snaps);
        farm.sense_into(&mut buf);
        self.record_snapshots(farm, buf.entries());
        self.ctx.snaps = buf;
    }

    /// Feeds already-delivered sensor snapshots to the demand estimators —
    /// the path for callers (like the simulation engine) that sensed the
    /// farm this second anyway, possibly through a fault-injecting
    /// interposer. A reading absent from `snaps` models a dropped reading.
    ///
    /// Each reading is screened against the server's power envelope
    /// ([`DemandEstimator::push_screened`]); implausible readings are
    /// discarded and do **not** count as a telemetry refresh, so a sensor
    /// returning garbage degrades exactly like a silent one.
    pub fn record_snapshots(&mut self, farm: &Farm, snaps: &[(ServerId, SensorSnapshot)]) {
        let recorder = Arc::clone(&self.config.recorder);
        let _sense_timer = PhaseTimer::start(&*recorder, RoundPhase::Sense.metric_name());
        let threads = farm.parallelism();
        // The estimator updates are independent per server, so when the
        // farm is configured multi-threaded and the batch is in strict id
        // order (the shape `sense_all` produces), the screening fans out
        // across threads; telemetry/freshness bookkeeping stays sequential
        // in batch order, so the result is thread-count independent.
        let sorted_unique = snaps.windows(2).all(|w| w[0].0 < w[1].0);
        if threads > 1 && sorted_unique && snaps.len() > 1 {
            let mut ests: Vec<DemandEstimator> = snaps
                .iter()
                .map(|(id, _)| self.estimators.remove(id).unwrap_or_default())
                .collect();
            let mut items: Vec<(usize, &mut DemandEstimator)> =
                ests.iter_mut().enumerate().collect();
            let fates: Vec<SampleFate> = par_map_mut(&mut items, threads, |(i, est)| {
                let (id, snap) = &snaps[*i];
                match farm.get(*id).map(|s| s.config().model()) {
                    Some(model) => est.push_screened(
                        snap.throttle,
                        snap.total_ac,
                        model.idle(),
                        model.cap_max(),
                    ),
                    // Unknown server: no envelope to screen against.
                    None => {
                        est.push(snap.throttle, snap.total_ac);
                        SampleFate::Accepted
                    }
                }
            });
            drop(items);
            for (((id, snap), est), fate) in snaps.iter().zip(ests).zip(fates) {
                self.estimators.insert(*id, est);
                if fate == SampleFate::Accepted {
                    // clone_from reuses the stored snapshot's allocations.
                    match self.telemetry.entry(*id) {
                        Entry::Occupied(mut e) => e.get_mut().clone_from(snap),
                        Entry::Vacant(e) => {
                            e.insert(snap.clone());
                        }
                    }
                    self.fresh.insert(*id);
                }
            }
            return;
        }
        for (id, snap) in snaps {
            let estimator = self.estimators.entry(*id).or_default();
            let fate = match farm.get(*id).map(|s| s.config().model()) {
                Some(model) => estimator.push_screened(
                    snap.throttle,
                    snap.total_ac,
                    model.idle(),
                    model.cap_max(),
                ),
                // Unknown server: no envelope to screen against.
                None => {
                    estimator.push(snap.throttle, snap.total_ac);
                    SampleFate::Accepted
                }
            };
            if fate == SampleFate::Accepted {
                // clone_from reuses the stored snapshot's allocations.
                match self.telemetry.entry(*id) {
                    Entry::Occupied(mut e) => e.get_mut().clone_from(snap),
                    Entry::Vacant(e) => {
                        e.insert(snap.clone());
                    }
                }
                self.fresh.insert(*id);
            }
        }
    }

    /// The current demand estimate for a server (measured power when the
    /// estimator has no better answer yet).
    pub fn demand_estimate(&self, id: ServerId, farm: &Farm) -> Watts {
        let (idle, fallback) = farm
            .get(id)
            .map(|s| (s.config().model().idle(), s.sense().total_ac))
            .unwrap_or((Watts::ZERO, Watts::ZERO));
        self.estimators
            .get(&id)
            .and_then(|e| e.estimate_with_idle(idle))
            .unwrap_or(fallback)
    }

    /// The report of the last completed round, if any round has run since
    /// construction / [`ControlPlane::reset_round_cache`].
    pub fn last_report(&self) -> Option<&RoundReport> {
        if self.ctx.valid {
            Some(&self.ctx.report)
        } else {
            None
        }
    }

    /// Drops every reusable round buffer and cached incremental state, so
    /// the next round recomputes everything from scratch. Differential
    /// tests use this to compare incremental rounds against full rounds;
    /// it is never required for correctness.
    pub fn reset_round_cache(&mut self) {
        self.ctx = RoundContext::default();
    }

    /// Runs one control round — estimate → gather → allocate (→ SPO) →
    /// enforce — writing the decisions into the plane-owned
    /// [`RoundReport`] and returning it (cached semantics: the report is
    /// also available afterwards via [`ControlPlane::last_report`]).
    ///
    /// In the sequential case (farm parallelism 1) a steady-state round
    /// performs **no heap allocation**: demand and stale maps, root
    /// budgets, the policy object, per-tree gather states (reused
    /// incrementally — only subtrees with a dirtied leaf are
    /// re-summarized), SPO routes/overlays, and the report buffers all
    /// live in the plane's round context. The per-server phases and the
    /// per-tree allocation fan out across the farm's configured thread
    /// count ([`Farm::set_parallelism`]); every cross-item combination
    /// step runs sequentially in deterministic order, so the round's
    /// decisions are bit-identical for every thread count.
    ///
    /// When a [`Recorder`] is attached ([`PlaneConfig::with_recorder`] /
    /// [`ControlPlane::set_recorder`]), the round reports per-phase wall
    /// times, the stale-server gauge, fail-safe cap enforcements, the
    /// stranded-watts-reclaimed gauge, and the gather dirty-tracking
    /// counters. With the default [`crate::obs::NullRecorder`] none of
    /// that is computed and the round is bit-identical to an
    /// uninstrumented one.
    pub fn round(&mut self, farm: &mut Farm) -> &RoundReport {
        let threads = farm.parallelism();
        let recorder = Arc::clone(&self.config.recorder);
        let recorder: &dyn Recorder = &*recorder;
        recorder.counter_add(names::ROUNDS_TOTAL, 1);
        let estimate_timer =
            PhaseTimer::start(recorder, RoundPhase::Estimate.metric_name());

        // 0. Staleness bookkeeping: servers that delivered a plausible
        //    reading since the last round reset their counter; the rest
        //    age one round. A server crossing the threshold has its
        //    estimator cleared — whatever the window held predates the
        //    outage, and an empty window lets `estimate_with_idle` rebuild
        //    the demand from the first post-recovery samples.
        for &id in farm.ids() {
            if self.fresh.contains(&id) {
                self.stale_rounds.insert(id, 0);
            } else {
                let ctr = self.stale_rounds.entry(id).or_insert(0);
                *ctr += 1;
                if *ctr == self.staleness.stale_after_rounds {
                    if let Some(est) = self.estimators.get_mut(&id) {
                        est.clear();
                    }
                }
            }
        }
        self.fresh.clear();
        let threshold = self.staleness.stale_after_rounds;
        self.ctx.stale.clear();
        self.ctx.stale.extend(
            self.stale_rounds
                .iter()
                .filter(|(_, &ctr)| ctr >= threshold)
                .map(|(&id, _)| id),
        );
        let fail_safe = self.staleness.fail_safe_demand;

        // 1. Refresh every tree's leaf inputs from estimates and the
        //    servers' live PSU state. Estimates are independent per
        //    server; each tree's refresh is independent per tree. A stale
        //    server's demand is its fail-safe value, not a frozen
        //    estimate. The refresh value-compares against the tree's
        //    stored inputs, so unchanged leaves stay clean and the gather
        //    below reuses their cached metrics.
        self.ctx.demands.clear();
        if threads <= 1 {
            for (id, server) in farm.iter() {
                let model = server.config().model();
                let demand = if self.ctx.stale.contains(&id) {
                    fail_safe
                        .unwrap_or_else(|| model.cap_min())
                        .clamp(model.cap_min(), model.cap_max())
                } else {
                    self.estimators
                        .get(&id)
                        .and_then(|e| e.estimate_with_idle(model.idle()))
                        .or_else(|| self.telemetry.get(&id).map(|snap| snap.total_ac))
                        .unwrap_or_else(|| server.sense().total_ac)
                };
                self.ctx.demands.insert(id, demand);
            }
        } else {
            let farm_ref = &*farm;
            let estimators = &self.estimators;
            let telemetry = &self.telemetry;
            let stale_ref = &self.ctx.stale;
            let computed = par_map_range(farm_ref.len(), threads, |i| {
                let id = farm_ref.ids()[i];
                let server = farm_ref.server_at(i);
                let model = server.config().model();
                if stale_ref.contains(&id) {
                    let demand = fail_safe
                        .unwrap_or_else(|| model.cap_min())
                        .clamp(model.cap_min(), model.cap_max());
                    return (id, demand);
                }
                let estimate = estimators
                    .get(&id)
                    .and_then(|e| e.estimate_with_idle(model.idle()))
                    .or_else(|| telemetry.get(&id).map(|snap| snap.total_ac))
                    .unwrap_or_else(|| server.sense().total_ac);
                (id, estimate)
            });
            self.ctx.demands.extend(computed);
        }
        drop(estimate_timer);
        if recorder.enabled() {
            recorder.gauge_set(names::STALE_SERVERS, self.ctx.stale.len() as f64);
        }
        let gather_timer = PhaseTimer::start(recorder, RoundPhase::Gather.metric_name());
        {
            let overrides = &self.priority_overrides;
            let statics = &self.static_priorities;
            let farm_ref = &*farm;
            let demands = &self.ctx.demands;
            let refresh = |tree: &mut ControlTree| {
                if !overrides.is_empty() {
                    tree.set_priorities_with(|server| {
                        overrides.get(&server).copied().unwrap_or_else(|| {
                            statics
                                .get(&server)
                                .copied()
                                .unwrap_or(capmaestro_topology::Priority::LOW)
                        })
                    });
                }
                tree.set_inputs_with(|server, supply| {
                    let srv = farm_ref
                        .get(server)
                        .unwrap_or_else(|| panic!("tree references unknown {server}"));
                    let model = srv.config().model();
                    let share = srv.bank().effective_share(supply.index());
                    let demand = demands.get(&server).copied().unwrap_or(model.idle());
                    SupplyInput {
                        demand: demand.clamp(model.idle(), model.cap_max()),
                        cap_min: model.cap_min(),
                        cap_max: model.cap_max(),
                        share,
                    }
                });
            };
            if threads <= 1 {
                for tree in &mut self.trees {
                    refresh(tree);
                }
            } else {
                par_for_each_mut(&mut self.trees, threads, refresh);
            }
        }
        drop(gather_timer);

        // 2. Allocate (with or without the stranded-power pass). The trees
        //    are independent within each allocation pass, so both the
        //    plain path and the two SPO passes allocate concurrently; the
        //    split *within* each tree and the SPO strand detection stay
        //    sequential, keeping the round bit-identical for every thread
        //    count.
        let trees = &self.trees;
        let RoundContext {
            stale,
            root_budgets,
            tree_demands,
            phase_members,
            policy,
            allocator,
            spo,
            plain_states,
            report,
            valid,
            last_gather,
            ..
        } = &mut self.ctx;
        resolve_root_budgets_into(
            trees,
            &self.budget_source,
            tree_demands,
            phase_members,
            root_budgets,
        );
        if policy.as_ref().map(|(kind, _)| *kind) != Some(self.config.policy) {
            *policy = Some((self.config.policy, self.config.policy.policy()));
        }
        let policy_dyn = policy.as_ref().expect("policy cached above").1.as_ref();
        if allocator.as_ref().map(|(kind, _)| *kind) != Some(self.config.allocator) {
            *allocator = Some((self.config.allocator, self.config.allocator.allocator()));
        }
        let allocator_dyn = allocator
            .as_ref()
            .expect("allocator cached above")
            .1
            .as_ref();
        report.stranded_reclaimed = if self.config.spo {
            if threads <= 1 {
                optimize_stranded_power_in(
                    trees,
                    root_budgets,
                    policy_dyn,
                    allocator_dyn,
                    spo,
                    &mut report.allocations,
                    recorder,
                )
            } else {
                // The fused parallel SPO does both passes in one sweep;
                // the whole sweep is attributed to the SPO span.
                let spo_timer =
                    PhaseTimer::start(recorder, RoundPhase::Spo.metric_name());
                let outcome = optimize_stranded_power_par_with(
                    trees,
                    root_budgets,
                    policy_dyn,
                    allocator_dyn,
                    threads,
                );
                drop(spo_timer);
                recorder.observe(RoundPhase::Allocate.metric_name(), 0.0);
                let total = outcome.total_stranded();
                report.allocations = outcome.second;
                total
            }
        } else {
            let allocate_timer =
                PhaseTimer::start(recorder, RoundPhase::Allocate.metric_name());
            if threads <= 1 {
                let n = trees.len();
                if plain_states.len() != n {
                    plain_states.clear();
                    plain_states.resize_with(n, TreeRoundState::new);
                }
                if report.allocations.len() != n {
                    report.allocations.clear();
                    report.allocations.resize_with(n, Allocation::default);
                }
                for i in 0..n {
                    trees[i].allocate_in(
                        root_budgets[i],
                        policy_dyn,
                        allocator_dyn,
                        &mut plain_states[i],
                        None,
                        &mut report.allocations[i],
                    );
                }
            } else {
                let pairs: Vec<(&ControlTree, Watts)> = trees
                    .iter()
                    .zip(root_budgets.iter().copied())
                    .collect();
                report.allocations = par_map(&pairs, threads, |&(t, b)| {
                    t.allocate_with(b, policy_dyn, allocator_dyn)
                });
            }
            drop(allocate_timer);
            // SPO is off: record an explicit zero so the phase series
            // exists (and shows as idle) on every configuration.
            recorder.observe(RoundPhase::Spo.metric_name(), 0.0);
            Watts::ZERO
        };
        if recorder.enabled() {
            recorder.gauge_set(
                names::STRANDED_WATTS_RECLAIMED,
                report.stranded_reclaimed.as_f64(),
            );
            // Dirty-tracking effectiveness: how many tree nodes the
            // incremental gather actually re-summarized vs skipped. The
            // states accumulate across rounds, so report deltas. (The
            // parallel paths rebuild allocations from scratch and keep no
            // gather state; their totals simply stay flat.)
            let (summarized, skipped) = if self.config.spo {
                spo.gather_stats()
            } else {
                plain_states.iter().fold((0, 0), |acc, state| {
                    let (s, k) = state.gather_stats();
                    (acc.0 + s, acc.1 + k)
                })
            };
            recorder.counter_add(
                names::TREE_NODES_SUMMARIZED_TOTAL,
                summarized.saturating_sub(last_gather.0),
            );
            recorder.counter_add(
                names::TREE_NODES_DIRTY_SKIPPED_TOTAL,
                skipped.saturating_sub(last_gather.1),
            );
            *last_gather = (summarized, skipped);
        }
        report.refresh_supply_index();

        // 3. Enforce: pair every server's working supplies' budgets with
        //    its last *delivered* telemetry (never a direct sensor read —
        //    faults must affect enforcement too), then run the stateful
        //    capping controllers sequentially in id order. Stale servers
        //    bypass their feedback controller entirely: their cap is
        //    clamped straight to the fail-safe demand.
        let enforce_timer = PhaseTimer::start(recorder, RoundPhase::Enforce.metric_name());
        let mut failsafe_caps: u64 = 0;
        let RoundReport {
            allocations,
            dc_caps,
            supply_slots,
            ..
        } = report;
        let allocations = &*allocations;
        let supply_slots = &*supply_slots;
        // One hash probe per (server, supply) instead of a linear scan
        // across every tree's allocation (the index was refreshed above).
        let budget_for = |id: ServerId, supply: SupplyIndex| {
            supply_slots
                .get(&(id, supply))
                .map(|&(tree, slot)| allocations[tree as usize].leaf_budget(slot as usize))
        };
        dc_caps.clear();
        let controllers = &mut self.controllers;
        let telemetry = &self.telemetry;
        if threads <= 1 {
            farm.for_each_mut(|_, id, mut server| {
                let model = server.config().model();
                if stale.contains(&id) {
                    let demand_ac = fail_safe
                        .unwrap_or_else(|| model.cap_min())
                        .clamp(model.cap_min(), model.cap_max());
                    let efficiency = server.bank().efficiency();
                    let controller = controllers.entry(id).or_insert_with(|| {
                        CappingController::new(model.cap_min(), model.cap_max(), efficiency)
                    });
                    let cap = controller.force_dc_cap(demand_ac * efficiency);
                    server.set_dc_cap(cap);
                    dc_caps.insert(id, cap);
                    failsafe_caps += 1;
                    return;
                }
                // Count the working supplies an allocation covers; servers
                // outside every tree keep their previous cap, exactly like
                // the collected (parallel) path.
                let mut covered = 0usize;
                for (idx, share) in server.bank().effective_shares_iter().enumerate() {
                    if share.as_f64() <= 0.0 {
                        continue;
                    }
                    if supply_slots.contains_key(&(id, SupplyIndex(idx as u8))) {
                        covered += 1;
                    }
                }
                if covered == 0 {
                    return;
                }
                let mut fallback = None;
                let snap: &SensorSnapshot = match telemetry.get(&id) {
                    Some(snap) => snap,
                    None => fallback.get_or_insert_with(|| server.sense()),
                };
                let controller = controllers.entry(id).or_insert_with(|| {
                    CappingController::new(
                        model.cap_min(),
                        model.cap_max(),
                        server.bank().efficiency(),
                    )
                });
                let cap = controller.update_pairs(
                    server
                        .bank()
                        .effective_shares_iter()
                        .enumerate()
                        .filter_map(|(idx, share)| {
                            if share.as_f64() <= 0.0 {
                                return None;
                            }
                            budget_for(id, SupplyIndex(idx as u8))
                                .map(|b| (b, snap.supply_ac[idx]))
                        }),
                );
                server.set_dc_cap(cap);
                dc_caps.insert(id, cap);
            });
        } else {
            let farm_ref = &*farm;
            let stale_ref = &*stale;
            let mut sensed: Vec<Option<(Vec<Watts>, Vec<Watts>)>> =
                par_map_range(farm_ref.len(), threads, |i| {
                    let id = farm_ref.ids()[i];
                    let server = farm_ref.server_at(i);
                    if stale_ref.contains(&id) {
                        return None;
                    }
                    let snap = telemetry
                        .get(&id)
                        .cloned()
                        .unwrap_or_else(|| server.sense());
                    let shares = server.bank().effective_shares();
                    let mut budgets = Vec::new();
                    let mut measured = Vec::new();
                    for (idx, share) in shares.iter().enumerate() {
                        if share.as_f64() <= 0.0 {
                            continue;
                        }
                        if let Some(b) = budget_for(id, SupplyIndex(idx as u8)) {
                            budgets.push(b);
                            measured.push(snap.supply_ac[idx]);
                        }
                    }
                    if budgets.is_empty() {
                        None
                    } else {
                        Some((budgets, measured))
                    }
                });
            farm.for_each_mut(|idx, id, mut server| {
                let work = sensed[idx].take();
                let model = server.config().model();
                if stale.contains(&id) {
                    let demand_ac = fail_safe
                        .unwrap_or_else(|| model.cap_min())
                        .clamp(model.cap_min(), model.cap_max());
                    let efficiency = server.bank().efficiency();
                    let controller = controllers.entry(id).or_insert_with(|| {
                        CappingController::new(model.cap_min(), model.cap_max(), efficiency)
                    });
                    let cap = controller.force_dc_cap(demand_ac * efficiency);
                    server.set_dc_cap(cap);
                    dc_caps.insert(id, cap);
                    failsafe_caps += 1;
                    return;
                }
                let Some((budgets, measured)) = work else {
                    return;
                };
                let controller = controllers.entry(id).or_insert_with(|| {
                    CappingController::new(
                        model.cap_min(),
                        model.cap_max(),
                        server.bank().efficiency(),
                    )
                });
                let cap = controller.update(&budgets, &measured);
                server.set_dc_cap(cap);
                dc_caps.insert(id, cap);
            });
        }
        drop(enforce_timer);
        if failsafe_caps > 0 || recorder.enabled() {
            recorder.counter_add(names::FAILSAFE_CAPS_TOTAL, failsafe_caps);
        }

        // 4. Trace: per-tree counter tracks (root budget, allocated
        //    budget, measured power) plus tree/rack naming, gated behind
        //    `trace_enabled()` so metrics-only and null recorders never
        //    pay for the tree walk. Iteration order is fixed (trees in
        //    index order, leaves in slot order), keeping traces of
        //    deterministic runs deterministic.
        if recorder.trace_enabled() {
            for (i, tree) in trees.iter().enumerate() {
                let tree_id = i as u32;
                let spec = tree.spec();
                let root = spec.node(0);
                recorder.trace_tree_meta(tree_id, None, &format!("{spec}"));
                for (lane, &child) in root.children.iter().enumerate() {
                    recorder.trace_tree_meta(
                        tree_id,
                        Some(lane as u32 + 1),
                        &spec.node(child).name,
                    );
                }
                recorder.trace_tree_counter(
                    tree_id,
                    crate::obs::trace::ROOT_BUDGET_W,
                    root_budgets[i].as_f64(),
                );
                recorder.trace_tree_counter(
                    tree_id,
                    crate::obs::trace::BUDGET_ALLOC_W,
                    allocations[i].total_leaf_budget().as_f64(),
                );
                let leaves = tree.arena().leaf_index();
                let mut measured = 0.0f64;
                for slot in 0..leaves.len() {
                    let (id, supply) = leaves.pair(slot);
                    if let Some(snap) = telemetry.get(&id) {
                        measured += snap.supply_ac[supply.index()].as_f64();
                    }
                }
                recorder.trace_tree_counter(tree_id, crate::obs::trace::POWER_W, measured);
            }
        }

        *valid = true;
        &self.ctx.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use capmaestro_server::ServerConfig;
    use capmaestro_units::Ratio;
    use capmaestro_topology::presets::{figure2_feed, figure7a_rig};
    use capmaestro_topology::Topology;

    fn fig2_plane(policy: PolicyKind) -> (Topology, Farm, ControlPlane) {
        let topo = figure2_feed();
        let trees: Vec<ControlTree> = topo
            .control_tree_specs()
            .into_iter()
            .map(ControlTree::new)
            .collect();
        let mut farm = Farm::new();
        for (id, _) in topo.servers() {
            let mut server = Server::new(ServerConfig::paper_default().single_corded());
            server.set_offered_demand(Watts::new(420.0));
            server.settle();
            farm.insert(id, server);
        }
        let plane = ControlPlane::new(
            trees,
            vec![Watts::new(1240.0)],
            PlaneConfig::default().with_policy(policy).with_spo(false),
        );
        (topo, farm, plane)
    }

    /// Runs `periods` control periods of 8 s each with 1 Hz sensing.
    fn run_periods(plane: &mut ControlPlane, farm: &mut Farm, periods: usize) {
        for _ in 0..periods {
            for _ in 0..8 {
                plane.record_sample(farm);
                farm.step_all(Seconds::new(1.0));
            }
            plane.round(farm);
        }
    }

    /// The zero-alloc sense path: a buffer synced against a quiescent
    /// farm must not re-copy entries (no allocation, no writes), and a
    /// re-copy after a real change must reuse the entry's existing
    /// heap allocations.
    #[test]
    fn sense_buffer_sync_is_incremental_and_reuses_allocations() {
        let (topo, mut farm, _) = fig2_plane(PolicyKind::GlobalPriority);
        let mut buf = SenseBuffer::new();
        farm.sense_into(&mut buf);
        assert_eq!(buf.entries().len(), farm.len());
        let fresh = farm.sense_all();
        assert_eq!(buf.entries(), fresh.as_slice());

        // Corrupt one synced entry, then sync again with nothing changed
        // in the farm: the corruption must survive, proving the sync
        // skipped the (unchanged) entry instead of re-copying it.
        let sentinel = Watts::new(-12345.0);
        buf.entries_mut()[0].1.total_ac = sentinel;
        farm.sense_into(&mut buf);
        assert_eq!(buf.entries()[0].1.total_ac, sentinel);

        // Change that server for real: the next sync re-copies its entry
        // (overwriting the sentinel) while reusing the entry's per-supply
        // heap allocation rather than re-allocating it.
        let sa = topo.server_by_name("SA").unwrap();
        let slot = farm.index_of(sa).unwrap();
        let ptr_before = buf.entries()[slot].1.supply_ac.as_ptr();
        farm.get_mut(sa).unwrap().set_offered_demand(Watts::new(260.0));
        farm.get_mut(sa).unwrap().settle();
        farm.sense_into(&mut buf);
        assert_ne!(buf.entries()[slot].1.total_ac, sentinel);
        assert_eq!(
            buf.entries()[slot].1,
            farm.get(sa).unwrap().sense(),
            "re-copied entry must match a fresh sense"
        );
        assert_eq!(
            buf.entries()[slot].1.supply_ac.as_ptr(),
            ptr_before,
            "re-copy must reuse the entry's existing allocation"
        );
    }

    #[test]
    fn global_priority_protects_sa_end_to_end() {
        let (topo, mut farm, mut plane) = fig2_plane(PolicyKind::GlobalPriority);
        run_periods(&mut plane, &mut farm, 8);
        let sa = topo.server_by_name("SA").unwrap();
        let sb = topo.server_by_name("SB").unwrap();
        // SA runs essentially unthrottled; SB is pushed near cap_min.
        assert!(
            farm.get(sa).unwrap().performance_fraction().as_f64() > 0.97,
            "SA perf {}",
            farm.get(sa).unwrap().performance_fraction()
        );
        let sb_power = farm.get(sb).unwrap().sense().total_ac;
        assert!(
            sb_power < Watts::new(300.0),
            "SB should be capped, at {sb_power}"
        );
    }

    #[test]
    fn total_power_respects_contractual_budget() {
        let (_, mut farm, mut plane) = fig2_plane(PolicyKind::GlobalPriority);
        run_periods(&mut plane, &mut farm, 10);
        let total: Watts = farm.iter().map(|(_, s)| s.sense().total_ac).sum();
        assert!(
            total <= Watts::new(1240.0) * 1.02,
            "total power {total} exceeds the 1240 W budget"
        );
    }

    #[test]
    fn no_priority_caps_everyone_equally() {
        let (topo, mut farm, mut plane) = fig2_plane(PolicyKind::NoPriority);
        run_periods(&mut plane, &mut farm, 8);
        let powers: Vec<f64> = topo
            .servers()
            .map(|(id, _)| farm.get(id).unwrap().sense().total_ac.as_f64())
            .collect();
        let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = powers.iter().cloned().fold(0.0, f64::max);
        assert!(max - min < 15.0, "powers should be similar: {powers:?}");
    }

    #[test]
    fn fail_feed_removes_trees() {
        let topo = figure7a_rig();
        let trees: Vec<ControlTree> = topo
            .control_tree_specs()
            .into_iter()
            .map(ControlTree::new)
            .collect();
        assert_eq!(trees.len(), 2);
        let mut plane = ControlPlane::new(
            trees,
            vec![Watts::new(700.0), Watts::new(700.0)],
            PlaneConfig::default(),
        );
        let removed = plane.fail_feed(FeedId::B);
        assert_eq!(removed, 1);
        assert_eq!(plane.trees().len(), 1);
        plane.set_root_budgets(vec![Watts::new(1400.0)]);
    }

    #[test]
    fn round_report_exposes_budgets() {
        let (topo, mut farm, mut plane) = fig2_plane(PolicyKind::GlobalPriority);
        plane.record_sample(&farm);
        let report = plane.round(&mut farm).clone();
        let sa = topo.server_by_name("SA").unwrap();
        assert!(report.supply_budget(sa, SupplyIndex::FIRST).is_some());
        assert!(report.server_budget(sa) > Watts::ZERO);
        assert_eq!(report.dc_caps.len(), 4);
        assert_eq!(report.stranded_reclaimed, Watts::ZERO); // SPO off
    }

    #[test]
    fn supply_budget_index_matches_linear_scan_across_trees() {
        // Fig. 7a rig: two trees with SC/SD present in BOTH (dual-corded),
        // so the precomputed index must reproduce the first-tree-wins
        // semantics of the linear scan it replaced — including after a
        // feed failure reshapes the tree set and forces a rebuild.
        let topo = figure7a_rig();
        let trees: Vec<ControlTree> = topo
            .control_tree_specs()
            .into_iter()
            .map(ControlTree::new)
            .collect();
        let mut farm = Farm::new();
        for (id, info) in topo.servers() {
            let bank = match info.name() {
                "SA" | "SB" => capmaestro_server::PsuBank::balanced(1, Ratio::new(0.94)),
                _ => capmaestro_server::PsuBank::dual(0.5, Ratio::new(0.94)),
            };
            let mut server = Server::new(ServerConfig::paper_default().with_bank(bank));
            server.set_offered_demand(Watts::new(420.0));
            server.settle();
            farm.insert(id, server);
        }
        let servers: Vec<ServerId> = farm.iter().map(|(id, _)| id).collect();
        let mut plane = ControlPlane::new(
            trees,
            vec![Watts::new(700.0), Watts::new(700.0)],
            PlaneConfig::default().with_spo(true),
        );

        let check = |report: &RoundReport, servers: &[ServerId], when: &str| {
            assert!(report.index_is_current(), "{when}: index should be fresh");
            let mut covered = 0usize;
            for &server in servers {
                for supply in [SupplyIndex::FIRST, SupplyIndex::SECOND] {
                    let indexed = report.supply_budget(server, supply);
                    let scanned = report
                        .allocations
                        .iter()
                        .find_map(|a| a.supply_budget(server, supply));
                    assert_eq!(
                        indexed.map(|w| w.as_f64().to_bits()),
                        scanned.map(|w| w.as_f64().to_bits()),
                        "{when}: {server} {supply:?}"
                    );
                    covered += usize::from(indexed.is_some());
                }
            }
            assert!(covered > 0, "{when}: rig should cover some supplies");
        };

        plane.record_sample(&farm);
        let report = plane.round(&mut farm).clone();
        check(&report, &servers, "initial round");

        // Feed failure drops a tree: slot layouts change and the cloned
        // report's index must rebuild rather than serve stale slots.
        plane.fail_feed(FeedId::B);
        plane.set_root_budgets(vec![Watts::new(1400.0)]);
        farm.for_each_mut(|_, _, mut server| {
            let bank = server.bank_mut();
            if bank.len() == 2 {
                bank.fail_supply(1);
            }
        });
        plane.record_sample(&farm);
        let report = plane.round(&mut farm).clone();
        check(&report, &servers, "post-failover round");
    }

    #[test]
    fn demand_estimation_converges_under_capping() {
        // Even while capped, the estimator should keep a demand estimate
        // well above the measured (throttled) power.
        let (topo, mut farm, mut plane) = fig2_plane(PolicyKind::GlobalPriority);
        run_periods(&mut plane, &mut farm, 12);
        let sb = topo.server_by_name("SB").unwrap();
        let measured = farm.get(sb).unwrap().sense().total_ac;
        let estimate = plane.demand_estimate(sb, &farm);
        assert!(
            estimate > measured + Watts::new(20.0),
            "estimate {estimate} should exceed measured {measured}"
        );
    }

    #[test]
    fn shared_budget_splits_by_demand_and_fails_over() {
        use crate::plane::BudgetSource;
        // Fig. 7a rig: SA (414 W) on feed A, SB (415 W) on feed B, SC/SD on
        // both. Shared phase budget 1400 W.
        let topo = figure7a_rig();
        let trees: Vec<ControlTree> = topo
            .control_tree_specs()
            .into_iter()
            .map(ControlTree::new)
            .collect();
        let mut farm = Farm::new();
        for (id, info) in topo.servers() {
            let split = match info.name() {
                "SA" | "SB" => 1.0,
                _ => 0.5,
            };
            let bank = if split == 1.0 {
                capmaestro_server::PsuBank::balanced(1, Ratio::new(0.94))
            } else {
                capmaestro_server::PsuBank::dual(0.5, Ratio::new(0.94))
            };
            let mut server = Server::new(ServerConfig::paper_default().with_bank(bank));
            server.set_offered_demand(Watts::new(420.0));
            server.settle();
            farm.insert(id, server);
        }
        let mut plane = ControlPlane::with_budget_source(
            trees,
            BudgetSource::SharedPerPhase(Watts::new(1400.0)),
            PlaneConfig::default()
                .with_policy(PolicyKind::GlobalPriority)
                .with_spo(false),
        );
        plane.record_sample(&farm);
        let report = plane.round(&mut farm).clone();
        // Both feeds' allocations together must not exceed the shared
        // phase budget.
        let total: Watts = report
            .allocations
            .iter()
            .map(|a| a.total_leaf_budget())
            .sum();
        assert!(total <= Watts::new(1400.0) * 1.001, "total {total}");
        // Feed A carries SA + halves of SC/SD: roughly 420 + 420 = 840 of
        // the 1680 W demand, so its share should exceed feed B's... they
        // are symmetric here (SA vs SB), so shares are near equal.
        // Now feed B dies: the survivor inherits the whole 1400 W without
        // any operator action.
        plane.fail_feed(FeedId::B);
        farm.for_each_mut(|_, _, mut server| {
            let bank = server.bank_mut();
            if bank.len() == 2 {
                bank.fail_supply(1);
            }
        });
        plane.record_sample(&farm);
        let report = plane.round(&mut farm).clone();
        let total_after: Watts = report
            .allocations
            .iter()
            .map(|a| a.total_leaf_budget())
            .sum();
        // SA + SC + SD demand ~420 each on the surviving feed: the shared
        // budget lets them all run uncapped (1260 < 1400).
        assert!(
            total_after > Watts::new(1200.0),
            "survivor should inherit the shared budget, got {total_after}"
        );
    }

    /// Runs `periods` control periods during which `dark` servers deliver
    /// no telemetry (their snapshots are withheld from the plane).
    fn run_periods_with_dropped(
        plane: &mut ControlPlane,
        farm: &mut Farm,
        periods: usize,
        dark: &[ServerId],
    ) {
        for _ in 0..periods {
            for _ in 0..8 {
                let snaps: Vec<(ServerId, SensorSnapshot)> = farm
                    .sense_all()
                    .into_iter()
                    .filter(|(id, _)| !dark.contains(id))
                    .collect();
                plane.record_snapshots(farm, &snaps);
                farm.step_all(Seconds::new(1.0));
            }
            plane.round(farm);
        }
    }

    #[test]
    fn dropped_telemetry_degrades_to_fail_safe_cap() {
        let (topo, mut farm, mut plane) = fig2_plane(PolicyKind::GlobalPriority);
        let sb = topo.server_by_name("SB").unwrap();
        run_periods(&mut plane, &mut farm, 4);
        assert!(!plane.is_stale(sb));

        // SB's readings stop being delivered. For stale_after_rounds − 1
        // rounds the plane stale-holds on the last estimate…
        run_periods_with_dropped(&mut plane, &mut farm, 2, &[sb]);
        assert!(!plane.is_stale(sb), "stale-hold bridge, not yet stale");

        // …then SB is declared stale and clamped to fail-safe (cap_min).
        run_periods_with_dropped(&mut plane, &mut farm, 2, &[sb]);
        assert!(plane.is_stale(sb));
        assert_eq!(plane.stale_servers(), vec![sb]);
        let model = farm.get(sb).unwrap().config().model();
        let eff = farm.get(sb).unwrap().bank().efficiency();
        let dc_cap = farm.get(sb).unwrap().dc_cap().unwrap();
        assert!(
            (dc_cap.as_f64() - (model.cap_min() * eff).as_f64()).abs() < 1e-9,
            "stale server should be clamped to cap_min DC, got {dc_cap}"
        );
    }

    #[test]
    fn stale_server_rejoins_budgeting_after_telemetry_returns() {
        let (topo, mut farm, mut plane) = fig2_plane(PolicyKind::GlobalPriority);
        let sb = topo.server_by_name("SB").unwrap();
        run_periods(&mut plane, &mut farm, 4);
        let healthy_cap = farm.get(sb).unwrap().dc_cap().unwrap();

        run_periods_with_dropped(&mut plane, &mut farm, 4, &[sb]);
        assert!(plane.is_stale(sb));

        // Telemetry returns: freshness clears on the next round, and the
        // cleared estimator re-learns the demand within two rounds.
        run_periods(&mut plane, &mut farm, 2);
        assert!(!plane.is_stale(sb));
        let recovered_cap = farm.get(sb).unwrap().dc_cap().unwrap();
        assert!(
            (recovered_cap.as_f64() - healthy_cap.as_f64()).abs()
                < 0.02 * healthy_cap.as_f64(),
            "cap should recover within 2% of {healthy_cap}, got {recovered_cap}"
        );
    }

    #[test]
    fn implausible_readings_count_as_missing_telemetry() {
        let (topo, mut farm, mut plane) = fig2_plane(PolicyKind::GlobalPriority);
        let sb = topo.server_by_name("SB").unwrap();
        run_periods(&mut plane, &mut farm, 2);
        // SB's sensor goes insane: 10 kW readings, screened out.
        for _ in 0..4 {
            for _ in 0..8 {
                let snaps: Vec<(ServerId, SensorSnapshot)> = farm
                    .sense_all()
                    .into_iter()
                    .map(|(id, snap)| {
                        if id == sb {
                            (id, snap.scaled(25.0))
                        } else {
                            (id, snap)
                        }
                    })
                    .collect();
                plane.record_snapshots(&farm, &snaps);
                farm.step_all(Seconds::new(1.0));
            }
            plane.round(&mut farm);
        }
        assert!(
            plane.is_stale(sb),
            "garbage readings must degrade like silence"
        );
    }

    #[test]
    fn fail_safe_demand_is_configurable() {
        let (topo, mut farm, mut plane) = fig2_plane(PolicyKind::GlobalPriority);
        let sb = topo.server_by_name("SB").unwrap();
        plane.set_staleness(
            StalenessConfig::default()
                .with_stale_after_rounds(1)
                .with_fail_safe_demand(Some(Watts::new(300.0))),
        );
        run_periods(&mut plane, &mut farm, 2);
        run_periods_with_dropped(&mut plane, &mut farm, 2, &[sb]);
        assert!(plane.is_stale(sb));
        let eff = farm.get(sb).unwrap().bank().efficiency();
        let dc_cap = farm.get(sb).unwrap().dc_cap().unwrap();
        assert!(
            (dc_cap.as_f64() - (Watts::new(300.0) * eff).as_f64()).abs() < 1e-9,
            "configured fail-safe demand should set the cap, got {dc_cap}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_stale_after_rejected() {
        let (_, _, mut plane) = fig2_plane(PolicyKind::GlobalPriority);
        plane.set_staleness(StalenessConfig {
            stale_after_rounds: 0,
            fail_safe_demand: None,
        });
    }

    #[test]
    #[should_panic(expected = "one root budget per control tree")]
    fn mismatched_budget_count_panics() {
        let topo = figure2_feed();
        let trees: Vec<ControlTree> = topo
            .control_tree_specs()
            .into_iter()
            .map(ControlTree::new)
            .collect();
        let _ = ControlPlane::new(trees, vec![], PlaneConfig::default());
    }
}
