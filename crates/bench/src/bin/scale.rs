//! Control-plane scale measurement (§5 overhead claims) with the real
//! threaded rack/room worker deployment.
//!
//! The paper budgets ~10 ms for rack budgeting and <300 ms for a 500-rack
//! room worker. This harness stands up the Table 4 data center (all six
//! control trees, dual-corded servers) at several sizes and times complete
//! control rounds through both the synchronous plane and the distributed
//! deployment. A `MetricsRegistry` rides along on both, so each size also
//! reports the per-phase mean round time and any gather timeouts the
//! distributed deployment hit.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin scale [-- --workers N]
//! ```

use std::sync::Arc;
use std::time::Instant;

use capmaestro_bench::{banner, Args};
use capmaestro_core::obs::{names, MetricsRegistry, RoundPhase};
use capmaestro_core::policy::PolicyKind;
use capmaestro_core::workers::{shared_farm, DeploymentConfig, WorkerDeployment};
use capmaestro_sim::report::Table;
use capmaestro_sim::scenarios::{datacenter_rig, DataCenterRigConfig};
use capmaestro_topology::presets::DataCenterParams;
use capmaestro_units::{Seconds, Watts};

/// One size's measurement.
struct Sample {
    servers: usize,
    sync_ms: f64,
    dist_ms: f64,
    /// Mean observed time per round phase, milliseconds, phase order.
    phase_ms: Vec<(&'static str, f64)>,
    gather_timeouts: u64,
}

fn rounds_per_config(racks: usize, rpp: usize, cdus: usize, spr: usize, workers: usize) -> Sample {
    let config = DataCenterRigConfig {
        params: DataCenterParams {
            racks,
            transformers_per_feed: 2,
            rpps_per_transformer: rpp,
            cdus_per_rpp: cdus,
            servers_per_rack: spr,
            ..DataCenterParams::default()
        },
        contractual_per_phase: Watts::from_kilowatts(700.0 * racks as f64 / 162.0) * 0.95,
        utilization: 0.9,
        ..DataCenterRigConfig::default()
    };
    let rig = datacenter_rig(&config);
    let servers = rig.farm.len();
    let registry = Arc::new(MetricsRegistry::new());

    // Synchronous plane, instrumented.
    let mut farm = rig.farm;
    let mut plane = rig.plane;
    plane.set_recorder(registry.clone());
    plane.record_sample(&farm);
    let start = Instant::now();
    const ROUNDS: u32 = 5;
    for _ in 0..ROUNDS {
        plane.round(&mut farm);
        farm.step_all(Seconds::new(1.0));
        plane.record_sample(&farm);
    }
    let sync_ms = start.elapsed().as_secs_f64() * 1000.0 / ROUNDS as f64;

    // Distributed deployment over the same trees.
    let trees = plane.trees().to_vec();
    let budgets = vec![
        Watts::from_kilowatts(700.0 * racks as f64 / 162.0) * 0.95 / 2.0;
        trees.len()
    ];
    let shared = shared_farm(farm);
    let mut deployment = WorkerDeployment::spawn(
        trees,
        budgets,
        PolicyKind::GlobalPriority,
        shared,
        workers,
        DeploymentConfig::default().with_recorder(registry.clone()),
    );
    deployment.run_round(0); // warm caches
    let start = Instant::now();
    for round in 1..=ROUNDS as u64 {
        deployment.run_round(round);
    }
    let dist_ms = start.elapsed().as_secs_f64() * 1000.0 / ROUNDS as f64;
    deployment.shutdown();

    let snap = registry.snapshot();
    let phase_ms = RoundPhase::ALL
        .iter()
        .map(|p| {
            let mean = snap
                .histograms
                .iter()
                .find(|h| h.name == p.metric_name() && h.count > 0)
                .map(|h| h.sum / h.count as f64 * 1000.0)
                .unwrap_or(0.0);
            (p.label(), mean)
        })
        .collect();
    let gather_timeouts = snap
        .counters
        .iter()
        .find(|c| c.name == names::WORKER_GATHER_TIMEOUTS_TOTAL)
        .map(|c| c.value)
        .unwrap_or(0);
    Sample {
        servers,
        sync_ms,
        dist_ms,
        phase_ms,
        gather_timeouts,
    }
}

fn main() {
    let args = Args::capture();
    let workers: usize = args.get("workers", 4);
    banner(
        "Scale (§5)",
        "full control-round wall time, synchronous plane vs threaded rack/room workers",
    );
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if host_cpus == 1 {
        eprintln!("================================================================");
        eprintln!("WARNING: only 1 CPU is visible to this process.");
        eprintln!("The distributed timings below run {workers} rack-worker threads");
        eprintln!("time-sliced on a single core — they measure contention, not the");
        eprintln!("deployment, and must not be compared against the paper's budget.");
        eprintln!("================================================================");
    }
    let mut table = Table::new(vec![
        "Racks",
        "Servers",
        "Sync round (ms)",
        "Distributed round (ms)",
        "Gather timeouts",
    ]);
    let mut breakdowns: Vec<(usize, Sample)> = Vec::new();
    for (racks, rpp, cdus, spr) in [(18, 3, 3, 12), (54, 3, 9, 12), (162, 9, 9, 12), (162, 9, 9, 45)] {
        let sample = rounds_per_config(racks, rpp, cdus, spr, workers);
        table.row(vec![
            racks.to_string(),
            sample.servers.to_string(),
            format!("{:.1}", sample.sync_ms),
            format!("{:.1}", sample.dist_ms),
            sample.gather_timeouts.to_string(),
        ]);
        breakdowns.push((racks, sample));
    }
    print!("{}", table.render());
    println!();
    println!("synchronous per-phase mean (ms):");
    for (racks, sample) in &breakdowns {
        let phases: Vec<String> = sample
            .phase_ms
            .iter()
            .map(|(label, ms)| format!("{label} {ms:.2}"))
            .collect();
        println!(
            "  {racks} racks / {} servers: {}",
            sample.servers,
            phases.join(", ")
        );
    }
    println!();
    println!("paper budget: rack worker ~10 ms budgeting, room worker <300 ms at 500 racks.");
    println!("({workers} rack-worker threads on {host_cpus} host CPUs; the distributed figure");
    println!("includes sensing, estimation, metrics, budgeting, and cap enforcement end to end.)");
}
