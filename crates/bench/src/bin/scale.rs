//! Control-plane scale measurement (§5 overhead claims) with the real
//! threaded rack/room worker deployment.
//!
//! The paper budgets ~10 ms for rack budgeting and <300 ms for a 500-rack
//! room worker. This harness stands up the Table 4 data center (all six
//! control trees, dual-corded servers) at several sizes and times complete
//! control rounds through both the synchronous plane and the distributed
//! deployment.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin scale [-- --workers N]
//! ```

use std::time::Instant;

use capmaestro_bench::{banner, Args};
use capmaestro_core::policy::PolicyKind;
use capmaestro_core::workers::{shared_farm, DeploymentConfig, WorkerDeployment};
use capmaestro_sim::report::Table;
use capmaestro_sim::scenarios::{datacenter_rig, DataCenterRigConfig};
use capmaestro_topology::presets::DataCenterParams;
use capmaestro_units::{Seconds, Watts};

fn rounds_per_config(racks: usize, rpp: usize, cdus: usize, spr: usize, workers: usize) -> (usize, f64, f64) {
    let config = DataCenterRigConfig {
        params: DataCenterParams {
            racks,
            transformers_per_feed: 2,
            rpps_per_transformer: rpp,
            cdus_per_rpp: cdus,
            servers_per_rack: spr,
            ..DataCenterParams::default()
        },
        contractual_per_phase: Watts::from_kilowatts(700.0 * racks as f64 / 162.0) * 0.95,
        utilization: 0.9,
        ..DataCenterRigConfig::default()
    };
    let rig = datacenter_rig(&config);
    let servers = rig.farm.len();

    // Synchronous plane.
    let mut farm = rig.farm;
    let mut plane = rig.plane;
    plane.record_sample(&farm);
    let start = Instant::now();
    const ROUNDS: u32 = 5;
    for _ in 0..ROUNDS {
        plane.run_round(&mut farm);
        farm.step_all(Seconds::new(1.0));
        plane.record_sample(&farm);
    }
    let sync_ms = start.elapsed().as_secs_f64() * 1000.0 / ROUNDS as f64;

    // Distributed deployment over the same trees.
    let trees = plane.trees().to_vec();
    let budgets = vec![
        Watts::from_kilowatts(700.0 * racks as f64 / 162.0) * 0.95 / 2.0;
        trees.len()
    ];
    let shared = shared_farm(farm);
    let mut deployment = WorkerDeployment::spawn(
        trees,
        budgets,
        PolicyKind::GlobalPriority,
        shared,
        workers,
        DeploymentConfig::default(),
    );
    deployment.run_round(0); // warm caches
    let start = Instant::now();
    for round in 1..=ROUNDS as u64 {
        deployment.run_round(round);
    }
    let dist_ms = start.elapsed().as_secs_f64() * 1000.0 / ROUNDS as f64;
    deployment.shutdown();
    (servers, sync_ms, dist_ms)
}

fn main() {
    let args = Args::capture();
    let workers: usize = args.get("workers", 4);
    banner(
        "Scale (§5)",
        "full control-round wall time, synchronous plane vs threaded rack/room workers",
    );
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if host_cpus == 1 {
        eprintln!("================================================================");
        eprintln!("WARNING: only 1 CPU is visible to this process.");
        eprintln!("The distributed timings below run {workers} rack-worker threads");
        eprintln!("time-sliced on a single core — they measure contention, not the");
        eprintln!("deployment, and must not be compared against the paper's budget.");
        eprintln!("================================================================");
    }
    let mut table = Table::new(vec![
        "Racks",
        "Servers",
        "Sync round (ms)",
        "Distributed round (ms)",
    ]);
    for (racks, rpp, cdus, spr) in [(18, 3, 3, 12), (54, 3, 9, 12), (162, 9, 9, 12), (162, 9, 9, 45)] {
        let (servers, sync_ms, dist_ms) = rounds_per_config(racks, rpp, cdus, spr, workers);
        table.row(vec![
            racks.to_string(),
            servers.to_string(),
            format!("{sync_ms:.1}"),
            format!("{dist_ms:.1}"),
        ]);
    }
    print!("{}", table.render());
    println!();
    println!("paper budget: rack worker ~10 ms budgeting, room worker <300 ms at 500 racks.");
    println!("({workers} rack-worker threads; the distributed figure includes sensing,");
    println!("estimation, metrics, budgeting, and cap enforcement end to end.)");
}
