//! Figure 6b: power at the top/left/right circuit breakers under the
//! Global Priority policy, over time.
//!
//! Paper shape: total power stays below the 1240 W top budget and the
//! 750 W child limits throughout the run.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin fig6b [-- --csv]
//! ```

use capmaestro_bench::{banner, Args};
use capmaestro_sim::engine::{Engine, Trace};
use capmaestro_sim::report::{downsample, series_csv, sparkline};
use capmaestro_sim::scenarios::{priority_rig, RigConfig};

fn main() {
    let args = Args::capture();
    banner(
        "Figure 6b",
        "CB power under Global Priority on the Fig. 2 rig (limits: top 1240 W budget, children 750 W)",
    );
    let rig = priority_rig(RigConfig::table2());
    let mut engine = Engine::new(rig);
    let trace = engine.run(160);

    let top = trace.node_series("Top CB").expect("top CB");
    let left = trace.node_series("Left CB").expect("left CB");
    let right = trace.node_series("Right CB").expect("right CB");

    if args.flag("csv") {
        print!(
            "{}",
            series_csv("t", &[("top", top), ("left", left), ("right", right)])
        );
        return;
    }

    println!("Top CB    {}", sparkline(&downsample(top, 4)));
    println!("Left CB   {}", sparkline(&downsample(left, 4)));
    println!("Right CB  {}", sparkline(&downsample(right, 4)));
    println!();
    println!(
        "steady state: top {:.0} W (budget 1240), left {:.0} W / right {:.0} W (limit 750)",
        Trace::tail_mean(top, 20),
        Trace::tail_mean(left, 20),
        Trace::tail_mean(right, 20),
    );
    let max_top = top.iter().cloned().fold(0.0, f64::max);
    println!("peak top CB load: {max_top:.0} W");
    assert!(trace.trips.is_empty(), "no breaker may trip");
    println!("breaker trips: none (as required)");
}
