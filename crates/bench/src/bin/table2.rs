//! Table 2: server power budgets assigned by each capping policy on the
//! real four-server rig (§6.2).
//!
//! Paper values (demands 420/413/417/423 W, budget 1240 W):
//! No Priority 314/306/311/316; Local 344/274/314/317;
//! Global 419/276/275/275.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin table2
//! ```

use capmaestro_bench::banner;
use capmaestro_core::policy::PolicyKind;
use capmaestro_sim::engine::Engine;
use capmaestro_sim::report::Table;
use capmaestro_sim::scenarios::{priority_rig, RigConfig};
use capmaestro_topology::presets::RIG_SERVER_NAMES;
use capmaestro_topology::SupplyIndex;

fn main() {
    banner(
        "Table 2",
        "steady-state budgets per policy on the Fig. 2 rig (demands 420/413/417/423 W, 1240 W budget)",
    );

    let mut rows: Vec<[f64; 4]> = Vec::new();
    for policy in PolicyKind::ALL {
        let rig = priority_rig(RigConfig::table2().with_policy(policy));
        let ids: Vec<_> = RIG_SERVER_NAMES.iter().map(|n| rig.server(n)).collect();
        let mut engine = Engine::new(rig);
        // Let the loop converge (the paper reports steady-state numbers),
        // then read one more allocation round.
        engine.run(120);
        let report = engine.run_control_round();
        let mut budgets = [0.0f64; 4];
        for (i, id) in ids.iter().enumerate() {
            budgets[i] = report
                .supply_budget(*id, SupplyIndex::FIRST)
                .map(|w| w.as_f64())
                .unwrap_or(f64::NAN);
        }
        rows.push(budgets);
    }

    let paper = [
        [314.0, 306.0, 311.0, 316.0],
        [344.0, 274.0, 314.0, 317.0],
        [419.0, 276.0, 275.0, 275.0],
    ];
    let mut table = Table::new(vec![
        "Policy", "SA (W)", "SB (W)", "SC (W)", "SD (W)", "Paper (SA/SB/SC/SD)",
    ]);
    for (i, policy) in PolicyKind::ALL.iter().enumerate() {
        table.row(vec![
            policy.to_string(),
            format!("{:.0}", rows[i][0]),
            format!("{:.0}", rows[i][1]),
            format!("{:.0}", rows[i][2]),
            format!("{:.0}", rows[i][3]),
            format!(
                "{:.0}/{:.0}/{:.0}/{:.0}",
                paper[i][0], paper[i][1], paper[i][2], paper[i][3]
            ),
        ]);
    }
    print!("{}", table.render());
    println!("\n(SA is high priority; the other three are low priority)");
}
