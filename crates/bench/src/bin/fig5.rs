//! Figure 5: per-supply budget enforcement over time.
//!
//! One server with redundant supplies under the §4.2 capping controller.
//! Budgets start generous; at t = 30 s PS2's budget drops to 200 W, and at
//! t = 110 s PS1's drops to 150 W (making PS1 the binding supply). The
//! paper reports power settling within 5 % of the budgets within two
//! control periods (16 s).
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin fig5 [-- --csv]
//! ```

use capmaestro_bench::{banner, Args};
use capmaestro_core::capping::CappingController;
use capmaestro_sim::report::{downsample, series_csv, sparkline};
use capmaestro_server::{Server, ServerConfig};
use capmaestro_units::{Ratio, Seconds, Watts};
use capmaestro_workload::Schedule;

fn main() {
    let args = Args::capture();
    banner(
        "Figure 5",
        "closed-loop enforcement of independent per-supply budgets (PS2 down at t=30s, PS1 at t=110s)",
    );

    // A dual-supply server with an even split, demanding 460 W.
    let mut server = Server::new(ServerConfig::paper_default().with_split(0.5));
    server.set_offered_demand(Watts::new(460.0));
    server.settle();
    let model = server.config().model();
    let mut controller =
        CappingController::new(model.cap_min(), model.cap_max(), server.config().efficiency());

    let ps1_budget = Schedule::new(Watts::new(280.0))
        .then_at(Seconds::new(110.0), Watts::new(150.0));
    let ps2_budget = Schedule::new(Watts::new(280.0))
        .then_at(Seconds::new(30.0), Watts::new(200.0));

    let total = 200u64;
    let mut series: [Vec<f64>; 6] = Default::default();
    let mut dc_cap = f64::NAN;
    for t in 0..total {
        let now = Seconds::new(t as f64);
        let budgets = [ps1_budget.value_at(now), ps2_budget.value_at(now)];
        if t % 8 == 0 {
            let snap = server.sense();
            let cap = controller.update(&budgets, &snap.supply_ac);
            server.set_dc_cap(cap);
            dc_cap = cap.as_f64();
        }
        server.step(Seconds::new(1.0));
        let snap = server.sense();
        series[0].push(budgets[0].as_f64());
        series[1].push(snap.supply_ac[0].as_f64());
        series[2].push(budgets[1].as_f64());
        series[3].push(snap.supply_ac[1].as_f64());
        series[4].push(dc_cap);
        series[5].push(snap.throttle.as_f64() * 100.0);
    }

    if args.flag("csv") {
        print!(
            "{}",
            series_csv(
                "t",
                &[
                    ("ps1_budget", &series[0]),
                    ("ps1_power", &series[1]),
                    ("ps2_budget", &series[2]),
                    ("ps2_power", &series[3]),
                    ("dc_cap", &series[4]),
                    ("throttle_pct", &series[5]),
                ],
            )
        );
        return;
    }

    let names = [
        "PS1 budget (W)",
        "PS1 power  (W)",
        "PS2 budget (W)",
        "PS2 power  (W)",
        "DC cap     (W)",
        "throttle   (%)",
    ];
    for (name, s) in names.iter().zip(&series) {
        println!("{name}  {}", sparkline(&downsample(s, 4)));
    }
    println!();

    // The paper's settling check: within 5 % of the budget two control
    // periods after each step.
    let checks = [
        ("PS2 after t=30s step", 30 + 16, series[3][30 + 16], 200.0),
        ("PS1 after t=110s step", 110 + 16, series[1][110 + 16], 150.0),
    ];
    for (what, t, got, want) in checks {
        let pct = (got - want).abs() / want * 100.0;
        println!("{what}: at t={t}s power={got:.1} W vs budget {want:.0} W ({pct:.1}% off; paper: <5%)");
    }
    let ratio = Ratio::new(series[5][total as usize - 1] / 100.0);
    println!("final throttle level: {ratio}");
}
