//! Policy arena: race the budget-split allocators on identical seeded
//! scenarios.
//!
//! Every [`AllocatorKind`] (the paper's §4.3.2 waterfall, the projected
//! waterfilling solver, the FastCap-style fair-share solver) runs the
//! same seeded scenario schedule — a diurnal demand curve, a flash
//! crowd, and a feed failure mid-storm — and is scored on four metrics:
//!
//! - **throughput**: mean served fraction `Σ min(power, demand) / Σ demand`;
//! - **Jain's fairness index** over per-server mean served fractions;
//! - **stranded watts**: mean budget left unused while demand goes unmet;
//! - **convergence**: seconds after the headline disturbance until the
//!   fleet's power last exceeded the contractual budget envelope.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin policies \
//!     [-- --smoke --seconds N --seed S --seeds K --out PATH]
//! ```
//!
//! Results land in `BENCH_policies.json`; the process exits non-zero if
//! any metric leaves its sane range, so CI can gate on `--smoke`.

#![deny(clippy::missing_docs_in_private_items)]

use std::collections::HashMap;
use std::fmt::Write as _;

use capmaestro_bench::{banner, Args};
use capmaestro_core::alloc::AllocatorKind;
use capmaestro_sim::engine::{Engine, Event};
use capmaestro_sim::report::Table;
use capmaestro_sim::scenarios::{priority_rig, stranded_rig, RigConfig};
use capmaestro_topology::ServerId;
use capmaestro_units::Watts;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Seconds ignored at the start of every run before metrics accumulate
/// (controller warm-up; all policies get the same grace).
const WARMUP_S: u64 = 24;

/// Fractional tolerance above the contractual budget that still counts
/// as "converged" (plus [`BUDGET_SLACK_W`] absolute).
const CONVERGENCE_TOL: f64 = 0.02;

/// Absolute slack on the budget envelope, in watts.
const BUDGET_SLACK_W: f64 = 5.0;

/// Unmet demand below this many watts does not count as starvation when
/// attributing stranded budget.
const UNMET_FLOOR_W: f64 = 5.0;

/// Which preset rig a scenario runs on.
#[derive(Debug, Clone, Copy)]
enum RigKind {
    /// The Fig. 2 single-feed priority rig (1240 W budget).
    Fig2,
    /// The Fig. 7a dual-feed stranded-power rig (2 × 700 W).
    Stranded,
}

/// One scenario: a rig plus a seeded disturbance schedule.
#[derive(Debug, Clone, Copy)]
struct Scenario {
    /// Stable name (JSON key and table row).
    name: &'static str,
    /// Which rig the schedule drives.
    rig: RigKind,
}

/// The arena's scenario list.
const SCENARIOS: [Scenario; 3] = [
    Scenario {
        name: "diurnal",
        rig: RigKind::Fig2,
    },
    Scenario {
        name: "flash_crowd",
        rig: RigKind::Fig2,
    },
    Scenario {
        name: "feed_fail_storm",
        rig: RigKind::Stranded,
    },
];

/// One (scenario, policy, seed) outcome.
struct RunResult {
    /// Scenario name.
    scenario: &'static str,
    /// Allocator under test.
    policy: AllocatorKind,
    /// Schedule seed.
    seed: u64,
    /// Simulated seconds.
    seconds: u64,
    /// Mean served fraction of demand, `[0, 1]`.
    throughput: f64,
    /// Jain's fairness index over per-server mean served fractions.
    jain: f64,
    /// Mean watts of budget left unused while ≥ [`UNMET_FLOOR_W`] of
    /// demand went unserved.
    stranded_w: f64,
    /// Seconds after the disturbance until fleet power last sat above
    /// the budget envelope (0 = never exceeded it).
    convergence_s: u64,
    /// Sanity-check failures (non-finite or out-of-range metrics).
    violations: Vec<String>,
}

/// Builds the scenario's engine for one (policy, seed): same schedule
/// for every policy, differing only in the allocator raced by the plane.
/// Returns the engine and the second the headline disturbance lands at.
fn build(scenario: &Scenario, policy: AllocatorKind, seed: u64, seconds: u64) -> (Engine, u64) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
    match scenario.rig {
        RigKind::Fig2 => {
            let rig = priority_rig(RigConfig::table2().with_allocator(policy));
            let servers: Vec<ServerId> =
                rig.farm.iter().map(|(id, _)| id).collect();
            let mut engine = Engine::new(rig);
            match scenario.name {
                "diurnal" => {
                    // Per-server offset sinusoids around a feasible mean;
                    // the crest pushes total demand past the 1240 W
                    // budget, so capping binds for part of every cycle.
                    let period = (seconds / 2).max(60) as f64;
                    let budget = 1240.0;
                    let specs: Vec<(f64, f64, f64)> = servers
                        .iter()
                        .map(|_| {
                            let mid = 280.0 + rng.random::<f64>() * 30.0;
                            let amp = 90.0 + rng.random::<f64>() * 60.0;
                            let phase = rng.random::<f64>() * period;
                            (mid, amp, phase)
                        })
                        .collect();
                    let mut disturb = seconds / 2;
                    let mut found = false;
                    let mut t = 8;
                    while t < seconds {
                        let mut total = 0.0;
                        for (&id, &(mid, amp, phase)) in servers.iter().zip(&specs) {
                            let angle = (t as f64 + phase) / period
                                * std::f64::consts::TAU;
                            let demand =
                                (mid + amp * angle.sin()).clamp(180.0, 490.0);
                            total += demand;
                            engine.schedule(t, Event::SetDemand(id, Watts::new(demand)));
                        }
                        if !found && total > budget {
                            disturb = t;
                            found = true;
                        }
                        t += 16;
                    }
                    (engine, disturb)
                }
                _ => {
                    // Flash crowd: a calm fleet spikes to near cap_max in
                    // one second, holds, then subsides.
                    let spike_at = seconds / 3;
                    let spike_len = (seconds / 5).max(40);
                    for &id in &servers {
                        let calm = 270.0 + rng.random::<f64>() * 40.0;
                        let crowd = 455.0 + rng.random::<f64>() * 35.0;
                        let after = 290.0 + rng.random::<f64>() * 30.0;
                        engine.schedule(1, Event::SetDemand(id, Watts::new(calm)));
                        engine.schedule(spike_at, Event::SetDemand(id, Watts::new(crowd)));
                        engine.schedule(
                            spike_at + spike_len,
                            Event::SetDemand(id, Watts::new(after)),
                        );
                    }
                    (engine, spike_at)
                }
            }
        }
        RigKind::Stranded => {
            // Feed failure mid-storm: demands surge, then one of the two
            // feeds dies while every server still wants its storm demand,
            // collapsing the contractual envelope to the survivor. The
            // outage window is bounded — the survivors' cap_min floors
            // exceed the collapsed budget, so until the feed returns no
            // policy can reach the envelope and convergence measures
            // outage plus recovery speed, not run length.
            let rig = stranded_rig(RigConfig::table3().with_allocator(policy));
            let servers: Vec<ServerId> = rig.farm.iter().map(|(id, _)| id).collect();
            let feeds: Vec<_> = rig.topology.feeds().iter().map(|g| g.feed()).collect();
            let mut engine = Engine::new(rig);
            let storm_at = seconds / 4;
            let fail_at = storm_at + 12;
            for &id in &servers {
                let storm = 450.0 + rng.random::<f64>() * 40.0;
                engine.schedule(storm_at, Event::SetDemand(id, Watts::new(storm)));
            }
            let failed = feeds[feeds.len() - 1];
            engine.schedule(fail_at, Event::FailFeed(failed));
            engine.schedule(fail_at + 48, Event::RestoreFeed(failed));
            (engine, fail_at)
        }
    }
}

/// Runs one (scenario, policy, seed) race and scores it.
fn run_one(
    scenario: &Scenario,
    policy: AllocatorKind,
    seed: u64,
    seconds: u64,
) -> RunResult {
    let (mut engine, disturb_s) = build(scenario, policy, seed, seconds);

    // Per-server served-fraction accumulators and fleet-level series.
    let mut per_server: HashMap<ServerId, (f64, u64)> = HashMap::new();
    let mut throughput_sum = 0.0;
    let mut throughput_n: u64 = 0;
    let mut stranded_sum = 0.0;
    let mut stranded_n: u64 = 0;
    let mut last_over: Option<u64> = None;

    engine.run_observed(seconds, |e| {
        let t = e.now_s();
        let budget: f64 = e
            .plane()
            .root_budgets_now()
            .iter()
            .map(|b| b.as_f64())
            .sum();
        let mut served = 0.0;
        let mut demand_total = 0.0;
        let mut power_total = 0.0;
        for (id, s) in e.farm().iter() {
            let demand = s.offered_demand().as_f64();
            let power = s.sense().total_ac.as_f64();
            power_total += power;
            if demand <= 0.0 {
                continue;
            }
            let ratio = (power.min(demand) / demand).clamp(0.0, 1.0);
            served += power.min(demand);
            demand_total += demand;
            if t > WARMUP_S {
                let entry = per_server.entry(id).or_insert((0.0, 0));
                entry.0 += ratio;
                entry.1 += 1;
            }
        }
        if t > WARMUP_S && demand_total > 0.0 {
            throughput_sum += served / demand_total;
            throughput_n += 1;
            let unmet = demand_total - served;
            if unmet > UNMET_FLOOR_W {
                stranded_sum += (budget - power_total).max(0.0);
                stranded_n += 1;
            }
        }
        if t >= disturb_s
            && power_total > budget * (1.0 + CONVERGENCE_TOL) + BUDGET_SLACK_W
        {
            last_over = Some(t);
        }
    });

    let throughput = if throughput_n > 0 {
        throughput_sum / throughput_n as f64
    } else {
        1.0
    };
    let ratios: Vec<f64> = per_server
        .values()
        .map(|&(sum, n)| if n > 0 { sum / n as f64 } else { 0.0 })
        .collect();
    let jain = jain_index(&ratios);
    let stranded_w = if stranded_n > 0 {
        stranded_sum / stranded_n as f64
    } else {
        0.0
    };
    let convergence_s = last_over.map(|t| t + 1 - disturb_s).unwrap_or(0);

    let mut violations = Vec::new();
    if !throughput.is_finite() || !(0.0..=1.0 + 1e-9).contains(&throughput) {
        violations.push(format!("throughput out of range: {throughput}"));
    }
    if !jain.is_finite() || !(0.0..=1.0 + 1e-9).contains(&jain) {
        violations.push(format!("jain index out of range: {jain}"));
    }
    if !stranded_w.is_finite() || stranded_w < 0.0 {
        violations.push(format!("stranded watts out of range: {stranded_w}"));
    }
    if convergence_s > seconds {
        violations.push(format!("convergence {convergence_s} s exceeds the run"));
    }

    RunResult {
        scenario: scenario.name,
        policy,
        seed,
        seconds,
        throughput,
        jain,
        stranded_w,
        convergence_s,
        violations,
    }
}

/// Jain's fairness index `(Σx)² / (n · Σx²)`; 1.0 for an empty or
/// all-zero population (nothing to be unfair about).
fn jain_index(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if n == 0.0 || sq <= 0.0 {
        1.0
    } else {
        (sum * sum) / (n * sq)
    }
}

/// Mean of an iterator of f64 (0 when empty).
fn mean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = values.fold((0.0, 0u64), |(s, n), v| (s + v, n + 1));
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Renders `BENCH_policies.json`: every run plus per-(scenario, policy)
/// summary means.
fn render_json(smoke: bool, seeds: &[u64], runs: &[RunResult]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"bench\": \"policy_arena\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let seed_list: Vec<String> = seeds.iter().map(|s| s.to_string()).collect();
    let _ = writeln!(out, "  \"seeds\": [{}],", seed_list.join(", "));
    let scenario_list: Vec<String> = SCENARIOS
        .iter()
        .map(|s| format!("\"{}\"", s.name))
        .collect();
    let _ = writeln!(out, "  \"scenarios\": [{}],", scenario_list.join(", "));
    let policy_list: Vec<String> = AllocatorKind::ALL
        .iter()
        .map(|p| format!("\"{}\"", p.name()))
        .collect();
    let _ = writeln!(out, "  \"policies\": [{}],", policy_list.join(", "));
    out.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"scenario\": \"{}\", \"policy\": \"{}\", \"seed\": {}, \
             \"seconds\": {}, \"throughput\": {:.6}, \"jain_fairness\": {:.6}, \
             \"stranded_w\": {:.3}, \"convergence_s\": {}}}",
            r.scenario,
            r.policy.name(),
            r.seed,
            r.seconds,
            r.throughput,
            r.jain,
            r.stranded_w,
            r.convergence_s
        );
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n  \"summary\": [\n");
    let mut first = true;
    for scenario in &SCENARIOS {
        for policy in AllocatorKind::ALL {
            let subset: Vec<&RunResult> = runs
                .iter()
                .filter(|r| r.scenario == scenario.name && r.policy == policy)
                .collect();
            if subset.is_empty() {
                continue;
            }
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let _ = write!(
                out,
                "    {{\"scenario\": \"{}\", \"policy\": \"{}\", \
                 \"throughput_mean\": {:.6}, \"jain_mean\": {:.6}, \
                 \"stranded_w_mean\": {:.3}, \"convergence_s_mean\": {:.1}}}",
                scenario.name,
                policy.name(),
                mean(subset.iter().map(|r| r.throughput)),
                mean(subset.iter().map(|r| r.jain)),
                mean(subset.iter().map(|r| r.stranded_w)),
                mean(subset.iter().map(|r| r.convergence_s as f64)),
            );
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn main() {
    let args = Args::capture();
    let smoke = args.flag("smoke");
    let default_seconds: u64 = if smoke { 240 } else { 640 };
    let seconds: u64 = args.get("seconds", default_seconds);
    let first_seed: u64 = args.get("seed", 1);
    let seed_count: u64 = args.get("seeds", 3);
    let out_path: String = args.get("out", "BENCH_policies.json".to_string());
    let seeds: Vec<u64> = (first_seed..first_seed + seed_count.max(1)).collect();

    banner(
        "Policy arena",
        "waterfall vs waterfilling vs fair_share on identical seeded scenarios",
    );
    println!(
        "{seconds} simulated seconds per run, seeds {seeds:?}, scenarios: \
         diurnal, flash_crowd, feed_fail_storm\n"
    );

    let mut runs = Vec::new();
    for scenario in &SCENARIOS {
        for policy in AllocatorKind::ALL {
            for &seed in &seeds {
                runs.push(run_one(scenario, policy, seed, seconds));
            }
        }
    }

    let mut table = Table::new(vec![
        "Scenario",
        "Policy",
        "Throughput",
        "Jain",
        "Stranded (W)",
        "Converge (s)",
    ]);
    for scenario in &SCENARIOS {
        for policy in AllocatorKind::ALL {
            let subset: Vec<&RunResult> = runs
                .iter()
                .filter(|r| r.scenario == scenario.name && r.policy == policy)
                .collect();
            table.row(vec![
                scenario.name.to_string(),
                policy.name().to_string(),
                format!("{:.4}", mean(subset.iter().map(|r| r.throughput))),
                format!("{:.4}", mean(subset.iter().map(|r| r.jain))),
                format!("{:.1}", mean(subset.iter().map(|r| r.stranded_w))),
                format!("{:.1}", mean(subset.iter().map(|r| r.convergence_s as f64))),
            ]);
        }
    }
    print!("{}", table.render());
    println!();

    let json = render_json(smoke, &seeds, &runs);
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("wrote {out_path}"),
        Err(e) => eprintln!("could not write {out_path}: {e}"),
    }

    let total: usize = runs.iter().map(|r| r.violations.len()).sum();
    if total > 0 {
        eprintln!("\n{total} sanity violation(s):");
        for r in &runs {
            for v in &r.violations {
                eprintln!("  {}/{}/{}: {}", r.scenario, r.policy.name(), r.seed, v);
            }
        }
        std::process::exit(1);
    }
    println!(
        "all {} runs scored inside sane metric ranges.",
        runs.len()
    );
}
