//! Figure 9: total servers deployable per policy, typical vs. worst case.
//!
//! Paper values (162 racks, 30 % high priority, <1 % avg cap ratio):
//! no capping 3888; worst case — No Priority 3888, Local 4860, Global
//! 5832; typical case — 6318 for all three policies.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin fig9 [-- --worst-trials N --reps N]
//! ```

use capmaestro_bench::{banner, Args};
use capmaestro_core::policy::PolicyKind;
use capmaestro_sim::capacity::{CapacityConfig, CapacityPlanner, Condition};
use capmaestro_sim::report::Table;

/// Servers deployable with no power management at all: each CDU phase must
/// carry peak demand through a single feed (the paper's 8.4-servers
/// arithmetic).
fn no_capping_baseline(config: &CapacityConfig) -> usize {
    let per_phase_budget =
        config.contractual_per_phase * config.contractual_loading;
    let per_cdu_phase = per_phase_budget / config.dc.racks as f64;
    let per_rack_phase = (per_cdu_phase / config.model.cap_max()).floor() as usize;
    config.dc.racks * per_rack_phase * 3
}

fn main() {
    let args = Args::capture();
    banner(
        "Figure 9",
        "maximum deployable servers per policy (30% high-priority, <1% avg cap ratio)",
    );
    let mut config = CapacityConfig::default();
    config.worst_trials = args.get("worst-trials", config.worst_trials);
    config.typical_reps_per_bin = args.get("reps", config.typical_reps_per_bin);
    config.seed = args.get("seed", config.seed);
    let planner = CapacityPlanner::new(config);

    let baseline = no_capping_baseline(planner.config());
    println!("no power capping baseline: {baseline} servers\n");

    let mut table = Table::new(vec![
        "Policy",
        "Typical case",
        "Worst case",
        "Worst vs no-capping",
        "Paper worst",
    ]);
    let paper_worst = ["3888", "4860", "5832"];
    for (i, policy) in PolicyKind::ALL.iter().enumerate() {
        let typical = planner.max_deployable(*policy, Condition::Typical);
        let worst = planner.max_deployable(*policy, Condition::WorstCase);
        table.row(vec![
            policy.to_string(),
            typical.to_string(),
            worst.to_string(),
            format!("{:+.0}%", (worst as f64 / baseline as f64 - 1.0) * 100.0),
            paper_worst[i].to_string(),
        ]);
    }
    print!("{}", table.render());
    println!("\npaper typical case: 6318 for all policies");
}
