//! Table 1: power budgets under local vs. global priority on the Fig. 2
//! feed (the paper's motivating example).
//!
//! Paper values: with local priority SA/SB/SC/SD = 350/270/310/310 W;
//! with global priority 430/270/270/270 W.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin table1
//! ```

use capmaestro_bench::banner;
use capmaestro_core::policy::{CappingPolicy, GlobalPriority, LocalPriority};
use capmaestro_core::tree::{ControlTree, SupplyInput};
use capmaestro_sim::report::Table;
use capmaestro_topology::presets::{figure2_feed, RIG_SERVER_NAMES};
use capmaestro_topology::SupplyIndex;
use capmaestro_units::{Ratio, Watts};

fn main() {
    banner(
        "Table 1",
        "local vs global priority budgets: 4 servers x 430 W demand, 1240 W budget, SA high priority",
    );
    let topo = figure2_feed();
    let spec = topo.control_tree_specs().remove(0);
    let tree = ControlTree::with_uniform(
        spec,
        SupplyInput {
            demand: Watts::new(430.0),
            cap_min: Watts::new(270.0),
            cap_max: Watts::new(490.0),
            share: Ratio::ONE,
        },
    );

    let mut table = Table::new(vec![
        "Server",
        "Priority",
        "Demand (W)",
        "Local Priority (W)",
        "Global Priority (W)",
        "Paper local",
        "Paper global",
    ]);
    let local = tree.allocate(Watts::new(1240.0), &LocalPriority::new());
    let global = tree.allocate(Watts::new(1240.0), &GlobalPriority::new());
    let paper_local = [350.0, 270.0, 310.0, 310.0];
    let paper_global = [430.0, 270.0, 270.0, 270.0];
    for (i, name) in RIG_SERVER_NAMES.iter().enumerate() {
        let id = topo.server_by_name(name).expect("preset server");
        let l = local.supply_budget(id, SupplyIndex::FIRST).unwrap();
        let g = global.supply_budget(id, SupplyIndex::FIRST).unwrap();
        table.row(vec![
            (*name).to_string(),
            if i == 0 { "H".into() } else { "L".into() },
            "430".into(),
            format!("{:.0}", l.as_f64()),
            format!("{:.0}", g.as_f64()),
            format!("{:.0}", paper_local[i]),
            format!("{:.0}", paper_global[i]),
        ]);
    }
    print!("{}", table.render());
    let _ = GlobalPriority::new().name();
}
