//! Figure 6a: normalized server throughput after capping, per policy.
//!
//! Paper values for SA: 0.82 (No Priority), 0.87 (Local), 1.00 (Global);
//! the other servers land near Pcap_min's performance under Global.
//!
//! ```text
//! cargo run --release -p capmaestro-bench --bin fig6a
//! ```

use capmaestro_bench::banner;
use capmaestro_core::policy::PolicyKind;
use capmaestro_sim::engine::Engine;
use capmaestro_sim::report::Table;
use capmaestro_sim::scenarios::{priority_rig, RigConfig};
use capmaestro_topology::presets::RIG_SERVER_NAMES;
use capmaestro_units::Ratio;
use capmaestro_workload::WebServerModel;

fn main() {
    banner(
        "Figure 6a",
        "normalized throughput per policy on the Fig. 2 rig (Apache-like workload)",
    );
    // One web-serving model per server; peak throughput is arbitrary since
    // the figure is normalized.
    let apache = WebServerModel::new(1000.0, 5.0);

    let mut table = Table::new(vec![
        "Policy",
        "SA",
        "SB",
        "SC",
        "SD",
        "SA latency",
        "Paper SA",
    ]);
    let paper_sa = [0.82, 0.87, 1.00];
    for (pi, policy) in PolicyKind::ALL.iter().enumerate() {
        let rig = priority_rig(RigConfig::table2().with_policy(*policy));
        let ids: Vec<_> = RIG_SERVER_NAMES.iter().map(|n| rig.server(n)).collect();
        let mut engine = Engine::new(rig);
        engine.run(150);
        let mut cells = vec![policy.to_string()];
        let mut sa_latency = String::new();
        for (i, id) in ids.iter().enumerate() {
            let perf = engine
                .server(*id)
                .expect("rig server")
                .performance_fraction();
            let wp = apache.at_performance(perf);
            cells.push(format!("{:.2}", wp.normalized_throughput.as_f64()));
            if i == 0 {
                let inc = apache.latency_increase(perf);
                sa_latency = if inc < 0.005 {
                    "unchanged".into()
                } else {
                    format!("+{:.0}%", inc * 100.0)
                };
            }
        }
        cells.push(sa_latency);
        cells.push(format!("{:.2}", paper_sa[pi]));
        table.row(cells);
    }
    print!("{}", table.render());
    println!("\n(throughput normalized to the uncapped server; SA is high priority)");
    let _ = Ratio::ONE;
}
